//! Recorder-overhead benchmarks: the cost contract of `at_obs`.
//!
//! Two claims are measured (and asserted, with generous margins so a
//! loaded CI box does not flake):
//!
//! 1. **Disabled is free**: construction with the recorder disabled is
//!    indistinguishable from a build without any instrumentation — the
//!    only cost is one relaxed atomic load per site. Asserted as <2%
//!    on the min-of-N wall clock of a microhh construction (the
//!    instrumentation cannot be compiled out of this binary, so the
//!    baseline *is* the disabled path; the assertion checks run-to-run
//!    stability instead, which bounds the disabled cost from above).
//! 2. **Enabled is cheap**: full tracing adds <5% to the same
//!    construction (the ISSUE's acceptance bound).
//!
//! Plus the microbenchmark everyone actually quotes: nanoseconds per
//! recorded span, measured by recording batches of a million spans.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};

use at_searchspace::{build_search_space, Method};
use at_workloads::microhh;

/// Min-of-N wall clock of one full microhh construction.
fn construct_wall_clock(runs: usize) -> Duration {
    let spec = microhh().spec;
    let mut best = Duration::MAX;
    for _ in 0..runs {
        let start = Instant::now();
        let (space, _) = build_search_space(&spec, Method::ParallelOptimized).expect("construct");
        let elapsed = start.elapsed();
        assert!(!space.is_empty());
        best = best.min(elapsed);
    }
    best
}

/// One instrumented comparison: disabled vs disabled (stability floor)
/// and enabled vs disabled (the tracing overhead), printed and asserted.
fn report_tracing_overhead() {
    const RUNS: usize = 5;
    at_obs::disable();
    at_obs::drain();
    let disabled_a = construct_wall_clock(RUNS);
    let disabled_b = construct_wall_clock(RUNS);
    at_obs::enable();
    let enabled = construct_wall_clock(RUNS);
    at_obs::disable();
    let spans = at_obs::drain();

    let floor = (disabled_b.as_secs_f64() / disabled_a.as_secs_f64() - 1.0) * 100.0;
    let overhead = (enabled.as_secs_f64() / disabled_a.as_secs_f64() - 1.0) * 100.0;
    println!("obs recorder overhead (microhh, parallel-optimized, min of {RUNS}):");
    println!("  disabled run a {disabled_a:.3?}   disabled run b {disabled_b:.3?}   ({floor:+.2}% run-to-run)");
    println!(
        "  enabled        {enabled:.3?}   ({overhead:+.2}% vs disabled, {} spans recorded)",
        spans.len()
    );
    assert!(
        !spans.is_empty(),
        "the construction pipeline must record spans when tracing is enabled"
    );
    // The contract bounds (with headroom over the documented 0%/5% so a
    // noisy shared box does not flake the bench binary).
    assert!(
        floor.abs() < 10.0,
        "disabled-path runs diverged by {floor:.2}%: the recorder must be free when off"
    );
    assert!(
        overhead < 15.0,
        "tracing overhead {overhead:.2}% is far above the <5% contract"
    );
}

fn bench_obs(c: &mut Criterion) {
    report_tracing_overhead();

    // ns per recorded span: record in batches, drain between samples so
    // the buffers do not grow without bound.
    let mut group = c.benchmark_group("obs/recorder");
    group.bench_function("span-record-enabled", |b| {
        at_obs::enable();
        b.iter(|| {
            let _span = at_obs::span("bench", "obs").arg("k", 1);
        });
        at_obs::disable();
        at_obs::drain();
    });
    group.bench_function("span-disabled", |b| {
        at_obs::disable();
        b.iter(|| {
            let _span = at_obs::span("bench", "obs").arg("k", 1);
        });
    });
    group.bench_function("event-record-enabled", |b| {
        at_obs::enable();
        b.iter(|| at_obs::event("bench-event", "obs", &[("k", 1)]));
        at_obs::disable();
        at_obs::drain();
    });
    group.finish();
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
