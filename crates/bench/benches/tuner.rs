//! Batched-evaluation throughput benchmarks for the tuner.
//!
//! The batch engine's pitch is that population strategies (GA, DE, PSO)
//! submit whole generations, so the distinct uncached configurations can
//! fan out over worker threads while the virtual-clock accounting stays
//! serial and deterministic. A one-shot comparison (min-of-3, printed up
//! front, with an identity check) demonstrates this on `microhh`: each
//! strategy is tuned with 1 and 4 eval threads against a model whose
//! per-measurement *wall-clock* cost is made non-trivial by deterministic
//! spin work, and the runs must be identical — same evaluations, same
//! virtual clock — with cache hit/dedup stats printed per strategy. The
//! ≥2× eval-throughput speedup for the population strategies is asserted
//! only when the host actually has ≥4 cores (CI containers often pin 1).
//! Criterion groups then track per-strategy serial eval throughput on the
//! cheap model, the engine's batch overhead, and the sharded cache.
//!
//! * `tuner/strategy_eval` — full tuning runs per strategy, 1 thread,
//!   cheap model: the strategy + engine overhead per evaluation,
//! * `tuner/batch_engine` — `evaluate_batch` on a pre-shuffled id stream
//!   through a fresh context: resolve/fan-out/merge cost per slot,
//! * `tuner/sharded_cache` — hit-path cost of the lock-striped cache.

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use at_searchspace::{build_search_space, ConfigId, Method, SearchSpace};
use at_tuner::{
    strategy_by_name, tune_with_options, EvalOptions, Measurement, ModelBackend, PerformanceModel,
    ShardedEvalCache, SyntheticKernel, TuningContext, TuningRun,
};
use at_workloads::microhh;

/// Wraps the synthetic model with deterministic spin work so a measurement
/// has a real wall-clock cost (~the hardware the virtual clock simulates).
/// The spin result feeds the output through `black_box`, so the optimizer
/// cannot delete it; the returned runtime stays bit-identical to the inner
/// model's, keeping parallel runs comparable to serial ones.
struct SpinWorkModel<'m> {
    inner: &'m SyntheticKernel,
    spin_iters: u64,
}

impl<'m> SpinWorkModel<'m> {
    fn spin(&self) -> u64 {
        let mut acc: u64 = 0x9E37_79B9_7F4A_7C15;
        for i in 0..self.spin_iters {
            acc = black_box(acc.wrapping_mul(6364136223846793005).wrapping_add(i));
        }
        acc
    }
}

impl PerformanceModel for SpinWorkModel<'_> {
    fn runtime_ms(&self, config: &[at_searchspace::prelude::Value]) -> f64 {
        let noise = (self.spin() & 1) as f64 * 0.0; // always 0.0, but not to LLVM
        self.inner.runtime_ms(config) + noise
    }
}

fn eval_throughput(run: &TuningRun, wall: Duration) -> f64 {
    run.metrics.measured as f64 / wall.as_secs_f64().max(1e-9)
}

fn min_of_runs(
    runs: usize,
    space: &SearchSpace,
    model: &dyn PerformanceModel,
    strategy: &str,
    threads: usize,
) -> (Duration, TuningRun) {
    let strat = strategy_by_name(strategy).expect("strategy");
    let mut best: Option<(Duration, TuningRun)> = None;
    for _ in 0..runs {
        let start = Instant::now();
        let run = tune_with_options(
            space,
            model,
            strat.as_ref(),
            Duration::from_secs(60),
            Duration::ZERO,
            1234,
            EvalOptions::with_threads(threads),
        );
        let elapsed = start.elapsed();
        if best.as_ref().is_none_or(|(b, _)| elapsed < *b) {
            best = Some((elapsed, run));
        }
    }
    best.expect("at least one run")
}

/// The acceptance comparison: tune microhh per strategy at 1 and 4 eval
/// threads against the spin-work model, assert the runs identical, report
/// eval throughput and cache stats, and (on hosts with the cores to show
/// it) assert the ≥2× speedup for the population strategies.
fn report_serial_vs_fanout() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (space, _) = build_search_space(&microhh().spec, Method::Optimized).expect("construction");
    let inner = SyntheticKernel::for_space(&space, 1234);
    let model = SpinWorkModel {
        inner: &inner,
        spin_iters: 25_000,
    };
    println!(
        "microhh eval throughput, 1 vs 4 eval threads (min of 3, {} configs, {} cores):",
        space.len(),
        cores
    );
    for strategy in [
        "genetic",
        "differential-evolution",
        "particle-swarm",
        "random",
    ] {
        let (serial_wall, serial) = min_of_runs(3, &space, &model, strategy, 1);
        let (fanout_wall, fanout) = min_of_runs(3, &space, &model, strategy, 4);
        assert_eq!(
            serial.evaluations, fanout.evaluations,
            "{strategy}: fan-out changed the run"
        );
        assert_eq!(serial.total_ms, fanout.total_ms, "{strategy}");
        let speedup = eval_throughput(&fanout, fanout_wall) / eval_throughput(&serial, serial_wall);
        println!(
            "  {:<24} 1t {:>8.0} evals/s   4t {:>8.0} evals/s ({:>4.2}x)   {}",
            strategy,
            eval_throughput(&serial, serial_wall),
            eval_throughput(&fanout, fanout_wall),
            speedup,
            fanout.metrics.summary_line(),
        );
        let is_population = strategy != "random";
        if cores >= 4 && is_population {
            assert!(
                speedup >= 2.0,
                "{strategy}: expected >=2x eval throughput at 4 threads on a \
                 {cores}-core host, got {speedup:.2}x"
            );
        }
    }
}

fn bench_tuner(c: &mut Criterion) {
    report_serial_vs_fanout();

    let (space, _) = build_search_space(&microhh().spec, Method::Optimized).expect("construction");
    let model = SyntheticKernel::for_space(&space, 1234);

    // Eval throughput per strategy on the cheap model: strategy proposal +
    // engine overhead dominate, which is what the group tracks over time.
    let mut group = c.benchmark_group("tuner/strategy_eval");
    group.sample_size(10);
    for strategy in [
        "random",
        "genetic",
        "differential-evolution",
        "particle-swarm",
        "hill-climbing",
        "simulated-annealing",
        "iterated-local-search",
    ] {
        let strat = strategy_by_name(strategy).expect("strategy");
        group.bench_with_input(BenchmarkId::new("microhh", strategy), &space, |b, space| {
            b.iter(|| {
                tune_with_options(
                    space,
                    &model,
                    strat.as_ref(),
                    Duration::from_secs(20),
                    Duration::ZERO,
                    7,
                    EvalOptions::with_threads(1),
                )
                .num_evaluations()
            })
        });
    }
    group.finish();

    // The raw batch engine: resolve + fan-out + merge per slot, strategies
    // out of the picture.
    let backend = ModelBackend::new(&model);
    let ids: Vec<ConfigId> = (0..space.len().min(4096))
        .map(ConfigId::from_index)
        .collect();
    let mut group = c.benchmark_group("tuner/batch_engine");
    group.sample_size(20);
    for batch in [64usize, 512] {
        group.bench_with_input(
            BenchmarkId::new("evaluate_batch", batch),
            &batch,
            |b, &batch| {
                b.iter(|| {
                    let mut ctx = TuningContext::new(
                        &space,
                        &backend,
                        Duration::from_secs(3600),
                        Duration::ZERO,
                        0,
                        EvalOptions::with_threads(1),
                    );
                    let mut measured = 0usize;
                    for chunk in ids.chunks(batch) {
                        measured += ctx
                            .evaluate_batch(chunk)
                            .iter()
                            .filter(|o| o.runtime().is_some())
                            .count();
                    }
                    measured
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("tuner/sharded_cache");
    let cache = ShardedEvalCache::new();
    for &id in &ids {
        cache.insert(
            id,
            Measurement {
                runtime_ms: 1.0,
                cost_ms: 51.0,
            },
        );
    }
    group.bench_function("hit_scan", |b| {
        b.iter(|| {
            ids.iter()
                .filter(|&&id| cache.get(black_box(id)).is_some())
                .count()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_tuner);
criterion_main!(benches);
