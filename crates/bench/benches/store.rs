//! Persistence-path benchmarks: cold construction vs. warm `ATSS` load.
//!
//! The `at_store` promise is "solve once, serve forever": a warm
//! [`at_store::SpaceStore`] load must be an order of magnitude faster than
//! re-constructing with the optimized solver, while producing a
//! code-for-code identical space. A one-shot comparison (min-of-5, printed
//! up front, with an identity check) demonstrates the acceptance target on
//! `dedispersion` and `microhh`; Criterion groups then track the individual
//! costs:
//!
//! * `store/cold_construct` — optimized-solver construction from scratch,
//! * `store/warm_load` — full `ATSS` read (checksums, dictionary decode,
//!   arena adoption, membership-table build),
//! * `store/write` — persisting an already-resolved space.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use at_searchspace::{build_search_space, Method, SearchSpace};
use at_store::{read_space_from_path, write_space_to_path};
use at_workloads::{dedispersion, microhh};

fn bench_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("atss-store-bench");
    std::fs::create_dir_all(&dir).expect("create bench dir");
    dir
}

fn min_of<T>(runs: usize, mut f: impl FnMut() -> T) -> (Duration, T) {
    let mut best: Option<(Duration, T)> = None;
    for _ in 0..runs {
        let start = Instant::now();
        let value = f();
        let elapsed = start.elapsed();
        if best.as_ref().is_none_or(|(b, _)| elapsed < *b) {
            best = Some((elapsed, value));
        }
    }
    best.expect("at least one run")
}

fn assert_identical(cold: &SearchSpace, warm: &SearchSpace) {
    assert_eq!(cold.arena(), warm.arena(), "arenas differ");
    assert_eq!(cold.name(), warm.name());
    for view in cold.iter().take(1000) {
        assert_eq!(warm.index_of(&view.to_vec()), Some(view.id()));
    }
}

/// The acceptance comparison: construct cold, load warm, report the ratio.
fn report_cold_vs_warm() {
    println!("cold optimized construction vs. warm ATSS load (min of 5):");
    for workload in [dedispersion(), microhh()] {
        let spec = workload.spec;
        let path = bench_dir().join(format!("{}.atss", spec.name));
        let (cold_time, (cold, _)) = min_of(5, || {
            build_search_space(&spec, Method::Optimized).expect("construction")
        });
        write_space_to_path(&cold, &path).expect("persist");
        let (warm_time, (warm, info)) = min_of(5, || read_space_from_path(&path).expect("load"));
        assert_identical(&cold, &warm);
        let speedup = cold_time.as_secs_f64() / warm_time.as_secs_f64().max(1e-9);
        println!(
            "  {:<14} cold {:>10.3?}   warm {:>10.3?}   {:>7.1}x   ({} configs, {} B on disk)",
            spec.name,
            cold_time,
            warm_time,
            speedup,
            warm.len(),
            info.file_bytes,
        );
    }
}

fn bench_store(c: &mut Criterion) {
    report_cold_vs_warm();

    let workloads: Vec<(String, std::path::PathBuf, SearchSpace)> = [dedispersion(), microhh()]
        .into_iter()
        .map(|w| {
            let spec = w.spec;
            let (space, _) = build_search_space(&spec, Method::Optimized).expect("construction");
            let path = bench_dir().join(format!("{}.atss", spec.name));
            write_space_to_path(&space, &path).expect("persist");
            (spec.name.clone(), path, space)
        })
        .collect();

    let specs = [dedispersion().spec, microhh().spec];
    let mut group = c.benchmark_group("store/cold_construct");
    group.sample_size(10);
    for spec in &specs {
        group.bench_with_input(
            BenchmarkId::new("optimized", &spec.name),
            spec,
            |b, spec| b.iter(|| build_search_space(spec, Method::Optimized).unwrap().0.len()),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("store/warm_load");
    group.sample_size(20);
    for (name, path, _) in &workloads {
        group.bench_with_input(BenchmarkId::new("atss", name), path, |b, path| {
            b.iter(|| read_space_from_path(path).unwrap().0.len())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("store/write");
    group.sample_size(20);
    for (name, path, space) in &workloads {
        group.bench_with_input(BenchmarkId::new("atss", name), space, |b, space| {
            b.iter(|| write_space_to_path(space, path).unwrap().bytes_written)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
