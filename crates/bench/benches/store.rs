//! Persistence-path benchmarks: cold construction vs. warm `ATSS` loads.
//!
//! The `at_store` promise is "solve once, serve forever", and since the
//! zero-copy redesign the serving cost itself is tiered. A one-shot
//! comparison (min-of-5, printed up front, with an identity check)
//! demonstrates the acceptance targets on `dedispersion` and `microhh`:
//! the copying warm load must stay an order of magnitude faster than
//! construction, and the mmap + trusted-index load must be **≥ 5× faster
//! than the copying warm load** (PR 4's 9.4 ms microhh baseline).
//! Criterion groups then track the individual costs:
//!
//! * `store/cold_construct` — optimized-solver construction from scratch,
//! * `store/warm_load` — full copying `ATSS` read with an index rebuild
//!   (checksums, dictionary decode, arena copy, membership-table build —
//!   the PR-4 baseline shape),
//! * `store/warm_load_verified` — copying read adopting the persisted
//!   index with sampled verification (the default `SpaceStore` hit path),
//! * `store/warm_load_mmap` — zero-copy mmap + trusted persisted index:
//!   O(header) work, proving the paper's "serve from the representation"
//!   argument end-to-end,
//! * `store/write` — persisting an already-resolved space.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use at_searchspace::{build_search_space, Method, SearchSpace};
use at_store::{
    load_space_from_path, read_space_from_path, write_space_to_path, IndexPolicy, LoadMode,
    LoadOptions,
};
use at_workloads::{dedispersion, microhh};

fn bench_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("atss-store-bench");
    std::fs::create_dir_all(&dir).expect("create bench dir");
    dir
}

/// The copying-load shape PR 4 measured: full validation, index rebuilt.
const COPY_REBUILD: LoadOptions = LoadOptions {
    mode: LoadMode::Copy,
    index: IndexPolicy::Rebuild,
};

fn min_of<T>(runs: usize, mut f: impl FnMut() -> T) -> (Duration, T) {
    let mut best: Option<(Duration, T)> = None;
    for _ in 0..runs {
        let start = Instant::now();
        let value = f();
        let elapsed = start.elapsed();
        if best.as_ref().is_none_or(|(b, _)| elapsed < *b) {
            best = Some((elapsed, value));
        }
    }
    best.expect("at least one run")
}

fn assert_identical(cold: &SearchSpace, warm: &SearchSpace) {
    assert_eq!(cold.arena(), warm.arena(), "arenas differ");
    assert_eq!(cold.name(), warm.name());
    for view in cold.iter().take(1000) {
        assert_eq!(warm.index_of(&view.to_vec()), Some(view.id()));
    }
}

/// The acceptance comparison: construct cold, load warm (copying, then
/// zero-copy), report both ratios.
fn report_cold_vs_warm() {
    println!("cold construction vs. copying warm load vs. mmap+trusted-index load (min of 5):");
    for workload in [dedispersion(), microhh()] {
        let spec = workload.spec;
        let path = bench_dir().join(format!("{}.atss", spec.name));
        let (cold_time, (cold, _)) = min_of(5, || {
            build_search_space(&spec, Method::Optimized).expect("construction")
        });
        write_space_to_path(&cold, &path).expect("persist");
        let (copy_time, loaded) = min_of(5, || {
            load_space_from_path(&path, COPY_REBUILD).expect("copying load")
        });
        assert_identical(&cold, &loaded.space);
        let (mmap_time, loaded) = min_of(5, || {
            load_space_from_path(&path, LoadOptions::mmap_trusted()).expect("mmap load")
        });
        assert_identical(&cold, &loaded.space);
        let zero_copy = loaded.report.is_zero_copy();
        let cold_vs_copy = cold_time.as_secs_f64() / copy_time.as_secs_f64().max(1e-9);
        let copy_vs_mmap = copy_time.as_secs_f64() / mmap_time.as_secs_f64().max(1e-9);
        println!(
            "  {:<14} cold {:>10.3?}   copy-warm {:>10.3?} ({:>6.1}x)   mmap-warm {:>10.3?} \
             ({:>6.1}x vs copy{})   ({} configs, {} B on disk)",
            spec.name,
            cold_time,
            copy_time,
            cold_vs_copy,
            mmap_time,
            copy_vs_mmap,
            if zero_copy {
                ", zero-copy"
            } else {
                ", FELL BACK TO COPY"
            },
            loaded.space.len(),
            loaded.info.file_bytes,
        );
    }
}

fn bench_store(c: &mut Criterion) {
    report_cold_vs_warm();

    let workloads: Vec<(String, std::path::PathBuf, SearchSpace)> = [dedispersion(), microhh()]
        .into_iter()
        .map(|w| {
            let spec = w.spec;
            let (space, _) = build_search_space(&spec, Method::Optimized).expect("construction");
            let path = bench_dir().join(format!("{}.atss", spec.name));
            write_space_to_path(&space, &path).expect("persist");
            (spec.name.clone(), path, space)
        })
        .collect();

    let specs = [dedispersion().spec, microhh().spec];
    let mut group = c.benchmark_group("store/cold_construct");
    group.sample_size(10);
    for spec in &specs {
        group.bench_with_input(
            BenchmarkId::new("optimized", &spec.name),
            spec,
            |b, spec| b.iter(|| build_search_space(spec, Method::Optimized).unwrap().0.len()),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("store/warm_load");
    group.sample_size(20);
    for (name, path, _) in &workloads {
        group.bench_with_input(BenchmarkId::new("atss", name), path, |b, path| {
            b.iter(|| {
                load_space_from_path(path, COPY_REBUILD)
                    .unwrap()
                    .space
                    .len()
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("store/warm_load_verified");
    group.sample_size(20);
    for (name, path, _) in &workloads {
        group.bench_with_input(BenchmarkId::new("atss", name), path, |b, path| {
            b.iter(|| {
                load_space_from_path(path, LoadOptions::default())
                    .unwrap()
                    .space
                    .len()
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("store/warm_load_mmap");
    group.sample_size(50);
    for (name, path, _) in &workloads {
        group.bench_with_input(BenchmarkId::new("atss", name), path, |b, path| {
            b.iter(|| {
                load_space_from_path(path, LoadOptions::mmap_trusted())
                    .unwrap()
                    .space
                    .len()
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("store/write");
    group.sample_size(20);
    for (name, path, space) in &workloads {
        group.bench_with_input(BenchmarkId::new("atss", name), space, |b, space| {
            b.iter(|| write_space_to_path(space, path).unwrap().bytes_written)
        });
    }
    group.finish();

    // Guard against silent API drift: the strict reader still works.
    let (name, path, space) = &workloads[0];
    let (loaded, info) = read_space_from_path(path).unwrap();
    assert_eq!(&info.name, name);
    assert_identical(space, &loaded);
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
