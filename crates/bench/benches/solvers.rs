//! Criterion benchmarks of the raw CSP solvers on a Listing 3-style problem,
//! isolating solver overhead from the search space machinery.

use criterion::{criterion_group, criterion_main, Criterion};

use at_csp::prelude::*;
use at_csp::value::int_values;

fn block_size_problem(extra_dims: usize) -> Problem {
    let mut p = Problem::new();
    let mut xs: Vec<i64> = vec![1, 2, 4, 8, 16];
    xs.extend((1..=32).map(|i| 32 * i));
    p.add_variable("block_size_x", int_values(xs)).unwrap();
    p.add_variable("block_size_y", int_values((0..6).map(|i| 1 << i)))
        .unwrap();
    for d in 0..extra_dims {
        p.add_variable(format!("extra_{d}"), int_values(1..=8))
            .unwrap();
    }
    p.add_constraint(MinProduct::new(32.0), &["block_size_x", "block_size_y"])
        .unwrap();
    p.add_constraint(MaxProduct::new(1024.0), &["block_size_x", "block_size_y"])
        .unwrap();
    if extra_dims >= 2 {
        p.add_constraint(MaxSum::new(10.0), &["extra_0", "extra_1"])
            .unwrap();
    }
    p
}

fn bench_solvers(c: &mut Criterion) {
    let problem = block_size_problem(3);
    let mut group = c.benchmark_group("solvers/block_size_3_extra_dims");
    group.sample_size(20);
    group.bench_function("brute-force", |b| {
        b.iter(|| {
            BruteForceSolver::new()
                .solve(&problem)
                .unwrap()
                .solutions
                .len()
        })
    });
    group.bench_function("original", |b| {
        b.iter(|| {
            OriginalBacktrackingSolver::new()
                .solve(&problem)
                .unwrap()
                .solutions
                .len()
        })
    });
    group.bench_function("optimized", |b| {
        b.iter(|| {
            OptimizedSolver::new()
                .solve(&problem)
                .unwrap()
                .solutions
                .len()
        })
    });
    group.bench_function("parallel", |b| {
        b.iter(|| {
            ParallelSolver::new()
                .solve(&problem)
                .unwrap()
                .solutions
                .len()
        })
    });
    group.finish();

    let small = block_size_problem(0);
    let mut group = c.benchmark_group("solvers/blocking_clause_small");
    group.sample_size(10);
    group.bench_function("blocking-clause", |b| {
        b.iter(|| {
            BlockingClauseSolver::new()
                .solve(&small)
                .unwrap()
                .solutions
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
