//! Space-server benchmarks: what does the daemon cost, and what does it
//! save?
//!
//! The `at_daemon` promise is the `at_store` promise made resident: one
//! process owns construction and integrity, and every other process
//! attaches to the shared `ATSS` entry in O(header) time. A one-shot
//! comparison (min-of-5, printed up front, with an identity check against
//! a daemonless construction) demonstrates the acceptance target — a warm
//! daemon resolve + mmap attach is orders of magnitude cheaper than
//! constructing the space locally. Criterion groups then track the
//! individual costs:
//!
//! * `daemon/local_construct` — the daemonless baseline: optimized-solver
//!   construction from scratch in the client process,
//! * `daemon/warm_resolve` — one `Resolve` round-trip over the Unix
//!   socket against a warm daemon (protocol + cache-probe cost only),
//! * `daemon/warm_resolve_attach` — the full client story on a persistent
//!   connection: resolve, then mmap + trusted-index attach,
//! * `daemon/connect_resolve_attach` — the same including a fresh
//!   `connect()` per iteration (the cold-client, warm-daemon shape a CLI
//!   invocation pays).

#[cfg(unix)]
mod unix_bench {
    use std::path::PathBuf;
    use std::time::{Duration, Instant};

    use criterion::{criterion_group, BenchmarkId, Criterion};

    use at_daemon::{Daemon, DaemonClient, DaemonConfig};
    use at_searchspace::{build_search_space, Method, SearchSpace, SearchSpaceSpec};
    use at_workloads::{dedispersion, microhh};

    fn bench_dir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!("atss-daemon-bench-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create bench dir");
        dir
    }

    fn min_of<T>(runs: usize, mut f: impl FnMut() -> T) -> (Duration, T) {
        let mut best: Option<(Duration, T)> = None;
        for _ in 0..runs {
            let start = Instant::now();
            let value = f();
            let elapsed = start.elapsed();
            if best.as_ref().is_none_or(|(b, _)| elapsed < *b) {
                best = Some((elapsed, value));
            }
        }
        best.expect("at least one run")
    }

    fn assert_identical(local: &SearchSpace, served: &SearchSpace) {
        assert_eq!(local.arena(), served.arena(), "arenas differ");
        assert_eq!(local.name(), served.name());
        assert_eq!(local.len(), served.len());
    }

    /// The acceptance comparison: local cold construction vs. a warm
    /// daemon resolve + O(header) mmap attach, identity-checked.
    fn report_local_vs_daemon(socket: &PathBuf, specs: &[SearchSpaceSpec]) {
        println!("local cold construction vs. warm daemon resolve + mmap attach (min of 5):");
        for spec in specs {
            let (cold_time, (local, _)) = min_of(5, || {
                build_search_space(spec, Method::Optimized).expect("construction")
            });
            let mut client = DaemonClient::connect(socket).expect("connect");
            let (warm_time, attached) = min_of(5, || {
                let resolved = client
                    .resolve_spec(spec, Method::Optimized, false, |_| {})
                    .expect("resolve");
                resolved.attach().expect("attach")
            });
            assert_identical(&local, &attached.space);
            assert!(attached.report.is_zero_copy(), "warm attach must be mmap");
            let ratio = cold_time.as_secs_f64() / warm_time.as_secs_f64().max(1e-9);
            println!(
                "  {:<14} local-cold {:>10.3?}   daemon-warm {:>10.3?} ({:>7.1}x)   \
                 ({} configs, {} B on disk)",
                spec.name,
                cold_time,
                warm_time,
                ratio,
                attached.space.len(),
                attached.info.file_bytes,
            );
        }
    }

    fn bench_daemon(c: &mut Criterion) {
        let base = bench_dir();
        let socket = base.join("atssd.sock");
        let daemon =
            Daemon::bind(DaemonConfig::new(&socket, base.join("cache"))).expect("bind daemon");
        let handle = daemon.handle();
        let join = std::thread::spawn(move || {
            daemon.run().expect("daemon run");
        });

        // Warm the daemon: one cold resolve per workload, so every
        // criterion iteration below measures the warm path.
        let specs = vec![dedispersion().spec, microhh().spec];
        {
            let mut client = DaemonClient::connect(&socket).expect("connect");
            for spec in &specs {
                client
                    .resolve_spec(spec, Method::Optimized, false, |_| {})
                    .expect("warm-up resolve");
            }
        }

        report_local_vs_daemon(&socket, &specs);

        let mut group = c.benchmark_group("daemon/local_construct");
        group.sample_size(10);
        for spec in &specs {
            group.bench_with_input(
                BenchmarkId::new("optimized", &spec.name),
                spec,
                |b, spec| b.iter(|| build_search_space(spec, Method::Optimized).unwrap().0.len()),
            );
        }
        group.finish();

        let mut group = c.benchmark_group("daemon/warm_resolve");
        group.sample_size(50);
        for spec in &specs {
            let mut client = DaemonClient::connect(&socket).expect("connect");
            group.bench_with_input(BenchmarkId::new("socket", &spec.name), spec, |b, spec| {
                b.iter(|| {
                    client
                        .resolve_spec(spec, Method::Optimized, false, |_| {})
                        .unwrap()
                        .rows
                })
            });
        }
        group.finish();

        let mut group = c.benchmark_group("daemon/warm_resolve_attach");
        group.sample_size(50);
        for spec in &specs {
            let mut client = DaemonClient::connect(&socket).expect("connect");
            group.bench_with_input(BenchmarkId::new("socket", &spec.name), spec, |b, spec| {
                b.iter(|| {
                    let resolved = client
                        .resolve_spec(spec, Method::Optimized, false, |_| {})
                        .unwrap();
                    resolved.attach().unwrap().space.len()
                })
            });
        }
        group.finish();

        let mut group = c.benchmark_group("daemon/connect_resolve_attach");
        group.sample_size(50);
        for spec in &specs {
            group.bench_with_input(BenchmarkId::new("socket", &spec.name), spec, |b, spec| {
                b.iter(|| {
                    let mut client = DaemonClient::connect(&socket).unwrap();
                    let resolved = client
                        .resolve_spec(spec, Method::Optimized, false, |_| {})
                        .unwrap();
                    resolved.attach().unwrap().space.len()
                })
            });
        }
        group.finish();

        handle.request_shutdown();
        join.join().expect("daemon thread");
        let _ = std::fs::remove_dir_all(&base);
    }

    criterion_group!(benches, bench_daemon);
}

#[cfg(unix)]
fn main() {
    unix_bench::benches();
}

#[cfg(not(unix))]
fn main() {}
