//! Construction-path benchmarks: time and peak transient allocation for all
//! six construction methods on real-world workloads.
//!
//! Complements `realworld.rs` (which tracks the paper's Figure 5 series) by
//! measuring what the streaming construction pipeline is specifically
//! responsible for: the *peak transient allocation* between the start of
//! `build_search_space` and the finished `SearchSpace`. A custom counting
//! global allocator reports the high-water mark of live heap bytes during
//! one instrumented construction per method; with the encoding sink this is
//! dominated by the `u32` arena itself rather than a decoded
//! `Vec<Vec<Value>>` copy of every solution.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use at_searchspace::builder::{build_search_space_with, BuildOptions};
use at_searchspace::{build_search_space, Method, SearchSpaceSpec, TunableParameter};
use at_workloads::{atf_prl, dedispersion, expdist};

/// Live/peak heap byte counters, updated by the global allocator.
static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// A [`System`]-backed allocator that tracks the high-water mark of live
/// heap bytes, so one instrumented run can report the peak transient
/// footprint of a construction.
struct CountingAllocator;

// SAFETY: delegates every allocation verbatim to `System`; the counters are
// monotonic atomics with no other side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            if new_size >= layout.size() {
                let grown = new_size - layout.size();
                let live = LIVE.fetch_add(grown, Ordering::Relaxed) + grown;
                PEAK.fetch_max(live, Ordering::Relaxed);
            } else {
                LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        new_ptr
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn workloads() -> Vec<SearchSpaceSpec> {
    vec![dedispersion().spec, atf_prl(2).spec]
}

/// The methods in evaluation order, with the quadratic blocking-clause
/// enumerator last (it dominates runtime).
const METHODS: [Method; 6] = [
    Method::BruteForce,
    Method::Original,
    Method::Optimized,
    Method::ParallelOptimized,
    Method::ChainOfTrees,
    Method::BlockingClause,
];

/// One instrumented construction per method/workload: report the peak
/// transient heap allocation above the pre-call baseline, alongside the
/// retained size of the finished space.
fn report_peak_allocation() {
    println!("construction peak transient allocation (one instrumented run each):");
    for spec in workloads() {
        for method in METHODS {
            let baseline = LIVE.load(Ordering::Relaxed);
            PEAK.store(baseline, Ordering::Relaxed);
            let (space, report) = build_search_space(&spec, method).expect("construction");
            let peak = PEAK.load(Ordering::Relaxed).saturating_sub(baseline);
            let arena_bytes = space.len() * space.num_params() * std::mem::size_of::<u32>();
            println!(
                "  {:<14} {:<20} peak {:>12} B   arena {:>10} B   {} configs in {:.3?}",
                spec.name,
                method.label(),
                peak,
                arena_bytes,
                report.num_valid,
                report.duration,
            );
        }
    }
}

fn bench_construction(c: &mut Criterion) {
    report_peak_allocation();

    let mut group = c.benchmark_group("construction/methods");
    group.sample_size(10);
    for spec in workloads() {
        for method in METHODS {
            if method == Method::BlockingClause {
                continue; // benched separately: one run costs seconds
            }
            group.bench_with_input(
                BenchmarkId::new(method.label(), &spec.name),
                &spec,
                |b, spec| b.iter(|| build_search_space(spec, method).unwrap().0.len()),
            );
        }
    }
    group.finish();

    let mut group = c.benchmark_group("construction/blocking_clause");
    group.sample_size(2);
    for spec in workloads() {
        group.bench_with_input(
            BenchmarkId::new(Method::BlockingClause.label(), &spec.name),
            &spec,
            |b, spec| {
                b.iter(|| {
                    build_search_space(spec, Method::BlockingClause)
                        .unwrap()
                        .0
                        .len()
                })
            },
        );
    }
    group.finish();

    // Cold construction vs. a warm ATSS load of the persisted space: the
    // `at_store` promise is that once a space has been solved, every later
    // process pays the load, not the solve (`benches/store.rs` has the full
    // persistence-path suite and the acceptance ratio printout).
    let mut group = c.benchmark_group("construction/warm_load");
    group.sample_size(20);
    let dir = std::env::temp_dir().join("atss-construction-bench");
    std::fs::create_dir_all(&dir).expect("create bench dir");
    for spec in workloads() {
        let (space, _) = build_search_space(&spec, Method::Optimized).expect("construction");
        let path = dir.join(format!("{}.atss", spec.name));
        at_store::write_space_to_path(&space, &path).expect("persist");
        group.bench_with_input(
            BenchmarkId::new("atss-load", &spec.name),
            &path,
            |b, path| b.iter(|| at_store::read_space_from_path(path).unwrap().0.len()),
        );
    }
    group.finish();

    // Analyzer-driven domain pre-pruning: the at_check contract is a
    // *smaller solve for the identical space*. Assert the identity here —
    // byte-for-byte arena equality — then time both variants on specs
    // where the analyzer finds prunable values (expdist: 1, prl-8x8: 8
    // across 2 parameters, and a synthetic spec whose membership
    // restrictions kill 80% of two domains — the brute-force enumerator
    // pays for every dead tuple, so pruning shrinks its product ~25×).
    let mut group = c.benchmark_group("construction/pruning");
    group.sample_size(10);
    for (spec, method) in [
        (expdist().spec, Method::Optimized),
        (atf_prl(8).spec, Method::Optimized),
        (prunable_synthetic(), Method::BruteForce),
    ] {
        let prune = BuildOptions {
            prune: true,
            ..Default::default()
        };
        let (plain, plain_report) = build_search_space(&spec, method).expect("construction");
        let (pruned, pruned_report) =
            build_search_space_with(&spec, method, prune).expect("pruned construction");
        assert_eq!(
            plain.arena(),
            pruned.arena(),
            "{}: pre-pruning must not change the constructed space",
            spec.name
        );
        println!(
            "  {:<20} {:<12} pruning: {} configs, solve {:.3?} plain vs {:.3?} pruned",
            spec.name,
            method.label(),
            plain_report.num_valid,
            plain_report.duration,
            pruned_report.duration,
        );
        group.bench_with_input(
            BenchmarkId::new(format!("plain-{}", method.label()), &spec.name),
            &spec,
            |b, spec| b.iter(|| build_search_space(spec, method).unwrap().0.len()),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("pruned-{}", method.label()), &spec.name),
            &spec,
            |b, spec| {
                b.iter(|| {
                    build_search_space_with(spec, method, prune)
                        .unwrap()
                        .0
                        .len()
                })
            },
        );
    }
    group.finish();
}

/// A spec built to have a large prunable fraction: the membership
/// restrictions support only 4 of 20 values of `a` and `b`, so analyzer
/// pre-pruning cuts the Cartesian product from 160 000 to 6 400 tuples
/// before the brute-force enumerator ever sees it.
fn prunable_synthetic() -> SearchSpaceSpec {
    SearchSpaceSpec::new("synthetic-prunable")
        .with_param(TunableParameter::ints("a", 1..=20))
        .with_param(TunableParameter::ints("b", 1..=20))
        .with_param(TunableParameter::ints("c", 1..=20))
        .with_param(TunableParameter::ints("d", 1..=20))
        .with_expr("a in [2, 4, 8, 16]")
        .with_expr("b in [2, 4, 8, 16]")
        .with_expr("a * b <= c * d")
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
