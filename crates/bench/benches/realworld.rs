//! Criterion benchmarks behind Figure 5 and Table 2: construction time per
//! method on the (smaller) real-world search spaces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use at_searchspace::{build_search_space, Method};
use at_workloads::{atf_prl, dedispersion, gemm, microhh};

fn bench_realworld(c: &mut Criterion) {
    let workloads = vec![dedispersion(), gemm(), microhh(), atf_prl(2)];
    let mut group = c.benchmark_group("figure5/realworld_construction");
    group.sample_size(10);
    for workload in &workloads {
        for method in [
            Method::Optimized,
            Method::ParallelOptimized,
            Method::ChainOfTrees,
        ] {
            group.bench_with_input(
                BenchmarkId::new(method.label(), &workload.spec.name),
                &workload.spec,
                |b, spec| b.iter(|| build_search_space(spec, method).unwrap().0.len()),
            );
        }
    }
    group.finish();

    // the brute-force baselines only on the smallest space to keep bench runtime sane
    let dedisp = dedispersion();
    let mut group = c.benchmark_group("figure5/realworld_bruteforce_baseline");
    group.sample_size(10);
    group.bench_function("brute-force/Dedispersion", |b| {
        b.iter(|| {
            build_search_space(&dedisp.spec, Method::BruteForce)
                .unwrap()
                .0
                .len()
        })
    });
    group.bench_function("original/Dedispersion", |b| {
        b.iter(|| {
            build_search_space(&dedisp.spec, Method::Original)
                .unwrap()
                .0
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_realworld);
criterion_main!(benches);
