//! Criterion benchmarks behind Figures 3 and 4: construction time per method
//! on representative synthetic search spaces of increasing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use at_searchspace::{build_search_space, Method};
use at_workloads::{generate, SyntheticConfig};

fn bench_synthetic_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure3/synthetic_construction");
    group.sample_size(10);
    for &target in &[10_000u64, 100_000, 1_000_000] {
        let spec = generate(SyntheticConfig {
            dimensions: 4,
            target_cartesian_size: target,
            num_constraints: 3,
            seed: 42,
        });
        for method in [
            Method::BruteForce,
            Method::Original,
            Method::Optimized,
            Method::ParallelOptimized,
            Method::ChainOfTrees,
        ] {
            group.bench_with_input(
                BenchmarkId::new(method.label(), target),
                &spec,
                |b, spec| b.iter(|| build_search_space(spec, method).unwrap().0.len()),
            );
        }
    }
    group.finish();
}

fn bench_blocking_clause_reduced(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure4/blocking_clause_reduced");
    group.sample_size(10);
    let spec = generate(SyntheticConfig {
        dimensions: 3,
        target_cartesian_size: 1_000,
        num_constraints: 2,
        seed: 7,
    });
    for method in [
        Method::BlockingClause,
        Method::BruteForce,
        Method::Optimized,
    ] {
        group.bench_function(method.label(), |b| {
            b.iter(|| build_search_space(&spec, method).unwrap().0.len())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_synthetic_scaling,
    bench_blocking_clause_reduced
);
criterion_main!(benches);
