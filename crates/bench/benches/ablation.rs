//! Ablation study: how much each individual optimization of Section 4.3
//! contributes, measured on the GEMM search space.
//!
//! * variable ordering (Algorithm 1's `SortVariables`)
//! * domain preprocessing by specific constraints
//! * forward checking
//! * constraint decomposition + specific-constraint recognition (the parser)
//! * AC-3 generalized arc consistency (an optional extra pass, off by default)

use criterion::{criterion_group, criterion_main, Criterion};

use at_csp::OptimizedSolverConfig;
use at_searchspace::{build_search_space_with, BuildOptions, Method, RestrictionLowering};
use at_workloads::gemm;

fn bench_ablation(c: &mut Criterion) {
    let spec = gemm().spec;
    let mut group = c.benchmark_group("ablation/gemm");
    group.sample_size(10);

    let configs: Vec<(&str, BuildOptions)> = vec![
        ("full", BuildOptions::default()),
        (
            "no-variable-ordering",
            BuildOptions {
                solver_config: Some(OptimizedSolverConfig {
                    variable_ordering: false,
                    ..Default::default()
                }),
                ..Default::default()
            },
        ),
        (
            "no-preprocessing",
            BuildOptions {
                solver_config: Some(OptimizedSolverConfig {
                    preprocess: false,
                    ..Default::default()
                }),
                ..Default::default()
            },
        ),
        (
            "no-forward-checking",
            BuildOptions {
                solver_config: Some(OptimizedSolverConfig {
                    forward_check: false,
                    ..Default::default()
                }),
                ..Default::default()
            },
        ),
        (
            "no-parser-generic-lowering",
            BuildOptions {
                lowering: Some(RestrictionLowering::Generic),
                ..Default::default()
            },
        ),
        (
            "with-arc-consistency",
            BuildOptions {
                solver_config: Some(OptimizedSolverConfig {
                    arc_consistency: true,
                    ..Default::default()
                }),
                ..Default::default()
            },
        ),
    ];

    for (name, options) in configs {
        group.bench_function(name, |b| {
            b.iter(|| {
                build_search_space_with(&spec, Method::Optimized, options)
                    .unwrap()
                    .0
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
