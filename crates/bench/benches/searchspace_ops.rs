//! Criterion benchmarks of the resolved-search-space operations that
//! optimization algorithms rely on (Section 4.4): hash lookups (both the
//! value-row path and the encoded-row fast path), neighbor queries, sampling
//! and the single-pass arena statistics.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use at_searchspace::{
    build_search_space, latin_hypercube_sample, neighbors, sample_indices, ConfigId, Method,
    NeighborIndex, NeighborMethod,
};
use at_workloads::dedispersion;

fn bench_searchspace_ops(c: &mut Criterion) {
    let (space, _) = build_search_space(&dedispersion().spec, Method::Optimized).unwrap();
    let index = NeighborIndex::build(&space);
    let mid = ConfigId::from_index(space.len() / 2);
    let some_config = space.view(mid).unwrap().to_vec();
    let some_codes = space.codes_of(mid).unwrap().to_vec();

    let mut group = c.benchmark_group("searchspace_ops/dedispersion");
    group.bench_function("contains", |b| b.iter(|| space.contains(&some_config)));
    group.bench_function("index_of", |b| b.iter(|| space.index_of(&some_config)));
    group.bench_function("index_of_codes", |b| {
        b.iter(|| space.index_of_codes(&some_codes))
    });
    group.bench_function("hamming_neighbors_indexed", |b| {
        b.iter(|| neighbors(&space, mid, NeighborMethod::Hamming, Some(&index)).len())
    });
    group.bench_function("adjacent_neighbors_scan", |b| {
        b.iter(|| neighbors(&space, mid, NeighborMethod::Adjacent, None).len())
    });
    group.bench_function("random_sample_100", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            sample_indices(&space, 100, &mut rng).len()
        })
    });
    group.bench_function("latin_hypercube_sample_32", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            latin_hypercube_sample(&space, 32, &mut rng).len()
        })
    });
    group.bench_function("true_bounds", |b| b.iter(|| space.true_bounds().len()));
    group.bench_function("occurring_values", |b| {
        b.iter(|| space.occurring_values().len())
    });
    group.finish();

    let mut group = c.benchmark_group("searchspace_ops/neighbor_index_build");
    group.sample_size(10);
    group.bench_function("dedispersion", |b| {
        b.iter(|| {
            NeighborIndex::build(&space)
                .hamming_neighbors(&space, ConfigId::from_index(0))
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_searchspace_ops);
criterion_main!(benches);
