//! Shared experiment drivers used by the figure binaries.

use std::time::Duration;

use at_searchspace::{Method, SearchSpaceSpec};
use at_tuner::{tune, RandomSampling};
use at_workloads::performance_model_for;

use crate::{cli, format_seconds, header, measure};

/// Run the end-to-end tuning experiment behind Figures 6 and 7: measure the
/// construction time of each method, then run budgeted random-sampling tuning
/// on a virtual clock with the construction time charged up front, and print
/// the mean best-found runtime at fractions of the budget.
pub fn run_tuning_experiment(figure: &str, spec: &SearchSpaceSpec, seed: u64) {
    let repeats = cli::opt_usize("repeats", 10);
    let methods = [Method::BruteForce, Method::Original, Method::Optimized];
    println!(
        "{figure} — best configuration found over a tuning run of `{}` using random sampling, {repeats} repeats",
        spec.name
    );

    // Measure construction time per method once.
    header("construction times");
    let mut constructions = Vec::new();
    let mut slowest = 0.0f64;
    let mut space_opt = None;
    for &method in &methods {
        let (m, space, _) = measure(spec, method);
        println!("  {:<14} {}", method.label(), format_seconds(m.seconds));
        slowest = slowest.max(m.seconds);
        if method == Method::Optimized {
            space_opt = Some(space);
        }
        constructions.push((method, m.seconds));
    }
    let space = space_opt.expect("optimized space");

    // Budget: override or 3x the slowest construction (min 10 virtual seconds).
    let budget_s = cli::opt_f64("budget", (slowest * 3.0).max(10.0));
    let budget = Duration::from_secs_f64(budget_s);
    println!(
        "\nvirtual tuning budget: {} (the paper uses 30 minutes for Hotspot, 10 for GEMM)",
        format_seconds(budget_s)
    );

    let model = performance_model_for(&spec.name, &space, seed);
    let checkpoints = 10usize;

    header("mean best runtime (ms, lower is better) at fractions of the budget");
    print!("{:<16}", "method");
    for c in 1..=checkpoints {
        print!(" {:>9.0}%", c as f64 / checkpoints as f64 * 100.0);
    }
    println!();
    for (method, construction) in &constructions {
        let mut sums = vec![0.0f64; checkpoints];
        let mut counts = vec![0usize; checkpoints];
        for repeat in 0..repeats {
            let run = tune(
                &space,
                &model,
                &RandomSampling,
                budget,
                Duration::from_secs_f64(*construction),
                seed * 1000 + repeat as u64,
            );
            for c in 1..=checkpoints {
                let t = budget_s * 1000.0 * c as f64 / checkpoints as f64;
                if let Some(best) = run.best_at(t) {
                    sums[c - 1] += best;
                    counts[c - 1] += 1;
                }
            }
        }
        print!("{:<16}", method.label());
        for c in 0..checkpoints {
            if counts[c] == 0 {
                print!(" {:>10}", "-");
            } else {
                print!(" {:>10.3}", sums[c] / counts[c] as f64);
            }
        }
        println!();
    }
    println!(
        "\nA `-` entry means the search space construction had not finished at that point of \
         the budget, which is the effect the paper demonstrates: slow construction methods \
         start tuning late and end with a worse configuration."
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_searchspace::TunableParameter;

    #[test]
    fn tuning_experiment_runs_on_a_tiny_space() {
        let spec = SearchSpaceSpec::new("tiny")
            .with_param(TunableParameter::pow2("x", 5))
            .with_param(TunableParameter::pow2("y", 5))
            .with_expr("4 <= x * y <= 64");
        // smoke test: must not panic
        run_tuning_experiment("test", &spec, 1);
    }
}
