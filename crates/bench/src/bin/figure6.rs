//! Figure 6: impact of the construction method on an end-to-end Hotspot
//! tuning run.
//!
//! The paper tunes the Hotspot kernel for 30 minutes with random sampling,
//! repeated 10 times, using the three Python-based construction methods; the
//! time spent constructing the search space comes out of the tuning budget.
//! Here the construction times are measured for the Rust implementations and
//! the kernel is a deterministic simulated performance model on a virtual
//! clock. Because the Rust constructions are far faster than the Python ones,
//! the default budget is scaled to a multiple of the slowest measured
//! construction so the qualitative effect (slow construction ⇒ late start ⇒
//! worse best-found configuration) is preserved; pass `--budget <seconds>`
//! to override.
//!
//! Usage: `cargo run --release -p at_bench --bin figure6 [--repeats 10] [--budget 60]`

use at_bench::experiments::run_tuning_experiment;
use at_workloads::hotspot;

fn main() {
    run_tuning_experiment("Figure 6", &hotspot().spec, 6);
}
