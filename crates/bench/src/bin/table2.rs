//! Table 2: characteristics of the real-world search spaces.
//!
//! Prints the reconstructed spaces' Cartesian size, number of valid
//! configurations, parameter/constraint counts, average distinct parameters
//! per constraint, value-count range, percentage of valid configurations and
//! the closed-form average number of constraint evaluations required by brute
//! force — next to the values the paper reports.
//!
//! Usage: `cargo run --release -p at_bench --bin table2 [--full]`
//! (`--full` includes ATF PRL 8x8, which takes considerably longer)

use at_bench::{cli, format_seconds, header, measure};
use at_searchspace::{Method, SpaceCharacteristics};
use at_workloads::all_real_world;

fn main() {
    let full = cli::flag("full");
    println!("Table 2 — characteristics of the real-world search spaces");
    if !full {
        println!("(ATF PRL 8x8 skipped; pass --full to include it)");
    }

    header("measured");
    println!("{}", SpaceCharacteristics::table_header());
    let mut rows = Vec::new();
    for workload in all_real_world() {
        if !full && workload.spec.name == "ATF PRL 8x8" {
            continue;
        }
        let (m, space, _) = measure(&workload.spec, Method::Optimized);
        let characteristics = SpaceCharacteristics::compute(&workload.spec, &space);
        println!("{}", characteristics.table_row());
        rows.push((workload, characteristics, m));
    }

    header("paper-reported vs measured (Cartesian size / valid configurations)");
    println!(
        "{:<16} {:>16} {:>16} {:>14} {:>14} {:>12}",
        "Name", "paper Cartesian", "ours Cartesian", "paper valid", "ours valid", "build time"
    );
    for (workload, characteristics, m) in &rows {
        println!(
            "{:<16} {:>16} {:>16} {:>14} {:>14} {:>12}",
            workload.spec.name,
            workload.paper.cartesian_size,
            characteristics.cartesian_size,
            workload.paper.num_valid,
            characteristics.num_valid,
            format_seconds(m.seconds),
        );
    }
}
