//! Figure 5: search space construction performance on the real-world spaces.
//!
//! Reproduces the six panels: per-space construction time against (A) the
//! number of valid configurations, (B) the Cartesian size, (D) the fraction
//! of constrained configurations and (E) the number of tunable parameters,
//! with log-log regression slopes where meaningful; (C) the distribution of
//! times per method; and (F) the total construction time per method with the
//! speedups of the optimized method.
//!
//! Usage:
//!   `cargo run --release -p at_bench --bin figure5 [--full] [--skip-brute-force]`
//! `--full` includes ATF PRL 8x8 (large); brute force is always skipped for
//! PRL 8x8 unless `--prl8-brute-force` is passed as well.

use at_bench::{
    cli, format_seconds, header, loglog_regression, measure, quartiles, totals_per_method,
    Measurement,
};
use at_searchspace::Method;
use at_workloads::all_real_world;

fn main() {
    let full = cli::flag("full");
    let skip_brute_force = cli::flag("skip-brute-force");
    let prl8_brute_force = cli::flag("prl8-brute-force");
    println!("Figure 5 — construction performance on the real-world search spaces");
    if !full {
        println!("(ATF PRL 8x8 skipped; pass --full to include it)");
    }

    let base_methods = vec![
        Method::BruteForce,
        Method::Original,
        Method::Optimized,
        Method::ParallelOptimized,
        Method::ChainOfTrees,
    ];

    let mut measurements: Vec<Measurement> = Vec::new();
    let mut per_space: Vec<(String, f64, u128, usize)> = Vec::new(); // name, sparsity, cartesian, params
    header("per-space construction times");
    for workload in all_real_world() {
        let is_prl8 = workload.spec.name == "ATF PRL 8x8";
        if is_prl8 && !full {
            continue;
        }
        let mut methods = base_methods.clone();
        if skip_brute_force || (is_prl8 && !prl8_brute_force) {
            methods.retain(|m| *m != Method::BruteForce && *m != Method::Original);
        }
        println!("{}:", workload.spec.name);
        let mut valid = 0usize;
        for &method in &methods {
            let (m, space, _) = measure(&workload.spec, method);
            println!(
                "  {:<20} {:>12}   ({} valid configurations)",
                method.label(),
                format_seconds(m.seconds),
                m.num_valid
            );
            valid = space.len();
            measurements.push(m);
        }
        let spec_cartesian = workload.spec.cartesian_size();
        per_space.push((
            workload.spec.name.clone(),
            1.0 - valid as f64 / spec_cartesian as f64,
            spec_cartesian,
            workload.spec.num_params(),
        ));
    }

    header("A/B: scaling (log-log slope) against valid configurations and Cartesian size");
    println!(
        "{:<20} {:>16} {:>16}",
        "method", "slope vs valid", "slope vs Cartesian"
    );
    for &method in &base_methods {
        let of_method: Vec<&Measurement> =
            measurements.iter().filter(|m| m.method == method).collect();
        if of_method.len() < 2 {
            continue;
        }
        let times: Vec<f64> = of_method.iter().map(|m| m.seconds).collect();
        let valid: Vec<f64> = of_method
            .iter()
            .map(|m| m.num_valid.max(1) as f64)
            .collect();
        let cartesian: Vec<f64> = of_method.iter().map(|m| m.cartesian_size as f64).collect();
        let sv = loglog_regression(&valid, &times).map(|f| f.0);
        let sc = loglog_regression(&cartesian, &times).map(|f| f.0);
        println!(
            "{:<20} {:>16} {:>16}",
            method.label(),
            sv.map(|s| format!("{s:.3}")).unwrap_or_else(|| "-".into()),
            sc.map(|s| format!("{s:.3}")).unwrap_or_else(|| "-".into()),
        );
    }

    header("C: distribution of per-space times");
    for &method in &base_methods {
        let times: Vec<f64> = measurements
            .iter()
            .filter(|m| m.method == method)
            .map(|m| m.seconds)
            .collect();
        if let Some((min, q1, med, q3, max)) = quartiles(&times) {
            println!(
                "{:<20} min {:>10}  q1 {:>10}  median {:>10}  q3 {:>10}  max {:>10}",
                method.label(),
                format_seconds(min),
                format_seconds(q1),
                format_seconds(med),
                format_seconds(q3),
                format_seconds(max),
            );
        }
    }

    header("D/E: space characteristics (sparsity and number of parameters)");
    println!(
        "{:<16} {:>12} {:>16} {:>8}",
        "space", "sparsity", "Cartesian", "params"
    );
    for (name, sparsity, cartesian, params) in &per_space {
        println!("{name:<16} {sparsity:>12.4} {cartesian:>16} {params:>8}");
    }

    header("F: total construction time per method");
    let totals = totals_per_method(&measurements);
    let optimized_total = totals
        .iter()
        .find(|(m, _)| *m == Method::Optimized)
        .map(|(_, t)| *t)
        .unwrap_or(f64::NAN);
    for (method, total) in &totals {
        println!(
            "{:<20} {:>12}   ({:>9.1}x the optimized method)",
            method.label(),
            format_seconds(*total),
            total / optimized_total
        );
    }
    println!(
        "\nPaper reference (Figure 5F): optimized achieves ~20643x speedup over brute force, \
         ~44x over ATF and ~891x over pyATF; the optimized method is the only one that is \
         consistently sub-second."
    );
}
