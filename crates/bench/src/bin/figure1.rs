//! Figure 1: the optimization of a constraint via the parsing pipeline.
//!
//! Prints each stage of the pipeline for the paper's running example
//! `2 <= block_size_y <= 32 <= block_size_x * block_size_y <= 1024`
//! (or any constraint passed with `--constraint "<expr>"`): the parsed AST,
//! the constant-folded form, the decomposed conjuncts, and the recognised
//! specific constraints / compiled function constraints.
//!
//! Usage: `cargo run --release -p at_bench --bin figure1 [--constraint "<expr>"]`

use at_bench::{cli, header};
use at_expr::{decompose, fold, parse, parse_restriction, recognize};

fn main() {
    let source = cli::opt_string("constraint").unwrap_or_else(|| {
        "2 <= block_size_y <= 32 <= block_size_x * block_size_y <= 1024".to_string()
    });
    println!("Figure 1 — parsing pipeline for:\n  {source}");

    header("step 1: parse + constant folding");
    let parsed = parse(&source).expect("parse");
    let folded = fold(parsed.clone());
    println!("  variables: {:?}", folded.variables());
    println!("  folded AST: {folded:?}");

    header("step 2: decomposition into minimal-scope conjuncts");
    let pieces = decompose(folded);
    for (i, piece) in pieces.iter().enumerate() {
        println!("  conjunct {}: vars {:?}", i + 1, piece.variables());
    }

    header("step 3: specific-constraint recognition");
    for (i, piece) in pieces.iter().enumerate() {
        match recognize(piece) {
            Some(r) => println!("  conjunct {}: {} over {:?}", i + 1, r.description, r.scope),
            None => println!("  conjunct {}: compiled Function constraint", i + 1),
        }
    }

    header("resulting constraint set");
    let restriction = parse_restriction(&source).expect("pipeline");
    for c in &restriction.constraints {
        println!("  {:<16} scope {:?}", c.constraint.kind(), c.scope);
    }
    println!(
        "\n{} of {} constraints are specific (preprocessable) constraints.",
        restriction.specific_count(),
        restriction.constraints.len()
    );
}
