//! Figure 3: search space construction performance on the synthetic tests.
//!
//! Reproduces the three panels for the methods brute-force, original,
//! optimized, parallel-optimized and chain-of-trees (standing in for both ATF
//! and pyATF):
//!
//! * (A) per-space construction time vs. number of valid configurations with
//!   a log-log regression slope per method,
//! * (B) a kernel density estimate of the per-space times,
//! * (C) the total time per method and the speedups of the optimized method.
//!
//! Usage: `cargo run --release -p at_bench --bin figure3 [--count 78] [--seed 42] [--skip-brute-force]`

use at_bench::{
    cli, crossover_point, format_seconds, header, log_kde, loglog_regression, measure_all,
    totals_per_method, Measurement,
};
use at_searchspace::Method;
use at_workloads::{generate, synthetic_suite};

fn main() {
    let count = cli::opt_usize("count", 78);
    let seed = cli::opt_u64("seed", 42);
    let mut methods = vec![
        Method::BruteForce,
        Method::Original,
        Method::Optimized,
        Method::ParallelOptimized,
        Method::ChainOfTrees,
    ];
    if cli::flag("skip-brute-force") {
        methods.retain(|m| *m != Method::BruteForce);
    }
    println!(
        "Figure 3 — construction performance on {count} synthetic spaces (seed {seed}), methods: {}",
        methods.iter().map(|m| m.label()).collect::<Vec<_>>().join(", ")
    );

    let suite = synthetic_suite(count, seed);
    let mut measurements: Vec<Measurement> = Vec::new();
    for (i, config) in suite.iter().enumerate() {
        let spec = generate(*config);
        let ms = measure_all(&spec, &methods);
        if i % 10 == 0 {
            eprintln!("  [{}/{}] {}", i + 1, suite.len(), spec.name);
        }
        measurements.extend(ms);
    }

    // Panel A: per-space times and scaling slopes
    header("A: time vs number of valid configurations (log-log regression)");
    println!(
        "{:<20} {:>8} {:>12} {:>8}",
        "method", "slope", "intercept", "R^2"
    );
    let mut fits: Vec<(Method, (f64, f64))> = Vec::new();
    for &method in &methods {
        let xs: Vec<f64> = measurements
            .iter()
            .filter(|m| m.method == method)
            .map(|m| m.num_valid.max(1) as f64)
            .collect();
        let ys: Vec<f64> = measurements
            .iter()
            .filter(|m| m.method == method)
            .map(|m| m.seconds)
            .collect();
        if let Some((slope, intercept, r2)) = loglog_regression(&xs, &ys) {
            println!(
                "{:<20} {:>8.3} {:>12.3} {:>8.3}",
                method.label(),
                slope,
                intercept,
                r2
            );
            fits.push((method, (slope, intercept)));
        }
    }
    if let (Some(opt), Some(bf)) = (
        fits.iter().find(|(m, _)| *m == Method::Optimized),
        fits.iter().find(|(m, _)| *m == Method::BruteForce),
    ) {
        if let Some(x) = crossover_point(bf.1, opt.1) {
            println!(
                "  projected crossover optimized vs brute-force at ~{x:.3e} valid configurations"
            );
        }
    }

    // Panel B: KDE of per-space times
    header("B: distribution of per-space construction times (log10 seconds)");
    for &method in &methods {
        let times: Vec<f64> = measurements
            .iter()
            .filter(|m| m.method == method)
            .map(|m| m.seconds)
            .collect();
        let (grid, density) = log_kde(&times, 9);
        let summary: Vec<String> = grid
            .iter()
            .zip(density.iter())
            .map(|(x, d)| format!("{x:.1}:{d:.2}"))
            .collect();
        println!("{:<20} {}", method.label(), summary.join("  "));
    }

    // Panel C: totals and speedups
    header("C: total construction time over all synthetic spaces");
    let totals = totals_per_method(&measurements);
    let optimized_total = totals
        .iter()
        .find(|(m, _)| *m == Method::Optimized)
        .map(|(_, t)| *t)
        .unwrap_or(f64::NAN);
    for (method, total) in &totals {
        let speedup = total / optimized_total;
        println!(
            "{:<20} {:>12}   ({:>8.1}x the optimized method)",
            method.label(),
            format_seconds(*total),
            speedup
        );
    }
    println!(
        "\nPaper reference (Figure 3C): optimized is 96x faster than brute force, 16x faster \
         than ATF and 2547x faster than pyATF on the synthetic suite."
    );
}
