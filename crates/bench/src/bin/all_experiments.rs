//! Run every experiment binary's workload in a single (quick) pass.
//!
//! This is a convenience for regenerating all evaluation output at once with
//! reduced problem counts; the individual `figure*` / `table2` binaries
//! expose the full-fidelity runs and their options.
//!
//! Usage: `cargo run --release -p at_bench --bin all_experiments`

use std::process::Command;

fn run(bin: &str, args: &[&str]) {
    println!(
        "\n################ {bin} {} ################",
        args.join(" ")
    );
    let status = Command::new(
        std::env::current_exe()
            .expect("self path")
            .parent()
            .expect("dir")
            .join(bin),
    )
    .args(args)
    .status();
    match status {
        Ok(s) if s.success() => {}
        Ok(s) => eprintln!("{bin} exited with {s}"),
        Err(e) => {
            eprintln!("failed to launch {bin}: {e} (run `cargo build --release -p at_bench` first)")
        }
    }
}

fn main() {
    run("figure2", &["--count", "30"]);
    run("figure3", &["--count", "30"]);
    run("figure4", &["--count", "10"]);
    run("table2", &[]);
    run("figure5", &[]);
    run("figure6", &["--repeats", "3"]);
    run("figure7", &["--repeats", "3"]);
}
