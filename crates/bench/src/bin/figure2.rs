//! Figure 2: density of three characteristics of the synthetic search spaces.
//!
//! The paper shows violin plots of (A) the Cartesian size, (B) the number of
//! valid configurations, and (C) the fraction of constrained (invalid)
//! configurations over the 78 synthetic spaces. This binary regenerates the
//! underlying distributions and prints their quartile summaries and a textual
//! kernel density estimate.
//!
//! Usage: `cargo run --release -p at_bench --bin figure2 [--count 78] [--seed 42]`

use at_bench::{cli, header, log_kde, quartiles};
use at_searchspace::{build_search_space, Method};
use at_workloads::{generate, synthetic_suite};

fn print_distribution(title: &str, values: &[f64], log_scale: bool) {
    header(title);
    let (min, q1, median, q3, max) = quartiles(values).expect("non-empty");
    println!("  min     = {min:>14.4}");
    println!("  q1      = {q1:>14.4}");
    println!("  median  = {median:>14.4}");
    println!("  q3      = {q3:>14.4}");
    println!("  max     = {max:>14.4}");
    if log_scale {
        let (grid, density) = log_kde(values, 40);
        let peak = density.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
        println!("  density over log10(value):");
        for (x, d) in grid.iter().zip(density.iter()) {
            let bars = ((d / peak) * 50.0).round() as usize;
            println!("  {:>7.2} | {}", x, "#".repeat(bars));
        }
    }
}

fn main() {
    let count = cli::opt_usize("count", 78);
    let seed = cli::opt_u64("seed", 42);
    println!("Figure 2 — characteristics of {count} synthetic search spaces (seed {seed})");

    let suite = synthetic_suite(count, seed);
    let mut cartesian = Vec::with_capacity(suite.len());
    let mut valid = Vec::with_capacity(suite.len());
    let mut sparsity = Vec::with_capacity(suite.len());
    for config in &suite {
        let spec = generate(*config);
        let (space, report) = build_search_space(&spec, Method::Optimized).expect("construction");
        cartesian.push(report.cartesian_size as f64);
        valid.push(space.len().max(1) as f64);
        sparsity.push(space.sparsity());
    }

    print_distribution("A: Cartesian size", &cartesian, true);
    print_distribution("B: number of valid configurations", &valid, true);
    print_distribution(
        "C: fraction of constrained configurations",
        &sparsity,
        false,
    );

    let avg_ratio: f64 = valid
        .iter()
        .zip(cartesian.iter())
        .map(|(v, c)| v / c)
        .sum::<f64>()
        / valid.len() as f64;
    header("Summary");
    println!(
        "  average valid/Cartesian ratio = {:.3} (the paper reports valid configurations \
         on average one order of magnitude below the Cartesian size)",
        avg_ratio
    );
}
