//! Figure 7: impact of the construction method on an end-to-end GEMM tuning
//! run (the companion experiment to Figure 6; the paper scales the budget by
//! the ratio of valid configurations between GEMM and Hotspot, from 30 down
//! to 10 minutes).
//!
//! Usage: `cargo run --release -p at_bench --bin figure7 [--repeats 10] [--budget 20]`

use at_bench::experiments::run_tuning_experiment;
use at_workloads::gemm;

fn main() {
    run_tuning_experiment("Figure 7", &gemm().spec, 7);
}
