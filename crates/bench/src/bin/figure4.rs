//! Figure 4: construction performance of a one-solution-at-a-time solver
//! (PySMT + Z3 in the paper, the blocking-clause enumerator here) compared to
//! brute force and the optimized solver, on synthetic spaces reduced by one
//! order of magnitude.
//!
//! Usage: `cargo run --release -p at_bench --bin figure4 [--count 20] [--seed 42]`

use at_bench::{cli, format_seconds, header, loglog_regression, measure_all, totals_per_method};
use at_searchspace::Method;
use at_workloads::{generate, reduced_synthetic_suite};

fn main() {
    let count = cli::opt_usize("count", 20);
    let seed = cli::opt_u64("seed", 42);
    let methods = [
        Method::BlockingClause,
        Method::BruteForce,
        Method::Optimized,
    ];
    println!(
        "Figure 4 — blocking-clause enumeration vs brute force vs optimized on {count} reduced synthetic spaces"
    );

    let suite = reduced_synthetic_suite(count, seed);
    let mut measurements = Vec::new();
    header("per-space construction times");
    println!(
        "{:<28} {:>10} {:>14} {:>14} {:>14}",
        "space", "valid", "blocking", "brute-force", "optimized"
    );
    for config in &suite {
        let spec = generate(*config);
        let ms = measure_all(&spec, &methods);
        println!(
            "{:<28} {:>10} {:>14} {:>14} {:>14}",
            spec.name,
            ms[0].num_valid,
            format_seconds(ms[0].seconds),
            format_seconds(ms[1].seconds),
            format_seconds(ms[2].seconds),
        );
        measurements.extend(ms);
    }

    header("scaling in the number of valid configurations (log-log slope)");
    for &method in &methods {
        let xs: Vec<f64> = measurements
            .iter()
            .filter(|m| m.method == method)
            .map(|m| m.num_valid.max(1) as f64)
            .collect();
        let ys: Vec<f64> = measurements
            .iter()
            .filter(|m| m.method == method)
            .map(|m| m.seconds)
            .collect();
        if let Some((slope, _, r2)) = loglog_regression(&xs, &ys) {
            println!(
                "{:<20} slope {:>6.3}  R^2 {:>6.3}",
                method.label(),
                slope,
                r2
            );
        }
    }
    println!(
        "\nPaper reference: PySMT exhibits superlinear scaling (slope 1.090) versus 0.649 for \
         the optimized method, and is orders of magnitude slower than brute force."
    );

    header("total time");
    for (method, total) in totals_per_method(&measurements) {
        println!("{:<20} {}", method.label(), format_seconds(total));
    }
}
