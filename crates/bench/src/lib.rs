//! # at-bench — the evaluation harness
//!
//! Shared utilities for the figure/table binaries and the Criterion benches:
//! timed construction runs across methods, log-log regression (the scaling
//! slopes of Figures 3–5), kernel density estimation (the KDE panels), and
//! simple textual table/summary formatting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

use at_searchspace::{build_search_space, BuildReport, Method, SearchSpace, SearchSpaceSpec};

pub mod experiments;

/// One timed construction measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Name of the search space.
    pub space: String,
    /// Construction method.
    pub method: Method,
    /// Wall-clock construction time in seconds.
    pub seconds: f64,
    /// Number of valid configurations found.
    pub num_valid: usize,
    /// Cartesian size of the unconstrained space.
    pub cartesian_size: u128,
}

/// Construct `spec` with `method`, returning the measurement and the space.
pub fn measure(spec: &SearchSpaceSpec, method: Method) -> (Measurement, SearchSpace, BuildReport) {
    let start = Instant::now();
    let (space, report) = build_search_space(spec, method).expect("construction failed");
    let seconds = start.elapsed().as_secs_f64();
    (
        Measurement {
            space: spec.name.clone(),
            method,
            seconds,
            num_valid: space.len(),
            cartesian_size: report.cartesian_size,
        },
        space,
        report,
    )
}

/// Construct `spec` with each of `methods`, validating that all of them find
/// the same number of configurations as the first one.
pub fn measure_all(spec: &SearchSpaceSpec, methods: &[Method]) -> Vec<Measurement> {
    let mut out = Vec::with_capacity(methods.len());
    let mut reference: Option<usize> = None;
    for &method in methods {
        let (m, space, _) = measure(spec, method);
        match reference {
            None => reference = Some(space.len()),
            Some(expected) => assert_eq!(
                space.len(),
                expected,
                "{}: {} disagrees on the number of valid configurations",
                spec.name,
                method.label()
            ),
        }
        out.push(m);
    }
    out
}

/// Ordinary least squares on `log10(x)` vs `log10(y)`.
/// Returns `(slope, intercept, r_squared)`. Pairs with non-positive values
/// are skipped.
pub fn loglog_regression(xs: &[f64], ys: &[f64]) -> Option<(f64, f64, f64)> {
    let pts: Vec<(f64, f64)> = xs
        .iter()
        .zip(ys.iter())
        .filter(|(&x, &y)| x > 0.0 && y > 0.0)
        .map(|(&x, &y)| (x.log10(), y.log10()))
        .collect();
    if pts.len() < 2 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = pts.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = pts
        .iter()
        .map(|p| (p.1 - (slope * p.0 + intercept)).powi(2))
        .sum();
    let r2 = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };
    Some((slope, intercept, r2))
}

/// The valid-configuration count at which method `a` (with regression `ra`)
/// would be overtaken by method `b` (with regression `rb`), i.e. where the
/// two power-law fits cross. Returns `None` when the fits never cross for
/// positive sizes.
pub fn crossover_point(ra: (f64, f64), rb: (f64, f64)) -> Option<f64> {
    let (slope_a, int_a) = ra;
    let (slope_b, int_b) = rb;
    if (slope_a - slope_b).abs() < 1e-12 {
        return None;
    }
    let log_x = (int_b - int_a) / (slope_a - slope_b);
    Some(10f64.powf(log_x))
}

/// Gaussian kernel density estimate of `values` (in log10 space) evaluated on
/// `grid_points` points spanning the data range. Returns `(grid, density)`.
pub fn log_kde(values: &[f64], grid_points: usize) -> (Vec<f64>, Vec<f64>) {
    let logs: Vec<f64> = values
        .iter()
        .filter(|&&v| v > 0.0)
        .map(|v| v.log10())
        .collect();
    if logs.is_empty() || grid_points == 0 {
        return (Vec::new(), Vec::new());
    }
    let min = logs.iter().cloned().fold(f64::INFINITY, f64::min) - 0.5;
    let max = logs.iter().cloned().fold(f64::NEG_INFINITY, f64::max) + 0.5;
    let n = logs.len() as f64;
    let mean = logs.iter().sum::<f64>() / n;
    let var = logs.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n.max(1.0);
    // Silverman's rule of thumb
    let bandwidth = (1.06 * var.sqrt() * n.powf(-0.2)).max(1e-3);
    let grid: Vec<f64> = (0..grid_points)
        .map(|i| min + (max - min) * i as f64 / (grid_points - 1).max(1) as f64)
        .collect();
    let density: Vec<f64> = grid
        .iter()
        .map(|&x| {
            logs.iter()
                .map(|&v| {
                    let z = (x - v) / bandwidth;
                    (-0.5 * z * z).exp()
                })
                .sum::<f64>()
                / (n * bandwidth * (2.0 * std::f64::consts::PI).sqrt())
        })
        .collect();
    (grid, density)
}

/// Quartile summary of a sample: `(min, q1, median, q3, max)`.
pub fn quartiles(values: &[f64]) -> Option<(f64, f64, f64, f64, f64)> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let q = |f: f64| -> f64 {
        let idx = f * (sorted.len() - 1) as f64;
        let lo = idx.floor() as usize;
        let hi = idx.ceil() as usize;
        let frac = idx - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    };
    Some((
        sorted[0],
        q(0.25),
        q(0.5),
        q(0.75),
        sorted[sorted.len() - 1],
    ))
}

/// Geometric mean of positive values.
pub fn geometric_mean(values: &[f64]) -> f64 {
    let positive: Vec<f64> = values.iter().copied().filter(|&v| v > 0.0).collect();
    if positive.is_empty() {
        return 0.0;
    }
    (positive.iter().map(|v| v.ln()).sum::<f64>() / positive.len() as f64).exp()
}

/// Sum of the construction times per method over a set of measurements, as
/// `(method, total seconds)` pairs ordered by total time.
pub fn totals_per_method(measurements: &[Measurement]) -> Vec<(Method, f64)> {
    let mut totals: Vec<(Method, f64)> = Vec::new();
    for m in measurements {
        match totals.iter_mut().find(|(method, _)| *method == m.method) {
            Some(entry) => entry.1 += m.seconds,
            None => totals.push((m.method, m.seconds)),
        }
    }
    totals.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"));
    totals
}

/// Format a duration in seconds with an adaptive unit.
pub fn format_seconds(seconds: f64) -> String {
    if seconds < 1e-3 {
        format!("{:.1} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else if seconds < 120.0 {
        format!("{:.2} s", seconds)
    } else {
        format!("{:.1} min", seconds / 60.0)
    }
}

/// Print a section header for the experiment binaries.
pub fn header(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Minimal command line helpers shared by the figure/table binaries.
pub mod cli {
    /// True when `--name` was passed.
    pub fn flag(name: &str) -> bool {
        std::env::args().any(|a| a == format!("--{name}"))
    }

    /// The value of `--name <value>` parsed as `usize`, or `default`.
    pub fn opt_usize(name: &str, default: usize) -> usize {
        opt_string(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// The value of `--name <value>` parsed as `f64`, or `default`.
    pub fn opt_f64(name: &str, default: f64) -> f64 {
        opt_string(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// The value of `--name <value>` parsed as `u64`, or `default`.
    pub fn opt_u64(name: &str, default: u64) -> u64 {
        opt_string(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// The raw value of `--name <value>`, if present.
    pub fn opt_string(name: &str) -> Option<String> {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == &format!("--{name}"))
            .and_then(|i| args.get(i + 1).cloned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_searchspace::{SearchSpaceSpec, TunableParameter};

    fn tiny_spec() -> SearchSpaceSpec {
        SearchSpaceSpec::new("tiny")
            .with_param(TunableParameter::pow2("x", 5))
            .with_param(TunableParameter::pow2("y", 5))
            .with_expr("4 <= x * y <= 64")
    }

    #[test]
    fn measure_all_agrees_across_methods() {
        let spec = tiny_spec();
        let ms = measure_all(
            &spec,
            &[Method::BruteForce, Method::Optimized, Method::ChainOfTrees],
        );
        assert_eq!(ms.len(), 3);
        assert!(ms.iter().all(|m| m.num_valid == ms[0].num_valid));
        assert!(ms.iter().all(|m| m.seconds >= 0.0));
    }

    #[test]
    fn regression_recovers_a_power_law() {
        // y = 3 * x^0.8
        let xs: Vec<f64> = (1..=50).map(|i| i as f64 * 100.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x.powf(0.8)).collect();
        let (slope, intercept, r2) = loglog_regression(&xs, &ys).unwrap();
        assert!((slope - 0.8).abs() < 1e-9);
        assert!((10f64.powf(intercept) - 3.0).abs() < 1e-6);
        assert!(r2 > 0.999);
    }

    #[test]
    fn regression_rejects_degenerate_input() {
        assert!(loglog_regression(&[1.0], &[2.0]).is_none());
        assert!(loglog_regression(&[1.0, 1.0], &[2.0, 3.0]).is_none());
    }

    #[test]
    fn crossover_of_two_power_laws() {
        // y1 = 1e-6 * x^1.0 and y2 = 1e-3 * x^0.5 cross at x = 1e6^(1/0.5)=... compute
        let a = (1.0, -6.0);
        let b = (0.5, -3.0);
        let x = crossover_point(a, b).unwrap();
        // at the crossover both predict the same time
        let ya = 10f64.powf(a.1) * x.powf(a.0);
        let yb = 10f64.powf(b.1) * x.powf(b.0);
        assert!((ya - yb).abs() / ya < 1e-9);
        assert!(crossover_point((1.0, -6.0), (1.0, -3.0)).is_none());
    }

    #[test]
    fn kde_integrates_to_roughly_one() {
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let (grid, density) = log_kde(&values, 200);
        assert_eq!(grid.len(), 200);
        let step = grid[1] - grid[0];
        let integral: f64 = density.iter().sum::<f64>() * step;
        assert!((integral - 1.0).abs() < 0.1, "integral {integral}");
    }

    #[test]
    fn quartiles_and_geometric_mean() {
        let (min, q1, med, q3, max) = quartiles(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!((min, q1, med, q3, max), (1.0, 2.0, 3.0, 4.0, 5.0));
        assert!(quartiles(&[]).is_none());
        assert!((geometric_mean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn totals_and_formatting() {
        let spec = tiny_spec();
        let ms = measure_all(&spec, &[Method::BruteForce, Method::Optimized]);
        let totals = totals_per_method(&ms);
        assert_eq!(totals.len(), 2);
        assert!(format_seconds(0.000001).contains("µs"));
        assert!(format_seconds(0.5).contains("ms"));
        assert!(format_seconds(5.0).contains("s"));
        assert!(format_seconds(600.0).contains("min"));
    }
}
