//! Hand-rolled CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`).
//!
//! Every `ATSS` section carries a CRC-32 of its payload so corruption —
//! a flipped bit on disk, a truncated copy, a partially written file — is
//! detected before a single byte is adopted into a `SearchSpace`. The
//! checksum sits on the warm-load hot path (it covers the entire arena,
//! megabytes for large spaces), so the implementation uses the classic
//! *slicing-by-16* technique: sixteen compile-time tables let the inner
//! loop consume sixteen bytes per step, with only one carried dependency
//! per step, an order of magnitude faster than the byte-at-a-time walk
//! while computing the identical function.

/// Sixteen 256-entry lookup tables for the reflected IEEE polynomial.
/// `TABLES[0]` is the classic byte-at-a-time table; `TABLES[k][b]` is the
/// CRC of byte `b` followed by `k` zero bytes.
const TABLES: [[u32; 256]; 16] = build_tables();

const fn build_tables() -> [[u32; 256]; 16] {
    let mut tables = [[0u32; 256]; 16];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1usize;
    while k < 16 {
        let mut i = 0usize;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

/// Incremental CRC-32 state, for checksumming streamed sections.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Start a fresh checksum.
    pub fn new() -> Crc32 {
        Crc32 { state: !0 }
    }

    /// Feed bytes into the checksum (slicing-by-16 on the bulk, byte-at-a-
    /// time on the tail).
    pub fn update(&mut self, bytes: &[u8]) {
        #[inline(always)]
        fn slice4(word: u32, t: &[[u32; 256]; 4]) -> u32 {
            t[3][(word & 0xFF) as usize]
                ^ t[2][((word >> 8) & 0xFF) as usize]
                ^ t[1][((word >> 16) & 0xFF) as usize]
                ^ t[0][((word >> 24) & 0xFF) as usize]
        }
        let t_a: &[[u32; 256]; 4] = TABLES[12..16].try_into().expect("4 tables");
        let t_b: &[[u32; 256]; 4] = TABLES[8..12].try_into().expect("4 tables");
        let t_c: &[[u32; 256]; 4] = TABLES[4..8].try_into().expect("4 tables");
        let t_d: &[[u32; 256]; 4] = TABLES[0..4].try_into().expect("4 tables");
        let mut crc = self.state;
        let mut chunks = bytes.chunks_exact(16);
        for chunk in &mut chunks {
            let a = u32::from_le_bytes(chunk[0..4].try_into().expect("4 bytes")) ^ crc;
            let b = u32::from_le_bytes(chunk[4..8].try_into().expect("4 bytes"));
            let c = u32::from_le_bytes(chunk[8..12].try_into().expect("4 bytes"));
            let d = u32::from_le_bytes(chunk[12..16].try_into().expect("4 bytes"));
            crc = slice4(a, t_a) ^ slice4(b, t_b) ^ slice4(c, t_c) ^ slice4(d, t_d);
        }
        for &b in chunks.remainder() {
            crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The checksum of everything fed so far (the state stays usable).
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// Buffers at least this large are checksummed in two interleaved lanes.
/// The threshold is high because merging the lanes ([`crc32_combine`])
/// costs a few tens of microseconds of GF(2) matrix squaring — negligible
/// against megabytes, dominant against kilobytes.
const TWO_LANE_BYTES: usize = 1 << 20;

/// One-shot CRC-32 of a byte slice.
///
/// Large buffers (the arena of a big space) are split in half and the two
/// halves checksummed in one interleaved pass — the two carried dependency
/// chains overlap in the pipeline, nearly doubling single-core throughput —
/// then merged with [`crc32_combine`]. The result is bit-identical to the
/// sequential walk.
pub fn crc32(bytes: &[u8]) -> u32 {
    if bytes.len() < TWO_LANE_BYTES {
        let mut crc = Crc32::new();
        crc.update(bytes);
        crc.finish()
    } else {
        let (a, b) = bytes.split_at(bytes.len() / 2);
        let (crc_a, crc_b) = crc32_two_lanes(a, b);
        crc32_combine(crc_a, crc_b, b.len() as u64)
    }
}

/// Checksum two independent buffers in one interleaved slicing-by-16 pass.
fn crc32_two_lanes(a: &[u8], b: &[u8]) -> (u32, u32) {
    #[inline(always)]
    fn step(crc: u32, chunk: &[u8]) -> u32 {
        let t_a: &[[u32; 256]; 4] = TABLES[12..16].try_into().expect("4 tables");
        let t_b: &[[u32; 256]; 4] = TABLES[8..12].try_into().expect("4 tables");
        let t_c: &[[u32; 256]; 4] = TABLES[4..8].try_into().expect("4 tables");
        let t_d: &[[u32; 256]; 4] = TABLES[0..4].try_into().expect("4 tables");
        #[inline(always)]
        fn slice4(word: u32, t: &[[u32; 256]; 4]) -> u32 {
            t[3][(word & 0xFF) as usize]
                ^ t[2][((word >> 8) & 0xFF) as usize]
                ^ t[1][((word >> 16) & 0xFF) as usize]
                ^ t[0][((word >> 24) & 0xFF) as usize]
        }
        let w0 = u32::from_le_bytes(chunk[0..4].try_into().expect("4 bytes")) ^ crc;
        let w1 = u32::from_le_bytes(chunk[4..8].try_into().expect("4 bytes"));
        let w2 = u32::from_le_bytes(chunk[8..12].try_into().expect("4 bytes"));
        let w3 = u32::from_le_bytes(chunk[12..16].try_into().expect("4 bytes"));
        slice4(w0, t_a) ^ slice4(w1, t_b) ^ slice4(w2, t_c) ^ slice4(w3, t_d)
    }

    let mut crc_a = !0u32;
    let mut crc_b = !0u32;
    let mut chunks_a = a.chunks_exact(16);
    let mut chunks_b = b.chunks_exact(16);
    for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
        crc_a = step(crc_a, ca);
        crc_b = step(crc_b, cb);
    }
    // The halves differ by at most one chunk; drain each tail separately.
    let mut tail_a = Crc32 { state: crc_a };
    for chunk in &mut chunks_a {
        tail_a.update(chunk);
    }
    tail_a.update(chunks_a.remainder());
    let mut tail_b = Crc32 { state: crc_b };
    for chunk in &mut chunks_b {
        tail_b.update(chunk);
    }
    tail_b.update(chunks_b.remainder());
    (tail_a.finish(), tail_b.finish())
}

/// Combine `crc32(A)` and `crc32(B)` into `crc32(A ‖ B)` where `len2` is
/// `B`'s length in bytes — the classic zlib GF(2) matrix-power technique:
/// appending `len2` zero bytes to `A` multiplies its CRC state by the
/// polynomial matrix `x^(8·len2)`, computed by repeated squaring.
pub fn crc32_combine(crc1: u32, crc2: u32, mut len2: u64) -> u32 {
    fn times(mat: &[u32; 32], mut vec: u32) -> u32 {
        let mut sum = 0u32;
        let mut i = 0usize;
        while vec != 0 {
            if vec & 1 != 0 {
                sum ^= mat[i];
            }
            vec >>= 1;
            i += 1;
        }
        sum
    }
    fn square(out: &mut [u32; 32], mat: &[u32; 32]) {
        for n in 0..32 {
            out[n] = times(mat, mat[n]);
        }
    }

    if len2 == 0 {
        return crc1;
    }
    let mut even = [0u32; 32];
    let mut odd = [0u32; 32];
    // odd = the "advance one zero bit" operator.
    odd[0] = 0xEDB8_8320;
    let mut row = 1u32;
    for entry in odd.iter_mut().skip(1) {
        *entry = row;
        row <<= 1;
    }
    square(&mut even, &odd); // even = advance 2 bits
    square(&mut odd, &even); // odd = advance 4 bits
    let mut crc1 = crc1;
    loop {
        square(&mut even, &odd); // even = odd², applying 8, 32, 128, ... bits
        if len2 & 1 != 0 {
            crc1 = times(&even, crc1);
        }
        len2 >>= 1;
        if len2 == 0 {
            break;
        }
        square(&mut odd, &even);
        if len2 & 1 != 0 {
            crc1 = times(&odd, crc1);
        }
        len2 >>= 1;
        if len2 == 0 {
            break;
        }
    }
    crc1 ^ crc2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_check_value() {
        // The CRC-32 "check" vector: CRC of the ASCII digits 1..9.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut crc = Crc32::new();
        for chunk in data.chunks(7) {
            crc.update(chunk);
        }
        assert_eq!(crc.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"ATSS arena bytes";
        let reference = crc32(data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.to_vec();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip at byte {i} bit {bit}");
            }
        }
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    fn sequential_crc(bytes: &[u8]) -> u32 {
        let mut crc = Crc32::new();
        crc.update(bytes);
        crc.finish()
    }

    #[test]
    fn combine_matches_concatenation() {
        let data: Vec<u8> = (0..300_000u32).map(|i| (i * 7 + i / 3) as u8).collect();
        let reference = sequential_crc(&data);
        for split in [0usize, 1, 7, 100, 65_536, 150_000, 299_999, 300_000] {
            let (a, b) = data.split_at(split);
            let combined = crc32_combine(sequential_crc(a), sequential_crc(b), b.len() as u64);
            assert_eq!(combined, reference, "split at {split}");
        }
    }

    #[test]
    fn two_lane_path_matches_sequential() {
        // Just above TWO_LANE_BYTES, so crc32() takes the two-lane path
        // (odd length: the lanes split unevenly and both drain tails).
        let n = TWO_LANE_BYTES as u32 + 17;
        let data: Vec<u8> = (0..n).map(|i| (i ^ (i >> 5)) as u8).collect();
        assert_eq!(crc32(&data), sequential_crc(&data));
    }
}
