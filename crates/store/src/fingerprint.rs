//! Content-addressing: a deterministic fingerprint over a specification.
//!
//! [`SpecFingerprint`] is the cache key of [`crate::SpaceStore`]: two
//! specifications receive the same fingerprint exactly when they construct
//! the same space *through the same lowered problem*. The fingerprint is a
//! 128-bit FNV-1a hash over a canonical byte encoding of
//!
//! * the `ATSS` format version (bumping the format invalidates every key),
//! * the space name,
//! * every parameter: name and full value list, in declaration order, using
//!   the same canonical [`at_csp::Value`] byte encoding the file format
//!   uses (so `Int(2)` and `Float(2.0)` — distinct dictionary entries —
//!   fingerprint distinctly),
//! * every restriction's *source string*, in declaration order,
//! * the [`RestrictionLowering`] the construction will use.
//!
//! # Stability guarantees
//!
//! The fingerprint is a pure function of the bytes above: it is stable
//! across processes, runs, platforms and endiannesses (all integers are
//! hashed in little-endian order), and it never depends on memory layout,
//! hash-map iteration order or randomized state. It changes when — and
//! only when — the specification content, the lowering, or
//! [`crate::FORMAT_VERSION`] changes.
//!
//! # What cannot be fingerprinted
//!
//! Closure ([`Restriction::Function`]) and pre-built
//! ([`Restriction::Specific`]) restrictions have no canonical byte
//! representation — two different closures can share a label, and a label
//! collision must never alias two different spaces. Specifications
//! containing them yield [`StoreError::Unfingerprintable`]; the cache
//! builds such spaces without persisting them.

use std::fmt;

use at_searchspace::{Restriction, RestrictionLowering, SearchSpaceSpec};

use crate::error::StoreError;
use crate::format::{push_value, FORMAT_VERSION};

/// FNV-1a 128-bit offset basis.
const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// FNV-1a 128-bit prime.
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;

/// A 128-bit content hash identifying one (specification, lowering) pair.
///
/// Displayed (and stored on disk) as 32 lowercase hex characters; cache
/// entries live at `<cache-dir>/<hex>.atss`. See the [module
/// documentation](self) for what the hash covers and its stability
/// guarantees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpecFingerprint(u128);

impl SpecFingerprint {
    /// Compute the fingerprint of a specification under the given lowering.
    ///
    /// Returns [`StoreError::Unfingerprintable`] when the specification
    /// contains a restriction with no canonical byte representation (a
    /// closure or a pre-built constraint).
    pub fn compute(
        spec: &SearchSpaceSpec,
        lowering: RestrictionLowering,
    ) -> Result<SpecFingerprint, StoreError> {
        let mut buf: Vec<u8> = Vec::with_capacity(256);
        buf.extend_from_slice(b"ATSS/fingerprint");
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());

        push_len_str(&mut buf, &spec.name);

        buf.extend_from_slice(&(spec.params.len() as u32).to_le_bytes());
        for p in &spec.params {
            push_len_str(&mut buf, p.name());
            buf.extend_from_slice(&(p.len() as u32).to_le_bytes());
            for v in p.values() {
                push_value(&mut buf, v);
            }
        }

        buf.extend_from_slice(&(spec.restrictions.len() as u32).to_le_bytes());
        for r in &spec.restrictions {
            match r {
                Restriction::Expression(source) => {
                    buf.push(1);
                    push_len_str(&mut buf, source);
                }
                other => {
                    return Err(StoreError::Unfingerprintable(format!(
                        "restriction `{}` is not an expression string",
                        other.describe()
                    )))
                }
            }
        }

        buf.push(match lowering {
            RestrictionLowering::Optimized => 0,
            RestrictionLowering::Generic => 1,
        });

        Ok(SpecFingerprint(fnv1a_128(&buf)))
    }

    /// The raw 128-bit hash value (for binary wire encodings; the daemon
    /// protocol ships fingerprints as these 16 bytes, little-endian).
    pub fn as_u128(&self) -> u128 {
        self.0
    }

    /// Reconstruct a fingerprint from its raw 128-bit value (the inverse
    /// of [`SpecFingerprint::as_u128`]).
    pub fn from_u128(raw: u128) -> SpecFingerprint {
        SpecFingerprint(raw)
    }

    /// The fingerprint as 32 lowercase hex characters.
    pub fn to_hex(&self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parse a fingerprint back from its 32-character hex form (the inverse
    /// of [`SpecFingerprint::to_hex`]).
    pub fn from_hex(s: &str) -> Option<SpecFingerprint> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(SpecFingerprint)
    }
}

impl fmt::Display for SpecFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

fn push_len_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn fnv1a_128(bytes: &[u8]) -> u128 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_searchspace::TunableParameter;

    fn spec() -> SearchSpaceSpec {
        SearchSpaceSpec::new("fp")
            .with_param(TunableParameter::pow2("x", 4))
            .with_param(TunableParameter::ints("y", [1, 2, 3]))
            .with_expr("x * y <= 8")
    }

    #[test]
    fn deterministic_across_calls() {
        let a = SpecFingerprint::compute(&spec(), RestrictionLowering::Optimized).unwrap();
        let b = SpecFingerprint::compute(&spec(), RestrictionLowering::Optimized).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn every_ingredient_changes_the_hash() {
        let base = SpecFingerprint::compute(&spec(), RestrictionLowering::Optimized).unwrap();

        let mut renamed = spec();
        renamed.name = "other".into();
        assert_ne!(
            base,
            SpecFingerprint::compute(&renamed, RestrictionLowering::Optimized).unwrap()
        );

        let extra_value = SearchSpaceSpec::new("fp")
            .with_param(TunableParameter::pow2("x", 5))
            .with_param(TunableParameter::ints("y", [1, 2, 3]))
            .with_expr("x * y <= 8");
        assert_ne!(
            base,
            SpecFingerprint::compute(&extra_value, RestrictionLowering::Optimized).unwrap()
        );

        let other_restriction = SearchSpaceSpec::new("fp")
            .with_param(TunableParameter::pow2("x", 4))
            .with_param(TunableParameter::ints("y", [1, 2, 3]))
            .with_expr("x * y <= 9");
        assert_ne!(
            base,
            SpecFingerprint::compute(&other_restriction, RestrictionLowering::Optimized).unwrap()
        );

        assert_ne!(
            base,
            SpecFingerprint::compute(&spec(), RestrictionLowering::Generic).unwrap()
        );
    }

    #[test]
    fn value_types_are_distinguished() {
        let ints = SearchSpaceSpec::new("v").with_param(TunableParameter::ints("x", [2]));
        let floats = SearchSpaceSpec::new("v")
            .with_param(TunableParameter::new("x", vec![at_csp::Value::Float(2.0)]));
        assert_ne!(
            SpecFingerprint::compute(&ints, RestrictionLowering::Generic).unwrap(),
            SpecFingerprint::compute(&floats, RestrictionLowering::Generic).unwrap()
        );
    }

    #[test]
    fn closures_are_unfingerprintable() {
        let s = spec().with_restriction(Restriction::func(&["x"], "x > 0", |v| {
            v[0].as_i64().unwrap() > 0
        }));
        assert!(matches!(
            SpecFingerprint::compute(&s, RestrictionLowering::Optimized),
            Err(StoreError::Unfingerprintable(_))
        ));
    }

    #[test]
    fn hex_round_trips() {
        let fp = SpecFingerprint::compute(&spec(), RestrictionLowering::Optimized).unwrap();
        let hex = fp.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(SpecFingerprint::from_hex(&hex), Some(fp));
        assert_eq!(SpecFingerprint::from_hex("nope"), None);
        assert_eq!(fp.to_string(), hex);
    }
}
