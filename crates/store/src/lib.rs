//! # at-store — binary persistence and the content-addressed construction cache
//!
//! The paper's Section 4.3.4 argues that solver output formats must stay
//! close to the internal representation, because rearranging the output can
//! cost as much as construction itself. This crate takes that argument to
//! disk — and then all the way to zero copies: a resolved
//! [`SearchSpace`](at_searchspace::SearchSpace) is persisted as its
//! columnar `u32` code arena **verbatim** plus its membership table (the
//! `ATSS` format, v2), so a space is solved *once* and every later process
//! serves it with no re-solving and no re-encoding. The copying load
//! rebuilds nothing but the in-memory buffers; the `mmap(2)` load with a
//! trusted persisted index borrows both the arena and the table straight
//! out of the page cache — O(header) work, one resident copy shared by
//! every process that maps the same entry.
//!
//! Three layers:
//!
//! * [`StoreWriter`] / [`StoreReader`] / [`write_space`] — the `ATSS` file
//!   format. `StoreWriter` implements the solver sink interface
//!   ([`at_csp::sink::SolutionSink`]), so a space is persisted *while* it
//!   is constructed; [`StoreReader::load`] takes [`LoadOptions`]
//!   (copying vs. zero-copy mmap × index rebuild / trust / sampled
//!   verification) and returns a [`LoadReport`] of what actually happened.
//! * [`mmap`] — the hand-rolled `mmap(2)` wrapper behind the zero-copy
//!   path (Linux FFI against the already-linked C library; owned-copy
//!   fallback elsewhere).
//! * [`SpecFingerprint`] — deterministic content-addressing of a
//!   [`SearchSpaceSpec`](at_searchspace::SearchSpaceSpec) +
//!   [`RestrictionLowering`](at_searchspace::RestrictionLowering) pair
//!   (see [`fingerprint`] for the exact coverage and stability guarantees).
//! * [`SpaceStore`] — the cache: [`SpaceStore::get_or_build_with_options`]
//!   with atomic temp-file + rename writes, validation with fallback to
//!   rebuild (a corrupt or stale entry is never served; a stale index is
//!   repaired and reported), hit/miss/rebuild/latency
//!   [`SpaceStore::metrics`], and LRU [`SpaceStore::gc_with`] bounded by
//!   bytes and entry count.
//!
//! ```
//! use at_searchspace::{Method, SearchSpaceSpec, TunableParameter};
//! use at_store::SpaceStore;
//!
//! let dir = std::env::temp_dir().join("at-store-doctest");
//! let _ = std::fs::remove_dir_all(&dir);
//!
//! let spec = SearchSpaceSpec::new("doc")
//!     .with_param(TunableParameter::pow2("x", 6))
//!     .with_param(TunableParameter::pow2("y", 5))
//!     .with_expr("x * y <= 64");
//!
//! let store = SpaceStore::new(&dir).unwrap();
//! let (cold, out) = store.get_or_build(&spec, Method::Optimized).unwrap();
//! assert_eq!(out.status.label(), "miss");       // solved and persisted
//! let (warm, out) = store.get_or_build(&spec, Method::Optimized).unwrap();
//! assert!(out.status.is_hit());                 // loaded, zero solving
//! assert_eq!(cold.arena(), warm.arena());       // code-for-code identical
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```
//!
//! # The `ATSS` format, byte by byte
//!
//! All integers are little-endian. A *string* is a `u32` byte length
//! followed by that many UTF-8 bytes. A *value* is one tag byte followed by
//! its payload: `0x01` + `i64` (int), `0x02` + IEEE-754 bit pattern as
//! `u64` (float), `0x03` + `0x00`/`0x01` (bool), `0x04` + string (str).
//!
//! This build writes **version 2** and reads versions 1 and 2. The v2
//! layout (differences from v1 are marked `v2:`):
//!
//! ```text
//! offset   size  field
//! 0        4     magic, the ASCII bytes "ATSS"
//! 4        4     format version, u32 (1 or 2)
//!
//! --- HEADER section -------------------------------------------------------
//! 8        4     section tag "HDR\0"
//! 12       8     payload length H, u64
//! 20       H     payload:  name : string
//!                          num_params : u32
//! 20+H     4     CRC-32 (IEEE) of the H payload bytes
//!
//! --- PARAMS section -------------------------------------------------------
//! .        4     section tag "PAR\0"
//! .        8     payload length P, u64
//! .        P     payload, per parameter in declaration order:
//!                          name : string
//!                          num_values : u32
//!                          num_values x value     (the dictionary, in
//!                                                  code order: code k is
//!                                                  the k-th value)
//! .        4     CRC-32 of the P payload bytes
//!
//! --- ARENA section --------------------------------------------------------
//! .        4     section tag "ARN\0"
//! .        4     v2: pad length p, u32 (0..=3)
//! .        p     v2: p zero bytes, chosen so the next offset is a
//!                multiple of 4 — the *alignment rule* that makes a
//!                `&[u32]` view over the mmapped file valid (mmap memory
//!                is page-aligned, so file-offset alignment is pointer
//!                alignment). v1 has neither field and no alignment
//!                guarantee, which is why v1 files always load by copy.
//! .        N*S*4 the configuration arena, verbatim: N rows x S params of
//!                u32 value codes, row-major, declaration order — exactly
//!                the in-memory layout of `SearchSpace::arena()`
//!
//! --- INDEX section (v2, optional — present in files this build writes) ----
//! .        4     section tag "IDX\0"
//! .        8     payload length, u64 (= 8 + num_slots*4)
//! .        4     row-hash version, u32: the version of the row-hash
//!                function the table was built with
//!                (`at_searchspace::INDEX_HASH_VERSION`); a mismatch means
//!                "rebuild", never "adopt"
//! .        4     num_slots, u32 (a power of two)
//! .        S4    num_slots x u32 open-addressing slots, verbatim from
//!                `SearchSpace::index_slots()` (id, or 0xFFFF_FFFF for
//!                empty). Starts 4-byte aligned by construction: the arena
//!                is aligned, its length is a multiple of 4, and the 20
//!                frame+header bytes preserve alignment.
//! .        4     CRC-32 of the payload (hash version + count + slots)
//!
//! --- TRAILER (always the last 16 bytes) -----------------------------------
//! end-16   4     trailer tag "END\0"
//! end-12   8     row count N, u64      (written last: streaming writers
//!                                       do not know N up front)
//! end-4    4     CRC-32 of the N*S*4 arena bytes
//! ```
//!
//! The arena's length is not stored explicitly: it is implied by `N x S x 4`
//! from the trailer and bounds-checked against the file length, so
//! truncation, a crashed half-write (no trailer) and trailer/arena
//! disagreement are all detected. Every metadata byte is covered by a
//! section CRC, every arena byte by the trailer CRC, every index byte by
//! the `IDX` CRC.
//!
//! # Trust policy of the zero-copy path
//!
//! [`StoreReader::load`] takes [`LoadOptions`]: `mode` picks copying
//! (every checksum verified) or mmap (zero copy; the arena checksum is
//! *not* read — it would fault in every page), and `index` picks how the
//! persisted table is treated ([`IndexPolicy::Rebuild`] /
//! [`IndexPolicy::TrustPersisted`] / [`IndexPolicy::VerifySampled`]).
//! Whatever the policy, the `IDX` checksum, hash version and structural
//! invariants are verified before a single lookup goes through a persisted
//! table, and an unusable table falls back to a rebuild that is **reported**
//! in the returned [`LoadReport`] (and counted by `SpaceStore` metrics) —
//! while the lookup algorithm itself re-compares arena rows, so even a
//! semantically wrong table can only miss a row, never misattribute one.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod cache;
pub mod checksum;
pub mod error;
pub mod fingerprint;
pub mod format;
pub mod mmap;

pub use cache::{
    build_search_space_cached, CacheStatus, GcOptions, GcReport, PinGuard, SpaceStore, StoreEntry,
    StoreMetrics, StoreOutcome,
};
pub use error::StoreError;
pub use fingerprint::SpecFingerprint;
pub use format::{
    load_space_from_path, peek_info, read_space_from_bytes, read_space_from_path, write_space,
    write_space_to_path, ArenaOutcome, IndexInfo, IndexOutcome, IndexPolicy, LoadMode, LoadOptions,
    LoadReport, LoadedSpace, StoreInfo, StoreReader, StoreSummary, StoreWriter, FORMAT_VERSION,
    MAGIC, MIN_READ_VERSION,
};
pub use mmap::{MapError, MappedCodes, MappedFile};
