//! # at-store — binary persistence and the content-addressed construction cache
//!
//! The paper's Section 4.3.4 argues that solver output formats must stay
//! close to the internal representation, because rearranging the output can
//! cost as much as construction itself. This crate takes that argument to
//! disk: a resolved [`SearchSpace`](at_searchspace::SearchSpace) is
//! persisted as its columnar `u32` code
//! arena **verbatim** (the `ATSS` format), so a space is solved *once* and
//! every later process loads it in milliseconds — no re-solving, no
//! re-encoding, only the membership-table build every constructor needs.
//!
//! Three layers:
//!
//! * [`StoreWriter`] / [`StoreReader`] / [`write_space`] — the `ATSS` file
//!   format. `StoreWriter` implements the solver sink interface
//!   ([`at_csp::sink::SolutionSink`]), so a space is persisted *while* it
//!   is constructed.
//! * [`SpecFingerprint`] — deterministic content-addressing of a
//!   [`SearchSpaceSpec`](at_searchspace::SearchSpaceSpec) +
//!   [`RestrictionLowering`](at_searchspace::RestrictionLowering) pair
//!   (see [`fingerprint`] for the exact coverage and stability guarantees).
//! * [`SpaceStore`] — the cache: [`SpaceStore::get_or_build`] with atomic
//!   temp-file + rename writes, full validation with fallback to rebuild
//!   (a corrupt or stale entry is never served), and size-bounded LRU
//!   [`SpaceStore::gc`].
//!
//! ```
//! use at_searchspace::{Method, SearchSpaceSpec, TunableParameter};
//! use at_store::SpaceStore;
//!
//! let dir = std::env::temp_dir().join("at-store-doctest");
//! let _ = std::fs::remove_dir_all(&dir);
//!
//! let spec = SearchSpaceSpec::new("doc")
//!     .with_param(TunableParameter::pow2("x", 6))
//!     .with_param(TunableParameter::pow2("y", 5))
//!     .with_expr("x * y <= 64");
//!
//! let store = SpaceStore::new(&dir).unwrap();
//! let (cold, out) = store.get_or_build(&spec, Method::Optimized).unwrap();
//! assert_eq!(out.status.label(), "miss");       // solved and persisted
//! let (warm, out) = store.get_or_build(&spec, Method::Optimized).unwrap();
//! assert!(out.status.is_hit());                 // loaded, zero solving
//! assert_eq!(cold.arena(), warm.arena());       // code-for-code identical
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```
//!
//! # The `ATSS` format, byte by byte
//!
//! All integers are little-endian. A *string* is a `u32` byte length
//! followed by that many UTF-8 bytes. A *value* is one tag byte followed by
//! its payload: `0x01` + `i64` (int), `0x02` + IEEE-754 bit pattern as
//! `u64` (float), `0x03` + `0x00`/`0x01` (bool), `0x04` + string (str).
//!
//! ```text
//! offset   size  field
//! 0        4     magic, the ASCII bytes "ATSS"
//! 4        4     format version, u32 (currently 1)
//!
//! --- HEADER section -------------------------------------------------------
//! 8        4     section tag "HDR\0"
//! 12       8     payload length H, u64
//! 20       H     payload:  name : string
//!                          num_params : u32
//! 20+H     4     CRC-32 (IEEE) of the H payload bytes
//!
//! --- PARAMS section -------------------------------------------------------
//! .        4     section tag "PAR\0"
//! .        8     payload length P, u64
//! .        P     payload, per parameter in declaration order:
//!                          name : string
//!                          num_values : u32
//!                          num_values x value     (the dictionary, in
//!                                                  code order: code k is
//!                                                  the k-th value)
//! .        4     CRC-32 of the P payload bytes
//!
//! --- ARENA section --------------------------------------------------------
//! .        4     section tag "ARN\0"
//! .        N*S*4 the configuration arena, verbatim: N rows x S params of
//!                u32 value codes, row-major, declaration order — exactly
//!                the in-memory layout of `SearchSpace::arena()`
//!
//! --- TRAILER (always the last 16 bytes) -----------------------------------
//! end-16   4     trailer tag "END\0"
//! end-12   8     row count N, u64      (written last: streaming writers
//!                                       do not know N up front)
//! end-4    4     CRC-32 of the N*S*4 arena bytes
//! ```
//!
//! The arena's length is not stored explicitly: it is implied by the file
//! length and re-checked against `N x S x 4` from the trailer, so
//! truncation, a crashed half-write (no trailer) and trailer/arena
//! disagreement are all detected. Every metadata byte is covered by a
//! section CRC, every arena byte by the trailer CRC.

#![warn(missing_docs)]

pub mod cache;
pub mod checksum;
pub mod error;
pub mod fingerprint;
pub mod format;

pub use cache::{
    build_search_space_cached, CacheStatus, GcReport, SpaceStore, StoreEntry, StoreOutcome,
};
pub use error::StoreError;
pub use fingerprint::SpecFingerprint;
pub use format::{
    peek_info, read_space_from_path, write_space, write_space_to_path, StoreInfo, StoreReader,
    StoreSummary, StoreWriter, FORMAT_VERSION, MAGIC,
};
