//! Error type of the persistence and cache layer.

use std::fmt;
use std::io;
use std::path::PathBuf;

use at_searchspace::SpaceError;

/// Errors raised while writing, reading or caching `ATSS` files.
///
/// The variants distinguish *environment* failures (I/O) from *content*
/// failures (bad magic, unsupported version, checksum mismatches, invalid
/// structure): the cache treats content failures on a cached entry as a
/// stale file and falls back to rebuilding, so a corrupt cache can never
/// serve a corrupt space.
#[derive(Debug)]
pub enum StoreError {
    /// An operating-system I/O error, with the path it occurred on when
    /// known.
    Io {
        /// The file or directory involved, if known.
        path: Option<PathBuf>,
        /// The underlying error.
        source: io::Error,
    },
    /// The file does not start with the `ATSS` magic — it is not a store
    /// file at all.
    BadMagic {
        /// The four bytes found where the magic was expected.
        found: [u8; 4],
    },
    /// The file's format version is not one this build can read.
    UnsupportedVersion {
        /// The version recorded in the file.
        found: u32,
        /// The version this build reads and writes.
        supported: u32,
    },
    /// The file is structurally damaged: a truncated or over-long section,
    /// a checksum mismatch, a malformed value encoding, or a trailer that
    /// disagrees with the arena.
    Corrupt {
        /// The section the damage was detected in (`header`, `params`,
        /// `arena`, `trailer`).
        section: &'static str,
        /// What exactly was wrong.
        detail: String,
    },
    /// The decoded content does not form a valid [`at_searchspace::SearchSpace`]
    /// (e.g. a code out of dictionary range).
    Space(SpaceError),
    /// Constructing the space (on a cache miss) failed in the solver layer.
    Build(String),
    /// The specification cannot be content-addressed: it contains a
    /// restriction (a closure or pre-built constraint) with no canonical
    /// byte representation. Such specs are always rebuilt, never cached.
    Unfingerprintable(String),
}

impl StoreError {
    /// Wrap an I/O error with the path it occurred on.
    pub(crate) fn io(path: impl Into<PathBuf>, source: io::Error) -> StoreError {
        StoreError::Io {
            path: Some(path.into()),
            source,
        }
    }

    /// Build a [`StoreError::Corrupt`].
    pub(crate) fn corrupt(section: &'static str, detail: impl Into<String>) -> StoreError {
        StoreError::Corrupt {
            section,
            detail: detail.into(),
        }
    }

    /// Whether this error means "the file content is not trustworthy" (as
    /// opposed to an environment failure). Content errors on cached entries
    /// trigger a rebuild; I/O errors propagate.
    pub fn is_content_error(&self) -> bool {
        matches!(
            self,
            StoreError::BadMagic { .. }
                | StoreError::UnsupportedVersion { .. }
                | StoreError::Corrupt { .. }
                | StoreError::Space(_)
        )
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => match path {
                Some(p) => write!(f, "I/O error on `{}`: {source}", p.display()),
                None => write!(f, "I/O error: {source}"),
            },
            StoreError::BadMagic { found } => {
                write!(f, "not an ATSS file (magic bytes {found:02x?})")
            }
            StoreError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported ATSS format version {found} (this build reads version {supported})"
            ),
            StoreError::Corrupt { section, detail } => {
                write!(f, "corrupt ATSS {section} section: {detail}")
            }
            StoreError::Space(e) => write!(f, "stored space is invalid: {e}"),
            StoreError::Build(msg) => write!(f, "construction failed: {msg}"),
            StoreError::Unfingerprintable(why) => {
                write!(f, "specification cannot be content-addressed: {why}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Space(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpaceError> for StoreError {
    fn from(e: SpaceError) -> Self {
        StoreError::Space(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_essentials() {
        let e = StoreError::UnsupportedVersion {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains('9'));
        let e = StoreError::corrupt("arena", "checksum mismatch");
        assert!(e.to_string().contains("arena"));
        assert!(e.to_string().contains("checksum"));
        let e = StoreError::io("/tmp/x.atss", io::Error::other("boom"));
        assert!(e.to_string().contains("x.atss"));
    }

    #[test]
    fn content_errors_are_classified() {
        assert!(StoreError::BadMagic { found: [0; 4] }.is_content_error());
        assert!(StoreError::corrupt("trailer", "short").is_content_error());
        assert!(!StoreError::Build("solver".into()).is_content_error());
        assert!(!StoreError::io("/x", io::Error::other("boom")).is_content_error());
    }
}
