//! The content-addressed construction cache: solve once, serve forever.
//!
//! A [`SpaceStore`] is a directory of `ATSS` files keyed by
//! [`SpecFingerprint`]: `<dir>/<32-hex>.atss`. The contract of
//! [`SpaceStore::get_or_build`]:
//!
//! * **hit** — the file exists, passes validation per the caller's
//!   [`LoadOptions`] (the default copying load verifies magic, version,
//!   every checksum and arena/trailer agreement; the zero-copy mmap load
//!   trades the arena checksum for O(header) serving — see
//!   [`crate::format::LoadMode`]) and becomes a `SearchSpace` with zero
//!   re-solving; its mtime is touched so LRU eviction sees the use. A hit
//!   whose persisted `IDX` section is unusable still hits (the index is
//!   rebuilt from the arena), but the condition is **reported** — in the
//!   outcome's [`LoadReport`], in the `index_fallbacks` metric — and the
//!   entry is repaired in place.
//! * **miss** — the space is constructed with the requested method while
//!   being streamed to a temporary file through [`StoreWriter`], which is
//!   atomically renamed into place only after the index section and
//!   trailer are written. Concurrent builders of the same spec race
//!   benignly: each writes its own temp file and the last rename wins with
//!   identical content.
//! * **stale or corrupt** — any content error (flipped byte, truncation,
//!   unreadable format version, crashed half-write) is treated as a miss:
//!   the entry is rebuilt and overwritten (counted in the `rebuilds`
//!   metric). A corrupt cache can never serve a corrupt space.
//! * **uncacheable** — specifications with closure restrictions have no
//!   canonical content (see [`crate::fingerprint`]); they are built
//!   normally and never persisted.
//!
//! [`SpaceStore::gc_with`] bounds the directory by total bytes and entry
//! count: entries are evicted least-recently-used first (by mtime) until
//! both bounds hold — except entries currently **pinned** by a
//! [`PinGuard`] ([`SpaceStore::pin`]), which a sweep reports and skips: a
//! long-lived server hands out paths into the cache directory, and an
//! entry must not be deleted while a client it was promised to may still
//! be attaching. [`SpaceStore::metrics`] exposes process-lifetime
//! hit/miss/rebuild/index-fallback counters, warm-load latency, the live
//! pin count and the pin-skips GC has performed.

use std::collections::HashMap;
use std::fs::{self, File};
use std::io::BufWriter;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime};

use at_searchspace::{
    build_search_space_with, solve_spec_into, BuildOptions, BuildReport, Method, SearchSpace,
    SearchSpaceSpec,
};

use crate::error::StoreError;
use crate::fingerprint::SpecFingerprint;
use crate::format::{
    peek_info, read_space_from_path, write_space, IndexPolicy, LoadMode, LoadOptions, LoadReport,
    StoreInfo, StoreReader, StoreWriter,
};

/// How `get_or_build` satisfied a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheStatus {
    /// Served from a validated cache file; no solving happened.
    Hit,
    /// Constructed (and persisted, streamed during construction).
    Miss,
    /// Constructed but not persisted: the spec cannot be content-addressed
    /// (the string explains why).
    Uncacheable(String),
}

impl CacheStatus {
    /// True for [`CacheStatus::Hit`].
    pub fn is_hit(&self) -> bool {
        matches!(self, CacheStatus::Hit)
    }

    /// A short label: `hit`, `miss` or `uncacheable`.
    pub fn label(&self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
            CacheStatus::Uncacheable(_) => "uncacheable",
        }
    }
}

/// Everything `get_or_build` knows about how it served a space.
#[derive(Debug, Clone)]
pub struct StoreOutcome {
    /// Hit, miss, or uncacheable.
    pub status: CacheStatus,
    /// The cache key (absent for uncacheable specs).
    pub fingerprint: Option<SpecFingerprint>,
    /// The on-disk entry (absent for uncacheable specs).
    pub path: Option<PathBuf>,
    /// Size of the on-disk entry in bytes (0 for uncacheable specs).
    pub file_bytes: u64,
    /// Wall-clock time of the load (hit) or construction (miss).
    pub duration: Duration,
    /// The construction report — present exactly when solving happened
    /// (miss / uncacheable); a hit performs no solving.
    pub report: Option<BuildReport>,
    /// How a hit was loaded (zero-copy? persisted index adopted?);
    /// `None` when the space was constructed.
    pub load: Option<LoadReport>,
}

/// Process-lifetime observability counters of one [`SpaceStore`] (shared
/// across clones of the store). All counters are monotonic; read them at
/// any time from any thread.
#[derive(Debug, Default)]
pub struct StoreMetrics {
    hits: AtomicU64,
    misses: AtomicU64,
    uncacheable: AtomicU64,
    /// Misses caused by an existing entry failing validation (a rebuild
    /// repaired it), as opposed to a cold first build.
    rebuilds: AtomicU64,
    /// Warm loads whose persisted index was unusable and rebuilt.
    index_fallbacks: AtomicU64,
    /// Entries evicted by [`SpaceStore::gc`] sweeps.
    gc_evictions: AtomicU64,
    /// Pinned entries a gc sweep wanted to evict but skipped.
    gc_pin_skips: AtomicU64,
    /// Total wall-clock nanoseconds spent in warm loads (hits).
    load_nanos: AtomicU64,
    /// Live pins: fingerprint → outstanding [`PinGuard`] count. Lives on
    /// the metrics block because that is the one structure every clone of
    /// a store already shares.
    pins: Mutex<HashMap<SpecFingerprint, usize>>,
}

impl StoreMetrics {
    /// Cache hits served.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (constructions), including rebuilds of damaged entries.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Builds of specs that cannot be content-addressed.
    pub fn uncacheable(&self) -> u64 {
        self.uncacheable.load(Ordering::Relaxed)
    }

    /// Misses that repaired an existing damaged/stale entry.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds.load(Ordering::Relaxed)
    }

    /// Warm loads whose persisted index section was rejected and rebuilt.
    pub fn index_fallbacks(&self) -> u64 {
        self.index_fallbacks.load(Ordering::Relaxed)
    }

    /// Entries evicted by gc sweeps over this store's lifetime.
    pub fn gc_evictions(&self) -> u64 {
        self.gc_evictions.load(Ordering::Relaxed)
    }

    /// Pinned entries gc sweeps wanted to evict but skipped.
    pub fn gc_pin_skips(&self) -> u64 {
        self.gc_pin_skips.load(Ordering::Relaxed)
    }

    /// Entries currently pinned (distinct fingerprints with at least one
    /// live [`PinGuard`]).
    pub fn pinned_now(&self) -> u64 {
        self.pins.lock().expect("pin table poisoned").len() as u64
    }

    /// Mean wall-clock time of a warm load, if any happened.
    pub fn mean_load_time(&self) -> Option<Duration> {
        let hits = self.hits();
        (hits > 0).then(|| Duration::from_nanos(self.load_nanos.load(Ordering::Relaxed) / hits))
    }

    /// One human-readable line, e.g. for `construct --format summary`.
    pub fn summary_line(&self) -> String {
        let latency = match self.mean_load_time() {
            Some(mean) => format!(", mean warm load {mean:.3?}"),
            None => String::new(),
        };
        let pins = match self.pinned_now() {
            0 => String::new(),
            n => format!(", {n} pinned"),
        };
        format!(
            "{} hits / {} misses ({} rebuilds) / {} uncacheable, {} index fallbacks, \
             {} gc evictions{pins}{latency}",
            self.hits(),
            self.misses(),
            self.rebuilds(),
            self.uncacheable(),
            self.index_fallbacks(),
            self.gc_evictions(),
        )
    }
}

/// An RAII pin on one cache entry: while any guard for a fingerprint is
/// alive, [`SpaceStore::gc_with`] sweeps of any clone of the issuing store
/// report and skip that entry instead of evicting it. Dropping the last
/// guard unpins. Pins are per-process bookkeeping (they live in the shared
/// [`StoreMetrics`] block, not on disk): a *different* process gc'ing the
/// same directory does not see them, which is exactly the daemon contract —
/// one resident process owns both the pins and the sweeps.
#[derive(Debug)]
pub struct PinGuard {
    metrics: Arc<StoreMetrics>,
    fingerprint: SpecFingerprint,
}

impl PinGuard {
    /// The pinned entry's fingerprint.
    pub fn fingerprint(&self) -> SpecFingerprint {
        self.fingerprint
    }
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        let mut pins = self.metrics.pins.lock().expect("pin table poisoned");
        if let Some(count) = pins.get_mut(&self.fingerprint) {
            *count -= 1;
            if *count == 0 {
                pins.remove(&self.fingerprint);
            }
        }
    }
}

/// One entry in a cache directory listing.
#[derive(Debug, Clone)]
pub struct StoreEntry {
    /// The fingerprint parsed back from the file name.
    pub fingerprint: SpecFingerprint,
    /// Full path of the `.atss` file.
    pub path: PathBuf,
    /// File size in bytes.
    pub bytes: u64,
    /// Last-used time (mtime; touched on every cache hit).
    pub modified: SystemTime,
    /// Header metadata, if the header is readable (`None` for a file too
    /// damaged to peek into — `verify`/`gc` still handle it).
    pub info: Option<StoreInfo>,
}

/// Bounds enforced by one [`SpaceStore::gc_with`] sweep. Both bounds
/// default to unlimited; eviction is LRU-first until both hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcOptions {
    /// Maximum total entry bytes to keep.
    pub max_bytes: u64,
    /// Maximum number of entries to keep.
    pub max_entries: usize,
}

impl Default for GcOptions {
    fn default() -> Self {
        GcOptions {
            max_bytes: u64::MAX,
            max_entries: usize::MAX,
        }
    }
}

/// Result of one [`SpaceStore::gc`] sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GcReport {
    /// Entries left in the cache.
    pub kept: usize,
    /// Entries evicted (least-recently-used first).
    pub evicted: usize,
    /// Pinned entries the sweep wanted to evict but skipped (they are
    /// counted in `kept` and still occupy `bytes_after`).
    pub pinned_skipped: usize,
    /// Total entry bytes before the sweep.
    pub bytes_before: u64,
    /// Total entry bytes after the sweep.
    pub bytes_after: u64,
}

/// A directory of content-addressed `ATSS` files. See the [module
/// documentation](self) for the caching contract.
///
/// Clones share the observability counters ([`SpaceStore::metrics`]), so a
/// store handed to worker threads still aggregates into one view.
#[derive(Debug, Clone)]
pub struct SpaceStore {
    dir: PathBuf,
    metrics: Arc<StoreMetrics>,
}

impl SpaceStore {
    /// Open (creating if necessary) a cache directory.
    pub fn new(dir: impl Into<PathBuf>) -> Result<SpaceStore, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| StoreError::io(&dir, e))?;
        Ok(SpaceStore {
            dir,
            metrics: Arc::new(StoreMetrics::default()),
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The store's process-lifetime observability counters.
    pub fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }

    /// The on-disk path an entry with this fingerprint lives at.
    pub fn path_for(&self, fingerprint: &SpecFingerprint) -> PathBuf {
        self.dir.join(format!("{}.atss", fingerprint.to_hex()))
    }

    /// Pin an entry against gc eviction for the lifetime of the returned
    /// guard. Pins nest (same fingerprint may be pinned by several guards)
    /// and are shared across clones of this store; see [`PinGuard`].
    pub fn pin(&self, fingerprint: &SpecFingerprint) -> PinGuard {
        let mut pins = self.metrics.pins.lock().expect("pin table poisoned");
        *pins.entry(*fingerprint).or_insert(0) += 1;
        PinGuard {
            metrics: Arc::clone(&self.metrics),
            fingerprint: *fingerprint,
        }
    }

    /// Whether the entry currently has at least one live [`PinGuard`].
    pub fn is_pinned(&self, fingerprint: &SpecFingerprint) -> bool {
        self.metrics
            .pins
            .lock()
            .expect("pin table poisoned")
            .contains_key(fingerprint)
    }

    /// Distinct fingerprints currently pinned.
    pub fn pinned_count(&self) -> usize {
        self.metrics.pins.lock().expect("pin table poisoned").len()
    }

    /// Construct or load the space for `spec` with default build options.
    pub fn get_or_build(
        &self,
        spec: &SearchSpaceSpec,
        method: Method,
    ) -> Result<(SearchSpace, StoreOutcome), StoreError> {
        self.get_or_build_with(spec, method, BuildOptions::default())
    }

    /// Construct or load the space for `spec`, with explicit build options
    /// and the default [`LoadOptions`] (copying load, sampled index
    /// verification).
    ///
    /// The cache key covers the spec content and the *effective* restriction
    /// lowering (explicit in `options`, or the method's default), so the
    /// optimized and baseline lowerings never share an entry.
    pub fn get_or_build_with(
        &self,
        spec: &SearchSpaceSpec,
        method: Method,
        options: BuildOptions,
    ) -> Result<(SearchSpace, StoreOutcome), StoreError> {
        self.get_or_build_with_options(spec, method, options, LoadOptions::default())
    }

    /// Construct or load the space for `spec`, with explicit build *and*
    /// load options — the full-control entry point: `load` picks the warm
    /// path (copying vs. zero-copy mmap, index rebuild vs. trust vs.
    /// sampled verification; see [`LoadOptions`]).
    ///
    /// A warm load whose persisted index section is unusable still hits —
    /// the index is rebuilt from the arena — but the condition is reported
    /// (outcome's [`LoadReport`], the `index_fallbacks` metric) and the
    /// entry is repaired in place with a freshly written file.
    pub fn get_or_build_with_options(
        &self,
        spec: &SearchSpaceSpec,
        method: Method,
        options: BuildOptions,
        load: LoadOptions,
    ) -> Result<(SearchSpace, StoreOutcome), StoreError> {
        let lowering = options
            .lowering
            .unwrap_or_else(|| method.default_lowering());
        let fingerprint = match SpecFingerprint::compute(spec, lowering) {
            Ok(fp) => fp,
            Err(StoreError::Unfingerprintable(reason)) => {
                let start = Instant::now();
                let (space, report) = build_search_space_with(spec, method, options)
                    .map_err(|e| StoreError::Build(e.to_string()))?;
                self.metrics.uncacheable.fetch_add(1, Ordering::Relaxed);
                at_obs::event("cache-uncacheable", "store", &[]);
                return Ok((
                    space,
                    StoreOutcome {
                        status: CacheStatus::Uncacheable(reason),
                        fingerprint: None,
                        path: None,
                        file_bytes: 0,
                        duration: start.elapsed(),
                        report: Some(report),
                        load: None,
                    },
                ));
            }
            Err(e) => return Err(e),
        };
        let path = self.path_for(&fingerprint);

        // Warm path: serve the validated entry, or fall through to rebuild
        // on *any* content problem.
        if path.exists() {
            let start = Instant::now();
            match StoreReader::open(&path).and_then(|r| r.load(load)) {
                Ok(loaded) => {
                    let duration = start.elapsed();
                    touch(&path);
                    if loaded.report.index_fallback().is_some() {
                        self.metrics.index_fallbacks.fetch_add(1, Ordering::Relaxed);
                        // Repair the stale index in place — best-effort,
                        // and only ever from checksum-verified bytes: a
                        // zero-copy load skipped the arena CRC, so writing
                        // its space back would stamp a fresh valid CRC
                        // over a possibly-rotted arena, laundering the
                        // corruption past every future validation.
                        if loaded.report.is_zero_copy() {
                            let reverified = StoreReader::open(&path).and_then(|r| {
                                r.load(LoadOptions {
                                    mode: LoadMode::Copy,
                                    index: IndexPolicy::Rebuild,
                                })
                            });
                            if let Ok(verified) = reverified {
                                let _ = self.rewrite_entry(&verified.space, &path);
                            }
                            // A content error here means the arena itself
                            // is damaged: leave the entry for `verify`/the
                            // next copying load to catch; the space we
                            // serve carries the documented mmap trust.
                        } else {
                            let _ = self.rewrite_entry(&loaded.space, &path);
                        }
                    }
                    self.metrics.hits.fetch_add(1, Ordering::Relaxed);
                    self.metrics
                        .load_nanos
                        .fetch_add(duration.as_nanos() as u64, Ordering::Relaxed);
                    at_obs::event(
                        "cache-hit",
                        "store",
                        &[
                            ("load_us", duration.as_micros() as u64),
                            ("zero_copy", u64::from(loaded.report.is_zero_copy())),
                        ],
                    );
                    return Ok((
                        loaded.space,
                        StoreOutcome {
                            status: CacheStatus::Hit,
                            fingerprint: Some(fingerprint),
                            path: Some(path),
                            file_bytes: loaded.info.file_bytes,
                            duration,
                            report: None,
                            load: Some(loaded.report),
                        },
                    ));
                }
                Err(e) if e.is_content_error() => {
                    // Stale entry: rebuild below.
                    self.metrics.rebuilds.fetch_add(1, Ordering::Relaxed);
                    at_obs::event("cache-rebuild", "store", &[]);
                }
                Err(e) => return Err(e),
            }
        }

        // Cold path: construct while streaming to a temp file, then rename.
        // The temp name carries pid + a process-wide counter so concurrent
        // builders of the same spec — other processes *or* other threads
        // sharing this store — each stream into their own file; the last
        // rename wins with identical content.
        static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let start = Instant::now();
        let tmp = self.dir.join(format!(
            "{}.tmp-{}-{}",
            fingerprint.to_hex(),
            std::process::id(),
            TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        ));
        let built = (|| {
            let file = File::create(&tmp).map_err(|e| StoreError::io(&tmp, e))?;
            let mut writer =
                StoreWriter::new(BufWriter::new(file), spec.name.clone(), spec.params.clone())?;
            let solved = solve_spec_into(spec, method, options, &mut writer)
                .map_err(|e| StoreError::Build(e.to_string()))?;
            let (space, summary) = writer.finish()?;
            Ok((space, summary, solved))
        })();
        let (space, summary, solved) = match built {
            Ok(parts) => parts,
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                return Err(e);
            }
        };
        if let Err(e) = fs::rename(&tmp, &path) {
            let _ = fs::remove_file(&tmp);
            return Err(StoreError::io(&path, e));
        }

        let mut stats = solved.stats;
        if method == Method::ChainOfTrees {
            stats.solutions = summary.rows;
        }
        let duration = start.elapsed();
        let report = BuildReport {
            method,
            duration,
            stats,
            num_valid: space.len(),
            cartesian_size: spec.cartesian_size(),
            num_constraints: solved.num_constraints,
        };
        self.metrics.misses.fetch_add(1, Ordering::Relaxed);
        at_obs::event(
            "cache-miss",
            "store",
            &[
                ("build_us", duration.as_micros() as u64),
                ("rows", space.len() as u64),
            ],
        );
        Ok((
            space,
            StoreOutcome {
                status: CacheStatus::Miss,
                fingerprint: Some(fingerprint),
                path: Some(path),
                file_bytes: summary.bytes_written,
                duration,
                report: Some(report),
                load: None,
            },
        ))
    }

    /// Atomically replace an entry with a freshly written file for `space`
    /// (used to repair entries whose index section went stale).
    fn rewrite_entry(&self, space: &SearchSpace, path: &Path) -> Result<(), StoreError> {
        static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let tmp = self.dir.join(format!(
            "repair.tmp-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        let result = (|| {
            let file = File::create(&tmp).map_err(|e| StoreError::io(&tmp, e))?;
            let mut out = BufWriter::new(file);
            write_space(space, &mut out)?;
            fs::rename(&tmp, path).map_err(|e| StoreError::io(path, e))
        })();
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        result
    }

    /// List the cache entries, most recently used first.
    pub fn entries(&self) -> Result<Vec<StoreEntry>, StoreError> {
        let mut entries = Vec::new();
        let dir = fs::read_dir(&self.dir).map_err(|e| StoreError::io(&self.dir, e))?;
        for item in dir {
            let item = item.map_err(|e| StoreError::io(&self.dir, e))?;
            let path = item.path();
            if path.extension().and_then(|e| e.to_str()) != Some("atss") {
                continue;
            }
            let fingerprint = match path
                .file_stem()
                .and_then(|s| s.to_str())
                .and_then(SpecFingerprint::from_hex)
            {
                Some(fp) => fp,
                None => continue, // foreign file; not ours to manage
            };
            let meta = item.metadata().map_err(|e| StoreError::io(&path, e))?;
            entries.push(StoreEntry {
                fingerprint,
                bytes: meta.len(),
                modified: meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
                info: peek_info(&path).ok(),
                path,
            });
        }
        entries.sort_by_key(|e| std::cmp::Reverse(e.modified));
        Ok(entries)
    }

    /// Fully validate every entry (checksums, structure, code ranges).
    /// Returns `(entry, None)` for sound entries and `(entry, Some(error))`
    /// for damaged ones. Damaged entries are left in place — `get_or_build`
    /// rebuilds them on next use, or [`SpaceStore::gc`] evicts them.
    pub fn verify(&self) -> Result<Vec<(StoreEntry, Option<StoreError>)>, StoreError> {
        Ok(self
            .entries()?
            .into_iter()
            .map(|entry| {
                let result = read_space_from_path(&entry.path).err();
                (entry, result)
            })
            .collect())
    }

    /// Evict least-recently-used entries until the cache holds at most
    /// `max_bytes` of entries ([`SpaceStore::gc_with`] with only the byte
    /// bound set).
    pub fn gc(&self, max_bytes: u64) -> Result<GcReport, StoreError> {
        self.gc_with(GcOptions {
            max_bytes,
            ..GcOptions::default()
        })
    }

    /// Evict least-recently-used entries until both bounds of `options`
    /// hold (total bytes *and* entry count). Leftover temp files from
    /// crashed builds are removed once they are demonstrably abandoned
    /// (untouched for an hour) — a temp file younger than that may be a
    /// build in progress in another process, which must be left to finish
    /// its atomic rename.
    pub fn gc_with(&self, options: GcOptions) -> Result<GcReport, StoreError> {
        const ABANDONED_TMP_AGE: Duration = Duration::from_secs(3600);
        let span = at_obs::span("cache-gc", "store");
        let dir = fs::read_dir(&self.dir).map_err(|e| StoreError::io(&self.dir, e))?;
        for item in dir.flatten() {
            let name = item.file_name();
            if !name.to_str().is_some_and(|n| n.contains(".tmp-")) {
                continue;
            }
            let abandoned = item
                .metadata()
                .and_then(|m| m.modified())
                .ok()
                .and_then(|mtime| SystemTime::now().duration_since(mtime).ok())
                .is_some_and(|age| age >= ABANDONED_TMP_AGE);
            if abandoned {
                let _ = fs::remove_file(item.path());
            }
        }

        let mut entries = self.entries()?;
        // Oldest last → evict from the back. A pinned entry in eviction
        // position is set aside (it still counts toward the bounds, so the
        // sweep keeps trying younger candidates) and reported as skipped.
        let bytes_before: u64 = entries.iter().map(|e| e.bytes).sum();
        let mut bytes_after = bytes_before;
        let mut evicted = 0usize;
        let mut pinned_kept: Vec<StoreEntry> = Vec::new();
        while bytes_after > options.max_bytes
            || entries.len() + pinned_kept.len() > options.max_entries
        {
            let Some(oldest) = entries.pop() else { break };
            if self.is_pinned(&oldest.fingerprint) {
                pinned_kept.push(oldest);
                continue;
            }
            fs::remove_file(&oldest.path).map_err(|e| StoreError::io(&oldest.path, e))?;
            bytes_after -= oldest.bytes;
            evicted += 1;
        }
        let kept = entries.len() + pinned_kept.len();
        let pinned_skipped = pinned_kept.len();
        self.metrics
            .gc_evictions
            .fetch_add(evicted as u64, Ordering::Relaxed);
        self.metrics
            .gc_pin_skips
            .fetch_add(pinned_skipped as u64, Ordering::Relaxed);
        drop(
            span.arg("evicted", evicted as u64)
                .arg("kept", kept as u64)
                .arg("pinned_skipped", pinned_skipped as u64)
                .arg("bytes_after", bytes_after),
        );
        Ok(GcReport {
            kept,
            evicted,
            pinned_skipped,
            bytes_before,
            bytes_after,
        })
    }
}

/// Content-addressed counterpart of
/// [`at_searchspace::build_search_space_with`]: construct through `store`,
/// serving a cached space when one exists and persisting the construction
/// when one does not.
pub fn build_search_space_cached(
    spec: &SearchSpaceSpec,
    method: Method,
    options: BuildOptions,
    store: &SpaceStore,
) -> Result<(SearchSpace, StoreOutcome), StoreError> {
    store.get_or_build_with(spec, method, options)
}

/// Best-effort LRU bookkeeping: bump the entry's mtime to now.
fn touch(path: &Path) {
    if let Ok(file) = File::options().write(true).open(path) {
        let _ = file.set_times(fs::FileTimes::new().set_modified(SystemTime::now()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_searchspace::{Restriction, TunableParameter};

    fn spec(name: &str, max: i64) -> SearchSpaceSpec {
        SearchSpaceSpec::new(name)
            .with_param(TunableParameter::pow2("x", 5))
            .with_param(TunableParameter::pow2("y", 4))
            .with_expr(&format!("x * y <= {max}"))
    }

    fn fresh_store(tag: &str) -> SpaceStore {
        let dir = std::env::temp_dir().join(format!("at-store-cache-test-{tag}"));
        let _ = fs::remove_dir_all(&dir);
        SpaceStore::new(&dir).unwrap()
    }

    fn spaces_identical(a: &SearchSpace, b: &SearchSpace) {
        assert_eq!(a.name(), b.name());
        assert_eq!(a.arena(), b.arena());
        for view in a.iter() {
            assert_eq!(b.index_of(&view.to_vec()), Some(view.id()));
        }
    }

    #[test]
    fn miss_then_hit_serves_the_identical_space() {
        let store = fresh_store("miss-hit");
        let spec = spec("cached", 16);
        let (cold, out) = store.get_or_build(&spec, Method::Optimized).unwrap();
        assert_eq!(out.status, CacheStatus::Miss);
        assert!(out.report.is_some());
        let path = out.path.clone().unwrap();
        assert!(path.exists());
        assert_eq!(out.file_bytes, fs::metadata(&path).unwrap().len());

        let (warm, out) = store.get_or_build(&spec, Method::Optimized).unwrap();
        assert!(out.status.is_hit());
        assert!(out.report.is_none(), "a hit performs no solving");
        spaces_identical(&cold, &warm);
    }

    #[test]
    fn different_specs_get_different_entries() {
        let store = fresh_store("distinct");
        let (a, out_a) = store
            .get_or_build(&spec("s", 16), Method::Optimized)
            .unwrap();
        let (b, out_b) = store
            .get_or_build(&spec("s", 32), Method::Optimized)
            .unwrap();
        assert_ne!(out_a.fingerprint, out_b.fingerprint);
        assert_ne!(a.len(), b.len());
        assert_eq!(store.entries().unwrap().len(), 2);
    }

    #[test]
    fn corrupt_entries_fall_back_to_rebuild() {
        let store = fresh_store("corrupt");
        let spec = spec("fragile", 16);
        let (cold, out) = store.get_or_build(&spec, Method::Optimized).unwrap();
        let path = out.path.unwrap();

        // Flip one arena byte on disk (located precisely: the bytes after
        // the arena belong to the IDX section, whose damage is repaired on
        // load rather than treated as a stale entry).
        let mut bytes = fs::read(&path).unwrap();
        let parsed = crate::format::parse_structure(&bytes).unwrap();
        let mid = parsed.arena_offset + parsed.arena.len() / 2;
        drop(parsed);
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let (rebuilt, out) = store.get_or_build(&spec, Method::Optimized).unwrap();
        assert_eq!(out.status, CacheStatus::Miss, "corrupt entry must not hit");
        spaces_identical(&cold, &rebuilt);

        // The rebuild overwrote the damaged file: next call hits again.
        let (warm, out) = store.get_or_build(&spec, Method::Optimized).unwrap();
        assert!(out.status.is_hit());
        spaces_identical(&cold, &warm);
    }

    #[test]
    fn truncated_entries_fall_back_to_rebuild() {
        let store = fresh_store("truncated");
        let spec = spec("short", 16);
        let (cold, out) = store.get_or_build(&spec, Method::Optimized).unwrap();
        let path = out.path.unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

        let (rebuilt, out) = store.get_or_build(&spec, Method::Optimized).unwrap();
        assert_eq!(out.status, CacheStatus::Miss);
        spaces_identical(&cold, &rebuilt);
    }

    #[test]
    fn closure_specs_build_but_never_persist() {
        let store = fresh_store("uncacheable");
        let spec = spec("closed", 16).with_restriction(Restriction::func(&["x"], "x >= 2", |v| {
            v[0].as_i64().unwrap() >= 2
        }));
        let (space, out) = store.get_or_build(&spec, Method::Optimized).unwrap();
        assert!(matches!(out.status, CacheStatus::Uncacheable(_)));
        assert!(out.fingerprint.is_none());
        assert!(!space.is_empty());
        assert!(store.entries().unwrap().is_empty(), "nothing persisted");
    }

    #[test]
    fn lowering_is_part_of_the_key() {
        let store = fresh_store("lowering");
        let spec = spec("low", 16);
        let (_, a) = store.get_or_build(&spec, Method::Optimized).unwrap();
        // Brute force defaults to the generic lowering: distinct entry.
        let (_, b) = store.get_or_build(&spec, Method::BruteForce).unwrap();
        assert_eq!(a.status, CacheStatus::Miss);
        assert_eq!(b.status, CacheStatus::Miss);
        assert_ne!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn gc_evicts_least_recently_used_first() {
        let store = fresh_store("gc");
        let specs = [spec("a", 8), spec("b", 16), spec("c", 32)];
        let mut paths = Vec::new();
        for s in &specs {
            let (_, out) = store.get_or_build(s, Method::Optimized).unwrap();
            paths.push(out.path.unwrap());
        }
        // Make the mtimes unambiguous: a is oldest, c newest.
        let base = SystemTime::now() - Duration::from_secs(1000);
        for (i, p) in paths.iter().enumerate() {
            let file = File::options().write(true).open(p).unwrap();
            file.set_times(
                fs::FileTimes::new().set_modified(base + Duration::from_secs(100 * i as u64)),
            )
            .unwrap();
        }
        let total: u64 = paths.iter().map(|p| fs::metadata(p).unwrap().len()).sum();
        let keep_two = total - 1; // forces exactly one eviction
        let report = store.gc(keep_two).unwrap();
        assert_eq!(report.evicted, 1);
        assert_eq!(report.kept, 2);
        assert!(!paths[0].exists(), "oldest entry evicted");
        assert!(paths[1].exists() && paths[2].exists());
        assert!(report.bytes_after <= keep_two);

        // gc(0) empties the cache.
        let report = store.gc(0).unwrap();
        assert_eq!(report.kept, 0);
        assert_eq!(report.bytes_after, 0);
    }

    #[test]
    fn pinned_entries_survive_gc_and_are_reported() {
        let store = fresh_store("gc-pins");
        let specs = [spec("a", 8), spec("b", 16)];
        let mut outs = Vec::new();
        for s in &specs {
            let (_, out) = store.get_or_build(s, Method::Optimized).unwrap();
            outs.push(out);
        }
        let pinned_fp = outs[0].fingerprint.unwrap();
        let pinned_path = outs[0].path.clone().unwrap();
        let other_path = outs[1].path.clone().unwrap();

        let guard = store.pin(&pinned_fp);
        assert!(store.is_pinned(&pinned_fp));
        assert_eq!(store.pinned_count(), 1);
        assert!(store.metrics().summary_line().contains("1 pinned"));

        // gc(0) wants the cache empty; the pinned entry must survive.
        let report = store.gc(0).unwrap();
        assert_eq!(report.evicted, 1);
        assert_eq!(report.kept, 1);
        assert_eq!(report.pinned_skipped, 1);
        assert!(pinned_path.exists(), "pinned entry survived the sweep");
        assert!(!other_path.exists(), "unpinned entry evicted");
        assert!(report.bytes_after > 0);
        assert_eq!(store.metrics().gc_pin_skips(), 1);

        // Dropping the last guard unpins; the next sweep evicts.
        drop(guard);
        assert!(!store.is_pinned(&pinned_fp));
        let report = store.gc(0).unwrap();
        assert_eq!(report.evicted, 1);
        assert_eq!(report.pinned_skipped, 0);
        assert!(!pinned_path.exists());
    }

    #[test]
    fn pins_nest_and_are_shared_across_clones() {
        let store = fresh_store("pin-clones");
        let (_, out) = store
            .get_or_build(&spec("a", 8), Method::Optimized)
            .unwrap();
        let fp = out.fingerprint.unwrap();

        let clone = store.clone();
        let g1 = store.pin(&fp);
        let g2 = clone.pin(&fp);
        assert_eq!(store.pinned_count(), 1, "same fingerprint, one pin slot");
        assert!(clone.is_pinned(&fp));
        drop(g1);
        assert!(store.is_pinned(&fp), "second guard still holds the pin");
        drop(g2);
        assert!(!store.is_pinned(&fp));
        assert_eq!(clone.pinned_count(), 0);
        assert_eq!(store.metrics().pinned_now(), 0);
    }

    #[test]
    fn gc_sweeps_abandoned_temp_files_but_spares_live_ones() {
        let store = fresh_store("tmp-sweep");
        let abandoned = store.dir().join("deadbeef.tmp-12345-0");
        fs::write(&abandoned, b"half a file").unwrap();
        let file = File::options().write(true).open(&abandoned).unwrap();
        file.set_times(
            fs::FileTimes::new().set_modified(SystemTime::now() - Duration::from_secs(7200)),
        )
        .unwrap();
        // A fresh temp file may be another builder mid-write: must survive.
        let live = store.dir().join("cafebabe.tmp-67890-0");
        fs::write(&live, b"being written right now").unwrap();

        store.gc(u64::MAX).unwrap();
        assert!(!abandoned.exists(), "hour-old temp file swept");
        assert!(live.exists(), "fresh temp file left for its builder");
    }

    #[test]
    fn concurrent_builders_of_the_same_spec_do_not_corrupt_each_other() {
        let store = fresh_store("concurrent");
        let spec = spec("raced", 16);
        let (reference, _) = store.get_or_build(&spec, Method::Optimized).unwrap();
        let _ = store.gc(0); // empty the cache again

        let results: Vec<SearchSpace> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let store = store.clone();
                    let spec = spec.clone();
                    s.spawn(move || store.get_or_build(&spec, Method::Optimized).unwrap().0)
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for space in &results {
            spaces_identical(&reference, space);
        }
        // Whatever survived on disk is a sound entry serving the same space.
        let (served, outcome) = store.get_or_build(&spec, Method::Optimized).unwrap();
        assert!(outcome.status.is_hit());
        spaces_identical(&reference, &served);
    }

    #[test]
    fn verify_reports_damage_per_entry() {
        let store = fresh_store("verify");
        let (_, good) = store
            .get_or_build(&spec("good", 16), Method::Optimized)
            .unwrap();
        let (_, bad) = store
            .get_or_build(&spec("bad", 32), Method::Optimized)
            .unwrap();
        let bad_path = bad.path.unwrap();
        let mut bytes = fs::read(&bad_path).unwrap();
        let len = bytes.len();
        bytes[len - 30] ^= 0x01;
        fs::write(&bad_path, &bytes).unwrap();

        let results = store.verify().unwrap();
        assert_eq!(results.len(), 2);
        for (entry, error) in results {
            if Some(&entry.path) == good.path.as_ref() {
                assert!(error.is_none(), "sound entry flagged: {error:?}");
            } else {
                assert!(error.is_some(), "damaged entry not flagged");
            }
        }
    }

    #[test]
    fn entries_carry_header_metadata() {
        let store = fresh_store("entries");
        store
            .get_or_build(&spec("meta", 16), Method::Optimized)
            .unwrap();
        let entries = store.entries().unwrap();
        assert_eq!(entries.len(), 1);
        let info = entries[0].info.as_ref().unwrap();
        assert_eq!(info.name, "meta");
        assert_eq!(info.num_params, 2);
        assert!(entries[0].bytes > 0);
    }

    #[test]
    fn metrics_count_hits_misses_and_rebuilds() {
        let store = fresh_store("metrics");
        let spec = spec("counted", 16);
        assert_eq!(store.metrics().hits(), 0);
        store.get_or_build(&spec, Method::Optimized).unwrap();
        store.get_or_build(&spec, Method::Optimized).unwrap();
        let clone = store.clone();
        clone.get_or_build(&spec, Method::Optimized).unwrap();
        assert_eq!(store.metrics().misses(), 1);
        assert_eq!(store.metrics().hits(), 2, "clones share the counters");
        assert_eq!(store.metrics().rebuilds(), 0);
        assert!(store.metrics().mean_load_time().is_some());

        // Damage the entry: the next get is a miss counted as a rebuild.
        let path = store.path_for(
            &SpecFingerprint::compute(&spec, Method::Optimized.default_lowering()).unwrap(),
        );
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 4]).unwrap();
        store.get_or_build(&spec, Method::Optimized).unwrap();
        assert_eq!(store.metrics().misses(), 2);
        assert_eq!(store.metrics().rebuilds(), 1);
        let line = store.metrics().summary_line();
        assert!(line.contains("2 hits"), "{line}");
        assert!(line.contains("1 rebuilds"), "{line}");
    }

    #[test]
    fn stale_index_hits_with_a_report_and_is_repaired() {
        let store = fresh_store("stale-index");
        let spec = spec("stale", 16);
        let (original, out) = store.get_or_build(&spec, Method::Optimized).unwrap();
        let path = out.path.unwrap();

        // Damage one byte of the IDX slot array (last byte before the CRC
        // + trailer): the arena stays sound.
        let mut bytes = fs::read(&path).unwrap();
        let pristine_len = bytes.len();
        let at = pristine_len - 16 - 4 - 1;
        bytes[at] ^= 0x04;
        fs::write(&path, &bytes).unwrap();

        let (served, out) = store.get_or_build(&spec, Method::Optimized).unwrap();
        assert!(
            out.status.is_hit(),
            "index damage must not force a re-solve"
        );
        let report = out.load.unwrap();
        assert!(report.index_fallback().unwrap().contains("checksum"));
        assert_eq!(store.metrics().index_fallbacks(), 1);
        spaces_identical(&original, &served);

        // The entry was repaired in place: the next load adopts the index.
        let (served, out) = store.get_or_build(&spec, Method::Optimized).unwrap();
        assert!(out.status.is_hit());
        assert!(out.load.unwrap().index_fallback().is_none(), "repaired");
        spaces_identical(&original, &served);
    }

    #[test]
    fn zero_copy_index_fallback_never_launders_a_corrupt_arena() {
        let store = fresh_store("launder");
        let spec = spec("laundered", 16);
        let (_, out) = store.get_or_build(&spec, Method::Optimized).unwrap();
        let path = out.path.unwrap();

        // Damage the arena AND the IDX section. The arena damage swaps two
        // distinct in-dictionary codes within one column — undetectable by
        // code-range validation, only by the arena CRC (the exact shape
        // that could be laundered). The zero-copy load trusts the arena by
        // design, so it still hits — but the repair machinery must not
        // rewrite the entry from unverified bytes (that would stamp a
        // fresh valid CRC over the rot).
        let mut bytes = fs::read(&path).unwrap();
        let parsed = crate::format::parse_structure(&bytes).unwrap();
        let arena_at = parsed.arena_offset;
        let arena_len = parsed.arena.len();
        drop(parsed);
        let stride_bytes = 2 * 4; // two params
        let (a, b) = (0..arena_len / stride_bytes - 1)
            .map(|row| {
                (
                    arena_at + row * stride_bytes,
                    arena_at + (row + 1) * stride_bytes,
                )
            })
            .find(|&(a, b)| bytes[a..a + 4] != bytes[b..b + 4])
            .expect("two adjacent rows differing in column 0");
        let cell: [u8; 4] = bytes[a..a + 4].try_into().unwrap();
        bytes.copy_within(b..b + 4, a);
        bytes[b..b + 4].copy_from_slice(&cell);
        let len = bytes.len();
        bytes[len - 16 - 4 - 1] ^= 0x04; // IDX slot byte
        fs::write(&path, &bytes).unwrap();

        let (_, out) = store
            .get_or_build_with_options(
                &spec,
                Method::Optimized,
                BuildOptions::default(),
                LoadOptions::mmap_trusted(),
            )
            .unwrap();
        if cfg!(target_os = "linux") {
            assert!(out.status.is_hit(), "mmap trust semantics");
            assert!(out.load.unwrap().index_fallback().is_some());
            // The entry must still be detectably damaged afterwards.
            assert!(
                read_space_from_path(&path).is_err(),
                "repair must not launder an unverified arena"
            );
        }

        // A default (copying, CRC-verified) get now rebuilds and repairs.
        let (_, out) = store.get_or_build(&spec, Method::Optimized).unwrap();
        assert_eq!(out.status, CacheStatus::Miss);
        assert!(read_space_from_path(&path).is_ok());
    }

    #[test]
    fn mmap_load_options_serve_zero_copy_hits() {
        let store = fresh_store("mmap-hit");
        let spec = spec("mapped", 16);
        let (cold, _) = store.get_or_build(&spec, Method::Optimized).unwrap();
        let (warm, out) = store
            .get_or_build_with_options(
                &spec,
                Method::Optimized,
                BuildOptions::default(),
                LoadOptions::mmap_trusted(),
            )
            .unwrap();
        assert!(out.status.is_hit());
        let report = out.load.unwrap();
        if cfg!(target_os = "linux") {
            assert!(report.is_zero_copy(), "{report:?}");
            assert!(warm.is_zero_copy());
        }
        spaces_identical(&cold, &warm);
    }

    #[test]
    fn gc_enforces_the_entry_count_bound() {
        let store = fresh_store("gc-entries");
        for (i, s) in [spec("a", 8), spec("b", 16), spec("c", 32)]
            .iter()
            .enumerate()
        {
            let (_, out) = store.get_or_build(s, Method::Optimized).unwrap();
            // Unambiguous LRU order.
            let file = File::options().write(true).open(out.path.unwrap()).unwrap();
            file.set_times(
                fs::FileTimes::new()
                    .set_modified(SystemTime::now() - Duration::from_secs(1000 - 100 * i as u64)),
            )
            .unwrap();
        }
        let report = store
            .gc_with(GcOptions {
                max_entries: 2,
                ..GcOptions::default()
            })
            .unwrap();
        assert_eq!(report.evicted, 1);
        assert_eq!(report.kept, 2);
        assert_eq!(store.entries().unwrap().len(), 2);
        // The byte bound still composes with the entry bound.
        let report = store
            .gc_with(GcOptions {
                max_bytes: 0,
                max_entries: 2,
            })
            .unwrap();
        assert_eq!(report.kept, 0);
    }

    #[test]
    fn cached_entry_point_matches_builder() {
        let store = fresh_store("entry-point");
        let spec = spec("entry", 16);
        let (via_cache, _) =
            build_search_space_cached(&spec, Method::Optimized, BuildOptions::default(), &store)
                .unwrap();
        let (via_builder, _) =
            at_searchspace::build_search_space(&spec, Method::Optimized).unwrap();
        spaces_identical(&via_builder, &via_cache);
    }
}
