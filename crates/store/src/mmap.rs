//! A hand-rolled `mmap(2)` wrapper: zero-copy file views without new deps.
//!
//! The zero-copy load path serves a `SearchSpace` arena (and optionally its
//! membership-table slots) straight out of the store file. The container
//! policy is "no new dependencies", so instead of the `memmap2` crate this
//! module declares the two syscalls it needs against the C library Rust
//! already links on Linux. Everything else — platform gating, alignment,
//! lifetime safety — is handled here:
//!
//! * **Platform**: real mapping on `target_os = "linux"` only (the constants
//!   below are Linux's). Elsewhere [`MappedFile::map`] returns
//!   [`MapError::Unsupported`] and callers fall back to the copying load.
//! * **Alignment**: `mmap` returns page-aligned memory, so a `&[u32]` view
//!   at byte offset `o` is valid iff `o % 4 == 0`. The v2 `ATSS` layout
//!   guarantees this for the arena and `IDX` sections; v1 files (no
//!   alignment rule) take the copying fallback.
//! * **Lifetime**: [`MappedCodes`] owns an `Arc` of the mapping, so a view
//!   can never outlive the `munmap`. The mapping is `MAP_PRIVATE` and
//!   `PROT_READ`: the file cannot be written through it, and writes *to*
//!   the file by others do not tear our pages' consistency guarantees any
//!   further than an owned read racing the same writer would.

use std::fmt;
use std::fs::File;
use std::sync::Arc;

use at_searchspace::CodeBacking;

/// Why a file could not be mapped. Callers treat every variant as "use the
/// copying load instead"; none of them is a content error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// This build has no mmap support (non-Linux target).
    Unsupported,
    /// The `mmap(2)` call itself failed (errno in the payload).
    Syscall(i32),
    /// A requested `u32` view is not 4-byte aligned or out of the mapped
    /// range (v1 files, or a corrupt length field).
    BadRange {
        /// Byte offset of the requested view.
        offset: usize,
        /// Byte length of the requested view.
        len: usize,
    },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Unsupported => write!(f, "memory mapping is not supported on this platform"),
            MapError::Syscall(errno) => write!(f, "mmap failed (errno {errno})"),
            MapError::BadRange { offset, len } => write!(
                f,
                "cannot view {len} bytes at offset {offset} as aligned u32s"
            ),
        }
    }
}

impl std::error::Error for MapError {}

#[cfg(target_os = "linux")]
mod sys {
    use std::ffi::c_void;
    use std::os::unix::io::RawFd;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: i32,
            flags: i32,
            fd: RawFd,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, length: usize) -> i32;
        pub fn __errno_location() -> *mut i32;
    }
}

/// A read-only, private memory mapping of a whole file.
///
/// The mapped bytes are valid for the lifetime of this value; dropping it
/// unmaps. A zero-length file maps to an empty slice without a syscall
/// (Linux rejects `mmap` with length 0).
pub struct MappedFile {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the mapping is PROT_READ and never mutated or remapped after
// construction; a shared `&[u8]` over it is as thread-safe as any other
// immutable buffer.
unsafe impl Send for MappedFile {}
unsafe impl Sync for MappedFile {}

impl fmt::Debug for MappedFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MappedFile")
            .field("len", &self.len)
            .finish()
    }
}

impl MappedFile {
    /// Map the whole of `file` read-only.
    #[cfg(target_os = "linux")]
    pub fn map(file: &File) -> Result<MappedFile, MapError> {
        use std::os::unix::io::AsRawFd;
        let len64 = file
            .metadata()
            .map_err(|e| MapError::Syscall(e.raw_os_error().unwrap_or(0)))?
            .len();
        // A file larger than the address space (32-bit targets) cannot be
        // mapped whole; fall back to the copying load's own error handling
        // rather than mapping a silently truncated prefix.
        let Ok(len) = usize::try_from(len64) else {
            return Err(MapError::Unsupported);
        };
        if len == 0 {
            return Ok(MappedFile {
                ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(),
                len: 0,
            });
        }
        // SAFETY: a fresh PROT_READ/MAP_PRIVATE mapping of a file we hold
        // open; the kernel chooses the address. The result is checked for
        // MAP_FAILED before use.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            // SAFETY: reading the thread-local errno after a failed syscall.
            let errno = unsafe { *sys::__errno_location() };
            return Err(MapError::Syscall(errno));
        }
        Ok(MappedFile {
            ptr: ptr.cast_const().cast::<u8>(),
            len,
        })
    }

    /// Map the whole of `file` read-only (unsupported on this platform).
    #[cfg(not(target_os = "linux"))]
    pub fn map(_file: &File) -> Result<MappedFile, MapError> {
        Err(MapError::Unsupported)
    }

    /// The mapped bytes.
    pub fn bytes(&self) -> &[u8] {
        // SAFETY: `ptr` is valid for `len` bytes for the life of `self`
        // (empty mappings use a dangling-but-well-aligned pointer with
        // len 0, which `from_raw_parts` permits).
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Number of mapped bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for MappedFile {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if self.len > 0 {
            // SAFETY: unmapping exactly the range mmap returned, once.
            unsafe {
                sys::munmap(self.ptr.cast_mut().cast(), self.len);
            }
        }
    }
}

/// A `u32` view over an aligned byte range of a [`MappedFile`] — the
/// [`CodeBacking`] the zero-copy load hands to
/// [`at_searchspace::ArenaStorage::Shared`]. Keeps the mapping alive via
/// `Arc`, so views into the same file (arena + index slots) share one
/// mapping.
#[derive(Debug, Clone)]
pub struct MappedCodes {
    map: Arc<MappedFile>,
    /// Byte offset of the view (4-byte aligned, checked at construction).
    offset: usize,
    /// Number of `u32` codes in the view.
    num_codes: usize,
}

impl MappedCodes {
    /// A view of `len_bytes` bytes at `offset`. Fails unless the range is
    /// in bounds, 4-byte aligned and a whole number of `u32`s.
    pub fn new(map: Arc<MappedFile>, offset: usize, len_bytes: usize) -> Result<Self, MapError> {
        let bad = MapError::BadRange {
            offset,
            len: len_bytes,
        };
        if !offset.is_multiple_of(4) || !len_bytes.is_multiple_of(4) {
            return Err(bad);
        }
        let end = offset.checked_add(len_bytes).ok_or(bad.clone())?;
        if end > map.len() {
            return Err(bad);
        }
        Ok(MappedCodes {
            map,
            offset,
            num_codes: len_bytes / 4,
        })
    }
}

impl CodeBacking for MappedCodes {
    fn codes(&self) -> &[u32] {
        if self.num_codes == 0 {
            return &[];
        }
        // SAFETY: construction checked that the byte range is in bounds and
        // 4-byte aligned; `mmap` memory is page-aligned so `base + offset`
        // is u32-aligned; the mapping outlives `self` via the Arc; every
        // bit pattern is a valid u32. This assumes a little-endian target —
        // the zero-copy path is only taken on LE (see `format.rs`), BE
        // targets always copy-and-convert.
        unsafe {
            let base = self.map.bytes().as_ptr().add(self.offset);
            std::slice::from_raw_parts(base.cast::<u32>(), self.num_codes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(bytes: &[u8]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("at-store-mmap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("f{}.bin", bytes.len()));
        let mut f = File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        path
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn maps_a_file_and_reads_codes() {
        let codes: Vec<u32> = (0..1000).collect();
        let bytes: Vec<u8> = codes.iter().flat_map(|c| c.to_le_bytes()).collect();
        let path = temp_file(&bytes);
        let map = Arc::new(MappedFile::map(&File::open(&path).unwrap()).unwrap());
        assert_eq!(map.bytes(), &bytes[..]);
        let view = MappedCodes::new(Arc::clone(&map), 0, bytes.len()).unwrap();
        assert_eq!(view.codes(), &codes[..]);
        let tail = MappedCodes::new(Arc::clone(&map), 4, 8).unwrap();
        assert_eq!(tail.codes(), &[1, 2]);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn rejects_misaligned_and_out_of_range_views() {
        let path = temp_file(&[0u8; 64]);
        let map = Arc::new(MappedFile::map(&File::open(&path).unwrap()).unwrap());
        assert!(MappedCodes::new(Arc::clone(&map), 2, 8).is_err());
        assert!(MappedCodes::new(Arc::clone(&map), 0, 6).is_err());
        assert!(MappedCodes::new(Arc::clone(&map), 60, 8).is_err());
        assert!(MappedCodes::new(Arc::clone(&map), 64, 0).is_ok());
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn empty_files_map_to_empty_slices() {
        let path = temp_file(&[]);
        let map = Arc::new(MappedFile::map(&File::open(&path).unwrap()).unwrap());
        assert!(map.is_empty());
        assert_eq!(map.bytes(), &[] as &[u8]);
        let view = MappedCodes::new(map, 0, 0).unwrap();
        assert_eq!(view.codes(), &[] as &[u32]);
    }
}
