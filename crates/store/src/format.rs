//! The `ATSS` binary format: reading and writing resolved search spaces.
//!
//! See the [crate documentation](crate) for the byte-by-byte layout. The
//! design constraints, in order:
//!
//! 1. **Close to the internal representation** (paper Section 4.3.4): the
//!    configuration arena is written verbatim as little-endian `u32` value
//!    codes — loading performs no decoding and no re-encoding, only the one
//!    membership-table build every `SearchSpace` constructor needs.
//! 2. **Streamable**: [`StoreWriter`] implements the solver sink interface,
//!    so the file is written *while* the space is constructed; nothing in
//!    the layout requires knowing the row count up front (it lives in the
//!    trailer).
//! 3. **Self-validating**: magic + version up front, a CRC-32 per metadata
//!    section, and a CRC-32 of the arena in the trailer. Any flipped byte
//!    or truncation is detected before content is adopted.

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

use at_csp::sink::{RowSink, SolutionSink};
use at_csp::{CspError, CspResult, Value};
use at_searchspace::{EncodingSink, SearchSpace, TunableParameter};

use crate::checksum::{crc32, Crc32};
use crate::error::StoreError;

/// The four magic bytes every store file starts with.
pub const MAGIC: [u8; 4] = *b"ATSS";

/// The format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// Section tags (4 bytes each).
const TAG_HEADER: [u8; 4] = *b"HDR\0";
const TAG_PARAMS: [u8; 4] = *b"PAR\0";
const TAG_ARENA: [u8; 4] = *b"ARN\0";
const TAG_END: [u8; 4] = *b"END\0";

/// Value-encoding tag bytes.
const VAL_INT: u8 = 1;
const VAL_FLOAT: u8 = 2;
const VAL_BOOL: u8 = 3;
const VAL_STR: u8 = 4;

/// Size of the fixed trailer: tag (4) + row count (8) + arena CRC-32 (4).
const TRAILER_LEN: usize = 16;

/// Flush the pending arena codes to the writer once this many accumulate
/// (64 KiB of file bytes), so streaming writes stay amortised.
const FLUSH_CODES: usize = 16 * 1024;

// ---------------------------------------------------------------------------
// byte-level encoding helpers
// ---------------------------------------------------------------------------

fn push_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_str(buf: &mut Vec<u8>, s: &str) {
    push_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Canonical byte encoding of one [`Value`]: a tag byte plus a fixed or
/// length-prefixed payload. Shared by the params section and the spec
/// fingerprint, so both agree on what "the same value" means.
pub(crate) fn push_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(i) => {
            buf.push(VAL_INT);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            buf.push(VAL_FLOAT);
            buf.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Bool(b) => {
            buf.push(VAL_BOOL);
            buf.push(u8::from(*b));
        }
        Value::Str(s) => {
            buf.push(VAL_STR);
            push_str(buf, s);
        }
    }
}

/// A bounds-checked reading cursor over a byte slice; every overrun becomes
/// a [`StoreError::Corrupt`] for the named section.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8], section: &'static str) -> Cursor<'a> {
        Cursor {
            bytes,
            pos: 0,
            section,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let slice = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(StoreError::corrupt(
                self.section,
                format!(
                    "needed {n} bytes at offset {}, only {} available",
                    self.pos,
                    self.bytes.len() - self.pos
                ),
            )),
        }
    }

    fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn str(&mut self) -> Result<String, StoreError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::corrupt(self.section, "string is not valid UTF-8"))
    }

    fn value(&mut self) -> Result<Value, StoreError> {
        match self.u8()? {
            VAL_INT => Ok(Value::Int(i64::from_le_bytes(
                self.take(8)?.try_into().expect("8 bytes"),
            ))),
            VAL_FLOAT => Ok(Value::Float(f64::from_bits(u64::from_le_bytes(
                self.take(8)?.try_into().expect("8 bytes"),
            )))),
            VAL_BOOL => Ok(Value::Bool(self.u8()? != 0)),
            VAL_STR => Ok(Value::str(self.str()?)),
            tag => Err(StoreError::corrupt(
                self.section,
                format!("unknown value tag {tag}"),
            )),
        }
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

// ---------------------------------------------------------------------------
// section writing
// ---------------------------------------------------------------------------

/// Write one framed metadata section: tag, payload length, payload, CRC-32.
/// Returns the number of file bytes written.
fn write_section<W: Write>(out: &mut W, tag: [u8; 4], payload: &[u8]) -> io::Result<u64> {
    out.write_all(&tag)?;
    out.write_all(&(payload.len() as u64).to_le_bytes())?;
    out.write_all(payload)?;
    out.write_all(&crc32(payload).to_le_bytes())?;
    Ok(4 + 8 + payload.len() as u64 + 4)
}

fn header_payload(name: &str, num_params: usize) -> Vec<u8> {
    let mut buf = Vec::with_capacity(name.len() + 8);
    push_str(&mut buf, name);
    push_u32(&mut buf, num_params as u32);
    buf
}

fn params_payload(params: &[TunableParameter]) -> Vec<u8> {
    let mut buf = Vec::new();
    for p in params {
        push_str(&mut buf, p.name());
        push_u32(&mut buf, p.len() as u32);
        for v in p.values() {
            push_value(&mut buf, v);
        }
    }
    buf
}

/// Write the file preamble (magic, version, header section, params section,
/// arena tag). Returns the number of bytes written.
fn write_preamble<W: Write>(
    out: &mut W,
    name: &str,
    params: &[TunableParameter],
) -> io::Result<u64> {
    out.write_all(&MAGIC)?;
    out.write_all(&FORMAT_VERSION.to_le_bytes())?;
    let mut bytes = 8u64;
    bytes += write_section(out, TAG_HEADER, &header_payload(name, params.len()))?;
    bytes += write_section(out, TAG_PARAMS, &params_payload(params))?;
    out.write_all(&TAG_ARENA)?;
    Ok(bytes + 4)
}

/// Write the fixed trailer (end tag, row count, arena CRC-32).
fn write_trailer<W: Write>(out: &mut W, rows: u64, arena_crc: u32) -> io::Result<u64> {
    out.write_all(&TAG_END)?;
    out.write_all(&rows.to_le_bytes())?;
    out.write_all(&arena_crc.to_le_bytes())?;
    Ok(TRAILER_LEN as u64)
}

/// Summary of one completed store write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreSummary {
    /// Number of configuration rows persisted.
    pub rows: u64,
    /// Total file bytes written (preamble + arena + trailer).
    pub bytes_written: u64,
}

/// Persist an already-resolved [`SearchSpace`] to a writer.
///
/// The arena is taken from [`SearchSpace::arena`] verbatim; nothing is
/// decoded. For persisting a space *while* it is constructed, use
/// [`StoreWriter`] instead.
pub fn write_space<W: Write>(space: &SearchSpace, out: &mut W) -> Result<StoreSummary, StoreError> {
    let io_err = |source| StoreError::Io { path: None, source };
    let mut bytes = write_preamble(out, space.name(), space.params()).map_err(io_err)?;
    let mut crc = Crc32::new();
    let mut buf = Vec::with_capacity(4 * FLUSH_CODES.min(space.arena().len().max(1)));
    for chunk in space.arena().chunks(FLUSH_CODES) {
        buf.clear();
        for &code in chunk {
            buf.extend_from_slice(&code.to_le_bytes());
        }
        crc.update(&buf);
        out.write_all(&buf).map_err(io_err)?;
        bytes += buf.len() as u64;
    }
    bytes += write_trailer(out, space.len() as u64, crc.finish()).map_err(io_err)?;
    out.flush().map_err(io_err)?;
    Ok(StoreSummary {
        rows: space.len() as u64,
        bytes_written: bytes,
    })
}

/// Persist a space to a file path (plain create + write; for atomic
/// temp-file + rename semantics, go through `SpaceStore`).
pub fn write_space_to_path(
    space: &SearchSpace,
    path: impl AsRef<Path>,
) -> Result<StoreSummary, StoreError> {
    let path = path.as_ref();
    let file = File::create(path).map_err(|e| StoreError::io(path, e))?;
    let mut out = io::BufWriter::new(file);
    write_space(space, &mut out).map_err(|e| match e {
        StoreError::Io { path: None, source } => StoreError::io(path, source),
        other => other,
    })
}

// ---------------------------------------------------------------------------
// streaming writer (the solver sink)
// ---------------------------------------------------------------------------

/// A solver sink that persists the space to a writer *while* it is
/// constructed, and still hands back the in-memory [`SearchSpace`] at the
/// end.
///
/// `StoreWriter` wraps an [`EncodingSink`]: every row a solver pushes is
/// encoded to `u32` value codes exactly once, appended to the in-memory
/// arena, and the arena suffix not yet on disk is flushed to the writer in
/// 64 KiB batches. Parallel solvers get per-thread encoding chunks exactly
/// as with a plain `EncodingSink`; merged chunks are flushed the same way.
/// No row is ever encoded twice, and the peak decoded footprint stays one
/// row per active worker thread.
///
/// Call [`StoreWriter::finish`] to write the trailer and obtain the
/// resolved space plus a [`StoreSummary`]. Dropping the writer without
/// finishing leaves a file without a trailer, which readers reject — a
/// crashed construction can never be mistaken for a complete store file.
#[derive(Debug)]
pub struct StoreWriter<W: Write> {
    sink: EncodingSink,
    out: W,
    /// Number of arena codes already written to `out`.
    flushed: usize,
    crc: Crc32,
    bytes_written: u64,
    /// Reusable code→byte conversion buffer.
    byte_buf: Vec<u8>,
}

impl<W: Write> StoreWriter<W> {
    /// Start a store file: writes magic, version, header and parameter
    /// dictionaries immediately, leaving the writer positioned at the
    /// arena. Rows pushed later must be in parameter declaration order.
    pub fn new(
        mut out: W,
        name: impl Into<String>,
        params: Vec<TunableParameter>,
    ) -> Result<Self, StoreError> {
        let name = name.into();
        let bytes_written = write_preamble(&mut out, &name, &params)
            .map_err(|source| StoreError::Io { path: None, source })?;
        let sink = EncodingSink::new(name, params)?;
        Ok(StoreWriter {
            sink,
            out,
            flushed: 0,
            crc: Crc32::new(),
            bytes_written,
            byte_buf: Vec::new(),
        })
    }

    /// Number of rows received so far.
    pub fn rows(&self) -> usize {
        self.sink.rows()
    }

    /// Write the arena suffix that is not yet on disk. `force` flushes any
    /// pending amount; otherwise flushing waits for a 64 KiB batch.
    fn flush_pending(&mut self, force: bool) -> io::Result<()> {
        let codes = self.sink.codes();
        let pending = codes.len() - self.flushed;
        if pending == 0 || (!force && pending < FLUSH_CODES) {
            return Ok(());
        }
        self.byte_buf.clear();
        self.byte_buf.reserve(pending * 4);
        for &code in &codes[self.flushed..] {
            self.byte_buf.extend_from_slice(&code.to_le_bytes());
        }
        self.crc.update(&self.byte_buf);
        self.out.write_all(&self.byte_buf)?;
        self.bytes_written += self.byte_buf.len() as u64;
        self.flushed = codes.len();
        Ok(())
    }

    /// Flush the remaining arena, write the trailer, and return the
    /// resolved in-memory space together with a write summary.
    pub fn finish(mut self) -> Result<(SearchSpace, StoreSummary), StoreError> {
        let io_err = |source| StoreError::Io { path: None, source };
        self.flush_pending(true).map_err(io_err)?;
        let rows = self.sink.rows() as u64;
        self.bytes_written +=
            write_trailer(&mut self.out, rows, self.crc.finish()).map_err(io_err)?;
        self.out.flush().map_err(io_err)?;
        let space = self.sink.finish()?;
        Ok((
            space,
            StoreSummary {
                rows,
                bytes_written: self.bytes_written,
            },
        ))
    }
}

/// Carry an I/O failure across the solver boundary (solvers speak
/// [`CspError`]).
fn io_to_csp(e: io::Error) -> CspError {
    CspError::Solver(format!("store writer: {e}"))
}

impl<W: Write + Send + Sync + 'static> RowSink for StoreWriter<W> {
    fn push_row(&mut self, row: &[Value]) -> CspResult<()> {
        self.sink.push_row(row)?;
        self.flush_pending(false).map_err(io_to_csp)
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

impl<W: Write + Send + Sync + 'static> SolutionSink for StoreWriter<W> {
    fn new_chunk(&self) -> Box<dyn RowSink> {
        // Worker threads encode into plain EncodingSink chunks; the file is
        // only touched on merge, which happens on the solver's own thread.
        self.sink.new_chunk()
    }

    fn merge_chunk(&mut self, chunk: Box<dyn RowSink>) -> CspResult<()> {
        self.sink.merge_chunk(chunk)?;
        self.flush_pending(false).map_err(io_to_csp)
    }
}

// ---------------------------------------------------------------------------
// reading
// ---------------------------------------------------------------------------

/// Metadata of one store file, available without decoding the arena.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreInfo {
    /// Format version recorded in the file.
    pub version: u32,
    /// The persisted space's name.
    pub name: String,
    /// Number of tunable parameters (the arena stride).
    pub num_params: usize,
    /// Number of configuration rows.
    pub num_rows: usize,
    /// Total file size in bytes.
    pub file_bytes: u64,
}

/// A fully validated, parsed store file, ready to be turned into a
/// [`SearchSpace`].
///
/// Opening a reader checks everything: magic, version, section framing,
/// all CRC-32s, and that the arena length matches the trailer's row count.
/// [`StoreReader::into_space`] then adopts the codes through
/// [`SearchSpace::from_code_rows`] — zero re-solving, zero re-encoding.
#[derive(Debug)]
pub struct StoreReader {
    info: StoreInfo,
    params: Vec<TunableParameter>,
    codes: Vec<u32>,
}

/// The structurally validated parts of a store file: every metadata section
/// parsed and CRC-checked, the arena located and length-checked — but the
/// arena's own CRC not yet verified (so it can overlap the index build).
struct ParsedFile<'a> {
    info: StoreInfo,
    params: Vec<TunableParameter>,
    arena: &'a [u8],
    arena_crc: u32,
}

impl StoreReader {
    /// Read and validate a store file from disk.
    pub fn open(path: impl AsRef<Path>) -> Result<StoreReader, StoreError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| StoreError::io(path, e))?;
        StoreReader::from_bytes(&bytes)
    }

    /// Parse and validate a store file from a byte slice.
    pub fn from_bytes(bytes: &[u8]) -> Result<StoreReader, StoreError> {
        let parsed = parse_structure(bytes)?;
        if crc32(parsed.arena) != parsed.arena_crc {
            return Err(StoreError::corrupt("arena", "checksum mismatch"));
        }
        let codes = decode_codes(parsed.arena);
        Ok(StoreReader {
            info: parsed.info,
            params: parsed.params,
            codes,
        })
    }

    /// The file's metadata.
    pub fn info(&self) -> &StoreInfo {
        &self.info
    }

    /// The decoded parameter dictionaries.
    pub fn params(&self) -> &[TunableParameter] {
        &self.params
    }

    /// Rebuild the [`SearchSpace`] by adopting the stored arena.
    pub fn into_space(self) -> Result<(SearchSpace, StoreInfo), StoreError> {
        let StoreReader {
            info,
            params,
            codes,
        } = self;
        let space = SearchSpace::from_code_rows(info.name.clone(), params, info.num_rows, codes)?;
        Ok((space, info))
    }
}

/// Parse and validate everything except the arena checksum.
fn parse_structure(bytes: &[u8]) -> Result<ParsedFile<'_>, StoreError> {
    // Magic + version.
    if bytes.len() < 8 + TRAILER_LEN {
        return Err(StoreError::corrupt(
            "header",
            format!(
                "file holds {} bytes, too short for any store file",
                bytes.len()
            ),
        ));
    }
    if bytes[0..4] != MAGIC {
        return Err(StoreError::BadMagic {
            found: bytes[0..4].try_into().expect("4 bytes"),
        });
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }

    // Framed metadata sections.
    let mut pos = 8usize;
    let header = read_section(bytes, &mut pos, TAG_HEADER, "header")?;
    let mut cur = Cursor::new(header, "header");
    let name = cur.str()?;
    let num_params = cur.u32()? as usize;
    if !cur.done() {
        return Err(StoreError::corrupt("header", "trailing bytes after header"));
    }

    let params_bytes = read_section(bytes, &mut pos, TAG_PARAMS, "params")?;
    let mut cur = Cursor::new(params_bytes, "params");
    let mut params = Vec::with_capacity(num_params);
    for _ in 0..num_params {
        let pname = cur.str()?;
        let count = cur.u32()? as usize;
        let mut values = Vec::with_capacity(count);
        for _ in 0..count {
            values.push(cur.value()?);
        }
        let param = TunableParameter::new(pname, values);
        if param.len() != count {
            // `TunableParameter::new` deduplicates; a shrink means the
            // file declared duplicate dictionary values, which our
            // writer never does — codes would silently shift.
            return Err(StoreError::corrupt(
                "params",
                format!("parameter `{}` has duplicate values", param.name()),
            ));
        }
        params.push(param);
    }
    if !cur.done() {
        return Err(StoreError::corrupt(
            "params",
            "trailing bytes after the last parameter",
        ));
    }

    // Arena tag, then raw codes up to the trailer.
    if bytes.len() < pos + 4 + TRAILER_LEN {
        return Err(StoreError::corrupt("arena", "file ends before the arena"));
    }
    if bytes[pos..pos + 4] != TAG_ARENA {
        return Err(StoreError::corrupt("arena", "missing arena tag"));
    }
    pos += 4;
    let trailer_at = bytes.len() - TRAILER_LEN;
    if trailer_at < pos {
        return Err(StoreError::corrupt("trailer", "overlaps the arena"));
    }
    let mut cur = Cursor::new(&bytes[trailer_at..], "trailer");
    let end_tag = cur.take(4)?;
    if end_tag != TAG_END {
        return Err(StoreError::corrupt(
            "trailer",
            "missing end tag (file truncated or construction crashed mid-write)",
        ));
    }
    let num_rows = cur.u64()? as usize;
    let arena_crc = cur.u32()?;

    let arena = &bytes[pos..trailer_at];
    let expected = num_rows
        .checked_mul(num_params)
        .and_then(|c| c.checked_mul(4));
    if expected != Some(arena.len()) {
        return Err(StoreError::corrupt(
            "arena",
            format!(
                "arena holds {} bytes where {num_rows} rows x {num_params} params need {}",
                arena.len(),
                expected.map_or("overflow".to_string(), |e| e.to_string()),
            ),
        ));
    }
    Ok(ParsedFile {
        info: StoreInfo {
            version,
            name,
            num_params,
            num_rows,
            file_bytes: bytes.len() as u64,
        },
        params,
        arena,
        arena_crc,
    })
}

/// Decode the raw little-endian arena bytes into value codes. On
/// little-endian targets the on-disk bytes *are* the in-memory layout, so
/// this is a single memcpy (without even a zero-fill of the destination);
/// big-endian targets convert per element. The caller guarantees
/// `arena.len()` is a multiple of 4 (checked against the trailer).
fn decode_codes(arena: &[u8]) -> Vec<u32> {
    let num_codes = arena.len() / 4;
    if cfg!(target_endian = "little") {
        let mut codes: Vec<u32> = Vec::with_capacity(num_codes);
        // SAFETY: the allocation holds at least `arena.len()` bytes (the
        // length is a validated multiple of 4), the buffers are distinct,
        // every byte pattern is a valid `u32`, and `set_len` only covers
        // the `num_codes` elements just initialised.
        unsafe {
            std::ptr::copy_nonoverlapping(
                arena.as_ptr(),
                codes.as_mut_ptr().cast::<u8>(),
                arena.len(),
            );
            codes.set_len(num_codes);
        }
        codes
    } else {
        arena
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect()
    }
}

/// Read one framed metadata section starting at `*pos`, verify its tag and
/// CRC, and advance `*pos` past it.
fn read_section<'a>(
    bytes: &'a [u8],
    pos: &mut usize,
    tag: [u8; 4],
    section: &'static str,
) -> Result<&'a [u8], StoreError> {
    let mut cur = Cursor::new(&bytes[*pos..], section);
    let found = cur.take(4)?;
    if found != tag {
        return Err(StoreError::corrupt(section, "unexpected section tag"));
    }
    let len = cur.u64()? as usize;
    let payload = cur.take(len)?;
    let stored_crc = cur.u32()?;
    if crc32(payload) != stored_crc {
        return Err(StoreError::corrupt(section, "checksum mismatch"));
    }
    *pos += cur.pos;
    Ok(payload)
}

/// Arenas at least this large verify their checksum on a helper thread,
/// overlapped with the index build (below it, the thread spawn would cost
/// more than the overlap saves).
const PARALLEL_CRC_BYTES: usize = 2 << 20;

/// Validate and rebuild a space from an in-memory store file in one call.
///
/// For large arenas the arena checksum is verified on a scoped helper
/// thread *while* the main thread decodes the codes and builds the
/// membership index — the two dominate warm-load time and are independent.
/// The space is only returned when both succeed, so a corrupt file is never
/// served; it merely wastes the (discarded) speculative index build.
pub fn read_space_from_bytes(bytes: &[u8]) -> Result<(SearchSpace, StoreInfo), StoreError> {
    let parsed = parse_structure(bytes)?;
    let multicore = std::thread::available_parallelism().is_ok_and(|n| n.get() > 1);
    if !multicore || parsed.arena.len() < PARALLEL_CRC_BYTES {
        if crc32(parsed.arena) != parsed.arena_crc {
            return Err(StoreError::corrupt("arena", "checksum mismatch"));
        }
        let codes = decode_codes(parsed.arena);
        let space = SearchSpace::from_code_rows(
            parsed.info.name.clone(),
            parsed.params,
            parsed.info.num_rows,
            codes,
        )?;
        return Ok((space, parsed.info));
    }
    let ParsedFile {
        info,
        params,
        arena,
        arena_crc,
    } = parsed;
    let (crc_ok, space) = std::thread::scope(|scope| {
        let checker = scope.spawn(move || crc32(arena) == arena_crc);
        let codes = decode_codes(arena);
        let space = SearchSpace::from_code_rows(info.name.clone(), params, info.num_rows, codes);
        (checker.join().expect("checksum thread"), space)
    });
    if !crc_ok {
        return Err(StoreError::corrupt("arena", "checksum mismatch"));
    }
    Ok((space?, info))
}

/// Read, validate and rebuild a space from a store file in one call.
pub fn read_space_from_path(
    path: impl AsRef<Path>,
) -> Result<(SearchSpace, StoreInfo), StoreError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| StoreError::io(path, e))?;
    read_space_from_bytes(&bytes)
}

/// Read a store file's metadata without loading or validating the arena —
/// the cheap path for listing a cache directory. The header section's CRC
/// *is* verified; the arena's is not (use [`StoreReader::open`] for a full
/// verification).
pub fn peek_info(path: impl AsRef<Path>) -> Result<StoreInfo, StoreError> {
    let path = path.as_ref();
    let mut file = File::open(path).map_err(|e| StoreError::io(path, e))?;
    let file_bytes = file.metadata().map_err(|e| StoreError::io(path, e))?.len();

    let mut head = [0u8; 8 + 12];
    file.read_exact(&mut head)
        .map_err(|_| StoreError::corrupt("header", "file too short"))?;
    if head[0..4] != MAGIC {
        return Err(StoreError::BadMagic {
            found: head[0..4].try_into().expect("4 bytes"),
        });
    }
    let version = u32::from_le_bytes(head[4..8].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    if head[8..12] != TAG_HEADER {
        return Err(StoreError::corrupt("header", "missing header tag"));
    }
    let len = u64::from_le_bytes(head[12..20].try_into().expect("8 bytes")) as usize;
    if len > 1 << 20 {
        return Err(StoreError::corrupt("header", "implausible header length"));
    }
    let mut payload = vec![0u8; len + 4];
    file.read_exact(&mut payload)
        .map_err(|_| StoreError::corrupt("header", "file ends inside the header"))?;
    let (payload, crc_bytes) = payload.split_at(len);
    if crc32(payload) != u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes")) {
        return Err(StoreError::corrupt("header", "checksum mismatch"));
    }
    let mut cur = Cursor::new(payload, "header");
    let name = cur.str()?;
    let num_params = cur.u32()? as usize;

    file.seek(SeekFrom::End(-(TRAILER_LEN as i64)))
        .map_err(|e| StoreError::io(path, e))?;
    let mut trailer = [0u8; TRAILER_LEN];
    file.read_exact(&mut trailer)
        .map_err(|_| StoreError::corrupt("trailer", "file too short"))?;
    if trailer[0..4] != TAG_END {
        return Err(StoreError::corrupt("trailer", "missing end tag"));
    }
    let num_rows = u64::from_le_bytes(trailer[4..12].try_into().expect("8 bytes")) as usize;

    Ok(StoreInfo {
        version,
        name,
        num_params,
        num_rows,
        file_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_csp::value::int_values;

    fn small_space() -> SearchSpace {
        let params = vec![
            TunableParameter::ints("x", [1, 2, 4]),
            TunableParameter::ints("y", [1, 2]),
        ];
        let configs = vec![
            int_values([1, 1]),
            int_values([1, 2]),
            int_values([2, 1]),
            int_values([4, 2]),
        ];
        SearchSpace::from_configs("small", params, configs).unwrap()
    }

    fn spaces_identical(a: &SearchSpace, b: &SearchSpace) {
        assert_eq!(a.name(), b.name());
        assert_eq!(a.len(), b.len());
        assert_eq!(a.arena(), b.arena());
        assert_eq!(a.params().len(), b.params().len());
        for (pa, pb) in a.params().iter().zip(b.params()) {
            assert_eq!(pa.name(), pb.name());
            assert_eq!(pa.values(), pb.values());
        }
        for view in a.iter() {
            assert_eq!(b.index_of(&view.to_vec()), Some(view.id()));
        }
    }

    #[test]
    fn write_read_round_trip() {
        let space = small_space();
        let mut bytes = Vec::new();
        let summary = write_space(&space, &mut bytes).unwrap();
        assert_eq!(summary.rows, 4);
        assert_eq!(summary.bytes_written, bytes.len() as u64);
        let reader = StoreReader::from_bytes(&bytes).unwrap();
        assert_eq!(reader.info().name, "small");
        assert_eq!(reader.info().num_rows, 4);
        assert_eq!(reader.info().num_params, 2);
        let (loaded, info) = reader.into_space().unwrap();
        assert_eq!(info.file_bytes, bytes.len() as u64);
        spaces_identical(&space, &loaded);
    }

    /// An owned, clonable byte sink: the `RowSink` impl requires
    /// `W: 'static`, so tests cannot hand a `&mut Vec<u8>` to the writer.
    #[derive(Clone, Default)]
    struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn bytes(&self) -> Vec<u8> {
            self.0.lock().unwrap().clone()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn streaming_writer_matches_write_space() {
        let space = small_space();
        let mut via_space = Vec::new();
        write_space(&space, &mut via_space).unwrap();

        let buf = SharedBuf::default();
        let mut writer = StoreWriter::new(buf.clone(), "small", space.params().to_vec()).unwrap();
        for view in space.iter() {
            writer.push_row(&view.to_vec()).unwrap();
        }
        let (streamed, summary) = writer.finish().unwrap();
        assert_eq!(summary.rows, 4);
        spaces_identical(&space, &streamed);
        assert_eq!(
            buf.bytes(),
            via_space,
            "streamed and one-shot files are identical"
        );
    }

    #[test]
    fn streaming_writer_supports_chunks() {
        let space = small_space();
        let buf = SharedBuf::default();
        let mut writer = StoreWriter::new(buf.clone(), "small", space.params().to_vec()).unwrap();
        let mut chunk = writer.new_chunk();
        for view in space.iter() {
            chunk.push_row(&view.to_vec()).unwrap();
        }
        writer.merge_chunk(chunk).unwrap();
        let (streamed, _) = writer.finish().unwrap();
        spaces_identical(&space, &streamed);
        let (loaded, _) = StoreReader::from_bytes(&buf.bytes())
            .unwrap()
            .into_space()
            .unwrap();
        spaces_identical(&space, &loaded);
    }

    #[test]
    fn unfinished_writer_leaves_an_unreadable_file() {
        let space = small_space();
        let buf = SharedBuf::default();
        let mut writer = StoreWriter::new(buf.clone(), "small", space.params().to_vec()).unwrap();
        writer.push_row(&int_values([1, 1])).unwrap();
        drop(writer);
        // No trailer was written: the reader must refuse the file.
        assert!(StoreReader::from_bytes(&buf.bytes()).is_err());
    }

    #[test]
    fn empty_space_round_trips() {
        let params = vec![TunableParameter::ints("x", [1, 2])];
        let space = SearchSpace::from_configs("empty", params, vec![]).unwrap();
        let mut bytes = Vec::new();
        write_space(&space, &mut bytes).unwrap();
        let (loaded, info) = StoreReader::from_bytes(&bytes)
            .unwrap()
            .into_space()
            .unwrap();
        assert_eq!(info.num_rows, 0);
        assert!(loaded.is_empty());
        assert_eq!(loaded.params().len(), 1);
    }

    #[test]
    fn all_value_kinds_round_trip() {
        let params = vec![TunableParameter::new(
            "mixed",
            vec![
                Value::Int(-7),
                Value::Float(2.5),
                Value::Bool(true),
                Value::str("a,b\nc"),
            ],
        )];
        let configs = vec![
            vec![Value::Int(-7)],
            vec![Value::str("a,b\nc")],
            vec![Value::Float(2.5)],
        ];
        let space = SearchSpace::from_configs("mixed", params, configs).unwrap();
        let mut bytes = Vec::new();
        write_space(&space, &mut bytes).unwrap();
        let (loaded, _) = StoreReader::from_bytes(&bytes)
            .unwrap()
            .into_space()
            .unwrap();
        spaces_identical(&space, &loaded);
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let space = small_space();
        let mut bytes = Vec::new();
        write_space(&space, &mut bytes).unwrap();

        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            StoreReader::from_bytes(&bad),
            Err(StoreError::BadMagic { .. })
        ));

        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(matches!(
            StoreReader::from_bytes(&bad),
            Err(StoreError::UnsupportedVersion { found: 99, .. })
        ));
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let space = small_space();
        let mut bytes = Vec::new();
        write_space(&space, &mut bytes).unwrap();
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0x40;
            let result = StoreReader::from_bytes(&flipped).and_then(|r| r.into_space());
            assert!(result.is_err(), "flip at byte {i} went undetected");
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let space = small_space();
        let mut bytes = Vec::new();
        write_space(&space, &mut bytes).unwrap();
        for keep in 0..bytes.len() {
            let result = StoreReader::from_bytes(&bytes[..keep]).and_then(|r| r.into_space());
            assert!(
                result.is_err(),
                "truncation to {keep} bytes went undetected"
            );
        }
    }

    #[test]
    fn peek_reads_metadata_without_the_arena() {
        let dir = std::env::temp_dir().join("at-store-format-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("peek.atss");
        let space = small_space();
        write_space_to_path(&space, &path).unwrap();
        let info = peek_info(&path).unwrap();
        assert_eq!(info.name, "small");
        assert_eq!(info.num_rows, 4);
        assert_eq!(info.num_params, 2);
        assert_eq!(info.version, FORMAT_VERSION);
        let full = StoreReader::open(&path).unwrap();
        assert_eq!(full.info(), &info);
    }
}
