//! The `ATSS` binary format: reading and writing resolved search spaces.
//!
//! See the [crate documentation](crate) for the byte-by-byte layout of both
//! supported versions. The design constraints, in order:
//!
//! 1. **Close to the internal representation** (paper Section 4.3.4): the
//!    configuration arena is written verbatim as little-endian `u32` value
//!    codes — loading performs no decoding and no re-encoding. Since v2 the
//!    arena section is 4-byte aligned and the membership table is persisted
//!    alongside it (`IDX` section), so a trusted warm load can *borrow*
//!    both straight out of a memory-mapped file: no copy, no table rebuild,
//!    O(header) work.
//! 2. **Streamable**: [`StoreWriter`] implements the solver sink interface,
//!    so the file is written *while* the space is constructed; nothing in
//!    the layout requires knowing the row count up front (it lives in the
//!    trailer, and the index section is written at finish time).
//! 3. **Self-validating**: magic + version up front, a CRC-32 per metadata
//!    section (including `IDX`), and a CRC-32 of the arena in the trailer.
//!    On the copying path any flipped byte or truncation is detected before
//!    content is adopted; the zero-copy path checks everything except the
//!    arena checksum (documented per [`LoadMode`]), and a damaged `IDX`
//!    section always falls back to an index rebuild — reported in the
//!    [`LoadReport`], and never a wrong lookup (the lookup algorithm
//!    re-compares arena rows, so a bad table can only miss, not
//!    misattribute).

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

use at_csp::sink::{RowSink, SolutionSink};
use at_csp::{CspError, CspResult, Value};
use at_searchspace::{
    ArenaStorage, CodeValidation, EncodingSink, IndexVerification, SearchSpace, SpaceError,
    TunableParameter, INDEX_HASH_VERSION,
};

use crate::checksum::{crc32, Crc32};
use crate::error::StoreError;
use crate::mmap::{MapError, MappedCodes, MappedFile};

/// The four magic bytes every store file starts with.
pub const MAGIC: [u8; 4] = *b"ATSS";

/// The format version this build writes.
pub const FORMAT_VERSION: u32 = 2;

/// The oldest format version this build still reads (via the copying
/// path; v1 files have no alignment rule and no index section).
pub const MIN_READ_VERSION: u32 = 1;

/// Section tags (4 bytes each).
const TAG_HEADER: [u8; 4] = *b"HDR\0";
const TAG_PARAMS: [u8; 4] = *b"PAR\0";
const TAG_ARENA: [u8; 4] = *b"ARN\0";
const TAG_INDEX: [u8; 4] = *b"IDX\0";
const TAG_END: [u8; 4] = *b"END\0";

/// Value-encoding tag bytes.
const VAL_INT: u8 = 1;
const VAL_FLOAT: u8 = 2;
const VAL_BOOL: u8 = 3;
const VAL_STR: u8 = 4;

/// Size of the fixed trailer: tag (4) + row count (8) + arena CRC-32 (4).
const TRAILER_LEN: usize = 16;

/// Flush the pending arena codes to the writer once this many accumulate
/// (64 KiB of file bytes), so streaming writes stay amortised.
const FLUSH_CODES: usize = 16 * 1024;

/// How many evenly spaced rows [`IndexPolicy::VerifySampled`] looks up.
const VERIFY_SAMPLES: usize = 64;

// ---------------------------------------------------------------------------
// byte-level encoding helpers
// ---------------------------------------------------------------------------

fn push_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_str(buf: &mut Vec<u8>, s: &str) {
    push_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Canonical byte encoding of one [`Value`]: a tag byte plus a fixed or
/// length-prefixed payload. Shared by the params section and the spec
/// fingerprint, so both agree on what "the same value" means.
pub(crate) fn push_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(i) => {
            buf.push(VAL_INT);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            buf.push(VAL_FLOAT);
            buf.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Bool(b) => {
            buf.push(VAL_BOOL);
            buf.push(u8::from(*b));
        }
        Value::Str(s) => {
            buf.push(VAL_STR);
            push_str(buf, s);
        }
    }
}

/// A bounds-checked reading cursor over a byte slice; every overrun becomes
/// a [`StoreError::Corrupt`] for the named section.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8], section: &'static str) -> Cursor<'a> {
        Cursor {
            bytes,
            pos: 0,
            section,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let slice = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(StoreError::corrupt(
                self.section,
                format!(
                    "needed {n} bytes at offset {}, only {} available",
                    self.pos,
                    self.bytes.len() - self.pos
                ),
            )),
        }
    }

    fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn str(&mut self) -> Result<String, StoreError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::corrupt(self.section, "string is not valid UTF-8"))
    }

    fn value(&mut self) -> Result<Value, StoreError> {
        match self.u8()? {
            VAL_INT => Ok(Value::Int(i64::from_le_bytes(
                self.take(8)?.try_into().expect("8 bytes"),
            ))),
            VAL_FLOAT => Ok(Value::Float(f64::from_bits(u64::from_le_bytes(
                self.take(8)?.try_into().expect("8 bytes"),
            )))),
            VAL_BOOL => Ok(Value::Bool(self.u8()? != 0)),
            VAL_STR => Ok(Value::str(self.str()?)),
            tag => Err(StoreError::corrupt(
                self.section,
                format!("unknown value tag {tag}"),
            )),
        }
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

// ---------------------------------------------------------------------------
// section writing
// ---------------------------------------------------------------------------

/// Write one framed metadata section: tag, payload length, payload, CRC-32.
/// Returns the number of file bytes written.
fn write_section<W: Write>(out: &mut W, tag: [u8; 4], payload: &[u8]) -> io::Result<u64> {
    out.write_all(&tag)?;
    out.write_all(&(payload.len() as u64).to_le_bytes())?;
    out.write_all(payload)?;
    out.write_all(&crc32(payload).to_le_bytes())?;
    Ok(4 + 8 + payload.len() as u64 + 4)
}

fn header_payload(name: &str, num_params: usize) -> Vec<u8> {
    let mut buf = Vec::with_capacity(name.len() + 8);
    push_str(&mut buf, name);
    push_u32(&mut buf, num_params as u32);
    buf
}

fn params_payload(params: &[TunableParameter]) -> Vec<u8> {
    let mut buf = Vec::new();
    for p in params {
        push_str(&mut buf, p.name());
        push_u32(&mut buf, p.len() as u32);
        for v in p.values() {
            push_value(&mut buf, v);
        }
    }
    buf
}

/// Write the file preamble (magic, version, header section, params section,
/// arena tag + v2 alignment padding). Returns the number of bytes written —
/// which is also the arena's byte offset, guaranteed `% 4 == 0`.
fn write_preamble<W: Write>(
    out: &mut W,
    name: &str,
    params: &[TunableParameter],
) -> io::Result<u64> {
    out.write_all(&MAGIC)?;
    out.write_all(&FORMAT_VERSION.to_le_bytes())?;
    let mut bytes = 8u64;
    bytes += write_section(out, TAG_HEADER, &header_payload(name, params.len()))?;
    bytes += write_section(out, TAG_PARAMS, &params_payload(params))?;
    out.write_all(&TAG_ARENA)?;
    bytes += 4;
    // v2 alignment rule: a u32 pad length followed by that many zero bytes,
    // chosen so the first arena byte lands on a 4-byte file offset (mmap
    // memory is page-aligned, so file-offset alignment is view alignment).
    let pad = ((4 - ((bytes + 4) % 4)) % 4) as u32;
    out.write_all(&pad.to_le_bytes())?;
    out.write_all(&[0u8; 3][..pad as usize])?;
    Ok(bytes + 4 + pad as u64)
}

/// Write the `IDX` section for the membership table, returning the bytes
/// written. A table whose slot count does not fit the format's `u32` count
/// field (spaces in the billions of rows) is skipped entirely — the file
/// stays valid and loads rebuild the index — rather than written with a
/// silently truncated count that would corrupt the section.
fn write_index_section<W: Write>(out: &mut W, slots: &[u32]) -> io::Result<u64> {
    let Ok(num_slots) = u32::try_from(slots.len()) else {
        return Ok(0);
    };
    let mut buf = Vec::with_capacity(8 + slots.len() * 4);
    push_u32(&mut buf, INDEX_HASH_VERSION);
    push_u32(&mut buf, num_slots);
    for &slot in slots {
        buf.extend_from_slice(&slot.to_le_bytes());
    }
    write_section(out, TAG_INDEX, &buf)
}

/// Write the fixed trailer (end tag, row count, arena CRC-32).
fn write_trailer<W: Write>(out: &mut W, rows: u64, arena_crc: u32) -> io::Result<u64> {
    out.write_all(&TAG_END)?;
    out.write_all(&rows.to_le_bytes())?;
    out.write_all(&arena_crc.to_le_bytes())?;
    Ok(TRAILER_LEN as u64)
}

/// Summary of one completed store write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreSummary {
    /// Number of configuration rows persisted.
    pub rows: u64,
    /// Total file bytes written (preamble + arena + index + trailer).
    pub bytes_written: u64,
}

/// Persist an already-resolved [`SearchSpace`] to a writer.
///
/// The arena is taken from [`SearchSpace::arena`] verbatim and the
/// membership table from [`SearchSpace::index_slots`]; nothing is decoded.
/// For persisting a space *while* it is constructed, use [`StoreWriter`]
/// instead.
pub fn write_space<W: Write>(space: &SearchSpace, out: &mut W) -> Result<StoreSummary, StoreError> {
    let io_err = |source| StoreError::Io { path: None, source };
    let mut bytes = write_preamble(out, space.name(), space.params()).map_err(io_err)?;
    let mut crc = Crc32::new();
    let mut buf = Vec::with_capacity(4 * FLUSH_CODES.min(space.arena().len().max(1)));
    for chunk in space.arena().chunks(FLUSH_CODES) {
        buf.clear();
        for &code in chunk {
            buf.extend_from_slice(&code.to_le_bytes());
        }
        crc.update(&buf);
        out.write_all(&buf).map_err(io_err)?;
        bytes += buf.len() as u64;
    }
    bytes += write_index_section(out, space.index_slots()).map_err(io_err)?;
    bytes += write_trailer(out, space.len() as u64, crc.finish()).map_err(io_err)?;
    out.flush().map_err(io_err)?;
    Ok(StoreSummary {
        rows: space.len() as u64,
        bytes_written: bytes,
    })
}

/// Persist a space to a file path (plain create + write; for atomic
/// temp-file + rename semantics, go through `SpaceStore`).
pub fn write_space_to_path(
    space: &SearchSpace,
    path: impl AsRef<Path>,
) -> Result<StoreSummary, StoreError> {
    let path = path.as_ref();
    let file = File::create(path).map_err(|e| StoreError::io(path, e))?;
    let mut out = io::BufWriter::new(file);
    write_space(space, &mut out).map_err(|e| match e {
        StoreError::Io { path: None, source } => StoreError::io(path, source),
        other => other,
    })
}

// ---------------------------------------------------------------------------
// streaming writer (the solver sink)
// ---------------------------------------------------------------------------

/// A solver sink that persists the space to a writer *while* it is
/// constructed, and still hands back the in-memory [`SearchSpace`] at the
/// end.
///
/// `StoreWriter` wraps an [`EncodingSink`]: every row a solver pushes is
/// encoded to `u32` value codes exactly once, appended to the in-memory
/// arena, and the arena suffix not yet on disk is flushed to the writer in
/// 64 KiB batches. Parallel solvers get per-thread encoding chunks exactly
/// as with a plain `EncodingSink`; merged chunks are flushed the same way.
/// No row is ever encoded twice, and the peak decoded footprint stays one
/// row per active worker thread.
///
/// Call [`StoreWriter::finish`] to persist the membership table (`IDX`
/// section, built once by the sink) and the trailer, and obtain the
/// resolved space plus a [`StoreSummary`]. Dropping the writer without
/// finishing leaves a file without a trailer, which readers reject — a
/// crashed construction can never be mistaken for a complete store file.
#[derive(Debug)]
pub struct StoreWriter<W: Write> {
    sink: EncodingSink,
    out: W,
    /// Number of arena codes already written to `out`.
    flushed: usize,
    crc: Crc32,
    bytes_written: u64,
    /// Reusable code→byte conversion buffer.
    byte_buf: Vec<u8>,
}

impl<W: Write> StoreWriter<W> {
    /// Start a store file: writes magic, version, header and parameter
    /// dictionaries immediately, leaving the writer positioned at the
    /// arena. Rows pushed later must be in parameter declaration order.
    pub fn new(
        mut out: W,
        name: impl Into<String>,
        params: Vec<TunableParameter>,
    ) -> Result<Self, StoreError> {
        let name = name.into();
        let bytes_written = write_preamble(&mut out, &name, &params)
            .map_err(|source| StoreError::Io { path: None, source })?;
        let sink = EncodingSink::new(name, params)?;
        Ok(StoreWriter {
            sink,
            out,
            flushed: 0,
            crc: Crc32::new(),
            bytes_written,
            byte_buf: Vec::new(),
        })
    }

    /// Number of rows received so far.
    pub fn rows(&self) -> usize {
        self.sink.rows()
    }

    /// Write the arena suffix that is not yet on disk. `force` flushes any
    /// pending amount; otherwise flushing waits for a 64 KiB batch.
    fn flush_pending(&mut self, force: bool) -> io::Result<()> {
        let codes = self.sink.codes();
        let pending = codes.len() - self.flushed;
        if pending == 0 || (!force && pending < FLUSH_CODES) {
            return Ok(());
        }
        let span = at_obs::span("store-flush", "store");
        self.byte_buf.clear();
        self.byte_buf.reserve(pending * 4);
        for &code in &codes[self.flushed..] {
            self.byte_buf.extend_from_slice(&code.to_le_bytes());
        }
        self.crc.update(&self.byte_buf);
        self.out.write_all(&self.byte_buf)?;
        self.bytes_written += self.byte_buf.len() as u64;
        self.flushed = codes.len();
        drop(span.arg("bytes", self.byte_buf.len() as u64));
        Ok(())
    }

    /// Flush the remaining arena, persist the membership table (`IDX`
    /// section) and the trailer, and return the resolved in-memory space
    /// together with a write summary.
    pub fn finish(mut self) -> Result<(SearchSpace, StoreSummary), StoreError> {
        let io_err = |source| StoreError::Io { path: None, source };
        self.flush_pending(true).map_err(io_err)?;
        let rows = self.sink.rows() as u64;
        let span = at_obs::span("store-write-finish", "store").arg("rows", rows);
        // The sink builds the membership table exactly once here; the IDX
        // section persists it verbatim so warm loads can skip the rebuild.
        let space = self.sink.finish()?;
        self.bytes_written +=
            write_index_section(&mut self.out, space.index_slots()).map_err(io_err)?;
        self.bytes_written +=
            write_trailer(&mut self.out, rows, self.crc.finish()).map_err(io_err)?;
        self.out.flush().map_err(io_err)?;
        drop(span.arg("bytes", self.bytes_written));
        Ok((
            space,
            StoreSummary {
                rows,
                bytes_written: self.bytes_written,
            },
        ))
    }
}

/// Carry an I/O failure across the solver boundary (solvers speak
/// [`CspError`]).
fn io_to_csp(e: io::Error) -> CspError {
    CspError::Solver(format!("store writer: {e}"))
}

impl<W: Write + Send + Sync + 'static> RowSink for StoreWriter<W> {
    fn push_row(&mut self, row: &[Value]) -> CspResult<()> {
        self.sink.push_row(row)?;
        self.flush_pending(false).map_err(io_to_csp)
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

impl<W: Write + Send + Sync + 'static> SolutionSink for StoreWriter<W> {
    fn new_chunk(&self) -> Box<dyn RowSink> {
        // Worker threads encode into plain EncodingSink chunks; the file is
        // only touched on merge, which happens on the solver's own thread.
        self.sink.new_chunk()
    }

    fn merge_chunk(&mut self, chunk: Box<dyn RowSink>) -> CspResult<()> {
        self.sink.merge_chunk(chunk)?;
        self.flush_pending(false).map_err(io_to_csp)
    }
}

// ---------------------------------------------------------------------------
// load options and reports
// ---------------------------------------------------------------------------

/// How the arena bytes are brought into memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoadMode {
    /// Read the whole file and copy the arena into owned memory. Every
    /// checksum is verified — this is the fully validating path, and the
    /// only one for v1 files and big-endian targets.
    #[default]
    Copy,
    /// `mmap(2)` the file and serve the arena (and persisted index slots)
    /// as borrowed views — zero copy. The arena checksum is **not**
    /// verified (it would touch every page and defeat the point); the
    /// `IDX` checksum is still checked before any table is adopted, and
    /// `cache verify` remains the full-validation tool. Combined with
    /// [`IndexPolicy::TrustPersisted`] the load is O(header + index
    /// checksum): even the code-range pass is skipped (decoding stays
    /// bounds-checked lazily). [`IndexPolicy::Rebuild`] and
    /// [`IndexPolicy::VerifySampled`] keep the O(arena) code-range pass.
    /// Falls back to [`LoadMode::Copy`] — recorded in the [`LoadReport`] —
    /// on non-Linux targets, big-endian targets, unaligned (v1) arenas, or
    /// mmap failure.
    Mmap,
}

/// What to do with the persisted membership table (`IDX` section).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexPolicy {
    /// Ignore any persisted table and rebuild from the arena (the v1
    /// behavior; always available).
    Rebuild,
    /// Adopt the persisted table after its CRC, hash version and
    /// structural invariants check out — the O(header) trusted path.
    TrustPersisted,
    /// Like [`IndexPolicy::TrustPersisted`], plus look up a sample of
    /// evenly spaced arena rows and require each to be found — a cheap
    /// screen against a table persisted for a different arena.
    #[default]
    VerifySampled,
}

/// A validated load request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoadOptions {
    /// How the arena is materialized.
    pub mode: LoadMode,
    /// How the persisted membership table is treated.
    pub index: IndexPolicy,
}

impl LoadOptions {
    /// The zero-copy fast path: mmap the arena, trust the persisted index.
    pub fn mmap_trusted() -> LoadOptions {
        LoadOptions {
            mode: LoadMode::Mmap,
            index: IndexPolicy::TrustPersisted,
        }
    }
}

/// Where the served arena actually came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArenaOutcome {
    /// Copied into owned memory (requested, or the only possibility).
    Copied,
    /// Served zero-copy from the memory-mapped file.
    MmapZeroCopy,
    /// Mmap was requested but unavailable; copied instead.
    MmapFellBack {
        /// Why the mapping could not be served (platform, alignment, v1
        /// file, syscall failure).
        reason: String,
    },
}

/// Where the served membership table actually came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexOutcome {
    /// Rebuilt from the arena. `persisted_present` records whether the
    /// file carried an (ignored) `IDX` section.
    Rebuilt {
        /// True when the file had an `IDX` section the policy ignored.
        persisted_present: bool,
    },
    /// The persisted table was adopted. `verified` is true under
    /// [`IndexPolicy::VerifySampled`].
    Adopted {
        /// Whether sampled row lookups were verified on top of the
        /// structural checks.
        verified: bool,
    },
    /// The persisted table was present but unusable (CRC mismatch, hash
    /// version mismatch, structural or sampled-lookup failure); the index
    /// was rebuilt from the arena instead. **This is a reportable
    /// condition**, not a silent fallback: stale indexes should be
    /// repaired (the cache rewrites the entry) or at least surfaced.
    RebuiltAfterFallback {
        /// Why the persisted table was rejected.
        reason: String,
    },
}

/// Everything a load did, for observability: which path served the arena,
/// and what happened to the persisted index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadReport {
    /// Arena path taken.
    pub arena: ArenaOutcome,
    /// Index path taken.
    pub index: IndexOutcome,
}

impl LoadReport {
    /// True when the arena is served zero-copy from the mapped file.
    pub fn is_zero_copy(&self) -> bool {
        self.arena == ArenaOutcome::MmapZeroCopy
    }

    /// The reason the persisted index was rejected, if it was.
    pub fn index_fallback(&self) -> Option<&str> {
        match &self.index {
            IndexOutcome::RebuiltAfterFallback { reason } => Some(reason),
            _ => None,
        }
    }

    /// A one-line human-readable description (used by CLI summaries).
    pub fn describe(&self) -> String {
        let arena = match &self.arena {
            ArenaOutcome::Copied => "copied".to_string(),
            ArenaOutcome::MmapZeroCopy => "zero-copy (mmap)".to_string(),
            ArenaOutcome::MmapFellBack { reason } => format!("copied (mmap fell back: {reason})"),
        };
        let index = match &self.index {
            IndexOutcome::Rebuilt {
                persisted_present: false,
            } => "index rebuilt".to_string(),
            IndexOutcome::Rebuilt {
                persisted_present: true,
            } => "index rebuilt (persisted one ignored)".to_string(),
            IndexOutcome::Adopted { verified: true } => "persisted index verified".to_string(),
            IndexOutcome::Adopted { verified: false } => "persisted index trusted".to_string(),
            IndexOutcome::RebuiltAfterFallback { reason } => {
                format!("index rebuilt (persisted one rejected: {reason})")
            }
        };
        format!("{arena}, {index}")
    }
}

// ---------------------------------------------------------------------------
// reading
// ---------------------------------------------------------------------------

/// Metadata of a persisted `IDX` (membership table) section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexInfo {
    /// Version of the row-hash function the table was built with.
    pub hash_version: u32,
    /// Number of open-addressing slots.
    pub num_slots: usize,
}

/// Metadata of one store file, available without decoding the arena.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreInfo {
    /// Format version recorded in the file.
    pub version: u32,
    /// The persisted space's name.
    pub name: String,
    /// Number of tunable parameters (the arena stride).
    pub num_params: usize,
    /// Number of configuration rows.
    pub num_rows: usize,
    /// Total file size in bytes.
    pub file_bytes: u64,
    /// The persisted membership table, if the file carries one (v2 files
    /// written by this build always do; v1 files never do).
    pub index: Option<IndexInfo>,
}

/// The structurally validated parts of a store file: every metadata section
/// parsed and CRC-checked, the arena and optional index located and
/// length-checked — but the arena CRC and the index payload CRC not yet
/// verified (the caller decides per [`LoadOptions`]).
pub(crate) struct ParsedFile<'a> {
    info: StoreInfo,
    params: Vec<TunableParameter>,
    /// Byte offset of the first arena byte in the file.
    pub(crate) arena_offset: usize,
    pub(crate) arena: &'a [u8],
    arena_crc: u32,
    idx: Option<ParsedIndex<'a>>,
}

/// The located (framing-validated) `IDX` section.
struct ParsedIndex<'a> {
    hash_version: u32,
    /// Byte offset of the first slot byte in the file (4-byte aligned for
    /// files written by this build).
    slots_offset: usize,
    /// The raw little-endian slot bytes.
    slots: &'a [u8],
    /// The whole section payload (hash version + slot count + slots), for
    /// CRC verification.
    payload: &'a [u8],
    crc: u32,
}

impl ParsedIndex<'_> {
    fn crc_ok(&self) -> bool {
        crc32(self.payload) == self.crc
    }
}

/// Parse and validate everything except the arena and index checksums.
pub(crate) fn parse_structure(bytes: &[u8]) -> Result<ParsedFile<'_>, StoreError> {
    // Magic + version.
    if bytes.len() < 8 + TRAILER_LEN {
        return Err(StoreError::corrupt(
            "header",
            format!(
                "file holds {} bytes, too short for any store file",
                bytes.len()
            ),
        ));
    }
    if bytes[0..4] != MAGIC {
        return Err(StoreError::BadMagic {
            found: bytes[0..4].try_into().expect("4 bytes"),
        });
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if !(MIN_READ_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }

    // Framed metadata sections.
    let mut pos = 8usize;
    let header = read_section(bytes, &mut pos, TAG_HEADER, "header")?;
    let mut cur = Cursor::new(header, "header");
    let name = cur.str()?;
    let num_params = cur.u32()? as usize;
    if !cur.done() {
        return Err(StoreError::corrupt("header", "trailing bytes after header"));
    }

    let params_bytes = read_section(bytes, &mut pos, TAG_PARAMS, "params")?;
    let mut cur = Cursor::new(params_bytes, "params");
    let mut params = Vec::with_capacity(num_params);
    for _ in 0..num_params {
        let pname = cur.str()?;
        let count = cur.u32()? as usize;
        let mut values = Vec::with_capacity(count);
        for _ in 0..count {
            values.push(cur.value()?);
        }
        let param = TunableParameter::new(pname, values);
        if param.len() != count {
            // `TunableParameter::new` deduplicates; a shrink means the
            // file declared duplicate dictionary values, which our
            // writer never does — codes would silently shift.
            return Err(StoreError::corrupt(
                "params",
                format!("parameter `{}` has duplicate values", param.name()),
            ));
        }
        params.push(param);
    }
    if !cur.done() {
        return Err(StoreError::corrupt(
            "params",
            "trailing bytes after the last parameter",
        ));
    }

    // Arena tag (+ v2 alignment padding).
    if bytes.len() < pos + 4 + TRAILER_LEN {
        return Err(StoreError::corrupt("arena", "file ends before the arena"));
    }
    if bytes[pos..pos + 4] != TAG_ARENA {
        return Err(StoreError::corrupt("arena", "missing arena tag"));
    }
    pos += 4;
    if version >= 2 {
        let mut cur = Cursor::new(&bytes[pos..], "arena");
        let pad = cur.u32()? as usize;
        if pad > 3 {
            return Err(StoreError::corrupt(
                "arena",
                format!("implausible alignment padding {pad}"),
            ));
        }
        cur.take(pad)?;
        pos += cur.pos;
        if !pos.is_multiple_of(4) {
            return Err(StoreError::corrupt(
                "arena",
                "alignment padding does not land the arena on a 4-byte offset",
            ));
        }
    }
    let arena_offset = pos;

    // Trailer (always the last 16 bytes), then slice the arena by the row
    // count it declares; anything between arena end and trailer must be a
    // well-formed IDX section (v2 only).
    let trailer_at = bytes.len() - TRAILER_LEN;
    if trailer_at < pos {
        return Err(StoreError::corrupt("trailer", "overlaps the arena"));
    }
    let mut cur = Cursor::new(&bytes[trailer_at..], "trailer");
    let end_tag = cur.take(4)?;
    if end_tag != TAG_END {
        return Err(StoreError::corrupt(
            "trailer",
            "missing end tag (file truncated or construction crashed mid-write)",
        ));
    }
    let num_rows = cur.u64()? as usize;
    let arena_crc = cur.u32()?;

    let arena_len = num_rows
        .checked_mul(num_params)
        .and_then(|c| c.checked_mul(4))
        .filter(|&len| len <= trailer_at - pos)
        .ok_or_else(|| {
            StoreError::corrupt(
                "arena",
                format!(
                    "{} bytes before the trailer cannot hold {num_rows} rows x {num_params} params",
                    trailer_at - pos,
                ),
            )
        })?;
    let arena = &bytes[pos..pos + arena_len];
    pos += arena_len;

    // Between arena end and trailer: nothing (v1, or v2 without an index)
    // or exactly one IDX section.
    let idx = if pos == trailer_at {
        None
    } else if version < 2 {
        return Err(StoreError::corrupt(
            "arena",
            format!(
                "arena holds {} bytes where {num_rows} rows x {num_params} params need {arena_len}",
                trailer_at - arena_offset,
            ),
        ));
    } else {
        let section_bytes = &bytes[..trailer_at];
        let mut cur = Cursor::new(&section_bytes[pos..], "index");
        let tag = cur.take(4)?;
        if tag != TAG_INDEX {
            return Err(StoreError::corrupt("index", "unexpected section tag"));
        }
        let payload_len = cur.u64()? as usize;
        let payload_at = pos + cur.pos;
        let payload = cur.take(payload_len)?;
        let crc = cur.u32()?;
        if pos + cur.pos != trailer_at {
            return Err(StoreError::corrupt(
                "index",
                "trailing bytes between the index section and the trailer",
            ));
        }
        let mut pcur = Cursor::new(payload, "index");
        let hash_version = pcur.u32()?;
        let num_slots = pcur.u32()? as usize;
        let slots = pcur.take(
            num_slots
                .checked_mul(4)
                .ok_or_else(|| StoreError::corrupt("index", "slot count overflows"))?,
        )?;
        if !pcur.done() {
            return Err(StoreError::corrupt(
                "index",
                "trailing bytes after the slot array",
            ));
        }
        Some(ParsedIndex {
            hash_version,
            slots_offset: payload_at + 8,
            slots,
            payload,
            crc,
        })
    };

    Ok(ParsedFile {
        info: StoreInfo {
            version,
            name,
            num_params,
            num_rows,
            file_bytes: bytes.len() as u64,
            index: idx.as_ref().map(|i| IndexInfo {
                hash_version: i.hash_version,
                num_slots: i.slots.len() / 4,
            }),
        },
        params,
        arena_offset,
        arena,
        arena_crc,
        idx,
    })
}

/// Decode raw little-endian `u32` bytes into codes. On little-endian
/// targets the on-disk bytes *are* the in-memory layout, so this is a
/// single memcpy (without even a zero-fill of the destination); big-endian
/// targets convert per element. The caller guarantees `bytes.len()` is a
/// multiple of 4.
fn decode_codes(bytes: &[u8]) -> Vec<u32> {
    let num_codes = bytes.len() / 4;
    if cfg!(target_endian = "little") {
        let mut codes: Vec<u32> = Vec::with_capacity(num_codes);
        // SAFETY: the allocation holds at least `bytes.len()` bytes (the
        // length is a validated multiple of 4), the buffers are distinct,
        // every byte pattern is a valid `u32`, and `set_len` only covers
        // the `num_codes` elements just initialised.
        unsafe {
            std::ptr::copy_nonoverlapping(
                bytes.as_ptr(),
                codes.as_mut_ptr().cast::<u8>(),
                bytes.len(),
            );
            codes.set_len(num_codes);
        }
        codes
    } else {
        bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect()
    }
}

/// Read one framed metadata section starting at `*pos`, verify its tag and
/// CRC, and advance `*pos` past it.
fn read_section<'a>(
    bytes: &'a [u8],
    pos: &mut usize,
    tag: [u8; 4],
    section: &'static str,
) -> Result<&'a [u8], StoreError> {
    let mut cur = Cursor::new(&bytes[*pos..], section);
    let found = cur.take(4)?;
    if found != tag {
        return Err(StoreError::corrupt(section, "unexpected section tag"));
    }
    let len = cur.u64()? as usize;
    let payload = cur.take(len)?;
    let stored_crc = cur.u32()?;
    if crc32(payload) != stored_crc {
        return Err(StoreError::corrupt(section, "checksum mismatch"));
    }
    *pos += cur.pos;
    Ok(payload)
}

/// Build a space from parsed content, adopting the (already CRC-checked)
/// persisted index slots when provided, rebuilding otherwise — with a
/// reported in-place fallback to a rebuild when adoption fails.
///
/// `arena` is consumed by the first construction attempt; the rare
/// fallback path obtains a fresh storage from `remake_arena` (an Arc bump
/// for mapped views, a re-decode for owned copies), so the hot adopting
/// path never deep-clones a multi-million-code arena.
fn assemble(
    info: &StoreInfo,
    params: Vec<TunableParameter>,
    arena: ArenaStorage,
    idx: Option<(ArenaStorage, bool)>,
    persisted_present: bool,
    remake_arena: impl FnOnce() -> ArenaStorage,
) -> Result<(SearchSpace, IndexOutcome), StoreError> {
    match idx {
        Some((slots, verified)) => {
            // The verifying policy pays the O(arena) code-bounds pass and
            // sampled lookups; the trusted one is O(header + index): lazy
            // bounds-checked decoding covers out-of-range codes.
            let (verification, validation) = if verified {
                (
                    IndexVerification::Sampled(VERIFY_SAMPLES),
                    CodeValidation::Checked,
                )
            } else {
                (IndexVerification::Trusted, CodeValidation::Trusted)
            };
            match SearchSpace::from_code_storage_with_index(
                info.name.clone(),
                params.clone(),
                info.num_rows,
                arena,
                slots,
                verification,
                validation,
            ) {
                Ok(space) => Ok((space, IndexOutcome::Adopted { verified })),
                Err(SpaceError::IndexInvalid { detail }) => {
                    let space = SearchSpace::from_code_storage(
                        info.name.clone(),
                        params,
                        info.num_rows,
                        remake_arena(),
                    )?;
                    Ok((space, IndexOutcome::RebuiltAfterFallback { reason: detail }))
                }
                Err(e) => Err(e.into()),
            }
        }
        None => {
            let space =
                SearchSpace::from_code_storage(info.name.clone(), params, info.num_rows, arena)?;
            Ok((space, IndexOutcome::Rebuilt { persisted_present }))
        }
    }
}

/// Check the persisted index against the policy, returning the slots to
/// adopt (owned copy decoded from the payload) or the fallback reason.
fn usable_index<'a, 'b>(
    idx: &'a Option<ParsedIndex<'b>>,
    policy: IndexPolicy,
) -> Result<Option<&'a ParsedIndex<'b>>, String> {
    let Some(idx) = idx else {
        return Ok(None);
    };
    if policy == IndexPolicy::Rebuild {
        return Ok(None);
    }
    // CRC first: corruption that happens to land in the hash-version field
    // must read as "checksum mismatch", not as a version skew (and must
    // classify identically to the strict reader).
    if !idx.crc_ok() {
        return Err("checksum mismatch".to_string());
    }
    if idx.hash_version != INDEX_HASH_VERSION {
        return Err(format!(
            "row-hash version {} (this build uses {INDEX_HASH_VERSION})",
            idx.hash_version
        ));
    }
    Ok(Some(idx))
}

/// A handle to a store file, ready to be loaded with explicit
/// [`LoadOptions`] (the copying path, or the zero-copy mmap path).
///
/// ```no_run
/// use at_store::{LoadOptions, StoreReader};
///
/// let reader = StoreReader::open("space.atss").unwrap();
/// let loaded = reader.load(LoadOptions::mmap_trusted()).unwrap();
/// assert!(loaded.report.is_zero_copy());
/// ```
#[derive(Debug)]
pub struct StoreReader {
    path: std::path::PathBuf,
    file: File,
}

/// The result of one [`StoreReader::load`]: the space, the file metadata,
/// and a report of which paths actually served it.
#[derive(Debug)]
pub struct LoadedSpace {
    /// The resolved space.
    pub space: SearchSpace,
    /// The file's metadata.
    pub info: StoreInfo,
    /// Which arena/index paths were taken (zero-copy? index adopted?).
    pub report: LoadReport,
}

impl StoreReader {
    /// Open a store file for loading. The file is only read on
    /// [`StoreReader::load`] / [`StoreReader::info`].
    pub fn open(path: impl AsRef<Path>) -> Result<StoreReader, StoreError> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path).map_err(|e| StoreError::io(&path, e))?;
        Ok(StoreReader { path, file })
    }

    /// The file's metadata (header + trailer + index frame only; the arena
    /// is not read).
    pub fn info(&self) -> Result<StoreInfo, StoreError> {
        peek_info(&self.path)
    }

    /// Load the space according to `options`. See [`LoadMode`] and
    /// [`IndexPolicy`] for the exact validation each combination performs,
    /// and [`LoadReport`] for what actually happened (requested paths fall
    /// back rather than fail whenever the file itself is sound).
    pub fn load(&self, options: LoadOptions) -> Result<LoadedSpace, StoreError> {
        let span = at_obs::span("store-load", "store")
            .arg("mmap_requested", u64::from(options.mode == LoadMode::Mmap));
        let loaded = match options.mode {
            LoadMode::Copy => self.load_copy(options.index, ArenaOutcome::Copied),
            LoadMode::Mmap => {
                if cfg!(target_endian = "big") {
                    self.load_copy(
                        options.index,
                        ArenaOutcome::MmapFellBack {
                            reason: "big-endian target".to_string(),
                        },
                    )
                } else {
                    match MappedFile::map(&self.file) {
                        Ok(map) => self.load_mapped(Arc::new(map), options.index),
                        Err(e) => self.load_copy(
                            options.index,
                            ArenaOutcome::MmapFellBack {
                                reason: e.to_string(),
                            },
                        ),
                    }
                }
            }
        }?;
        drop(
            span.arg("rows", loaded.space.len() as u64)
                .arg("zero_copy", u64::from(loaded.report.is_zero_copy()))
                .arg(
                    "index_fallback",
                    u64::from(loaded.report.index_fallback().is_some()),
                ),
        );
        Ok(loaded)
    }

    /// The copying load: full read, every checksum verified.
    fn load_copy(
        &self,
        policy: IndexPolicy,
        arena_outcome: ArenaOutcome,
    ) -> Result<LoadedSpace, StoreError> {
        let bytes = std::fs::read(&self.path).map_err(|e| StoreError::io(&self.path, e))?;
        Self::load_copy_from_bytes(&bytes, policy, arena_outcome)
    }

    /// The copying load over bytes already in memory (a fresh read, or a
    /// mapping that cannot be served zero-copy — sparing a second disk
    /// read on the v1/unaligned fallback).
    fn load_copy_from_bytes(
        bytes: &[u8],
        policy: IndexPolicy,
        arena_outcome: ArenaOutcome,
    ) -> Result<LoadedSpace, StoreError> {
        let parsed = parse_structure(bytes)?;
        if crc32(parsed.arena) != parsed.arena_crc {
            return Err(StoreError::corrupt("arena", "checksum mismatch"));
        }
        let persisted_present = parsed.idx.is_some();
        let (idx, fallback) = match usable_index(&parsed.idx, policy) {
            Ok(Some(idx)) => (
                Some((
                    ArenaStorage::from(decode_codes(idx.slots)),
                    policy == IndexPolicy::VerifySampled,
                )),
                None,
            ),
            Ok(None) => (None, None),
            Err(reason) => (None, Some(reason)),
        };
        let arena = ArenaStorage::from(decode_codes(parsed.arena));
        let (space, index_outcome) = assemble(
            &parsed.info,
            parsed.params,
            arena,
            idx,
            persisted_present,
            || ArenaStorage::from(decode_codes(parsed.arena)),
        )?;
        let index_outcome = match fallback {
            Some(reason) => IndexOutcome::RebuiltAfterFallback { reason },
            None => index_outcome,
        };
        Ok(LoadedSpace {
            space,
            info: parsed.info,
            report: LoadReport {
                arena: arena_outcome,
                index: index_outcome,
            },
        })
    }

    /// The zero-copy load: parse the mapped bytes, serve the arena (and,
    /// policy permitting, the index slots) as borrowed views. The arena
    /// checksum is intentionally not verified here (see [`LoadMode::Mmap`]).
    fn load_mapped(
        &self,
        map: Arc<MappedFile>,
        policy: IndexPolicy,
    ) -> Result<LoadedSpace, StoreError> {
        let parsed = parse_structure(map.bytes())?;
        if parsed.info.version < 2 || !parsed.arena_offset.is_multiple_of(4) {
            let reason = if parsed.info.version < 2 {
                "v1 file (no alignment rule)".to_string()
            } else {
                "unaligned arena".to_string()
            };
            drop(parsed);
            // The bytes are already mapped: copy out of the mapping
            // instead of reading the file a second time.
            return Self::load_copy_from_bytes(
                map.bytes(),
                policy,
                ArenaOutcome::MmapFellBack { reason },
            );
        }
        let persisted_present = parsed.idx.is_some();
        let (idx, fallback) = match usable_index(&parsed.idx, policy) {
            Ok(Some(idx)) => {
                match MappedCodes::new(Arc::clone(&map), idx.slots_offset, idx.slots.len()) {
                    Ok(view) => (
                        Some((
                            ArenaStorage::Shared(Arc::new(view)),
                            policy == IndexPolicy::VerifySampled,
                        )),
                        None,
                    ),
                    Err(MapError::BadRange { .. }) => {
                        (None, Some("index slots are not 4-byte aligned".to_string()))
                    }
                    Err(e) => (None, Some(e.to_string())),
                }
            }
            Ok(None) => (None, None),
            Err(reason) => (None, Some(reason)),
        };
        let arena_view =
            MappedCodes::new(Arc::clone(&map), parsed.arena_offset, parsed.arena.len())
                .map_err(|e| StoreError::corrupt("arena", e.to_string()))?;
        let arena = ArenaStorage::Shared(Arc::new(arena_view.clone()));
        let (space, index_outcome) = assemble(
            &parsed.info,
            parsed.params,
            arena,
            idx,
            persisted_present,
            || ArenaStorage::Shared(Arc::new(arena_view)),
        )?;
        let index_outcome = match fallback {
            Some(reason) => IndexOutcome::RebuiltAfterFallback { reason },
            None => index_outcome,
        };
        let info = parsed.info;
        Ok(LoadedSpace {
            space,
            info,
            report: LoadReport {
                arena: ArenaOutcome::MmapZeroCopy,
                index: index_outcome,
            },
        })
    }
}

/// Load a store file with explicit [`LoadOptions`] in one call.
pub fn load_space_from_path(
    path: impl AsRef<Path>,
    options: LoadOptions,
) -> Result<LoadedSpace, StoreError> {
    StoreReader::open(path)?.load(options)
}

/// Arenas at least this large verify their checksum on a helper thread,
/// overlapped with the index build (below it, the thread spawn would cost
/// more than the overlap saves).
const PARALLEL_CRC_BYTES: usize = 2 << 20;

/// Validate and rebuild a space from an in-memory store file in one call.
///
/// This is the **strict** entry point: every checksum in the file must
/// verify — arena, metadata sections, and the `IDX` section when present
/// (whose table must also pass adoption with sampled verification). Any
/// mismatch is an error, never a silent fallback; the cache layer maps
/// such errors to a rebuild. For policy-driven loading (zero-copy, index
/// trust levels, reported fallbacks) use [`StoreReader::load`].
///
/// When no index section is present and the arena is large, the arena
/// checksum is verified on a scoped helper thread *while* the main thread
/// decodes the codes and builds the membership table — the two dominate
/// that load shape and are independent. The space is only returned when
/// both succeed, so a corrupt file is never served; it merely wastes the
/// (discarded) speculative index build.
pub fn read_space_from_bytes(bytes: &[u8]) -> Result<(SearchSpace, StoreInfo), StoreError> {
    let parsed = parse_structure(bytes)?;

    // A present index must be fully sound in the strict reader.
    if let Some(idx) = &parsed.idx {
        if !idx.crc_ok() {
            return Err(StoreError::corrupt("index", "checksum mismatch"));
        }
        if idx.hash_version != INDEX_HASH_VERSION {
            return Err(StoreError::corrupt(
                "index",
                format!(
                    "row-hash version {} (this build uses {INDEX_HASH_VERSION})",
                    idx.hash_version
                ),
            ));
        }
        if crc32(parsed.arena) != parsed.arena_crc {
            return Err(StoreError::corrupt("arena", "checksum mismatch"));
        }
        let space = SearchSpace::from_code_storage_with_index(
            parsed.info.name.clone(),
            parsed.params,
            parsed.info.num_rows,
            ArenaStorage::from(decode_codes(parsed.arena)),
            ArenaStorage::from(decode_codes(idx.slots)),
            IndexVerification::Sampled(VERIFY_SAMPLES),
            CodeValidation::Checked,
        )
        .map_err(|e| match e {
            SpaceError::IndexInvalid { detail } => StoreError::corrupt("index", detail),
            other => other.into(),
        })?;
        return Ok((space, parsed.info));
    }

    let multicore = std::thread::available_parallelism().is_ok_and(|n| n.get() > 1);
    if !multicore || parsed.arena.len() < PARALLEL_CRC_BYTES {
        if crc32(parsed.arena) != parsed.arena_crc {
            return Err(StoreError::corrupt("arena", "checksum mismatch"));
        }
        let codes = decode_codes(parsed.arena);
        let space = SearchSpace::from_code_rows(
            parsed.info.name.clone(),
            parsed.params,
            parsed.info.num_rows,
            codes,
        )?;
        return Ok((space, parsed.info));
    }
    let ParsedFile {
        info,
        params,
        arena,
        arena_crc,
        ..
    } = parsed;
    let (crc_ok, space) = std::thread::scope(|scope| {
        let checker = scope.spawn(move || crc32(arena) == arena_crc);
        let codes = decode_codes(arena);
        let space = SearchSpace::from_code_rows(info.name.clone(), params, info.num_rows, codes);
        (checker.join().expect("checksum thread"), space)
    });
    if !crc_ok {
        return Err(StoreError::corrupt("arena", "checksum mismatch"));
    }
    Ok((space?, info))
}

/// Read, validate and rebuild a space from a store file in one call (the
/// strict copying path; see [`read_space_from_bytes`]).
pub fn read_space_from_path(
    path: impl AsRef<Path>,
) -> Result<(SearchSpace, StoreInfo), StoreError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| StoreError::io(path, e))?;
    read_space_from_bytes(&bytes)
}

/// Read a store file's metadata without loading or validating the arena —
/// the cheap path for listing a cache directory. The header section's CRC
/// *is* verified, and the `IDX` section's frame (tag, version, slot count)
/// is located via O(1) seeks; the arena and index checksums are not
/// checked (use [`read_space_from_bytes`] for a full verification).
pub fn peek_info(path: impl AsRef<Path>) -> Result<StoreInfo, StoreError> {
    let path = path.as_ref();
    let mut file = File::open(path).map_err(|e| StoreError::io(path, e))?;
    let file_bytes = file.metadata().map_err(|e| StoreError::io(path, e))?.len();

    let mut head = [0u8; 8 + 12];
    file.read_exact(&mut head)
        .map_err(|_| StoreError::corrupt("header", "file too short"))?;
    if head[0..4] != MAGIC {
        return Err(StoreError::BadMagic {
            found: head[0..4].try_into().expect("4 bytes"),
        });
    }
    let version = u32::from_le_bytes(head[4..8].try_into().expect("4 bytes"));
    if !(MIN_READ_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    if head[8..12] != TAG_HEADER {
        return Err(StoreError::corrupt("header", "missing header tag"));
    }
    let hdr_len = u64::from_le_bytes(head[12..20].try_into().expect("8 bytes")) as usize;
    if hdr_len > 1 << 20 {
        return Err(StoreError::corrupt("header", "implausible header length"));
    }
    let mut payload = vec![0u8; hdr_len + 4];
    file.read_exact(&mut payload)
        .map_err(|_| StoreError::corrupt("header", "file ends inside the header"))?;
    let (payload, crc_bytes) = payload.split_at(hdr_len);
    if crc32(payload) != u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes")) {
        return Err(StoreError::corrupt("header", "checksum mismatch"));
    }
    let mut cur = Cursor::new(payload, "header");
    let name = cur.str()?;
    let num_params = cur.u32()? as usize;
    if !cur.done() {
        return Err(StoreError::corrupt("header", "trailing bytes after header"));
    }

    // The header read above guarantees `file_bytes >= 20 > TRAILER_LEN`.
    let trailer_at = file_bytes - TRAILER_LEN as u64;
    file.seek(SeekFrom::Start(trailer_at))
        .map_err(|e| StoreError::io(path, e))?;
    let mut trailer = [0u8; TRAILER_LEN];
    file.read_exact(&mut trailer)
        .map_err(|_| StoreError::corrupt("trailer", "file too short"))?;
    if trailer[0..4] != TAG_END {
        return Err(StoreError::corrupt(
            "trailer",
            "missing end tag (file truncated or construction crashed mid-write)",
        ));
    }
    let num_rows = u64::from_le_bytes(trailer[4..12].try_into().expect("8 bytes")) as usize;

    // Walk the remaining section frames with O(1) seeks — the same exact
    // accounting as `parse_structure`, just without reading the payloads.
    // Every offset is computed with checked arithmetic: all frame lengths
    // and the trailer's row count are attacker-controlled, and an
    // overflowing sum must become a clean corruption error, not a panic or
    // a wrapped-around seek.
    let too_short = |section: &'static str| {
        StoreError::corrupt(section, format!("file ends before the {section} section"))
    };
    let par_at = 8 + 12 + hdr_len as u64 + 4; // hdr_len is capped above
    file.seek(SeekFrom::Start(par_at))
        .map_err(|e| StoreError::io(path, e))?;
    let mut frame = [0u8; 12];
    file.read_exact(&mut frame)
        .map_err(|_| StoreError::corrupt("params", "file ends inside the params frame"))?;
    if frame[0..4] != TAG_PARAMS {
        return Err(StoreError::corrupt("params", "missing params tag"));
    }
    let par_len = u64::from_le_bytes(frame[4..12].try_into().expect("8 bytes"));
    let arena_tag_at = par_at
        .checked_add(12)
        .and_then(|v| v.checked_add(par_len))
        .and_then(|v| v.checked_add(4))
        .filter(|&v| v <= trailer_at)
        .ok_or_else(|| too_short("arena"))?;
    file.seek(SeekFrom::Start(arena_tag_at))
        .map_err(|e| StoreError::io(path, e))?;
    let arena_at = if version >= 2 {
        let mut arn = [0u8; 8];
        file.read_exact(&mut arn)
            .map_err(|_| StoreError::corrupt("arena", "file ends inside the arena frame"))?;
        if arn[0..4] != TAG_ARENA {
            return Err(StoreError::corrupt("arena", "missing arena tag"));
        }
        let pad = u32::from_le_bytes(arn[4..8].try_into().expect("4 bytes")) as u64;
        if pad > 3 {
            return Err(StoreError::corrupt(
                "arena",
                format!("implausible alignment padding {pad}"),
            ));
        }
        let at = arena_tag_at
            .checked_add(8 + pad)
            .filter(|&v| v <= trailer_at)
            .ok_or_else(|| too_short("arena"))?;
        if !at.is_multiple_of(4) {
            return Err(StoreError::corrupt(
                "arena",
                "alignment padding does not land the arena on a 4-byte offset",
            ));
        }
        at
    } else {
        let mut arn = [0u8; 4];
        file.read_exact(&mut arn)
            .map_err(|_| StoreError::corrupt("arena", "file ends inside the arena frame"))?;
        if arn != TAG_ARENA {
            return Err(StoreError::corrupt("arena", "missing arena tag"));
        }
        arena_tag_at
            .checked_add(4)
            .filter(|&v| v <= trailer_at)
            .ok_or_else(|| too_short("arena"))?
    };
    let arena_len = (num_rows as u64)
        .checked_mul(num_params as u64)
        .and_then(|c| c.checked_mul(4))
        .ok_or_else(|| StoreError::corrupt("arena", "arena size overflows"))?;
    let after_arena = arena_at
        .checked_add(arena_len)
        .filter(|&v| v <= trailer_at)
        .ok_or_else(|| {
            StoreError::corrupt(
                "arena",
                format!(
                    "{} bytes before the trailer cannot hold {num_rows} rows x {num_params} params",
                    trailer_at.saturating_sub(arena_at),
                ),
            )
        })?;

    // Between arena end and trailer: nothing (v1, or v2 without an index)
    // or exactly one IDX section — the same rule `parse_structure` applies.
    let mut index = None;
    if after_arena < trailer_at {
        if version < 2 {
            return Err(StoreError::corrupt(
                "arena",
                format!(
                    "arena holds {} bytes where {num_rows} rows x {num_params} params need {arena_len}",
                    trailer_at - arena_at,
                ),
            ));
        }
        file.seek(SeekFrom::Start(after_arena))
            .map_err(|e| StoreError::io(path, e))?;
        let mut frame = [0u8; 4 + 8 + 8];
        file.read_exact(&mut frame)
            .map_err(|_| StoreError::corrupt("index", "file ends inside the index frame"))?;
        if frame[0..4] != TAG_INDEX {
            return Err(StoreError::corrupt("index", "unexpected section tag"));
        }
        let payload_len = u64::from_le_bytes(frame[4..12].try_into().expect("8 bytes"));
        let idx_end = after_arena
            .checked_add(4 + 8 + 4)
            .and_then(|v| v.checked_add(payload_len));
        if idx_end != Some(trailer_at) {
            return Err(StoreError::corrupt(
                "index",
                "trailing bytes between the index section and the trailer",
            ));
        }
        let hash_version = u32::from_le_bytes(frame[12..16].try_into().expect("4 bytes"));
        let num_slots = u32::from_le_bytes(frame[16..20].try_into().expect("4 bytes")) as usize;
        if payload_len != 8 + num_slots as u64 * 4 {
            return Err(StoreError::corrupt(
                "index",
                "payload length does not match the slot count",
            ));
        }
        index = Some(IndexInfo {
            hash_version,
            num_slots,
        });
    }

    Ok(StoreInfo {
        version,
        name,
        num_params,
        num_rows,
        file_bytes,
        index,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_csp::value::int_values;

    fn small_space() -> SearchSpace {
        let params = vec![
            TunableParameter::ints("x", [1, 2, 4]),
            TunableParameter::ints("y", [1, 2]),
        ];
        let configs = vec![
            int_values([1, 1]),
            int_values([1, 2]),
            int_values([2, 1]),
            int_values([4, 2]),
        ];
        SearchSpace::from_configs("small", params, configs).unwrap()
    }

    fn spaces_identical(a: &SearchSpace, b: &SearchSpace) {
        assert_eq!(a.name(), b.name());
        assert_eq!(a.len(), b.len());
        assert_eq!(a.arena(), b.arena());
        assert_eq!(a.params().len(), b.params().len());
        for (pa, pb) in a.params().iter().zip(b.params()) {
            assert_eq!(pa.name(), pb.name());
            assert_eq!(pa.values(), pb.values());
        }
        for view in a.iter() {
            assert_eq!(b.index_of(&view.to_vec()), Some(view.id()));
        }
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("at-store-format-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn write_read_round_trip() {
        let space = small_space();
        let mut bytes = Vec::new();
        let summary = write_space(&space, &mut bytes).unwrap();
        assert_eq!(summary.rows, 4);
        assert_eq!(summary.bytes_written, bytes.len() as u64);
        let (loaded, info) = read_space_from_bytes(&bytes).unwrap();
        assert_eq!(info.name, "small");
        assert_eq!(info.num_rows, 4);
        assert_eq!(info.num_params, 2);
        assert_eq!(info.version, FORMAT_VERSION);
        assert_eq!(info.file_bytes, bytes.len() as u64);
        let index = info.index.expect("v2 files carry an index");
        assert_eq!(index.hash_version, INDEX_HASH_VERSION);
        assert_eq!(index.num_slots, space.index_slots().len());
        spaces_identical(&space, &loaded);
    }

    #[test]
    fn v2_arena_is_four_byte_aligned_for_any_name_length() {
        for name in ["s", "sp", "spa", "spac", "space"] {
            let params = vec![TunableParameter::ints("x", [1, 2])];
            let space = SearchSpace::from_configs(name, params, vec![int_values([1])]).unwrap();
            let mut bytes = Vec::new();
            write_space(&space, &mut bytes).unwrap();
            let parsed = parse_structure(&bytes).unwrap();
            assert_eq!(
                parsed.arena_offset % 4,
                0,
                "arena misaligned for name {name:?}"
            );
            let idx = parsed.idx.as_ref().expect("index present");
            assert_eq!(idx.slots_offset % 4, 0, "slots misaligned for {name:?}");
        }
    }

    /// An owned, clonable byte sink: the `RowSink` impl requires
    /// `W: 'static`, so tests cannot hand a `&mut Vec<u8>` to the writer.
    #[derive(Clone, Default)]
    struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn bytes(&self) -> Vec<u8> {
            self.0.lock().unwrap().clone()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn streaming_writer_matches_write_space() {
        let space = small_space();
        let mut via_space = Vec::new();
        write_space(&space, &mut via_space).unwrap();

        let buf = SharedBuf::default();
        let mut writer = StoreWriter::new(buf.clone(), "small", space.params().to_vec()).unwrap();
        for view in space.iter() {
            writer.push_row(&view.to_vec()).unwrap();
        }
        let (streamed, summary) = writer.finish().unwrap();
        assert_eq!(summary.rows, 4);
        spaces_identical(&space, &streamed);
        assert_eq!(
            buf.bytes(),
            via_space,
            "streamed and one-shot files are identical"
        );
    }

    #[test]
    fn streaming_writer_supports_chunks() {
        let space = small_space();
        let buf = SharedBuf::default();
        let mut writer = StoreWriter::new(buf.clone(), "small", space.params().to_vec()).unwrap();
        let mut chunk = writer.new_chunk();
        for view in space.iter() {
            chunk.push_row(&view.to_vec()).unwrap();
        }
        writer.merge_chunk(chunk).unwrap();
        let (streamed, _) = writer.finish().unwrap();
        spaces_identical(&space, &streamed);
        let (loaded, _) = read_space_from_bytes(&buf.bytes()).unwrap();
        spaces_identical(&space, &loaded);
    }

    #[test]
    fn unfinished_writer_leaves_an_unreadable_file() {
        let space = small_space();
        let buf = SharedBuf::default();
        let mut writer = StoreWriter::new(buf.clone(), "small", space.params().to_vec()).unwrap();
        writer.push_row(&int_values([1, 1])).unwrap();
        drop(writer);
        // No trailer was written: the reader must refuse the file.
        assert!(read_space_from_bytes(&buf.bytes()).is_err());
    }

    #[test]
    fn empty_space_round_trips() {
        let params = vec![TunableParameter::ints("x", [1, 2])];
        let space = SearchSpace::from_configs("empty", params, vec![]).unwrap();
        let mut bytes = Vec::new();
        write_space(&space, &mut bytes).unwrap();
        let (loaded, info) = read_space_from_bytes(&bytes).unwrap();
        assert_eq!(info.num_rows, 0);
        assert!(loaded.is_empty());
        assert_eq!(loaded.params().len(), 1);
    }

    #[test]
    fn all_value_kinds_round_trip() {
        let params = vec![TunableParameter::new(
            "mixed",
            vec![
                Value::Int(-7),
                Value::Float(2.5),
                Value::Bool(true),
                Value::str("a,b\nc"),
            ],
        )];
        let configs = vec![
            vec![Value::Int(-7)],
            vec![Value::str("a,b\nc")],
            vec![Value::Float(2.5)],
        ];
        let space = SearchSpace::from_configs("mixed", params, configs).unwrap();
        let mut bytes = Vec::new();
        write_space(&space, &mut bytes).unwrap();
        let (loaded, _) = read_space_from_bytes(&bytes).unwrap();
        spaces_identical(&space, &loaded);
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let space = small_space();
        let mut bytes = Vec::new();
        write_space(&space, &mut bytes).unwrap();

        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            read_space_from_bytes(&bad),
            Err(StoreError::BadMagic { .. })
        ));

        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(matches!(
            read_space_from_bytes(&bad),
            Err(StoreError::UnsupportedVersion { found: 99, .. })
        ));
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let space = small_space();
        let mut bytes = Vec::new();
        write_space(&space, &mut bytes).unwrap();
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0x40;
            let result = read_space_from_bytes(&flipped);
            assert!(result.is_err(), "flip at byte {i} went undetected");
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let space = small_space();
        let mut bytes = Vec::new();
        write_space(&space, &mut bytes).unwrap();
        for keep in 0..bytes.len() {
            let result = read_space_from_bytes(&bytes[..keep]);
            assert!(
                result.is_err(),
                "truncation to {keep} bytes went undetected"
            );
        }
    }

    #[test]
    fn peek_reads_metadata_without_the_arena() {
        let path = temp_path("peek.atss");
        let space = small_space();
        write_space_to_path(&space, &path).unwrap();
        let info = peek_info(&path).unwrap();
        assert_eq!(info.name, "small");
        assert_eq!(info.num_rows, 4);
        assert_eq!(info.num_params, 2);
        assert_eq!(info.version, FORMAT_VERSION);
        let index = info.index.expect("index frame located");
        assert_eq!(index.hash_version, INDEX_HASH_VERSION);
        assert_eq!(index.num_slots, space.index_slots().len());
        let full = StoreReader::open(&path).unwrap();
        assert_eq!(full.info().unwrap(), info);
        let (_, read_info) = read_space_from_path(&path).unwrap();
        assert_eq!(read_info, info);
    }

    /// The `peek_info`/strict-reader differential (fuzz target 1's
    /// secondary oracle): whenever the cheap peek rejects a file, the
    /// strict reader must reject it too, and when both accept, the
    /// metadata must be identical. Peek may accept files the strict
    /// reader rejects (it skips the param dictionaries and all content
    /// checksums), but never the other way around.
    fn assert_peek_not_stricter(bytes: &[u8], tag: &str, what: &str) {
        let path = temp_path(&format!("peek-diff-{tag}.atss"));
        std::fs::write(&path, bytes).unwrap();
        let peeked = peek_info(&path);
        let strict = read_space_from_bytes(bytes);
        match (peeked, strict) {
            (Ok(info), Ok((_, strict_info))) => {
                assert_eq!(info, strict_info, "{what}: metadata diverged")
            }
            (Err(e), Ok(_)) => panic!("{what}: peek rejected ({e}) what the strict reader accepts"),
            (Err(e), Err(_)) => assert!(
                e.is_content_error(),
                "{what}: peek turned damage into a non-content error: {e}"
            ),
            (Ok(_), Err(_)) => {} // peek is allowed to be laxer
        }
    }

    #[test]
    fn peek_classifies_every_truncation_as_the_strict_reader_does() {
        let space = small_space();
        let mut bytes = Vec::new();
        write_space(&space, &mut bytes).unwrap();
        for keep in 0..bytes.len() {
            assert_peek_not_stricter(&bytes[..keep], "trunc", &format!("truncation to {keep}"));
        }
    }

    #[test]
    fn peek_agrees_with_the_strict_reader_on_single_byte_flips() {
        let space = small_space();
        let mut bytes = Vec::new();
        write_space(&space, &mut bytes).unwrap();
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0x40;
            assert_peek_not_stricter(&flipped, "flip", &format!("flip at byte {i}"));
        }
    }

    #[test]
    fn peek_survives_overflowing_trailer_row_counts() {
        // A hostile trailer row count must yield a clean corruption error,
        // not an arithmetic overflow: both the `rows * params * 4` product
        // and the `arena offset + arena length` sum can exceed `u64`.
        let space = small_space();
        let mut bytes = Vec::new();
        write_space(&space, &mut bytes).unwrap();
        let rows_at = bytes.len() - TRAILER_LEN + 4;
        for hostile_rows in [u64::MAX, u64::MAX / 8, u64::MAX / 8 - 1000] {
            let mut bad = bytes.clone();
            bad[rows_at..rows_at + 8].copy_from_slice(&hostile_rows.to_le_bytes());
            assert_peek_not_stricter(
                &bad,
                "rows",
                &format!("trailer claiming {hostile_rows} rows"),
            );
        }
    }

    #[test]
    fn peek_rejects_stray_bytes_between_arena_and_trailer_in_v1() {
        let fixture = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../tests/fixtures/v1-small.atss");
        let bytes = std::fs::read(fixture).unwrap();
        assert_peek_not_stricter(&bytes, "v1", "pristine v1 fixture");
        // Splice a stray byte in front of the trailer: v1 has no index
        // section, so the gap must be rejected by both readers.
        let mut padded = bytes.clone();
        padded.insert(bytes.len() - TRAILER_LEN, 0);
        assert_peek_not_stricter(&padded, "v1-stray", "v1 file with a stray pre-trailer byte");
        let path = temp_path("peek-v1-stray.atss");
        std::fs::write(&path, &padded).unwrap();
        assert!(peek_info(&path).is_err(), "stray byte accepted by peek");
    }

    #[test]
    fn load_options_cover_the_matrix() {
        let path = temp_path("matrix.atss");
        let space = small_space();
        write_space_to_path(&space, &path).unwrap();
        let reader = StoreReader::open(&path).unwrap();
        for mode in [LoadMode::Copy, LoadMode::Mmap] {
            for index in [
                IndexPolicy::Rebuild,
                IndexPolicy::TrustPersisted,
                IndexPolicy::VerifySampled,
            ] {
                let loaded = reader.load(LoadOptions { mode, index }).unwrap();
                spaces_identical(&space, &loaded.space);
                match index {
                    IndexPolicy::Rebuild => assert_eq!(
                        loaded.report.index,
                        IndexOutcome::Rebuilt {
                            persisted_present: true
                        }
                    ),
                    IndexPolicy::TrustPersisted => assert_eq!(
                        loaded.report.index,
                        IndexOutcome::Adopted { verified: false }
                    ),
                    IndexPolicy::VerifySampled => assert_eq!(
                        loaded.report.index,
                        IndexOutcome::Adopted { verified: true }
                    ),
                }
                if mode == LoadMode::Mmap && cfg!(target_os = "linux") {
                    assert!(loaded.report.is_zero_copy(), "{:?}", loaded.report);
                    assert!(loaded.space.is_zero_copy());
                } else if mode == LoadMode::Copy {
                    assert_eq!(loaded.report.arena, ArenaOutcome::Copied);
                    assert!(!loaded.space.is_zero_copy());
                }
            }
        }
    }

    #[test]
    fn corrupt_index_falls_back_to_rebuild_with_a_report() {
        let path = temp_path("bad-index.atss");
        let space = small_space();
        let mut bytes = Vec::new();
        write_space(&space, &mut bytes).unwrap();
        // Flip a byte inside the IDX slot array (between arena end and the
        // trailer, past the section frame and payload header).
        let flip_at = bytes.len() - TRAILER_LEN - 1;
        bytes[flip_at] ^= 0x08;
        std::fs::write(&path, &bytes).unwrap();

        // Strict reader: hard error.
        assert!(read_space_from_bytes(&bytes).is_err());

        // Policy reader: clean fallback, reported — and identical answers.
        for mode in [LoadMode::Copy, LoadMode::Mmap] {
            let loaded = StoreReader::open(&path)
                .unwrap()
                .load(LoadOptions {
                    mode,
                    index: IndexPolicy::VerifySampled,
                })
                .unwrap();
            let reason = loaded
                .report
                .index_fallback()
                .expect("fallback must be reported");
            assert!(reason.contains("checksum"), "{reason}");
            spaces_identical(&space, &loaded.space);
        }
    }

    #[test]
    fn wrong_hash_version_index_is_rejected_then_rebuilt() {
        let space = small_space();
        let mut bytes = Vec::new();
        write_space(&space, &mut bytes).unwrap();
        // The IDX payload starts with the hash version; patch it and fix
        // the section CRC so only the version mismatch remains.
        let parsed = parse_structure(&bytes).unwrap();
        let payload_at = parsed.idx.as_ref().unwrap().slots_offset - 8;
        let payload_len = parsed.idx.as_ref().unwrap().payload.len();
        drop(parsed);
        bytes[payload_at..payload_at + 4].copy_from_slice(&77u32.to_le_bytes());
        let crc = crc32(&bytes[payload_at..payload_at + payload_len]);
        let crc_at = payload_at + payload_len;
        bytes[crc_at..crc_at + 4].copy_from_slice(&crc.to_le_bytes());

        assert!(read_space_from_bytes(&bytes).is_err(), "strict reader");
        let path = temp_path("hashver.atss");
        std::fs::write(&path, &bytes).unwrap();
        let loaded = load_space_from_path(&path, LoadOptions::default()).unwrap();
        let reason = loaded.report.index_fallback().unwrap();
        assert!(reason.contains("hash version"), "{reason}");
        spaces_identical(&space, &loaded.space);
    }
}
