//! # at-searchspace — constrained auto-tuning search spaces
//!
//! The core crate of this reproduction: it ties the constraint expression
//! pipeline (`at-expr`), the CSP solvers (`at-csp`) and the chain-of-trees
//! baseline (`at-cot`) together behind the `SearchSpace` abstraction the
//! paper contributes to Kernel Tuner (Section 4.4).
//!
//! * [`SearchSpaceSpec`] — tunable parameters + restrictions, as the user
//!   writes them (expression strings, closures, or specific constraints).
//! * [`Method`] / [`build_search_space`] — construct the space with any of
//!   the paper's construction methods and obtain a [`BuildReport`] with
//!   timing and solver statistics.
//! * [`SearchSpace`] — the resolved space: a compact columnar,
//!   index-encoded configuration arena with [`ConfigId`] handles,
//!   borrowing [`ConfigView`] decoding, hash lookups, true parameter
//!   bounds, neighbor queries and sampling.
//!
//! ```
//! use at_searchspace::prelude::*;
//!
//! let spec = SearchSpaceSpec::new("quickstart")
//!     .with_param(TunableParameter::pow2("block_size_x", 8))
//!     .with_param(TunableParameter::pow2("block_size_y", 6))
//!     .with_expr("32 <= block_size_x*block_size_y <= 1024");
//!
//! let (space, report) = build_search_space(&spec, Method::Optimized).unwrap();
//! assert!(space.len() > 0);
//! assert_eq!(report.num_valid, space.len());
//!
//! // Configurations are addressed by id and decoded lazily.
//! let id = space.ids().next().unwrap();
//! let view = space.view(id).unwrap();
//! assert_eq!(space.index_of(&view.to_vec()), Some(id));
//! ```
//!
//! # Removed APIs
//!
//! The decoded-row shims that bridged the pre-columnar representation
//! (`configs()`, `get(i)`, `named(i)`, `value_indices(i)`) were deprecated
//! for two releases and are now **removed** — every consumer works in code
//! space. Their replacements: `space.iter()` / `iter_decoded()` for
//! `configs()`, `space.view(ConfigId::from_index(i))` for `get`/`named`
//! (decode lazily, borrowing), and `space.codes_of(id)` for
//! `value_indices` (`&[u32]`, zero-copy). `index_of` returns a
//! [`ConfigId`]; callers already in code space use `index_of_codes`.
//! Neighbor queries ([`neighbors()`], [`NeighborIndex`]) and sampling
//! ([`sample_indices`], [`latin_hypercube_sample`]) consume and produce
//! [`ConfigId`]s and operate on encoded rows internally.
//!
//! # MIGRATION: collected construction → streaming construction
//!
//! Construction used to materialize the solver output twice: every solver
//! collected a decoded `SolutionSet` (`Vec<Vec<Value>>`) which
//! `from_solutions` then re-encoded into the arena and dropped. The
//! construction path now streams — solvers push rows into a
//! `SolutionSink` (`at_csp::sink`) and [`EncodingSink`] encodes each row
//! straight into the arena; parallel solvers encode per-thread chunks that
//! merge by `Vec<u32>` append, without re-encoding or re-hashing:
//!
//! | old (collected)                                   | new (streaming)                                  |
//! |---------------------------------------------------|--------------------------------------------------|
//! | `solver.solve(&p)?` then `from_solutions(..)`     | `solver.solve_into(&p, &mut EncodingSink)` + `finish()` |
//! | `enumerate_chain(&chain)` then `from_solutions`   | `enumerate_chain_into(&chain, &mut sink)`        |
//! | adopt decoded rows: `from_configs(.., rows)`      | adopt encoded rows: [`SearchSpace::from_code_rows`] |
//!
//! `Solver::solve`, `from_solutions` and `from_configs` all keep working
//! (and `build_search_space` is unchanged for callers — it just streams
//! internally); migrate when construction memory or time matters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod builder;
pub mod format;
pub mod neighbors;
pub mod output;
pub mod param;
pub mod restriction;
pub mod sampling;
pub mod sink;
pub mod space;
pub mod spec;
pub mod stats;

pub use arena::{ArenaStorage, CodeBacking};
pub use builder::{
    build_search_space, build_search_space_with, solve_spec_into, BuildOptions, BuildReport,
    Method, SinkSolveReport,
};
pub use format::{spec_from_json, spec_to_json, FormatError, SpecFile};
pub use neighbors::{neighbors, NeighborIndex, NeighborMethod};
pub use output::{to_columnar, to_csv, to_json_cache, to_named_maps, write_csv, write_json_cache};
pub use param::TunableParameter;
pub use restriction::Restriction;
pub use sampling::{coverage_per_parameter, latin_hypercube_sample, sample_indices};
pub use sink::EncodingSink;
pub use space::{
    CodeValidation, ConfigId, ConfigView, IndexVerification, SearchSpace, SpaceError,
    INDEX_HASH_VERSION,
};
pub use spec::{RestrictionLowering, SearchSpaceSpec};
pub use stats::SpaceCharacteristics;

/// Commonly used items in one import.
pub mod prelude {
    pub use crate::arena::ArenaStorage;
    pub use crate::builder::{
        build_search_space, build_search_space_with, BuildOptions, BuildReport, Method,
    };
    pub use crate::neighbors::{neighbors, NeighborIndex, NeighborMethod};
    pub use crate::param::TunableParameter;
    pub use crate::restriction::Restriction;
    pub use crate::sampling::{latin_hypercube_sample, sample_indices};
    pub use crate::sink::EncodingSink;
    pub use crate::space::{
        CodeValidation, ConfigId, ConfigView, IndexVerification, SearchSpace, SpaceError,
    };
    pub use crate::spec::{RestrictionLowering, SearchSpaceSpec};
    pub use crate::stats::SpaceCharacteristics;
    pub use at_csp::Value;
}
