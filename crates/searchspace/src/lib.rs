//! # at-searchspace — constrained auto-tuning search spaces
//!
//! The core crate of this reproduction: it ties the constraint expression
//! pipeline (`at-expr`), the CSP solvers (`at-csp`) and the chain-of-trees
//! baseline (`at-cot`) together behind the `SearchSpace` abstraction the
//! paper contributes to Kernel Tuner (Section 4.4).
//!
//! * [`SearchSpaceSpec`] — tunable parameters + restrictions, as the user
//!   writes them (expression strings, closures, or specific constraints).
//! * [`Method`] / [`build_search_space`] — construct the space with any of
//!   the paper's construction methods and obtain a [`BuildReport`] with
//!   timing and solver statistics.
//! * [`SearchSpace`] — the resolved space: indexed configurations, hash
//!   lookups, true parameter bounds, neighbor queries and sampling.
//!
//! ```
//! use at_searchspace::prelude::*;
//!
//! let spec = SearchSpaceSpec::new("quickstart")
//!     .with_param(TunableParameter::pow2("block_size_x", 8))
//!     .with_param(TunableParameter::pow2("block_size_y", 6))
//!     .with_expr("32 <= block_size_x*block_size_y <= 1024");
//!
//! let (space, report) = build_search_space(&spec, Method::Optimized).unwrap();
//! assert!(space.len() > 0);
//! assert_eq!(report.num_valid, space.len());
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod format;
pub mod neighbors;
pub mod output;
pub mod param;
pub mod restriction;
pub mod sampling;
pub mod space;
pub mod spec;
pub mod stats;

pub use builder::{build_search_space, build_search_space_with, BuildOptions, BuildReport, Method};
pub use format::{spec_from_json, spec_to_json, FormatError, SpecFile};
pub use neighbors::{neighbors, NeighborIndex, NeighborMethod};
pub use output::{to_columnar, to_csv, to_json_cache, to_named_maps};
pub use param::TunableParameter;
pub use restriction::Restriction;
pub use sampling::{coverage_per_parameter, latin_hypercube_sample, sample_indices};
pub use space::SearchSpace;
pub use spec::{RestrictionLowering, SearchSpaceSpec};
pub use stats::SpaceCharacteristics;

/// Commonly used items in one import.
pub mod prelude {
    pub use crate::builder::{
        build_search_space, build_search_space_with, BuildOptions, BuildReport, Method,
    };
    pub use crate::neighbors::{neighbors, NeighborIndex, NeighborMethod};
    pub use crate::param::TunableParameter;
    pub use crate::restriction::Restriction;
    pub use crate::sampling::{latin_hypercube_sample, sample_indices};
    pub use crate::space::SearchSpace;
    pub use crate::spec::{RestrictionLowering, SearchSpaceSpec};
    pub use crate::stats::SpaceCharacteristics;
    pub use at_csp::Value;
}
