//! Search space construction: the method selector and build statistics.
//!
//! This is the integration point the paper's evaluation exercises: the same
//! specification can be constructed with every method (brute force, the
//! original unoptimized solver, the optimized solver, the parallel solver,
//! chain-of-trees, and the blocking-clause enumerator), and the harness
//! compares their construction times and validates that all of them produce
//! the identical set of configurations.

use std::time::{Duration, Instant};

use at_cot::{build_chain_from_problem, enumerate_chain_into};
use at_csp::sink::SolutionSink;
use at_csp::{
    BlockingClauseSolver, BruteForceSolver, CspError, CspResult, OptimizedSolver,
    OptimizedSolverConfig, OriginalBacktrackingSolver, ParallelSolver, SolveStats, Solver,
};

use crate::sink::EncodingSink;
use crate::space::SearchSpace;
use crate::spec::{RestrictionLowering, SearchSpaceSpec};

/// The construction method, matching the series of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Enumerate the Cartesian product and filter (paper: `brute-force`).
    BruteForce,
    /// Unoptimized backtracking over generic constraints (paper: `original`).
    Original,
    /// The optimized CSP solver (paper: `optimized`, this work).
    Optimized,
    /// The optimized solver with first-variable domain splitting over threads.
    ParallelOptimized,
    /// Chain-of-trees construction (paper: ATF / pyATF).
    ChainOfTrees,
    /// One-solution-at-a-time enumeration with blocking clauses
    /// (paper: PySMT + Z3).
    BlockingClause,
}

impl Method {
    /// All methods, in the order used by the evaluation figures.
    pub fn all() -> [Method; 6] {
        [
            Method::BruteForce,
            Method::Original,
            Method::Optimized,
            Method::ParallelOptimized,
            Method::ChainOfTrees,
            Method::BlockingClause,
        ]
    }

    /// The paper's series name for this method.
    pub fn label(&self) -> &'static str {
        match self {
            Method::BruteForce => "brute-force",
            Method::Original => "original",
            Method::Optimized => "optimized",
            Method::ParallelOptimized => "parallel-optimized",
            Method::ChainOfTrees => "chain-of-trees",
            Method::BlockingClause => "blocking-clause",
        }
    }

    /// Resolve a method from its series name (the inverse of [`Method::label`]),
    /// accepting a few common aliases.
    pub fn from_label(label: &str) -> Option<Method> {
        match label {
            "brute-force" | "bruteforce" | "brute_force" => Some(Method::BruteForce),
            "original" => Some(Method::Original),
            "optimized" => Some(Method::Optimized),
            "parallel-optimized" | "parallel" => Some(Method::ParallelOptimized),
            "chain-of-trees" | "cot" | "atf" => Some(Method::ChainOfTrees),
            "blocking-clause" | "smt" | "z3" => Some(Method::BlockingClause),
            _ => None,
        }
    }

    /// The restriction lowering the method uses by default: the optimized
    /// solver benefits from decomposition and specific constraints, the
    /// baselines see the restrictions exactly as the user wrote them.
    pub fn default_lowering(&self) -> RestrictionLowering {
        match self {
            Method::Optimized | Method::ParallelOptimized => RestrictionLowering::Optimized,
            _ => RestrictionLowering::Generic,
        }
    }
}

/// Options controlling construction, mostly used by the ablation benchmarks.
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildOptions {
    /// Override the restriction lowering (default: the method's own).
    pub lowering: Option<RestrictionLowering>,
    /// Solver feature toggles for the optimized/parallel methods.
    pub solver_config: Option<OptimizedSolverConfig>,
    /// Run analyzer-driven domain pre-pruning before solving (see
    /// [`SearchSpaceSpec::to_problem_with`]): domain values that
    /// provably appear in no solution are dropped up front. The
    /// constructed space is code-for-code identical either way.
    pub prune: bool,
}

/// Statistics of one construction run.
#[derive(Debug, Clone)]
pub struct BuildReport {
    /// The method used.
    pub method: Method,
    /// Wall-clock construction time (lowering + solving + indexing).
    pub duration: Duration,
    /// Solver counters (zeroed for chain-of-trees, which reports
    /// `constraint_checks` only).
    pub stats: SolveStats,
    /// Number of valid configurations.
    pub num_valid: usize,
    /// Cartesian size of the unconstrained space.
    pub cartesian_size: u128,
    /// Number of constraints after lowering.
    pub num_constraints: usize,
}

/// Outcome of driving one construction method into a caller-provided sink
/// (see [`solve_spec_into`]).
#[derive(Debug, Clone)]
pub struct SinkSolveReport {
    /// Solver counters. For [`Method::ChainOfTrees`] the `solutions` field
    /// is left at zero — the enumerator does not count rows, the sink does.
    pub stats: SolveStats,
    /// Number of constraints after lowering.
    pub num_constraints: usize,
}

/// Construct the search space for `spec` with the given method.
pub fn build_search_space(
    spec: &SearchSpaceSpec,
    method: Method,
) -> CspResult<(SearchSpace, BuildReport)> {
    build_search_space_with(spec, method, BuildOptions::default())
}

/// Lower `spec` and drive the chosen method's solver (or the chain-of-trees
/// enumerator) into an arbitrary [`SolutionSink`].
///
/// This is the streaming core of [`build_search_space_with`], factored out
/// so other sinks can sit at the end of the pipeline — most importantly
/// `at_store`'s `StoreWriter`, which persists the space to disk *while* it
/// is constructed. Every row reaches the sink exactly once, the moment it
/// is found; parallel solvers fill per-thread chunks obtained from the sink.
///
/// The sink is the authority on the row count: for
/// [`Method::ChainOfTrees`] the returned `stats.solutions` is zero (the
/// enumerator reports `constraint_checks` only) and callers should consult
/// their sink.
pub fn solve_spec_into(
    spec: &SearchSpaceSpec,
    method: Method,
    options: BuildOptions,
    sink: &mut dyn SolutionSink,
) -> CspResult<SinkSolveReport> {
    let lowering = options
        .lowering
        .unwrap_or_else(|| method.default_lowering());
    let lower_span = at_obs::span("lower", "construct");
    let problem = spec.to_problem_with(lowering, options.prune)?;
    let num_constraints = problem.num_constraints();
    drop(
        lower_span
            .arg("variables", problem.num_variables() as u64)
            .arg("constraints", num_constraints as u64),
    );
    // Solvers emit rows in variable declaration order, which is the spec's
    // parameter order — exactly what encoding sinks encode against.
    debug_assert!(problem
        .variable_names()
        .iter()
        .zip(spec.params.iter())
        .all(|(n, p)| n == p.name()));

    let solve_span = at_obs::span("solve", "construct");
    let stats: SolveStats = match method {
        Method::BruteForce => run_into(&BruteForceSolver::new(), &problem, sink)?,
        Method::Original => run_into(&OriginalBacktrackingSolver::new(), &problem, sink)?,
        Method::Optimized => {
            let solver = match options.solver_config {
                Some(cfg) => OptimizedSolver::with_config(cfg),
                None => OptimizedSolver::new(),
            };
            run_into(&solver, &problem, sink)?
        }
        Method::ParallelOptimized => {
            let solver = match options.solver_config {
                Some(cfg) => ParallelSolver::with_config(cfg),
                None => ParallelSolver::new(),
            };
            run_into(&solver, &problem, sink)?
        }
        Method::BlockingClause => run_into(&BlockingClauseSolver::new(), &problem, sink)?,
        Method::ChainOfTrees => {
            let chain = build_chain_from_problem(&problem);
            enumerate_chain_into(&chain, sink)
                .map_err(|e| CspError::Solver(format!("chain-of-trees: {e}")))?;
            SolveStats {
                constraint_checks: chain.constraint_checks(),
                ..Default::default()
            }
        }
    };
    drop(
        solve_span
            .arg("nodes", stats.nodes)
            .arg("checks", stats.constraint_checks)
            .arg("solutions", stats.solutions),
    );
    Ok(SinkSolveReport {
        stats,
        num_constraints,
    })
}

/// Construct the search space with explicit options (ablation studies).
///
/// Construction streams: the chosen solver (or the chain-of-trees
/// enumerator) pushes each solution row into an [`EncodingSink`] the moment
/// it is found, where it is immediately encoded to `u32` value codes in the
/// space's arena. No decoded `Vec<Vec<Value>>` of the solutions is ever
/// materialized — the peak decoded footprint is one row per active worker
/// thread.
pub fn build_search_space_with(
    spec: &SearchSpaceSpec,
    method: Method,
    options: BuildOptions,
) -> CspResult<(SearchSpace, BuildReport)> {
    let start = Instant::now();
    let mut sink = EncodingSink::new(spec.name.clone(), spec.params.clone())
        .map_err(|e| CspError::Solver(format!("building the encoding sink failed: {e}")))?;
    let solved = solve_spec_into(spec, method, options, &mut sink)?;
    let mut stats = solved.stats;
    if method == Method::ChainOfTrees {
        stats.solutions = sink.rows() as u64;
    }

    let num_valid = sink.rows();
    let space = sink
        .finish()
        .map_err(|e| CspError::Solver(format!("indexing the resolved space failed: {e}")))?;
    let report = BuildReport {
        method,
        duration: start.elapsed(),
        stats,
        num_valid,
        cartesian_size: spec.cartesian_size(),
        num_constraints: solved.num_constraints,
    };
    Ok((space, report))
}

fn run_into<S: Solver>(
    solver: &S,
    problem: &at_csp::Problem,
    sink: &mut dyn SolutionSink,
) -> CspResult<SolveStats> {
    solver
        .solve_into(problem, sink)
        .map_err(|e| CspError::Solver(format!("{}: {e}", solver.name())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::TunableParameter;
    use crate::restriction::Restriction;

    fn hotspot_like_spec() -> SearchSpaceSpec {
        SearchSpaceSpec::new("hotspot-like")
            .with_param(TunableParameter::pow2("block_size_x", 8))
            .with_param(TunableParameter::pow2("block_size_y", 6))
            .with_param(TunableParameter::ints("work_per_thread", [1, 2, 4, 8]))
            .with_param(TunableParameter::switch("sh_power"))
            .with_expr("32 <= block_size_x*block_size_y <= 1024")
            .with_expr("block_size_x*block_size_y*work_per_thread*sh_power*4 <= 4096")
            .with_restriction(Restriction::func(
                &["work_per_thread", "block_size_y"],
                "wpt <= by",
                |v| v[0].as_i64().unwrap() <= v[1].as_i64().unwrap(),
            ))
    }

    #[test]
    fn all_methods_produce_the_same_space() {
        let spec = hotspot_like_spec();
        let (reference, ref_report) = build_search_space(&spec, Method::BruteForce).unwrap();
        assert!(!reference.is_empty());
        assert_eq!(ref_report.num_valid, reference.len());
        for method in Method::all() {
            let (space, report) = build_search_space(&spec, method).unwrap();
            assert_eq!(space.len(), reference.len(), "{}", method.label());
            for config in reference.iter_decoded() {
                assert!(
                    space.contains(&config),
                    "{} misses a config",
                    method.label()
                );
            }
            assert_eq!(report.cartesian_size, spec.cartesian_size());
        }
    }

    #[test]
    fn optimized_does_fewer_checks_than_brute_force() {
        let spec = hotspot_like_spec();
        let (_, bf) = build_search_space(&spec, Method::BruteForce).unwrap();
        let (_, opt) = build_search_space(&spec, Method::Optimized).unwrap();
        assert!(opt.stats.constraint_checks < bf.stats.constraint_checks);
    }

    #[test]
    fn label_round_trips_through_from_label() {
        for method in Method::all() {
            assert_eq!(Method::from_label(method.label()), Some(method));
        }
        assert_eq!(Method::from_label("atf"), Some(Method::ChainOfTrees));
        assert_eq!(Method::from_label("unknown"), None);
    }

    #[test]
    fn labels_and_lowerings() {
        assert_eq!(Method::Optimized.label(), "optimized");
        assert_eq!(
            Method::Optimized.default_lowering(),
            RestrictionLowering::Optimized
        );
        assert_eq!(
            Method::BruteForce.default_lowering(),
            RestrictionLowering::Generic
        );
        assert_eq!(Method::all().len(), 6);
    }

    #[test]
    fn ablation_options_apply() {
        let spec = hotspot_like_spec();
        let options = BuildOptions {
            lowering: Some(RestrictionLowering::Generic),
            solver_config: Some(OptimizedSolverConfig {
                variable_ordering: false,
                preprocess: false,
                forward_check: false,
                arc_consistency: false,
            }),
            ..Default::default()
        };
        let (space, _) = build_search_space_with(&spec, Method::Optimized, options).unwrap();
        let (reference, _) = build_search_space(&spec, Method::BruteForce).unwrap();
        assert_eq!(space.len(), reference.len());
    }

    #[test]
    fn pruned_construction_is_code_for_code_identical() {
        let spec = hotspot_like_spec();
        for method in Method::all() {
            let (plain, _) = build_search_space(&spec, method).unwrap();
            let (pruned, _) = build_search_space_with(
                &spec,
                method,
                BuildOptions {
                    prune: true,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(plain.len(), pruned.len(), "{method:?}");
            assert_eq!(plain.arena(), pruned.arena(), "{method:?}");
        }
    }

    #[test]
    fn empty_space_is_handled() {
        let spec = SearchSpaceSpec::new("empty")
            .with_param(TunableParameter::ints("x", [1, 2, 3]))
            .with_param(TunableParameter::ints("y", [1, 2, 3]))
            .with_expr("x * y >= 100");
        for method in Method::all() {
            let (space, _) = build_search_space(&spec, method).unwrap();
            assert!(space.is_empty(), "{}", method.label());
        }
    }
}
