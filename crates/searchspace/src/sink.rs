//! Streaming construction: encode solver rows straight into the code arena.
//!
//! [`EncodingSink`] is the bridge between the CSP solvers' streaming output
//! ([`at_csp::sink::SolutionSink`]) and the columnar [`SearchSpace`]
//! representation: every row a solver pushes is immediately encoded to
//! per-parameter `u32` value codes and appended to the arena, so
//! construction never materializes a decoded `Vec<Vec<Value>>` of the space
//! — the peak decoded footprint is one row (plus one chunk per worker
//! thread for the parallel solvers).
//!
//! Parallel solvers request per-thread chunks ([`at_csp::sink::SolutionSink::new_chunk`]);
//! each chunk encodes on its own worker using the shared reverse
//! dictionaries, and merging a finished chunk back is a plain `Vec<u32>`
//! append — no row is ever re-encoded or re-hashed. The membership hash
//! table is built exactly once, over the final arena, in
//! [`EncodingSink::finish`].
//!
//! ```
//! use at_csp::prelude::*;
//! use at_searchspace::{EncodingSink, TunableParameter};
//!
//! let mut problem = Problem::new();
//! problem.add_variable("x", int_values([1, 2, 4])).unwrap();
//! problem.add_variable("y", int_values([1, 2, 4])).unwrap();
//! problem.add_constraint(MaxProduct::new(4.0), &["x", "y"]).unwrap();
//!
//! let params = vec![
//!     TunableParameter::ints("x", [1, 2, 4]),
//!     TunableParameter::ints("y", [1, 2, 4]),
//! ];
//! let mut sink = EncodingSink::new("demo", params).unwrap();
//! let stats = OptimizedSolver::new().solve_into(&problem, &mut sink).unwrap();
//! let space = sink.finish().unwrap();
//! assert_eq!(space.len() as u64, stats.solutions);
//! ```

use std::any::Any;
use std::sync::Arc;

use at_csp::sink::{RowSink, SolutionSink};
use at_csp::{CspError, CspResult, Value};

use crate::param::TunableParameter;
use crate::space::{reverse_dictionaries, CodeLookup, SearchSpace, SpaceError};

/// Immutable encoding state shared between the sink and its worker chunks.
#[derive(Debug)]
struct Encoder {
    params: Vec<TunableParameter>,
    lookups: Vec<CodeLookup>,
}

impl Encoder {
    /// Encode one decoded row onto the end of `codes`. `row_index` is only
    /// used for error reporting (chunk-local on worker threads).
    fn encode_row(&self, row: &[Value], row_index: usize, codes: &mut Vec<u32>) -> CspResult<()> {
        if row.len() != self.lookups.len() {
            return Err(space_err(SpaceError::RowLength {
                row: row_index,
                expected: self.lookups.len(),
                found: row.len(),
            }));
        }
        for (value, (param, lookup)) in row.iter().zip(self.params.iter().zip(self.lookups.iter()))
        {
            match lookup.code_of(value) {
                Some(code) => codes.push(code),
                None => {
                    return Err(space_err(SpaceError::UnknownValue {
                        param: param.name().to_string(),
                        value: value.clone(),
                        row: row_index,
                    }))
                }
            }
        }
        Ok(())
    }
}

/// Carry a [`SpaceError`] across the solver boundary (solvers speak
/// [`CspError`]).
fn space_err(e: SpaceError) -> CspError {
    CspError::Solver(format!("encoding sink: {e}"))
}

/// A [`SolutionSink`] that maps decoded solver rows straight to `u32` code
/// rows in a [`SearchSpace`] arena. See the [module docs](self).
#[derive(Debug)]
pub struct EncodingSink {
    name: String,
    encoder: Arc<Encoder>,
    codes: Vec<u32>,
    rows: usize,
}

impl EncodingSink {
    /// Create a sink over the given parameters (their value lists become
    /// the per-parameter dictionaries). Rows pushed later must be in
    /// parameter declaration order.
    pub fn new(name: impl Into<String>, params: Vec<TunableParameter>) -> Result<Self, SpaceError> {
        let lookups = reverse_dictionaries(&params)?;
        Ok(EncodingSink {
            name: name.into(),
            encoder: Arc::new(Encoder { params, lookups }),
            codes: Vec::new(),
            rows: 0,
        })
    }

    /// Number of rows encoded so far (across all merged chunks).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The code arena accumulated so far: `rows() × params().len()` value
    /// codes in row-major order — exactly the layout
    /// [`SearchSpace::from_code_rows`] adopts. Persistence sinks
    /// (`at_store`'s `StoreWriter`) stream `codes()[k..]` suffixes to disk
    /// as rows arrive, so a space is written while it is constructed.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// The parameters this sink encodes against (each one owns the value
    /// dictionary its codes index into).
    pub fn params(&self) -> &[TunableParameter] {
        &self.encoder.params
    }

    /// The name the finished [`SearchSpace`] will carry.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Build the [`SearchSpace`] from the accumulated arena. The membership
    /// hash table is built here, exactly once.
    pub fn finish(self) -> Result<SearchSpace, SpaceError> {
        let EncodingSink {
            name,
            encoder,
            codes,
            rows,
        } = self;
        let _span = at_obs::span("encode-finish", "construct")
            .arg("rows", rows as u64)
            .arg(
                "arena_bytes",
                (codes.len() * std::mem::size_of::<u32>()) as u64,
            );
        // All chunks are merged (and dropped) by now, so this is a move,
        // not a copy, on every normal path.
        let Encoder { params, lookups } =
            Arc::try_unwrap(encoder).unwrap_or_else(|shared| Encoder {
                params: shared.params.clone(),
                lookups: shared.lookups.clone(),
            });
        SearchSpace::from_encoded_parts(name, params, rows, codes.into(), lookups)
    }
}

impl RowSink for EncodingSink {
    fn push_row(&mut self, row: &[Value]) -> CspResult<()> {
        self.encoder.encode_row(row, self.rows, &mut self.codes)?;
        self.rows += 1;
        Ok(())
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl SolutionSink for EncodingSink {
    fn new_chunk(&self) -> Box<dyn RowSink> {
        Box::new(EncodedChunk {
            encoder: Arc::clone(&self.encoder),
            codes: Vec::new(),
            rows: 0,
        })
    }

    fn merge_chunk(&mut self, chunk: Box<dyn RowSink>) -> CspResult<()> {
        let mut chunk = chunk
            .into_any()
            .downcast::<EncodedChunk>()
            .map_err(|_| CspError::Solver("encoding sink: foreign chunk type".into()))?;
        // The chunk is already encoded: adopt its codes verbatim.
        self.codes.append(&mut chunk.codes);
        self.rows += chunk.rows;
        Ok(())
    }
}

/// A per-thread buffer of already-encoded rows, produced by
/// [`EncodingSink::new_chunk`] on worker threads and merged back without
/// re-encoding.
#[derive(Debug)]
struct EncodedChunk {
    encoder: Arc<Encoder>,
    codes: Vec<u32>,
    rows: usize,
}

impl RowSink for EncodedChunk {
    fn push_row(&mut self, row: &[Value]) -> CspResult<()> {
        self.encoder.encode_row(row, self.rows, &mut self.codes)?;
        self.rows += 1;
        Ok(())
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_csp::value::int_values;

    fn params() -> Vec<TunableParameter> {
        vec![
            TunableParameter::ints("x", [1, 2, 4]),
            TunableParameter::ints("y", [1, 2]),
        ]
    }

    #[test]
    fn rows_encode_to_the_same_space_as_from_configs() {
        let rows = vec![int_values([1, 1]), int_values([2, 2]), int_values([4, 1])];
        let mut sink = EncodingSink::new("demo", params()).unwrap();
        for row in &rows {
            sink.push_row(row).unwrap();
        }
        assert_eq!(sink.rows(), 3);
        let streamed = sink.finish().unwrap();
        let reference = SearchSpace::from_configs("demo", params(), rows).unwrap();
        assert_eq!(streamed.len(), reference.len());
        for (a, b) in streamed.iter().zip(reference.iter()) {
            assert_eq!(a.codes(), b.codes());
        }
    }

    #[test]
    fn chunks_merge_in_order_without_reencoding() {
        let mut sink = EncodingSink::new("demo", params()).unwrap();
        sink.push_row(&int_values([1, 1])).unwrap();
        let mut chunk_a = sink.new_chunk();
        chunk_a.push_row(&int_values([2, 1])).unwrap();
        chunk_a.push_row(&int_values([2, 2])).unwrap();
        let mut chunk_b = sink.new_chunk();
        chunk_b.push_row(&int_values([4, 1])).unwrap();
        sink.merge_chunk(chunk_a).unwrap();
        sink.merge_chunk(chunk_b).unwrap();
        assert_eq!(sink.rows(), 4);
        let space = sink.finish().unwrap();
        assert_eq!(space.len(), 4);
        let decoded: Vec<Vec<Value>> = space.iter_decoded().collect();
        assert_eq!(
            decoded,
            vec![
                int_values([1, 1]),
                int_values([2, 1]),
                int_values([2, 2]),
                int_values([4, 1]),
            ]
        );
    }

    #[test]
    fn out_of_domain_rows_are_rejected() {
        let mut sink = EncodingSink::new("demo", params()).unwrap();
        let err = sink.push_row(&int_values([3, 1])).unwrap_err();
        assert!(err.to_string().contains("x"), "{err}");
        let mut sink = EncodingSink::new("demo", params()).unwrap();
        let err = sink.push_row(&int_values([1])).unwrap_err();
        assert!(err.to_string().contains("expected 2"), "{err}");
    }

    #[test]
    fn foreign_chunks_are_rejected() {
        let mut sink = EncodingSink::new("demo", params()).unwrap();
        let foreign: Box<dyn RowSink> = Box::new(at_csp::RowChunk::default());
        assert!(sink.merge_chunk(foreign).is_err());
    }

    #[test]
    fn empty_sink_finishes_to_an_empty_space() {
        let sink = EncodingSink::new("empty", params()).unwrap();
        let space = sink.finish().unwrap();
        assert!(space.is_empty());
        assert_eq!(space.num_params(), 2);
    }
}
