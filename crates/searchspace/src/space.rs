//! The fully resolved search space representation.
//!
//! After construction, optimization algorithms need efficient access to the
//! valid configurations: indexed access for sampling, hash lookups to test
//! membership and find a configuration's id, the *true* parameter bounds
//! (which constraints may have shrunk relative to the declared domains), and
//! neighbor queries. This mirrors Kernel Tuner's `SearchSpace` class
//! (Section 4.4 of the paper).
//!
//! # Representation
//!
//! At millions of configurations the representation — not just the
//! construction — dominates memory and lookup cost, so the space is stored
//! *columnar and index-encoded*: each parameter's distinct values live once
//! in its [`TunableParameter`] (the per-parameter dictionary), and a
//! configuration is a row of `u32` *value codes* in a single flat arena
//! (`len × num_params` entries, stride = `num_params`). Membership tests and
//! id lookups go through an open-addressing hash table over the encoded rows,
//! so no `Vec<Value>` keys are ever cloned. Configurations are addressed by
//! [`ConfigId`] and decoded lazily through a borrowing [`ConfigView`].

use std::fmt;

use at_csp::{SolutionSet, Value};
use rustc_hash::FxHashMap;

use crate::arena::ArenaStorage;
use crate::param::TunableParameter;

/// Identifier of a configuration within one [`SearchSpace`].
///
/// A `ConfigId` is a typed index into the space's configuration arena: ids
/// are dense (`0..space.len()`) and stable for the lifetime of the space they
/// came from. They are intentionally cheap (`u32`) so optimizers can store
/// populations, neighbor lists and evaluation caches as plain id collections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConfigId(u32);

impl ConfigId {
    /// Create an id from a raw dense index (`0..space.len()`).
    ///
    /// Indices beyond `u32::MAX` saturate to an id that is never valid for
    /// any space (spaces are capped below `u32::MAX` configurations), so an
    /// out-of-range index can only ever produce `None` lookups — never alias
    /// a real configuration.
    pub fn from_index(index: usize) -> ConfigId {
        ConfigId(u32::try_from(index).unwrap_or(u32::MAX))
    }

    /// The raw dense index of this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ConfigId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Errors raised while building a [`SearchSpace`] from raw configurations.
#[derive(Debug, Clone, PartialEq)]
pub enum SpaceError {
    /// A configuration row referenced a value that is not part of the
    /// corresponding parameter's declared value list.
    UnknownValue {
        /// The parameter whose domain does not contain the value.
        param: String,
        /// The offending value.
        value: Value,
        /// The index of the offending configuration row.
        row: usize,
    },
    /// A configuration row has the wrong number of values.
    RowLength {
        /// The index of the offending configuration row.
        row: usize,
        /// The expected row length (the number of parameters).
        expected: usize,
        /// The actual row length.
        found: usize,
    },
    /// The space does not fit the `u32` code/id encoding.
    TooLarge {
        /// What overflowed (number of configurations or parameter values).
        what: &'static str,
        /// The overflowing count.
        count: usize,
    },
    /// A pre-encoded configuration row referenced a value code outside the
    /// corresponding parameter's dictionary.
    CodeOutOfRange {
        /// The parameter whose dictionary is too small for the code.
        param: String,
        /// The offending value code.
        code: u32,
        /// The index of the offending configuration row.
        row: usize,
    },
    /// A pre-encoded arena's length is not a whole number of rows.
    RaggedArena {
        /// The arena length handed in.
        len: usize,
        /// The expected length (`rows × params`).
        expected: usize,
    },
    /// A persisted membership index was structurally or semantically
    /// unusable for the arena it was loaded with (wrong slot count, an
    /// out-of-range occupant, a full table, or a sampled row the index
    /// cannot find). Loaders treat this as "rebuild the index", never as
    /// "serve wrong lookups".
    IndexInvalid {
        /// What exactly was wrong.
        detail: String,
    },
}

impl fmt::Display for SpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceError::UnknownValue { param, value, row } => write!(
                f,
                "configuration {row}: value {value} is not in the domain of parameter `{param}`"
            ),
            SpaceError::RowLength {
                row,
                expected,
                found,
            } => write!(
                f,
                "configuration {row}: expected {expected} values, found {found}"
            ),
            SpaceError::TooLarge { what, count } => {
                write!(f, "{what} ({count}) exceeds the u32 encoding limit")
            }
            SpaceError::CodeOutOfRange { param, code, row } => write!(
                f,
                "configuration {row}: code {code} is out of range for parameter `{param}`"
            ),
            SpaceError::RaggedArena { len, expected } => write!(
                f,
                "encoded arena holds {len} codes where {expected} were expected"
            ),
            SpaceError::IndexInvalid { detail } => {
                write!(f, "persisted membership index is unusable: {detail}")
            }
        }
    }
}

impl std::error::Error for SpaceError {}

/// Sentinel for an empty hash-table slot (no configuration id).
const EMPTY_SLOT: u32 = u32::MAX;

/// Version of the row-hash function the membership table is built over.
///
/// The table's slot positions are a function of the internal `hash_codes`
/// row hash, and since
/// persisted store files (`at_store`'s `IDX` section) carry the table
/// verbatim, the hash is part of the on-disk contract: **changing
/// `hash_codes` in any observable way requires bumping this constant**, so
/// loaders detect a table built by a different hash and fall back to a
/// rebuild instead of missing rows. The function itself must also stay
/// platform-independent (it is: pure `u64` arithmetic on little-endian
/// decoded codes).
pub const INDEX_HASH_VERSION: u32 = 1;

/// Hash a row of value codes. Mixed with a position tag by the neighbor
/// index; persisted membership tables depend on it byte-for-byte (see
/// [`INDEX_HASH_VERSION`]).
///
/// Rows are hashed two codes per step with a rotate-multiply mix (in the
/// style of `FxHasher`): half the multiply chain of a per-code FNV walk,
/// which is what bounds membership-table builds over hundreds of thousands
/// of rows — including every warm `at_store` load. The final fold spreads
/// the well-mixed high bits into the low bits the table masks on.
pub(crate) fn hash_codes(codes: &[u32]) -> u64 {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut chunks = codes.chunks_exact(2);
    for pair in &mut chunks {
        let v = (pair[0] as u64) | ((pair[1] as u64) << 32);
        h = (h.rotate_left(5) ^ v).wrapping_mul(SEED);
    }
    if let Some(&last) = chunks.remainder().first() {
        h = (h.rotate_left(5) ^ last as u64).wrapping_mul(SEED);
    }
    h ^ (h >> 32)
}

/// Per-parameter reverse dictionary: value → code.
///
/// Encoding a value row is the hot prefix of every `contains`/`index_of`
/// call, so integer-like domains (the overwhelming majority in auto-tuning)
/// bypass `Value` hashing entirely: a compact domain uses an O(1) dense
/// table, a wide one (e.g. powers of two) a binary search over sorted keys.
/// Keys are `Value::as_i64` to preserve the dictionary's Python-style
/// cross-type equality (`Int(2) == Float(2.0) == Bool`-as-int), matching
/// `Value`'s own `Eq`/`Hash`.
#[derive(Debug, Clone)]
pub(crate) enum CodeLookup {
    /// All-integer-like dictionary with a compact range: `table[v - min]`
    /// holds the code, or [`EMPTY_SLOT`] for integers not in the dictionary.
    IntDense { min: i64, table: Box<[u32]> },
    /// All-integer-like dictionary with a wide range: binary search.
    IntSorted(Box<[(i64, u32)]>),
    /// Mixed, float or string dictionaries: hash map.
    Map(FxHashMap<Value, u32>),
}

impl CodeLookup {
    /// Build the lookup for one parameter's value dictionary.
    fn build(values: &[Value]) -> CodeLookup {
        let ints: Option<Vec<i64>> = values.iter().map(|v| v.as_i64()).collect();
        let ints = match ints {
            // `TunableParameter` deduplicates by `py_eq`, so keys are unique.
            Some(ints) if !ints.is_empty() => ints,
            _ => {
                return CodeLookup::Map(
                    values
                        .iter()
                        .enumerate()
                        .map(|(i, v)| (v.clone(), i as u32))
                        .collect(),
                )
            }
        };
        let min = *ints.iter().min().expect("non-empty");
        let max = *ints.iter().max().expect("non-empty");
        let range = max.abs_diff(min);
        // A dense table costs 4 bytes per slot in [min, max]; accept it while
        // it stays within a small constant factor of the dictionary itself.
        if range <= (4 * values.len() as u64).max(256) {
            let mut table = vec![EMPTY_SLOT; range as usize + 1].into_boxed_slice();
            for (code, &i) in ints.iter().enumerate() {
                table[(i - min) as usize] = code as u32;
            }
            CodeLookup::IntDense { min, table }
        } else {
            let mut entries: Vec<(i64, u32)> = ints
                .into_iter()
                .enumerate()
                .map(|(code, i)| (i, code as u32))
                .collect();
            entries.sort_unstable_by_key(|&(i, _)| i);
            CodeLookup::IntSorted(entries.into_boxed_slice())
        }
    }

    /// The code of a value, if it is in the dictionary.
    #[inline]
    pub(crate) fn code_of(&self, value: &Value) -> Option<u32> {
        match self {
            CodeLookup::IntDense { min, table } => {
                let i = value.as_i64()?;
                let offset = usize::try_from(i.checked_sub(*min)?).ok()?;
                let code = *table.get(offset)?;
                (code != EMPTY_SLOT).then_some(code)
            }
            CodeLookup::IntSorted(entries) => {
                let i = value.as_i64()?;
                entries
                    .binary_search_by_key(&i, |&(key, _)| key)
                    .ok()
                    .map(|pos| entries[pos].1)
            }
            CodeLookup::Map(map) => map.get(value).copied(),
        }
    }
}

/// Whether arena adoption bounds-checks every code against its parameter
/// dictionary.
///
/// The check is about *eagerness of error reporting*, not memory safety:
/// every later decode indexes its dictionary through a bounds-checked
/// slice access, so an out-of-dictionary code can only ever panic cleanly
/// — never decode to a wrong value and never touch invalid memory. A
/// corrupt-but-in-range code is undetectable by any validation pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodeValidation {
    /// One branch-free per-column maxima pass over the whole arena
    /// (O(arena)); any out-of-dictionary code is reported up front as
    /// [`SpaceError::CodeOutOfRange`].
    Checked,
    /// Skip the pass (O(1)) — the trusted zero-copy load path, where an
    /// O(arena) walk would defeat the O(header) goal and the file carries
    /// checksums for explicit verification instead.
    Trusted,
}

/// How far a persisted membership table is trusted before being adopted.
///
/// Adoption is *structurally* safe at every level: the lookup algorithm
/// compares the candidate arena row against the queried codes before
/// returning an id, so a wrong table can only ever produce a **missed** row
/// (a false `None`), never a misattributed one — and the structural checks
/// run unconditionally (power-of-two slot count, every occupant in range,
/// at least one empty slot so probing terminates). The policy only decides
/// how hard to look for missed rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexVerification {
    /// Adopt after the structural checks alone — the O(header) trusted
    /// path for files this process (or a trusted producer) wrote.
    Trusted,
    /// Additionally look up this many evenly spaced arena rows and require
    /// each to be found (a cheap probabilistic screen against a table that
    /// was persisted for a different arena).
    Sampled(usize),
}

/// Open-addressing (linear probing) hash table mapping encoded rows to
/// configuration ids. Stores only `u32` ids — the keys are the arena rows
/// themselves, so the whole membership index costs ~4–8 bytes per
/// configuration instead of a cloned `Vec<Value>` key per configuration.
///
/// The slots live in an [`ArenaStorage`] so a table persisted in an `ATSS`
/// `IDX` section can be adopted zero-copy from a memory-mapped file
/// ([`RowTable::adopt`]) instead of rebuilt.
#[derive(Debug, Clone)]
struct RowTable {
    slots: ArenaStorage,
    mask: usize,
}

impl RowTable {
    /// Build the table over the `num_configs` rows of `arena` (row `i` is
    /// `arena[i * stride..(i + 1) * stride]`).
    fn build(num_configs: usize, stride: usize, arena: &[u32]) -> RowTable {
        // Keep the load factor under ~7/8.
        let capacity = (num_configs * 8 / 7 + 1).next_power_of_two().max(8);
        let mask = capacity - 1;
        let mut slots = vec![EMPTY_SLOT; capacity];
        for id in 0..num_configs {
            let codes = &arena[id * stride..(id + 1) * stride];
            let mut slot = (hash_codes(codes) as usize) & mask;
            loop {
                let occupant = slots[slot];
                if occupant == EMPTY_SLOT {
                    slots[slot] = id as u32;
                    break;
                }
                let other = &arena[occupant as usize * stride..(occupant as usize + 1) * stride];
                if other == codes {
                    // Duplicate row: the first occurrence keeps the slot.
                    break;
                }
                slot = (slot + 1) & mask;
            }
        }
        RowTable {
            slots: ArenaStorage::from(slots),
            mask,
        }
    }

    /// Adopt persisted slots instead of rebuilding. The structural checks
    /// (slot count, occupant range, a free slot for probe termination) are
    /// unconditional; `verification` decides whether sampled rows are also
    /// looked up. See [`IndexVerification`].
    fn adopt(
        slots: ArenaStorage,
        num_configs: usize,
        stride: usize,
        arena: &[u32],
        verification: IndexVerification,
    ) -> Result<RowTable, SpaceError> {
        let invalid = |detail: String| SpaceError::IndexInvalid { detail };
        let n = slots.len();
        if !n.is_power_of_two() || n < 8 {
            return Err(invalid(format!(
                "slot count {n} is not a power of two >= 8"
            )));
        }
        let mut free = 0usize;
        for &occupant in slots.as_slice() {
            if occupant == EMPTY_SLOT {
                free += 1;
            } else if occupant as usize >= num_configs {
                return Err(invalid(format!(
                    "occupant {occupant} out of range for {num_configs} rows"
                )));
            }
        }
        if free == 0 {
            return Err(invalid("no empty slot; probing would not terminate".into()));
        }
        let table = RowTable { slots, mask: n - 1 };
        if let IndexVerification::Sampled(samples) = verification {
            let step = (num_configs / samples.max(1)).max(1);
            for id in (0..num_configs).step_by(step) {
                let codes = &arena[id * stride..(id + 1) * stride];
                if table.lookup(codes, stride, arena).is_none() {
                    return Err(invalid(format!(
                        "sampled row {id} is missing from the table"
                    )));
                }
            }
        }
        Ok(table)
    }

    /// Look up the id of an encoded row.
    fn lookup(&self, codes: &[u32], stride: usize, arena: &[u32]) -> Option<u32> {
        let slots = self.slots.as_slice();
        let mut slot = (hash_codes(codes) as usize) & self.mask;
        loop {
            let occupant = slots[slot];
            if occupant == EMPTY_SLOT {
                return None;
            }
            let i = occupant as usize;
            if &arena[i * stride..(i + 1) * stride] == codes {
                return Some(occupant);
            }
            slot = (slot + 1) & self.mask;
        }
    }
}

/// A fully resolved, indexed search space.
///
/// See the [module documentation](self) for the storage layout. The memory
/// footprint is `4 × num_params` bytes per configuration (the code arena)
/// plus ~5 bytes per configuration of hash-table slots, plus the
/// per-parameter value dictionaries — independent of how many times each
/// value occurs.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    name: String,
    params: Vec<TunableParameter>,
    /// Number of valid configurations.
    num_configs: usize,
    /// Flat arena of per-parameter value codes; row `i` occupies
    /// `codes[i * stride .. (i + 1) * stride]` with `stride = params.len()`.
    /// Owned for in-process construction, or a borrowed view into a shared
    /// backing (a memory-mapped store file) for zero-copy loads.
    codes: ArenaStorage,
    /// Per-parameter reverse dictionaries: value → code.
    value_codes: Vec<CodeLookup>,
    /// Hash index from encoded row to configuration id.
    table: RowTable,
}

impl SearchSpace {
    /// Build the representation from the solver output.
    ///
    /// The solution columns must be in parameter declaration order (which is
    /// how [`crate::build_search_space`] lowers specifications).
    pub fn from_solutions(
        name: impl Into<String>,
        params: Vec<TunableParameter>,
        solutions: &SolutionSet,
    ) -> Result<Self, SpaceError> {
        Self::from_value_rows(name, params, solutions.len(), solutions.iter())
    }

    /// Build the representation from raw configuration rows (declaration
    /// order). Returns [`SpaceError::UnknownValue`] when a row contains a
    /// value outside its parameter's declared value list — silently encoding
    /// such a row would corrupt every code-based operation downstream.
    pub fn from_configs(
        name: impl Into<String>,
        params: Vec<TunableParameter>,
        configs: Vec<Vec<Value>>,
    ) -> Result<Self, SpaceError> {
        let len = configs.len();
        Self::from_value_rows(name, params, len, configs.iter().map(|r| r.as_slice()))
    }

    fn from_value_rows<'v>(
        name: impl Into<String>,
        params: Vec<TunableParameter>,
        num_configs: usize,
        rows: impl Iterator<Item = &'v [Value]>,
    ) -> Result<Self, SpaceError> {
        if num_configs > EMPTY_SLOT as usize {
            return Err(SpaceError::TooLarge {
                what: "number of configurations",
                count: num_configs,
            });
        }
        let value_codes = reverse_dictionaries(&params)?;
        let stride = params.len();
        let mut codes: Vec<u32> = Vec::with_capacity(num_configs * stride);
        for (row_index, row) in rows.enumerate() {
            if row.len() != stride {
                return Err(SpaceError::RowLength {
                    row: row_index,
                    expected: stride,
                    found: row.len(),
                });
            }
            for (value, (param, lookup)) in row.iter().zip(params.iter().zip(value_codes.iter())) {
                match lookup.code_of(value) {
                    Some(code) => codes.push(code),
                    None => {
                        return Err(SpaceError::UnknownValue {
                            param: param.name().to_string(),
                            value: value.clone(),
                            row: row_index,
                        })
                    }
                }
            }
        }
        Ok(Self::from_parts(
            name.into(),
            params,
            num_configs,
            codes.into(),
            value_codes,
        ))
    }

    /// Adopt pre-encoded configuration rows: `codes` is a flat arena of
    /// `num_rows × params.len()` per-parameter value codes in row-major,
    /// declaration order — exactly the layout the space stores internally,
    /// so construction performs no decoding and no per-row hashing beyond
    /// the one membership-table build every constructor needs.
    ///
    /// This is the adoption point for streaming construction: an encoding
    /// sink (see [`crate::EncodingSink`]) produces per-thread chunks of this
    /// layout, concatenates them, and hands the arena over here. The codes
    /// are bounds-checked against the parameter dictionaries in one cheap
    /// pass ([`SpaceError::CodeOutOfRange`] otherwise); a ragged arena
    /// (`codes.len() != num_rows × params.len()`) is rejected as
    /// [`SpaceError::RaggedArena`].
    ///
    /// For an arena borrowed from a shared backing (a memory-mapped store
    /// file), use [`SearchSpace::from_code_storage`]; to also adopt a
    /// persisted membership table, [`SearchSpace::from_code_storage_with_index`].
    pub fn from_code_rows(
        name: impl Into<String>,
        params: Vec<TunableParameter>,
        num_rows: usize,
        codes: Vec<u32>,
    ) -> Result<Self, SpaceError> {
        Self::from_code_storage(name, params, num_rows, codes.into())
    }

    /// [`SearchSpace::from_code_rows`] over any [`ArenaStorage`] backing —
    /// the zero-copy adoption point: a `Shared` storage is served in place
    /// (nothing is copied), an `Owned` one is adopted as before. Validation
    /// is identical either way.
    pub fn from_code_storage(
        name: impl Into<String>,
        params: Vec<TunableParameter>,
        num_rows: usize,
        codes: ArenaStorage,
    ) -> Result<Self, SpaceError> {
        let value_codes = reverse_dictionaries(&params)?;
        validate_code_arena(&params, num_rows, codes.as_slice())?;
        Self::from_encoded_parts(name.into(), params, num_rows, codes, value_codes)
    }

    /// [`SearchSpace::from_code_storage`], additionally adopting a
    /// persisted membership table instead of rebuilding it — the trusted
    /// warm-load fast path. `slots` is the open-addressing slot array
    /// exactly as a previous build exposed it via
    /// [`SearchSpace::index_slots`] (and as `at_store` persists it in the
    /// `IDX` section); `verification` decides how hard to double-check it
    /// (see [`IndexVerification`] — structural safety checks always run),
    /// and `validation` whether the arena codes get the O(arena) bounds
    /// pass or only lazy bounds-checked decoding (see [`CodeValidation`]).
    /// An unusable table is [`SpaceError::IndexInvalid`]; callers are
    /// expected to fall back to the rebuilding path *and report it*.
    pub fn from_code_storage_with_index(
        name: impl Into<String>,
        params: Vec<TunableParameter>,
        num_rows: usize,
        codes: ArenaStorage,
        slots: ArenaStorage,
        verification: IndexVerification,
        validation: CodeValidation,
    ) -> Result<Self, SpaceError> {
        let value_codes = reverse_dictionaries(&params)?;
        match validation {
            CodeValidation::Checked => validate_code_arena(&params, num_rows, codes.as_slice())?,
            CodeValidation::Trusted => {
                // Only the O(1) shape check: the arena must still hold
                // exactly `num_rows` whole rows.
                let expected = num_rows.checked_mul(params.len());
                if expected != Some(codes.len()) {
                    return Err(SpaceError::RaggedArena {
                        len: codes.len(),
                        expected: expected.unwrap_or(usize::MAX),
                    });
                }
            }
        }
        if num_rows > EMPTY_SLOT as usize {
            return Err(SpaceError::TooLarge {
                what: "number of configurations",
                count: num_rows,
            });
        }
        let table = RowTable::adopt(
            slots,
            num_rows,
            params.len(),
            codes.as_slice(),
            verification,
        )?;
        Ok(SearchSpace {
            name: name.into(),
            params,
            num_configs: num_rows,
            codes,
            value_codes,
            table,
        })
    }

    /// Build from an already-validated arena and pre-built reverse
    /// dictionaries (the encoding sink's adoption path: every code came out
    /// of `lookups` itself, so no re-validation pass is needed).
    pub(crate) fn from_encoded_parts(
        name: String,
        params: Vec<TunableParameter>,
        num_configs: usize,
        codes: ArenaStorage,
        value_codes: Vec<CodeLookup>,
    ) -> Result<Self, SpaceError> {
        if num_configs > EMPTY_SLOT as usize {
            return Err(SpaceError::TooLarge {
                what: "number of configurations",
                count: num_configs,
            });
        }
        Ok(Self::from_parts(
            name,
            params,
            num_configs,
            codes,
            value_codes,
        ))
    }

    /// Build directly from encoded rows (used by [`SearchSpace::filter`]).
    fn from_parts(
        name: String,
        params: Vec<TunableParameter>,
        num_configs: usize,
        codes: ArenaStorage,
        value_codes: Vec<CodeLookup>,
    ) -> Self {
        let table = RowTable::build(num_configs, params.len(), codes.as_slice());
        SearchSpace {
            name,
            params,
            num_configs,
            codes,
            value_codes,
            table,
        }
    }

    #[inline]
    fn stride(&self) -> usize {
        self.params.len()
    }

    #[inline]
    fn row(&self, index: usize) -> &[u32] {
        let stride = self.stride();
        &self.codes.as_slice()[index * stride..(index + 1) * stride]
    }

    /// The space's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tunable parameters (each one owns its value dictionary).
    pub fn params(&self) -> &[TunableParameter] {
        &self.params
    }

    /// Parameter names in declaration order.
    pub fn param_names(&self) -> Vec<&str> {
        self.params.iter().map(|p| p.name()).collect()
    }

    /// Number of tunable parameters (the arena stride).
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Number of valid configurations.
    pub fn len(&self) -> usize {
        self.num_configs
    }

    /// True when the space has no valid configuration.
    pub fn is_empty(&self) -> bool {
        self.num_configs == 0
    }

    /// The Cartesian size of the unconstrained space.
    pub fn cartesian_size(&self) -> u128 {
        self.params
            .iter()
            .map(|p| p.len() as u128)
            .fold(1, |a, b| a.saturating_mul(b))
    }

    /// Fraction of the Cartesian space that is *invalid* (the paper's
    /// "fraction of sparsity").
    pub fn sparsity(&self) -> f64 {
        let cartesian = self.cartesian_size() as f64;
        if cartesian == 0.0 {
            return 0.0;
        }
        1.0 - self.len() as f64 / cartesian
    }

    /// The id at a raw dense index, if in range.
    pub fn id_at(&self, index: usize) -> Option<ConfigId> {
        (index < self.num_configs).then(|| ConfigId::from_index(index))
    }

    /// Iterate over all configuration ids (`0..len`).
    pub fn ids(&self) -> impl ExactSizeIterator<Item = ConfigId> + DoubleEndedIterator {
        (0..self.num_configs as u32).map(ConfigId)
    }

    /// Iterate over all configurations as borrowing [`ConfigView`]s.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = ConfigView<'_>> + DoubleEndedIterator {
        (0..self.num_configs as u32).map(move |i| ConfigView {
            space: self,
            id: ConfigId(i),
        })
    }

    /// Iterate over all configurations decoded to owned value rows.
    ///
    /// Decoding clones each cell's [`Value`]; prefer [`SearchSpace::iter`]
    /// and per-cell access on hot paths.
    pub fn iter_decoded(&self) -> impl ExactSizeIterator<Item = Vec<Value>> + '_ {
        self.iter().map(|view| view.to_vec())
    }

    /// A borrowing view of the configuration with the given id.
    pub fn view(&self, id: ConfigId) -> Option<ConfigView<'_>> {
        (id.index() < self.num_configs).then_some(ConfigView { space: self, id })
    }

    /// The encoded row (per-parameter value codes) of a configuration.
    pub fn codes_of(&self, id: ConfigId) -> Option<&[u32]> {
        (id.index() < self.num_configs).then(|| self.row(id.index()))
    }

    /// The whole code arena: `len × num_params` per-parameter value codes in
    /// row-major declaration order (row `i` occupies
    /// `arena[i * num_params .. (i + 1) * num_params]`).
    ///
    /// This is the space's internal representation, exposed verbatim so
    /// persistence layers (`at_store`) can write it without decoding a
    /// single configuration; [`SearchSpace::from_code_rows`] is the inverse
    /// adoption point.
    pub fn arena(&self) -> &[u32] {
        self.codes.as_slice()
    }

    /// The arena's storage (owned, or a shared zero-copy view into e.g. a
    /// memory-mapped store file).
    pub fn arena_storage(&self) -> &ArenaStorage {
        &self.codes
    }

    /// True when the arena is served zero-copy from a shared backing (a
    /// memory-mapped store file) instead of owned memory.
    pub fn is_zero_copy(&self) -> bool {
        self.codes.is_shared()
    }

    /// The membership table's open-addressing slot array, exposed verbatim
    /// so persistence layers can write it (`at_store`'s `IDX` section);
    /// [`SearchSpace::from_code_storage_with_index`] is the inverse
    /// adoption point. Slot semantics: `slots().len()` is a power of two,
    /// a slot holds a configuration id or `u32::MAX` for empty, and slot
    /// positions are a function of the row hash (see
    /// [`INDEX_HASH_VERSION`]).
    pub fn index_slots(&self) -> &[u32] {
        self.table.slots.as_slice()
    }

    /// Encode a value row into per-parameter codes. Returns `false` (leaving
    /// `out` in an unspecified state) when the row has the wrong length or
    /// contains a value outside the declared domains — such a row cannot be
    /// part of any space over these parameters.
    pub fn encode_into(&self, config: &[Value], out: &mut Vec<u32>) -> bool {
        out.clear();
        if config.len() != self.stride() {
            return false;
        }
        for (value, lookup) in config.iter().zip(self.value_codes.iter()) {
            match lookup.code_of(value) {
                Some(code) => out.push(code),
                None => return false,
            }
        }
        true
    }

    /// Encode a value row into a fresh code vector, if every value is in its
    /// parameter's declared value list.
    pub fn encode(&self, config: &[Value]) -> Option<Vec<u32>> {
        let mut out = Vec::with_capacity(config.len());
        self.encode_into(config, &mut out).then_some(out)
    }

    /// Whether a configuration is part of the (valid) search space.
    pub fn contains(&self, config: &[Value]) -> bool {
        self.index_of(config).is_some()
    }

    /// The id of a configuration given as a value row, if valid.
    ///
    /// The row is encoded on the fly (no allocation beyond a small code
    /// buffer) and looked up by hashing the encoded row.
    pub fn index_of(&self, config: &[Value]) -> Option<ConfigId> {
        let mut buf = [0u32; 16];
        if config.len() <= buf.len() {
            // Fast path: encode into a stack buffer.
            if config.len() != self.stride() {
                return None;
            }
            for (slot, (value, lookup)) in buf
                .iter_mut()
                .zip(config.iter().zip(self.value_codes.iter()))
            {
                *slot = lookup.code_of(value)?;
            }
            self.index_of_codes(&buf[..config.len()])
        } else {
            let codes = self.encode(config)?;
            self.index_of_codes(&codes)
        }
    }

    /// The id of a configuration given as an already-encoded row, if valid.
    /// This is the allocation-free fast path for callers that work in code
    /// space (crossover, mutation, snapping).
    pub fn index_of_codes(&self, codes: &[u32]) -> Option<ConfigId> {
        if codes.len() != self.stride() || self.num_configs == 0 {
            return None;
        }
        self.table
            .lookup(codes, self.stride(), self.codes.as_slice())
            .map(ConfigId)
    }

    /// For each parameter, a `values()`-aligned occurrence mask: `true` when
    /// the value occurs in at least one valid configuration. Computed in a
    /// single pass over the arena.
    fn occurrence_masks(&self) -> Vec<Vec<bool>> {
        let mut masks: Vec<Vec<bool>> = self.params.iter().map(|p| vec![false; p.len()]).collect();
        for row in self.codes.as_slice().chunks_exact(self.stride().max(1)) {
            for (mask, &code) in masks.iter_mut().zip(row.iter()) {
                mask[code as usize] = true;
            }
        }
        masks
    }

    /// The *true* bounds of each numeric parameter over the valid
    /// configurations: `(min, max)` of the values that actually occur.
    /// Parameters with non-numeric values yield `None`.
    pub fn true_bounds(&self) -> Vec<Option<(f64, f64)>> {
        self.occurrence_masks()
            .iter()
            .zip(self.params.iter())
            .map(|(mask, param)| {
                let mut bounds: Option<(f64, f64)> = None;
                for (value, _) in param.values().iter().zip(mask.iter()).filter(|(_, &m)| m) {
                    if let Some(f) = value.as_f64() {
                        bounds = Some(match bounds {
                            Some((lo, hi)) => (lo.min(f), hi.max(f)),
                            None => (f, f),
                        });
                    }
                }
                bounds
            })
            .collect()
    }

    /// For each parameter, the values that actually occur in at least one
    /// valid configuration (in declared order). Constraints often make some
    /// declared values unreachable; optimizers should not waste samples
    /// there. Computed in one pass over the arena.
    pub fn occurring_values(&self) -> Vec<Vec<Value>> {
        self.occurrence_masks()
            .iter()
            .zip(self.params.iter())
            .map(|(mask, param)| {
                param
                    .values()
                    .iter()
                    .zip(mask.iter())
                    .filter(|(_, &m)| m)
                    .map(|(v, _)| v.clone())
                    .collect()
            })
            .collect()
    }

    /// A new search space containing only the configurations for which the
    /// predicate holds (e.g. restricting to a promising region before a
    /// second tuning pass). The surviving code rows are copied directly —
    /// no configuration is ever decoded.
    pub fn filter<F: Fn(ConfigView<'_>) -> bool>(&self, predicate: F) -> SearchSpace {
        let mut codes: Vec<u32> = Vec::new();
        // Counted separately from the arena length: with zero parameters the
        // arena stays empty no matter how many rows survive.
        let mut kept = 0usize;
        for view in self.iter() {
            if predicate(view) {
                codes.extend_from_slice(view.codes());
                kept += 1;
            }
        }
        SearchSpace::from_parts(
            self.name.clone(),
            self.params.clone(),
            kept,
            codes.into(),
            self.value_codes.clone(),
        )
    }

    /// Split the configuration indices into `parts` contiguous, near-equal
    /// blocks — the simplest way to distribute a tuning run over multiple
    /// workers, each exploring a disjoint part of the space. Convert a range
    /// position back to an id with [`ConfigId::from_index`].
    pub fn partition(&self, parts: usize) -> Vec<std::ops::Range<usize>> {
        let parts = parts.max(1);
        let n = self.num_configs;
        let base = n / parts;
        let remainder = n % parts;
        let mut ranges = Vec::with_capacity(parts);
        let mut start = 0usize;
        for i in 0..parts {
            let len = base + usize::from(i < remainder);
            ranges.push(start..start + len);
            start += len;
        }
        ranges
    }
}

/// Bounds-check a pre-encoded arena against the parameter dictionaries.
///
/// This sits on the warm store-load path, over arenas of millions of codes:
/// validate via one branch-free per-column maxima pass, and only walk cells
/// individually (to name the offending row) when a column's maximum
/// actually exceeds its dictionary. The pass is about *eager, well-typed*
/// error reporting, not memory safety: decoding always goes through
/// bounds-checked slice indexing, so an out-of-dictionary code that skips
/// this pass ([`CodeValidation::Trusted`]) surfaces as a clean panic at
/// first decode rather than as an eager [`SpaceError::CodeOutOfRange`].
fn validate_code_arena(
    params: &[TunableParameter],
    num_rows: usize,
    codes: &[u32],
) -> Result<(), SpaceError> {
    let stride = params.len();
    num_rows
        .checked_mul(stride)
        .filter(|&len| len == codes.len())
        .ok_or(SpaceError::RaggedArena {
            len: codes.len(),
            expected: num_rows.saturating_mul(stride),
        })?;
    let stride_nz = stride.max(1);
    let mut maxima = vec![0u32; stride];
    for row in codes.chunks_exact(stride_nz) {
        for (m, &code) in maxima.iter_mut().zip(row.iter()) {
            *m = (*m).max(code);
        }
    }
    let out_of_range = maxima
        .iter()
        .zip(params.iter())
        .any(|(&m, p)| m as usize >= p.len());
    if out_of_range {
        for (row_index, row) in codes.chunks_exact(stride_nz).enumerate() {
            for (d, &code) in row.iter().enumerate() {
                if code as usize >= params[d].len() {
                    return Err(SpaceError::CodeOutOfRange {
                        param: params[d].name().to_string(),
                        code,
                        row: row_index,
                    });
                }
            }
        }
    }
    Ok(())
}

/// Build the per-parameter value → code reverse dictionaries.
pub(crate) fn reverse_dictionaries(
    params: &[TunableParameter],
) -> Result<Vec<CodeLookup>, SpaceError> {
    params
        .iter()
        .map(|p| {
            if p.len() >= EMPTY_SLOT as usize {
                return Err(SpaceError::TooLarge {
                    what: "parameter values",
                    count: p.len(),
                });
            }
            Ok(CodeLookup::build(p.values()))
        })
        .collect()
}

/// A borrowing, lazily decoding view of one configuration.
///
/// A view is a `(space, id)` pair: nothing is decoded until a cell is
/// accessed, and decoding a cell is a dictionary lookup
/// (`params[d].values()[code]`) that borrows from the space.
#[derive(Clone, Copy)]
pub struct ConfigView<'a> {
    space: &'a SearchSpace,
    id: ConfigId,
}

impl<'a> ConfigView<'a> {
    /// The id of the viewed configuration.
    pub fn id(&self) -> ConfigId {
        self.id
    }

    /// The encoded row (per-parameter value codes).
    pub fn codes(&self) -> &'a [u32] {
        self.space.row(self.id.index())
    }

    /// Number of parameters (cells) in the configuration.
    pub fn len(&self) -> usize {
        self.space.stride()
    }

    /// True when the space has no parameters.
    pub fn is_empty(&self) -> bool {
        self.space.stride() == 0
    }

    /// The decoded value of parameter `d`, if in range.
    pub fn value(&self, d: usize) -> Option<&'a Value> {
        let code = *self.codes().get(d)? as usize;
        self.space.params.get(d).map(|p| &p.values()[code])
    }

    /// The decoded value of parameter `d` as an `f64`, if numeric.
    pub fn as_f64(&self, d: usize) -> Option<f64> {
        self.value(d)?.as_f64()
    }

    /// Iterate over the decoded values in declaration order (borrowing).
    pub fn values(&self) -> impl ExactSizeIterator<Item = &'a Value> + '_ {
        let params = &self.space.params;
        self.codes()
            .iter()
            .zip(params.iter())
            .map(|(&code, p)| &p.values()[code as usize])
    }

    /// Decode into an owned value row.
    pub fn to_vec(&self) -> Vec<Value> {
        self.values().cloned().collect()
    }

    /// Decode into a caller-provided buffer (cleared first), avoiding an
    /// allocation per decode on hot paths.
    pub fn decode_into(&self, out: &mut Vec<Value>) {
        out.clear();
        out.extend(self.values().cloned());
    }

    /// The configuration as `(name, value)` pairs.
    pub fn named(&self) -> Vec<(&'a str, &'a Value)> {
        self.space
            .params
            .iter()
            .map(|p| p.name())
            .zip(self.values())
            .collect()
    }
}

impl std::ops::Index<usize> for ConfigView<'_> {
    type Output = Value;

    fn index(&self, d: usize) -> &Value {
        self.value(d).expect("parameter index in range")
    }
}

impl PartialEq for ConfigView<'_> {
    fn eq(&self, other: &Self) -> bool {
        std::ptr::eq(self.space, other.space) && self.id == other.id
    }
}

impl fmt::Debug for ConfigView<'_> {
    /// Renders the named pairs, e.g. `{x: 4, y: 1}`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut map = f.debug_map();
        for (name, value) in self.named() {
            map.entry(&format_args!("{name}"), &format_args!("{value}"));
        }
        map.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_csp::value::int_values;

    fn space() -> SearchSpace {
        // x in {1,2,4}, y in {1,2}; valid: x*y <= 4
        let params = vec![
            TunableParameter::ints("x", [1, 2, 4]),
            TunableParameter::ints("y", [1, 2]),
        ];
        let configs = vec![
            int_values([1, 1]),
            int_values([1, 2]),
            int_values([2, 1]),
            int_values([2, 2]),
            int_values([4, 1]),
        ];
        SearchSpace::from_configs("demo", params, configs).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let s = space();
        assert_eq!(s.name(), "demo");
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        assert_eq!(s.cartesian_size(), 6);
        assert!((s.sparsity() - (1.0 - 5.0 / 6.0)).abs() < 1e-12);
        assert_eq!(s.param_names(), vec!["x", "y"]);
        assert_eq!(s.num_params(), 2);
        let view = s.view(ConfigId::from_index(2)).unwrap();
        assert_eq!(view.to_vec(), int_values([2, 1]));
        assert!(s.view(ConfigId::from_index(99)).is_none());
        assert_eq!(s.id_at(4), Some(ConfigId::from_index(4)));
        assert_eq!(s.id_at(5), None);
    }

    #[test]
    fn hash_index_lookups() {
        let s = space();
        assert!(s.contains(&int_values([2, 2])));
        assert!(!s.contains(&int_values([4, 2])));
        assert_eq!(
            s.index_of(&int_values([4, 1])),
            Some(ConfigId::from_index(4))
        );
        assert_eq!(s.index_of(&int_values([9, 9])), None);
        assert_eq!(s.index_of(&int_values([1])), None); // wrong arity
    }

    #[test]
    fn code_rows_match_parameter_positions() {
        let s = space();
        assert_eq!(s.codes_of(ConfigId::from_index(4)).unwrap(), &[2, 0]);
        assert_eq!(s.codes_of(ConfigId::from_index(1)).unwrap(), &[0, 1]);
        assert_eq!(
            s.index_of_codes(&[2, 0]),
            Some(ConfigId::from_index(4)),
            "encoded fast path agrees"
        );
        assert_eq!(s.index_of_codes(&[2, 1]), None); // (4, 2) is invalid
        assert_eq!(s.index_of_codes(&[0]), None); // wrong arity
    }

    #[test]
    fn encode_decode_round_trip() {
        let s = space();
        for view in s.iter() {
            let decoded = view.to_vec();
            let codes = s.encode(&decoded).unwrap();
            assert_eq!(codes, view.codes());
            assert_eq!(s.index_of_codes(&codes), Some(view.id()));
            assert_eq!(s.index_of(&decoded), Some(view.id()));
        }
        assert_eq!(s.encode(&int_values([3, 1])), None); // 3 not in x's domain
    }

    #[test]
    fn iterators_agree() {
        let s = space();
        assert_eq!(s.ids().count(), s.len());
        assert_eq!(s.iter().count(), s.len());
        let decoded: Vec<Vec<Value>> = s.iter_decoded().collect();
        assert_eq!(decoded.len(), s.len());
        for (id, row) in s.ids().zip(decoded.iter()) {
            assert_eq!(&s.view(id).unwrap().to_vec(), row);
        }
    }

    #[test]
    fn from_configs_rejects_values_outside_the_domain() {
        let params = vec![TunableParameter::ints("x", [1, 2])];
        let err = SearchSpace::from_configs("bad", params.clone(), vec![int_values([3])])
            .expect_err("3 is not in x's domain");
        assert_eq!(
            err,
            SpaceError::UnknownValue {
                param: "x".to_string(),
                value: Value::Int(3),
                row: 0,
            }
        );
        assert!(err.to_string().contains("x"));
        let err = SearchSpace::from_configs("bad", params, vec![int_values([1, 2])])
            .expect_err("wrong arity");
        assert!(matches!(err, SpaceError::RowLength { row: 0, .. }));
    }

    #[test]
    fn view_cell_access() {
        let s = space();
        let view = s.view(ConfigId::from_index(4)).unwrap();
        assert_eq!(view.value(0), Some(&Value::Int(4)));
        assert_eq!(view.as_f64(1), Some(1.0));
        assert_eq!(view.value(2), None);
        assert_eq!(view[1], Value::Int(1));
        assert_eq!(view.len(), 2);
        assert!(!view.is_empty());
        assert_eq!(format!("{view:?}"), "{x: 4, y: 1}");
    }

    #[test]
    fn true_bounds_and_occurring_values() {
        let s = space();
        let bounds = s.true_bounds();
        assert_eq!(bounds[0], Some((1.0, 4.0)));
        assert_eq!(bounds[1], Some((1.0, 2.0)));
        let occurring = s.occurring_values();
        assert_eq!(occurring[0], int_values([1, 2, 4]));
        assert_eq!(occurring[1], int_values([1, 2]));
    }

    #[test]
    fn true_bounds_shrink_when_values_unreachable() {
        let params = vec![TunableParameter::ints("x", [1, 2, 64])];
        let configs = vec![int_values([1]), int_values([2])];
        let s = SearchSpace::from_configs("shrunk", params, configs).unwrap();
        assert_eq!(s.true_bounds()[0], Some((1.0, 2.0)));
        assert_eq!(s.occurring_values()[0], int_values([1, 2]));
    }

    #[test]
    fn named_view() {
        let s = space();
        let named = s.view(ConfigId::from_index(0)).unwrap().named();
        assert_eq!(named[0].0, "x");
        assert_eq!(named[0].1, &Value::Int(1));
    }

    #[test]
    fn filter_produces_a_consistent_subspace() {
        let s = space();
        let filtered = s.filter(|view| view[1] == Value::Int(1));
        assert_eq!(filtered.len(), 3);
        assert!(filtered.contains(&int_values([4, 1])));
        assert!(!filtered.contains(&int_values([1, 2])));
        // indices are rebuilt for the subspace
        assert_eq!(
            filtered.index_of(&int_values([1, 1])),
            Some(ConfigId::from_index(0))
        );
    }

    #[test]
    fn partition_covers_everything_without_overlap() {
        let s = space();
        for parts in [1usize, 2, 3, 5, 7] {
            let ranges = s.partition(parts);
            assert_eq!(ranges.len(), parts.max(1));
            let total: usize = ranges.iter().map(|r| r.len()).sum();
            assert_eq!(total, s.len());
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].end, pair[1].start);
            }
            assert_eq!(ranges.first().unwrap().start, 0);
            assert_eq!(ranges.last().unwrap().end, s.len());
        }
    }

    #[test]
    fn from_solutions_roundtrip() {
        let sols = SolutionSet::from_rows(
            vec!["x".to_string(), "y".to_string()],
            vec![int_values([1, 1]), int_values([2, 1])],
        );
        let s = SearchSpace::from_solutions(
            "rt",
            vec![
                TunableParameter::ints("x", [1, 2]),
                TunableParameter::ints("y", [1]),
            ],
            &sols,
        )
        .unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn shared_storage_space_is_identical_to_owned() {
        let owned = space();
        let backing = std::sync::Arc::new(owned.arena().to_vec());
        let shared = SearchSpace::from_code_storage(
            "demo",
            owned.params().to_vec(),
            owned.len(),
            ArenaStorage::Shared(backing),
        )
        .unwrap();
        assert!(shared.is_zero_copy());
        assert!(!owned.is_zero_copy());
        assert_eq!(owned.arena(), shared.arena());
        for view in owned.iter() {
            assert_eq!(shared.index_of(&view.to_vec()), Some(view.id()));
        }
        // Cloning a shared-storage space stays shared (an Arc bump).
        assert!(shared.clone().is_zero_copy());
    }

    #[test]
    fn adopted_index_answers_like_a_rebuilt_one() {
        let s = space();
        let slots = s.index_slots().to_vec();
        assert!(slots.len().is_power_of_two());
        for verification in [IndexVerification::Trusted, IndexVerification::Sampled(16)] {
            let adopted = SearchSpace::from_code_storage_with_index(
                "demo",
                s.params().to_vec(),
                s.len(),
                ArenaStorage::from(s.arena().to_vec()),
                ArenaStorage::from(slots.clone()),
                verification,
                CodeValidation::Checked,
            )
            .unwrap();
            for view in s.iter() {
                assert_eq!(adopted.index_of(&view.to_vec()), Some(view.id()));
            }
            assert_eq!(adopted.index_of(&int_values([4, 2])), None);
            assert_eq!(adopted.index_slots(), s.index_slots());
        }
    }

    #[test]
    fn broken_index_slots_are_rejected_not_adopted() {
        let s = space();
        let arena = ArenaStorage::from(s.arena().to_vec());
        let adopt = |slots: Vec<u32>, verification| {
            SearchSpace::from_code_storage_with_index(
                "demo",
                s.params().to_vec(),
                s.len(),
                arena.clone(),
                ArenaStorage::from(slots),
                verification,
                CodeValidation::Checked,
            )
        };
        // Not a power of two.
        let err = adopt(vec![EMPTY_SLOT; 9], IndexVerification::Trusted).unwrap_err();
        assert!(matches!(err, SpaceError::IndexInvalid { .. }), "{err}");
        // Occupant out of range.
        let mut slots = s.index_slots().to_vec();
        let occupied = slots.iter().position(|&o| o != EMPTY_SLOT).unwrap();
        slots[occupied] = 99;
        assert!(adopt(slots, IndexVerification::Trusted).is_err());
        // A full table would make probing non-terminating.
        assert!(adopt(vec![0u32; 8], IndexVerification::Trusted).is_err());
        // An empty table passes the structural checks but cannot answer for
        // any row: only the sampled policy catches it.
        let empty = vec![EMPTY_SLOT; 8];
        assert!(adopt(empty.clone(), IndexVerification::Trusted).is_ok());
        let err = adopt(empty, IndexVerification::Sampled(4)).unwrap_err();
        assert!(matches!(err, SpaceError::IndexInvalid { .. }), "{err}");
    }

    #[test]
    fn trusted_validation_defers_code_checks_but_not_shape_checks() {
        let s = space();
        let slots = ArenaStorage::from(s.index_slots().to_vec());
        let mut arena = s.arena().to_vec();
        arena[0] = 99; // out of every dictionary's range
        let build = |arena: Vec<u32>, rows: usize, validation| {
            SearchSpace::from_code_storage_with_index(
                "demo",
                s.params().to_vec(),
                rows,
                ArenaStorage::from(arena),
                slots.clone(),
                IndexVerification::Trusted,
                validation,
            )
        };
        // Checked: the bad code is reported eagerly.
        assert!(matches!(
            build(arena.clone(), s.len(), CodeValidation::Checked),
            Err(SpaceError::CodeOutOfRange { .. })
        ));
        // Trusted: adoption succeeds (decoding stays bounds-checked and
        // would panic on the bad cell, never decode wrongly)...
        assert!(build(arena.clone(), s.len(), CodeValidation::Trusted).is_ok());
        // ...but a ragged arena is still rejected even when trusted.
        arena.pop();
        assert!(matches!(
            build(arena, s.len(), CodeValidation::Trusted),
            Err(SpaceError::RaggedArena { .. })
        ));
    }

    #[test]
    fn duplicate_rows_resolve_to_the_first_occurrence() {
        let params = vec![TunableParameter::ints("x", [1, 2])];
        let configs = vec![int_values([1]), int_values([2]), int_values([1])];
        let s = SearchSpace::from_configs("dup", params, configs).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.index_of(&int_values([1])), Some(ConfigId::from_index(0)));
    }
}
