//! The fully resolved search space representation.
//!
//! After construction, optimization algorithms need efficient access to the
//! valid configurations: indexed access for sampling, hash lookups to test
//! membership and find a configuration's index, the *true* parameter bounds
//! (which constraints may have shrunk relative to the declared domains), and
//! neighbor queries. This mirrors Kernel Tuner's `SearchSpace` class
//! (Section 4.4 of the paper).

use at_csp::{SolutionSet, Value};
use rustc_hash::FxHashMap;

use crate::param::TunableParameter;

/// A fully resolved, indexed search space.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    name: String,
    params: Vec<TunableParameter>,
    /// Valid configurations; each row holds one value per parameter, in
    /// parameter declaration order.
    configs: Vec<Vec<Value>>,
    /// For each configuration, the per-parameter index of its value within
    /// the parameter's declared value list.
    value_indices: Vec<Vec<usize>>,
    /// Hash index from configuration to its position in `configs`.
    index: FxHashMap<Vec<Value>, usize>,
}

impl SearchSpace {
    /// Build the representation from the solver output.
    pub fn from_solutions(
        name: impl Into<String>,
        params: Vec<TunableParameter>,
        solutions: &SolutionSet,
    ) -> Self {
        let configs: Vec<Vec<Value>> = solutions.rows().to_vec();
        Self::from_configs(name, params, configs)
    }

    /// Build the representation from raw configuration rows (declaration order).
    pub fn from_configs(
        name: impl Into<String>,
        params: Vec<TunableParameter>,
        configs: Vec<Vec<Value>>,
    ) -> Self {
        let value_indices: Vec<Vec<usize>> = configs
            .iter()
            .map(|row| {
                row.iter()
                    .zip(params.iter())
                    .map(|(v, p)| p.index_of(v).unwrap_or(usize::MAX))
                    .collect()
            })
            .collect();
        let index: FxHashMap<Vec<Value>, usize> = configs
            .iter()
            .enumerate()
            .map(|(i, row)| (row.clone(), i))
            .collect();
        SearchSpace {
            name: name.into(),
            params,
            configs,
            value_indices,
            index,
        }
    }

    /// The space's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tunable parameters.
    pub fn params(&self) -> &[TunableParameter] {
        &self.params
    }

    /// Parameter names in declaration order.
    pub fn param_names(&self) -> Vec<&str> {
        self.params.iter().map(|p| p.name()).collect()
    }

    /// Number of valid configurations.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// True when the space has no valid configuration.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// The Cartesian size of the unconstrained space.
    pub fn cartesian_size(&self) -> u128 {
        self.params
            .iter()
            .map(|p| p.len() as u128)
            .fold(1, |a, b| a.saturating_mul(b))
    }

    /// Fraction of the Cartesian space that is *invalid* (the paper's
    /// "fraction of sparsity").
    pub fn sparsity(&self) -> f64 {
        let cartesian = self.cartesian_size() as f64;
        if cartesian == 0.0 {
            return 0.0;
        }
        1.0 - self.len() as f64 / cartesian
    }

    /// The configuration at `index`.
    pub fn get(&self, index: usize) -> Option<&[Value]> {
        self.configs.get(index).map(|v| v.as_slice())
    }

    /// The per-parameter value indices of the configuration at `index`.
    pub fn value_indices(&self, index: usize) -> Option<&[usize]> {
        self.value_indices.get(index).map(|v| v.as_slice())
    }

    /// All configurations.
    pub fn configs(&self) -> &[Vec<Value>] {
        &self.configs
    }

    /// Whether a configuration is part of the (valid) search space.
    pub fn contains(&self, config: &[Value]) -> bool {
        self.index.contains_key(config)
    }

    /// The index of a configuration, if valid.
    pub fn index_of(&self, config: &[Value]) -> Option<usize> {
        self.index.get(config).copied()
    }

    /// A configuration as `(name, value)` pairs.
    pub fn named(&self, index: usize) -> Option<Vec<(&str, &Value)>> {
        self.configs.get(index).map(|row| {
            self.params
                .iter()
                .map(|p| p.name())
                .zip(row.iter())
                .collect()
        })
    }

    /// The *true* bounds of each numeric parameter over the valid
    /// configurations: `(min, max)` of the values that actually occur.
    /// Parameters with non-numeric values yield `None`.
    pub fn true_bounds(&self) -> Vec<Option<(f64, f64)>> {
        let n = self.params.len();
        let mut bounds: Vec<Option<(f64, f64)>> = vec![None; n];
        for row in &self.configs {
            for (i, v) in row.iter().enumerate() {
                if let Some(f) = v.as_f64() {
                    bounds[i] = Some(match bounds[i] {
                        Some((lo, hi)) => (lo.min(f), hi.max(f)),
                        None => (f, f),
                    });
                }
            }
        }
        bounds
    }

    /// For each parameter, the values that actually occur in at least one
    /// valid configuration (in declared order). Constraints often make some
    /// declared values unreachable; optimizers should not waste samples there.
    pub fn occurring_values(&self) -> Vec<Vec<Value>> {
        self.params
            .iter()
            .enumerate()
            .map(|(i, p)| {
                p.values()
                    .iter()
                    .filter(|v| self.configs.iter().any(|row| &row[i] == *v))
                    .cloned()
                    .collect()
            })
            .collect()
    }

    /// A new search space containing only the configurations for which the
    /// predicate holds (e.g. restricting to a promising region before a
    /// second tuning pass).
    pub fn filter<F: Fn(&[Value]) -> bool>(&self, predicate: F) -> SearchSpace {
        let configs: Vec<Vec<Value>> = self
            .configs
            .iter()
            .filter(|row| predicate(row))
            .cloned()
            .collect();
        SearchSpace::from_configs(self.name.clone(), self.params.clone(), configs)
    }

    /// Split the configuration indices into `parts` contiguous, near-equal
    /// blocks — the simplest way to distribute a tuning run over multiple
    /// workers, each exploring a disjoint part of the space.
    pub fn partition(&self, parts: usize) -> Vec<std::ops::Range<usize>> {
        let parts = parts.max(1);
        let n = self.configs.len();
        let base = n / parts;
        let remainder = n % parts;
        let mut ranges = Vec::with_capacity(parts);
        let mut start = 0usize;
        for i in 0..parts {
            let len = base + usize::from(i < remainder);
            ranges.push(start..start + len);
            start += len;
        }
        ranges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_csp::value::int_values;

    fn space() -> SearchSpace {
        // x in {1,2,4}, y in {1,2}; valid: x*y <= 4
        let params = vec![
            TunableParameter::ints("x", [1, 2, 4]),
            TunableParameter::ints("y", [1, 2]),
        ];
        let configs = vec![
            int_values([1, 1]),
            int_values([1, 2]),
            int_values([2, 1]),
            int_values([2, 2]),
            int_values([4, 1]),
        ];
        SearchSpace::from_configs("demo", params, configs)
    }

    #[test]
    fn basic_accessors() {
        let s = space();
        assert_eq!(s.name(), "demo");
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        assert_eq!(s.cartesian_size(), 6);
        assert!((s.sparsity() - (1.0 - 5.0 / 6.0)).abs() < 1e-12);
        assert_eq!(s.param_names(), vec!["x", "y"]);
        assert_eq!(s.get(2).unwrap(), &int_values([2, 1])[..]);
        assert_eq!(s.get(99), None);
    }

    #[test]
    fn hash_index_lookups() {
        let s = space();
        assert!(s.contains(&int_values([2, 2])));
        assert!(!s.contains(&int_values([4, 2])));
        assert_eq!(s.index_of(&int_values([4, 1])), Some(4));
        assert_eq!(s.index_of(&int_values([9, 9])), None);
    }

    #[test]
    fn value_indices_match_parameter_positions() {
        let s = space();
        assert_eq!(s.value_indices(4).unwrap(), &[2, 0]);
        assert_eq!(s.value_indices(1).unwrap(), &[0, 1]);
    }

    #[test]
    fn true_bounds_and_occurring_values() {
        let s = space();
        let bounds = s.true_bounds();
        assert_eq!(bounds[0], Some((1.0, 4.0)));
        assert_eq!(bounds[1], Some((1.0, 2.0)));
        let occurring = s.occurring_values();
        assert_eq!(occurring[0], int_values([1, 2, 4]));
        assert_eq!(occurring[1], int_values([1, 2]));
    }

    #[test]
    fn true_bounds_shrink_when_values_unreachable() {
        let params = vec![TunableParameter::ints("x", [1, 2, 64])];
        let configs = vec![int_values([1]), int_values([2])];
        let s = SearchSpace::from_configs("shrunk", params, configs);
        assert_eq!(s.true_bounds()[0], Some((1.0, 2.0)));
        assert_eq!(s.occurring_values()[0], int_values([1, 2]));
    }

    #[test]
    fn named_view() {
        let s = space();
        let named = s.named(0).unwrap();
        assert_eq!(named[0].0, "x");
        assert_eq!(named[0].1, &Value::Int(1));
        assert!(s.named(100).is_none());
    }

    #[test]
    fn filter_produces_a_consistent_subspace() {
        let s = space();
        let filtered = s.filter(|row| row[1] == Value::Int(1));
        assert_eq!(filtered.len(), 3);
        assert!(filtered.contains(&int_values([4, 1])));
        assert!(!filtered.contains(&int_values([1, 2])));
        // indices are rebuilt for the subspace
        assert_eq!(filtered.index_of(&int_values([1, 1])), Some(0));
    }

    #[test]
    fn partition_covers_everything_without_overlap() {
        let s = space();
        for parts in [1usize, 2, 3, 5, 7] {
            let ranges = s.partition(parts);
            assert_eq!(ranges.len(), parts.max(1));
            let total: usize = ranges.iter().map(|r| r.len()).sum();
            assert_eq!(total, s.len());
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].end, pair[1].start);
            }
            assert_eq!(ranges.first().unwrap().start, 0);
            assert_eq!(ranges.last().unwrap().end, s.len());
        }
    }

    #[test]
    fn from_solutions_roundtrip() {
        let sols = SolutionSet::from_rows(
            vec!["x".to_string(), "y".to_string()],
            vec![int_values([1, 1]), int_values([2, 1])],
        );
        let s = SearchSpace::from_solutions(
            "rt",
            vec![
                TunableParameter::ints("x", [1, 2]),
                TunableParameter::ints("y", [1]),
            ],
            &sols,
        );
        assert_eq!(s.len(), 2);
    }
}
