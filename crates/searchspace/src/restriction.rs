//! Restrictions: user-facing constraint specifications.
//!
//! Kernel Tuner accepts restrictions as Python-evaluable strings or as
//! lambdas; this crate mirrors both (string expressions and Rust closures)
//! and additionally accepts pre-built specific constraints for callers that
//! know exactly what they want.

use std::fmt;
use std::sync::Arc;

use at_csp::constraints::FunctionConstraint;
use at_csp::{ConstraintRef, Value};

/// Predicate type for closure restrictions.
pub type RestrictionFn = dyn Fn(&[Value]) -> bool + Send + Sync;

/// A user-facing restriction on the search space.
#[derive(Clone)]
pub enum Restriction {
    /// A Python-style expression over parameter names, e.g.
    /// `"32 <= block_size_x*block_size_y <= 1024"`.
    Expression(String),
    /// A closure over the named parameters (values are passed in the order of
    /// `scope`). The Rust counterpart of Kernel Tuner's lambda restrictions.
    Function {
        /// Parameter names the closure receives, in order.
        scope: Vec<String>,
        /// The predicate.
        func: Arc<RestrictionFn>,
        /// Description for reports.
        label: String,
    },
    /// A pre-built specific constraint over the named parameters.
    Specific {
        /// Parameter names, in the constraint's expected order.
        scope: Vec<String>,
        /// The constraint.
        constraint: ConstraintRef,
    },
}

impl Restriction {
    /// Build an expression restriction.
    pub fn expr(source: impl Into<String>) -> Self {
        Restriction::Expression(source.into())
    }

    /// Build a closure restriction over the named parameters.
    pub fn func<F>(scope: &[&str], label: impl Into<String>, func: F) -> Self
    where
        F: Fn(&[Value]) -> bool + Send + Sync + 'static,
    {
        Restriction::Function {
            scope: scope.iter().map(|s| s.to_string()).collect(),
            func: Arc::new(func),
            label: label.into(),
        }
    }

    /// Build a specific-constraint restriction.
    pub fn specific<C: at_csp::Constraint + 'static>(scope: &[&str], constraint: C) -> Self {
        Restriction::Specific {
            scope: scope.iter().map(|s| s.to_string()).collect(),
            constraint: Arc::new(constraint),
        }
    }

    /// A short human-readable description.
    pub fn describe(&self) -> String {
        match self {
            Restriction::Expression(src) => format!("expr: {src}"),
            Restriction::Function { label, scope, .. } => {
                format!("fn: {label} over {scope:?}")
            }
            Restriction::Specific { constraint, scope } => {
                format!("{} over {scope:?}", constraint.kind())
            }
        }
    }

    /// Convert a closure restriction to a CSP constraint (expressions are
    /// handled by the parsing pipeline instead).
    pub fn as_function_constraint(&self) -> Option<(ConstraintRef, Vec<String>)> {
        match self {
            Restriction::Function { scope, func, label } => {
                let func = func.clone();
                let constraint: ConstraintRef = Arc::new(FunctionConstraint::with_label(
                    move |values: &[Value]| func(values),
                    label.clone(),
                ));
                Some((constraint, scope.clone()))
            }
            Restriction::Specific { scope, constraint } => {
                Some((constraint.clone(), scope.clone()))
            }
            Restriction::Expression(_) => None,
        }
    }
}

impl fmt::Debug for Restriction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Restriction({})", self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_csp::value::int_values;
    use at_csp::MaxProduct;

    #[test]
    fn expression_describe() {
        let r = Restriction::expr("a * b <= 4");
        assert!(r.describe().contains("a * b"));
        assert!(r.as_function_constraint().is_none());
    }

    #[test]
    fn function_restriction_evaluates() {
        let r = Restriction::func(&["a", "b"], "a <= b", |v| v[0] <= v[1]);
        let (c, scope) = r.as_function_constraint().unwrap();
        assert_eq!(scope, vec!["a", "b"]);
        assert!(c.evaluate(&int_values([1, 2])));
        assert!(!c.evaluate(&int_values([3, 2])));
        assert!(r.describe().contains("a <= b"));
    }

    #[test]
    fn specific_restriction_passthrough() {
        let r = Restriction::specific(&["x", "y"], MaxProduct::new(64.0));
        let (c, scope) = r.as_function_constraint().unwrap();
        assert_eq!(c.kind(), "MaxProduct");
        assert_eq!(scope.len(), 2);
        assert!(r.describe().contains("MaxProduct"));
    }
}
