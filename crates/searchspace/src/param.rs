//! Tunable parameters.

use at_csp::Value;

/// A tunable parameter: a name and the list of values it may take.
///
/// The value order is meaningful: "adjacent" neighbor definitions and Latin
/// Hypercube strata refer to positions in this list.
#[derive(Debug, Clone, PartialEq)]
pub struct TunableParameter {
    name: String,
    values: Vec<Value>,
}

impl TunableParameter {
    /// Create a parameter. Duplicate values are removed (keeping first
    /// occurrence) since they would inflate the Cartesian size artificially.
    pub fn new(name: impl Into<String>, values: Vec<Value>) -> Self {
        let mut seen: Vec<Value> = Vec::with_capacity(values.len());
        for v in values {
            if !seen.contains(&v) {
                seen.push(v);
            }
        }
        TunableParameter {
            name: name.into(),
            values: seen,
        }
    }

    /// Convenience: an integer-valued parameter.
    pub fn ints(name: impl Into<String>, values: impl IntoIterator<Item = i64>) -> Self {
        Self::new(name, values.into_iter().map(Value::Int).collect())
    }

    /// Convenience: a parameter over powers of two `1, 2, 4, …, 2^(n-1)`.
    pub fn pow2(name: impl Into<String>, n: u32) -> Self {
        Self::new(name, (0..n).map(|i| Value::Int(1 << i)).collect())
    }

    /// Convenience: a boolean on/off parameter expressed as 0/1.
    pub fn switch(name: impl Into<String>) -> Self {
        Self::ints(name, [0, 1])
    }

    /// Convenience: a string-valued parameter.
    pub fn strings(name: impl Into<String>, values: &[&str]) -> Self {
        Self::new(name, values.iter().map(Value::str).collect())
    }

    /// The parameter name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parameter values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the parameter has no values (an invalid specification).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Position of a value in the parameter's value list.
    pub fn index_of(&self, value: &Value) -> Option<usize> {
        self.values.iter().position(|v| v == value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let p = TunableParameter::ints("block_size_x", [1, 2, 4, 8]);
        assert_eq!(p.name(), "block_size_x");
        assert_eq!(p.len(), 4);
        assert_eq!(TunableParameter::pow2("y", 5).values()[4], Value::Int(16));
        assert_eq!(TunableParameter::switch("sh").len(), 2);
        assert_eq!(
            TunableParameter::strings("mode", &["auto", "manual"]).values()[1],
            Value::str("manual")
        );
    }

    #[test]
    fn duplicates_removed() {
        let p = TunableParameter::ints("x", [1, 2, 2, 3, 1]);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn index_of() {
        let p = TunableParameter::ints("x", [1, 2, 4]);
        assert_eq!(p.index_of(&Value::Int(4)), Some(2));
        assert_eq!(p.index_of(&Value::Int(3)), None);
    }
}
