//! Output formats for the resolved search space (Section 4.3.4).
//!
//! The paper notes that rearranging solver output into a different structure
//! per consumer can cost as much as the construction itself, and therefore
//! provides output formats close to the internal representation. The resolved
//! [`SearchSpace`] stores a flat index-encoded arena; this module provides
//! the common decoded views on it:
//!
//! * a columnar view (one vector per parameter, useful for analysis),
//! * name-keyed maps (the convenient but expensive dictionary format),
//! * CSV and a JSON cache format compatible in spirit with Kernel Tuner's
//!   cache files.

use rustc_hash::FxHashMap;

use at_csp::Value;

use crate::space::SearchSpace;

/// Columnar view: for each parameter, the values of all configurations.
/// Cheap to produce: the internal representation is already columnar-coded,
/// so each cell is one dictionary lookup and one `Value` clone.
pub fn to_columnar(space: &SearchSpace) -> Vec<(String, Vec<Value>)> {
    space
        .params()
        .iter()
        .enumerate()
        .map(|(d, p)| {
            let column = space
                .iter()
                .map(|view| view.value(d).expect("parameter in range").clone())
                .collect();
            (p.name().to_string(), column)
        })
        .collect()
}

/// Dictionary view: one name→value map per configuration. This is the
/// convenient format Python tuners expose; it is provided for compatibility
/// but costs one hash map per configuration.
pub fn to_named_maps(space: &SearchSpace) -> Vec<FxHashMap<String, Value>> {
    space
        .iter()
        .map(|view| {
            view.named()
                .into_iter()
                .map(|(name, value)| (name.to_string(), value.clone()))
                .collect()
        })
        .collect()
}

/// CSV rendering with a header row of parameter names.
pub fn to_csv(space: &SearchSpace) -> String {
    let mut out = String::new();
    out.push_str(
        &space
            .params()
            .iter()
            .map(|p| p.name().to_string())
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for view in space.iter() {
        let line: Vec<String> = view.values().map(csv_cell).collect();
        out.push_str(&line.join(","));
        out.push('\n');
    }
    out
}

fn csv_cell(value: &Value) -> String {
    match value {
        Value::Str(s) => {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        other => other.to_string(),
    }
}

/// A JSON document in the spirit of Kernel Tuner's cache files: the parameter
/// names, their declared values, and the list of valid configurations.
pub fn to_json_cache(space: &SearchSpace) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"space\": {},\n", json_string(space.name())));
    out.push_str("  \"tune_params_keys\": [");
    out.push_str(
        &space
            .params()
            .iter()
            .map(|p| json_string(p.name()))
            .collect::<Vec<_>>()
            .join(", "),
    );
    out.push_str("],\n  \"tune_params\": {\n");
    let params: Vec<String> = space
        .params()
        .iter()
        .map(|p| {
            format!(
                "    {}: [{}]",
                json_string(p.name()),
                p.values()
                    .iter()
                    .map(json_value)
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })
        .collect();
    out.push_str(&params.join(",\n"));
    out.push_str("\n  },\n  \"configurations\": [\n");
    let rows: Vec<String> = space
        .iter()
        .map(|view| {
            format!(
                "    [{}]",
                view.values().map(json_value).collect::<Vec<_>>().join(", ")
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_value(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Float(f) if f.is_finite() => f.to_string(),
        Value::Float(_) => "null".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Str(s) => json_string(s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::TunableParameter;
    use at_csp::value::int_values;

    fn space() -> SearchSpace {
        let params = vec![
            TunableParameter::ints("x", [1, 2]),
            TunableParameter::strings("mode", &["row", "a,b"]),
        ];
        let configs = vec![
            vec![Value::Int(1), Value::str("row")],
            vec![Value::Int(2), Value::str("a,b")],
        ];
        SearchSpace::from_configs("out", params, configs).unwrap()
    }

    #[test]
    fn columnar_view_transposes() {
        let s = space();
        let cols = to_columnar(&s);
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0].0, "x");
        assert_eq!(cols[0].1, int_values([1, 2]));
        assert_eq!(cols[1].1[1], Value::str("a,b"));
    }

    #[test]
    fn named_maps_contain_every_parameter() {
        let s = space();
        let maps = to_named_maps(&s);
        assert_eq!(maps.len(), 2);
        assert_eq!(maps[0]["x"], Value::Int(1));
        assert_eq!(maps[1]["mode"], Value::str("a,b"));
    }

    #[test]
    fn csv_escapes_commas() {
        let s = space();
        let csv = to_csv(&s);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,mode");
        assert_eq!(lines[1], "1,row");
        assert_eq!(lines[2], "2,\"a,b\"");
    }

    #[test]
    fn json_cache_is_structurally_sound() {
        let s = space();
        let json = to_json_cache(&s);
        assert!(json.contains("\"tune_params_keys\": [\"x\", \"mode\"]"));
        assert!(json.contains("\"configurations\""));
        assert!(json.contains("[1, \"row\"]"));
        // balanced braces/brackets as a cheap well-formedness check
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_string_escaping() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_value(&Value::Float(f64::NAN)), "null");
        assert_eq!(json_value(&Value::Bool(true)), "true");
    }
}
