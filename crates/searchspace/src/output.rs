//! Output formats for the resolved search space (Section 4.3.4).
//!
//! The paper notes that rearranging solver output into a different structure
//! per consumer can cost as much as the construction itself, and therefore
//! provides output formats close to the internal representation. The resolved
//! [`SearchSpace`] stores a flat index-encoded arena; this module provides
//! the common decoded views on it:
//!
//! * a columnar view (one vector per parameter, useful for analysis),
//! * name-keyed maps (the convenient but expensive dictionary format),
//! * CSV and a JSON cache format compatible in spirit with Kernel Tuner's
//!   cache files — both as `String` builders ([`to_csv`], [`to_json_cache`])
//!   and as streaming [`std::io::Write`] variants ([`write_csv`],
//!   [`write_json_cache`]) whose memory use is O(row), not O(space).
//!
//! For a durable format that needs no decoding at all, see the `at_store`
//! crate: it persists the `u32` code arena verbatim.

use std::io::{self, Write};

use rustc_hash::FxHashMap;

use at_csp::Value;

use crate::space::SearchSpace;

/// Columnar view: for each parameter, the values of all configurations.
/// Cheap to produce: the internal representation is already columnar-coded,
/// so each cell is one dictionary lookup and one `Value` clone.
pub fn to_columnar(space: &SearchSpace) -> Vec<(String, Vec<Value>)> {
    space
        .params()
        .iter()
        .enumerate()
        .map(|(d, p)| {
            let column = space
                .iter()
                .map(|view| view.value(d).expect("parameter in range").clone())
                .collect();
            (p.name().to_string(), column)
        })
        .collect()
}

/// Dictionary view: one name→value map per configuration. This is the
/// convenient format Python tuners expose; it is provided for compatibility
/// but costs one hash map per configuration.
pub fn to_named_maps(space: &SearchSpace) -> Vec<FxHashMap<String, Value>> {
    space
        .iter()
        .map(|view| {
            view.named()
                .into_iter()
                .map(|(name, value)| (name.to_string(), value.clone()))
                .collect()
        })
        .collect()
}

/// CSV rendering with a header row of parameter names.
///
/// Convenience wrapper over [`write_csv`] that renders into one `String`
/// proportional to the whole space; prefer the streaming variant for large
/// spaces or when writing to a file.
pub fn to_csv(space: &SearchSpace) -> String {
    let mut out = Vec::new();
    write_csv(space, &mut out).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect("CSV output is UTF-8")
}

/// Stream the CSV rendering (header row of parameter names, one line per
/// configuration) into any [`io::Write`], one configuration at a time —
/// memory use is O(row), not O(space).
pub fn write_csv<W: Write>(space: &SearchSpace, out: &mut W) -> io::Result<()> {
    for (d, p) in space.params().iter().enumerate() {
        if d > 0 {
            out.write_all(b",")?;
        }
        // Parameter names are arbitrary user strings: quote them with the
        // same rules as data cells or a `,` in a name adds a column.
        write_csv_str(p.name(), out)?;
    }
    out.write_all(b"\n")?;
    for view in space.iter() {
        for (d, value) in view.values().enumerate() {
            if d > 0 {
                out.write_all(b",")?;
            }
            write_csv_cell(value, out)?;
        }
        out.write_all(b"\n")?;
    }
    Ok(())
}

fn write_csv_cell<W: Write>(value: &Value, out: &mut W) -> io::Result<()> {
    match value {
        Value::Str(s) => write_csv_str(s, out),
        other => write!(out, "{other}"),
    }
}

/// Write one string field, quoted when it contains a separator, a quote,
/// or an embedded line break (an unquoted line break splits the record and
/// corrupts the whole file).
fn write_csv_str<W: Write>(s: &str, out: &mut W) -> io::Result<()> {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        out.write_all(b"\"")?;
        out.write_all(s.replace('"', "\"\"").as_bytes())?;
        out.write_all(b"\"")
    } else {
        out.write_all(s.as_bytes())
    }
}

/// A JSON document in the spirit of Kernel Tuner's cache files: the parameter
/// names, their declared values, and the list of valid configurations.
///
/// Convenience wrapper over [`write_json_cache`] that renders into one
/// `String` proportional to the whole space; prefer the streaming variant
/// for large spaces or when writing to a file.
pub fn to_json_cache(space: &SearchSpace) -> String {
    let mut out = Vec::new();
    write_json_cache(space, &mut out).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect("JSON output is UTF-8")
}

/// Stream the JSON cache document into any [`io::Write`], one configuration
/// at a time — memory use is O(row), not O(space).
pub fn write_json_cache<W: Write>(space: &SearchSpace, out: &mut W) -> io::Result<()> {
    out.write_all(b"{\n")?;
    writeln!(out, "  \"space\": {},", json_string(space.name()))?;
    out.write_all(b"  \"tune_params_keys\": [")?;
    for (d, p) in space.params().iter().enumerate() {
        if d > 0 {
            out.write_all(b", ")?;
        }
        out.write_all(json_string(p.name()).as_bytes())?;
    }
    out.write_all(b"],\n  \"tune_params\": {\n")?;
    for (d, p) in space.params().iter().enumerate() {
        if d > 0 {
            out.write_all(b",\n")?;
        }
        write!(out, "    {}: [", json_string(p.name()))?;
        for (i, v) in p.values().iter().enumerate() {
            if i > 0 {
                out.write_all(b", ")?;
            }
            out.write_all(json_value(v).as_bytes())?;
        }
        out.write_all(b"]")?;
    }
    out.write_all(b"\n  },\n  \"configurations\": [\n")?;
    for (row, view) in space.iter().enumerate() {
        if row > 0 {
            out.write_all(b",\n")?;
        }
        out.write_all(b"    [")?;
        for (d, v) in view.values().enumerate() {
            if d > 0 {
                out.write_all(b", ")?;
            }
            out.write_all(json_value(v).as_bytes())?;
        }
        out.write_all(b"]")?;
    }
    out.write_all(b"\n  ]\n}\n")
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_value(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Float(f) if f.is_finite() => f.to_string(),
        Value::Float(_) => "null".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Str(s) => json_string(s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::TunableParameter;
    use at_csp::value::int_values;

    fn space() -> SearchSpace {
        let params = vec![
            TunableParameter::ints("x", [1, 2]),
            TunableParameter::strings("mode", &["row", "a,b"]),
        ];
        let configs = vec![
            vec![Value::Int(1), Value::str("row")],
            vec![Value::Int(2), Value::str("a,b")],
        ];
        SearchSpace::from_configs("out", params, configs).unwrap()
    }

    #[test]
    fn columnar_view_transposes() {
        let s = space();
        let cols = to_columnar(&s);
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0].0, "x");
        assert_eq!(cols[0].1, int_values([1, 2]));
        assert_eq!(cols[1].1[1], Value::str("a,b"));
    }

    #[test]
    fn named_maps_contain_every_parameter() {
        let s = space();
        let maps = to_named_maps(&s);
        assert_eq!(maps.len(), 2);
        assert_eq!(maps[0]["x"], Value::Int(1));
        assert_eq!(maps[1]["mode"], Value::str("a,b"));
    }

    #[test]
    fn csv_escapes_commas() {
        let s = space();
        let csv = to_csv(&s);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,mode");
        assert_eq!(lines[1], "1,row");
        assert_eq!(lines[2], "2,\"a,b\"");
    }

    #[test]
    fn json_cache_is_structurally_sound() {
        let s = space();
        let json = to_json_cache(&s);
        assert!(json.contains("\"tune_params_keys\": [\"x\", \"mode\"]"));
        assert!(json.contains("\"configurations\""));
        assert!(json.contains("[1, \"row\"]"));
        // balanced braces/brackets as a cheap well-formedness check
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn csv_quotes_header_names_too() {
        let params = vec![
            TunableParameter::ints("a,b", [1, 2]),
            TunableParameter::ints("plain", [3]),
        ];
        let configs = vec![vec![Value::Int(1), Value::Int(3)]];
        let s = SearchSpace::from_configs("hdr", params, configs).unwrap();
        let csv = to_csv(&s);
        assert_eq!(csv.lines().next().unwrap(), "\"a,b\",plain");
    }

    #[test]
    fn csv_quotes_newlines_and_carriage_returns() {
        let params = vec![
            TunableParameter::ints("x", [1, 2]),
            TunableParameter::strings("mode", &["a\nb", "c\rd"]),
        ];
        let configs = vec![
            vec![Value::Int(1), Value::str("a\nb")],
            vec![Value::Int(2), Value::str("c\rd")],
        ];
        let s = SearchSpace::from_configs("nl", params, configs).unwrap();
        let csv = to_csv(&s);
        // Embedded line breaks must be quoted, or the rows split apart.
        assert!(csv.contains("1,\"a\nb\"\n"), "{csv:?}");
        assert!(csv.contains("2,\"c\rd\"\n"), "{csv:?}");
    }

    #[test]
    fn streaming_writers_match_string_builders() {
        let s = space();
        let mut csv = Vec::new();
        write_csv(&s, &mut csv).unwrap();
        assert_eq!(String::from_utf8(csv).unwrap(), to_csv(&s));
        let mut json = Vec::new();
        write_json_cache(&s, &mut json).unwrap();
        assert_eq!(String::from_utf8(json).unwrap(), to_json_cache(&s));
    }

    #[test]
    fn streaming_writers_propagate_io_errors() {
        struct Full;
        impl std::io::Write for Full {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        assert!(write_csv(&space(), &mut Full).is_err());
        assert!(write_json_cache(&space(), &mut Full).is_err());
    }

    #[test]
    fn json_string_escaping() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_value(&Value::Float(f64::NAN)), "null");
        assert_eq!(json_value(&Value::Bool(true)), "true");
    }
}
