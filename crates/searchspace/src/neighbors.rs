//! Valid-neighbor queries over the resolved search space.
//!
//! Optimization strategies such as genetic algorithms, hill climbing and
//! simulated annealing repeatedly ask for the valid neighbors of a
//! configuration. Because the space is fully resolved, neighbors can be
//! served from an index instead of generating candidate configurations and
//! re-checking constraints (Section 4.4).

use rustc_hash::FxHashMap;

use at_csp::Value;

use crate::space::SearchSpace;

/// The neighbor definitions supported by Kernel Tuner's `SearchSpace`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NeighborMethod {
    /// Configurations differing in exactly one parameter (Hamming distance 1).
    Hamming,
    /// Configurations whose value *index* differs by at most one in every
    /// parameter (and by at least one somewhere).
    Adjacent,
    /// Configurations differing in exactly one parameter, whose value index
    /// differs by exactly one.
    StrictlyAdjacent,
}

/// A prebuilt index for Hamming-distance-1 neighbor queries.
///
/// For every configuration and every parameter position, the configuration is
/// hashed with that position wildcarded; configurations sharing a bucket are
/// exactly the ones that differ only in that position.
#[derive(Debug, Default)]
pub struct NeighborIndex {
    buckets: FxHashMap<(usize, Vec<Value>), Vec<usize>>,
}

impl NeighborIndex {
    /// Build the index for a space. Cost is `O(len * params)`.
    pub fn build(space: &SearchSpace) -> Self {
        let mut buckets: FxHashMap<(usize, Vec<Value>), Vec<usize>> = FxHashMap::default();
        for (i, config) in space.configs().iter().enumerate() {
            for pos in 0..config.len() {
                let mut key = config.clone();
                key[pos] = Value::Int(i64::MIN); // wildcard marker
                buckets.entry((pos, key)).or_default().push(i);
            }
        }
        NeighborIndex { buckets }
    }

    /// Hamming-distance-1 neighbors of the configuration at `index`.
    pub fn hamming_neighbors(&self, space: &SearchSpace, index: usize) -> Vec<usize> {
        let config = match space.get(index) {
            Some(c) => c.to_vec(),
            None => return Vec::new(),
        };
        let mut out = Vec::new();
        for pos in 0..config.len() {
            let mut key = config.clone();
            key[pos] = Value::Int(i64::MIN);
            if let Some(bucket) = self.buckets.get(&(pos, key)) {
                out.extend(bucket.iter().copied().filter(|&j| j != index));
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Neighbors of the configuration at `index` according to `method`.
///
/// `Hamming` queries use the prebuilt index when provided and fall back to a
/// scan otherwise; the index-based variants always scan (their candidate sets
/// are not bucketable by a single wildcard position).
pub fn neighbors(
    space: &SearchSpace,
    index: usize,
    method: NeighborMethod,
    prebuilt: Option<&NeighborIndex>,
) -> Vec<usize> {
    if space.get(index).is_none() {
        return Vec::new();
    }
    match method {
        NeighborMethod::Hamming => match prebuilt {
            Some(idx) => idx.hamming_neighbors(space, index),
            None => scan_neighbors(space, index, method),
        },
        _ => scan_neighbors(space, index, method),
    }
}

fn scan_neighbors(space: &SearchSpace, index: usize, method: NeighborMethod) -> Vec<usize> {
    let reference = space.value_indices(index).expect("valid index").to_vec();
    let mut out = Vec::new();
    for (j, candidate) in space.configs().iter().enumerate() {
        if j == index {
            continue;
        }
        let cand_indices = space.value_indices(j).expect("valid index");
        if is_neighbor(&reference, cand_indices, method) {
            out.push(j);
        }
        let _ = candidate;
    }
    out
}

fn is_neighbor(a: &[usize], b: &[usize], method: NeighborMethod) -> bool {
    match method {
        NeighborMethod::Hamming => {
            let differing = a.iter().zip(b.iter()).filter(|(x, y)| x != y).count();
            differing == 1
        }
        NeighborMethod::Adjacent => {
            let mut any_diff = false;
            for (&x, &y) in a.iter().zip(b.iter()) {
                let d = x.abs_diff(y);
                if d > 1 {
                    return false;
                }
                if d == 1 {
                    any_diff = true;
                }
            }
            any_diff
        }
        NeighborMethod::StrictlyAdjacent => {
            let mut differing = 0;
            for (&x, &y) in a.iter().zip(b.iter()) {
                let d = x.abs_diff(y);
                if d > 1 {
                    return false;
                }
                if d == 1 {
                    differing += 1;
                }
                if x != y && d != 1 {
                    return false;
                }
            }
            differing == 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::TunableParameter;
    use at_csp::value::int_values;

    /// Full 3x3 grid over x,y in {1,2,4} minus the (4,4) corner.
    fn space() -> SearchSpace {
        let params = vec![
            TunableParameter::ints("x", [1, 2, 4]),
            TunableParameter::ints("y", [1, 2, 4]),
        ];
        let mut configs = Vec::new();
        for &x in &[1i64, 2, 4] {
            for &y in &[1i64, 2, 4] {
                if !(x == 4 && y == 4) {
                    configs.push(int_values([x, y]));
                }
            }
        }
        SearchSpace::from_configs("grid", params, configs)
    }

    #[test]
    fn hamming_neighbors_scan_and_index_agree() {
        let s = space();
        let idx = NeighborIndex::build(&s);
        for i in 0..s.len() {
            let scanned = neighbors(&s, i, NeighborMethod::Hamming, None);
            let indexed = neighbors(&s, i, NeighborMethod::Hamming, Some(&idx));
            assert_eq!(scanned, indexed, "config {i}");
        }
    }

    #[test]
    fn hamming_neighbors_of_corner() {
        let s = space();
        let idx = NeighborIndex::build(&s);
        let origin = s.index_of(&int_values([1, 1])).unwrap();
        let n = neighbors(&s, origin, NeighborMethod::Hamming, Some(&idx));
        // same row or same column: (1,2), (1,4), (2,1), (4,1)
        assert_eq!(n.len(), 4);
        for j in n {
            let cfg = s.get(j).unwrap();
            assert!(cfg[0] == Value::Int(1) || cfg[1] == Value::Int(1));
        }
    }

    #[test]
    fn adjacent_neighbors_use_value_positions() {
        let s = space();
        let center = s.index_of(&int_values([2, 2])).unwrap();
        let n = neighbors(&s, center, NeighborMethod::Adjacent, None);
        // all 8 surrounding grid cells except the removed (4,4)
        assert_eq!(n.len(), 7);
    }

    #[test]
    fn strictly_adjacent_neighbors() {
        let s = space();
        let center = s.index_of(&int_values([2, 2])).unwrap();
        let n = neighbors(&s, center, NeighborMethod::StrictlyAdjacent, None);
        // only the 4 axis-aligned direct neighbors
        assert_eq!(n.len(), 4);
        let corner = s.index_of(&int_values([1, 1])).unwrap();
        let n = neighbors(&s, corner, NeighborMethod::StrictlyAdjacent, None);
        assert_eq!(n.len(), 2);
    }

    #[test]
    fn neighborhood_is_symmetric() {
        let s = space();
        let idx = NeighborIndex::build(&s);
        for method in [
            NeighborMethod::Hamming,
            NeighborMethod::Adjacent,
            NeighborMethod::StrictlyAdjacent,
        ] {
            for i in 0..s.len() {
                for &j in &neighbors(&s, i, method, Some(&idx)) {
                    let back = neighbors(&s, j, method, Some(&idx));
                    assert!(
                        back.contains(&i),
                        "{method:?} asymmetric between {i} and {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn invalid_index_has_no_neighbors() {
        let s = space();
        assert!(neighbors(&s, 999, NeighborMethod::Hamming, None).is_empty());
    }
}
