//! Valid-neighbor queries over the resolved search space.
//!
//! Optimization strategies such as genetic algorithms, hill climbing and
//! simulated annealing repeatedly ask for the valid neighbors of a
//! configuration. Because the space is fully resolved, neighbors can be
//! served from an index instead of generating candidate configurations and
//! re-checking constraints (Section 4.4).
//!
//! All queries operate on [`ConfigId`]s and the space's encoded code rows —
//! no configuration is decoded to [`at_csp::Value`]s anywhere in this module.

use rustc_hash::FxHashMap;

use crate::space::{hash_codes, ConfigId, SearchSpace};

/// The neighbor definitions supported by Kernel Tuner's `SearchSpace`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NeighborMethod {
    /// Configurations differing in exactly one parameter (Hamming distance 1).
    Hamming,
    /// Configurations whose value *code* differs by at most one in every
    /// parameter (and by at least one somewhere).
    Adjacent,
    /// Configurations differing in exactly one parameter, whose value code
    /// differs by exactly one.
    StrictlyAdjacent,
}

/// A prebuilt index for Hamming-distance-1 neighbor queries.
///
/// For every configuration and every parameter position, the encoded row is
/// hashed with that position wildcarded; configurations sharing a bucket are
/// candidates that differ only in that position. Buckets are keyed by the
/// 64-bit hash alone (ids are verified against the arena at query time, so a
/// hash collision can only cost a wasted comparison, never a wrong neighbor),
/// which keeps the index at one `u64 → Vec<u32>` entry per distinct wildcard
/// row instead of a cloned key row per configuration.
#[derive(Debug, Default)]
pub struct NeighborIndex {
    buckets: FxHashMap<u64, Vec<u32>>,
}

/// Hash of a code row with position `pos` wildcarded, tagged with `pos` so
/// buckets of different positions never merge by construction.
fn wildcard_hash(codes: &[u32], pos: usize) -> u64 {
    let mut h = hash_codes(&codes[..pos]) ^ (pos as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h = (h ^ u32::MAX as u64).wrapping_mul(0x0000_0100_0000_01b3);
    for &c in &codes[pos + 1..] {
        h = (h ^ c as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// True when `a` and `b` differ exactly at position `pos` and nowhere else.
fn differs_only_at(a: &[u32], b: &[u32], pos: usize) -> bool {
    a[pos] != b[pos] && a[..pos] == b[..pos] && a[pos + 1..] == b[pos + 1..]
}

impl NeighborIndex {
    /// Build the index for a space. Cost is `O(len × params)`.
    pub fn build(space: &SearchSpace) -> Self {
        let mut buckets: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        for id in space.ids() {
            let codes = space.codes_of(id).expect("id in range");
            for pos in 0..codes.len() {
                buckets
                    .entry(wildcard_hash(codes, pos))
                    .or_default()
                    .push(id.index() as u32);
            }
        }
        NeighborIndex { buckets }
    }

    /// Hamming-distance-1 neighbors of the configuration with the given id.
    pub fn hamming_neighbors(&self, space: &SearchSpace, id: ConfigId) -> Vec<ConfigId> {
        let codes = match space.codes_of(id) {
            Some(c) => c,
            None => return Vec::new(),
        };
        let mut out = Vec::new();
        for pos in 0..codes.len() {
            if let Some(bucket) = self.buckets.get(&wildcard_hash(codes, pos)) {
                out.extend(
                    bucket
                        .iter()
                        .map(|&j| ConfigId::from_index(j as usize))
                        .filter(|&j| {
                            j != id
                                && differs_only_at(
                                    codes,
                                    space.codes_of(j).expect("indexed id in range"),
                                    pos,
                                )
                        }),
                );
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Neighbors of the configuration with the given id according to `method`.
///
/// `Hamming` queries use the prebuilt index when provided and fall back to a
/// scan otherwise; the code-distance variants always scan (their candidate
/// sets are not bucketable by a single wildcard position).
pub fn neighbors(
    space: &SearchSpace,
    id: ConfigId,
    method: NeighborMethod,
    prebuilt: Option<&NeighborIndex>,
) -> Vec<ConfigId> {
    if space.codes_of(id).is_none() {
        return Vec::new();
    }
    match method {
        NeighborMethod::Hamming => match prebuilt {
            Some(index) => index.hamming_neighbors(space, id),
            None => scan_neighbors(space, id, method),
        },
        _ => scan_neighbors(space, id, method),
    }
}

fn scan_neighbors(space: &SearchSpace, id: ConfigId, method: NeighborMethod) -> Vec<ConfigId> {
    let reference = space.codes_of(id).expect("valid id");
    let mut out = Vec::new();
    for candidate in space.ids() {
        if candidate == id {
            continue;
        }
        let codes = space.codes_of(candidate).expect("valid id");
        if is_neighbor(reference, codes, method) {
            out.push(candidate);
        }
    }
    out
}

fn is_neighbor(a: &[u32], b: &[u32], method: NeighborMethod) -> bool {
    match method {
        NeighborMethod::Hamming => {
            let differing = a.iter().zip(b.iter()).filter(|(x, y)| x != y).count();
            differing == 1
        }
        NeighborMethod::Adjacent => {
            let mut any_diff = false;
            for (&x, &y) in a.iter().zip(b.iter()) {
                let d = x.abs_diff(y);
                if d > 1 {
                    return false;
                }
                if d == 1 {
                    any_diff = true;
                }
            }
            any_diff
        }
        NeighborMethod::StrictlyAdjacent => {
            let mut differing = 0;
            for (&x, &y) in a.iter().zip(b.iter()) {
                if x.abs_diff(y) > 1 {
                    return false;
                }
                if x != y {
                    differing += 1;
                }
            }
            differing == 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::TunableParameter;
    use at_csp::value::int_values;
    use at_csp::Value;

    /// Full 3x3 grid over x,y in {1,2,4} minus the (4,4) corner.
    fn space() -> SearchSpace {
        let params = vec![
            TunableParameter::ints("x", [1, 2, 4]),
            TunableParameter::ints("y", [1, 2, 4]),
        ];
        let mut configs = Vec::new();
        for &x in &[1i64, 2, 4] {
            for &y in &[1i64, 2, 4] {
                if !(x == 4 && y == 4) {
                    configs.push(int_values([x, y]));
                }
            }
        }
        SearchSpace::from_configs("grid", params, configs).unwrap()
    }

    #[test]
    fn hamming_neighbors_scan_and_index_agree() {
        let s = space();
        let index = NeighborIndex::build(&s);
        for id in s.ids() {
            let scanned = neighbors(&s, id, NeighborMethod::Hamming, None);
            let indexed = neighbors(&s, id, NeighborMethod::Hamming, Some(&index));
            assert_eq!(scanned, indexed, "config {id}");
        }
    }

    #[test]
    fn hamming_neighbors_of_corner() {
        let s = space();
        let index = NeighborIndex::build(&s);
        let origin = s.index_of(&int_values([1, 1])).unwrap();
        let n = neighbors(&s, origin, NeighborMethod::Hamming, Some(&index));
        // same row or same column: (1,2), (1,4), (2,1), (4,1)
        assert_eq!(n.len(), 4);
        for j in n {
            let view = s.view(j).unwrap();
            assert!(view[0] == Value::Int(1) || view[1] == Value::Int(1));
        }
    }

    #[test]
    fn adjacent_neighbors_use_value_positions() {
        let s = space();
        let center = s.index_of(&int_values([2, 2])).unwrap();
        let n = neighbors(&s, center, NeighborMethod::Adjacent, None);
        // all 8 surrounding grid cells except the removed (4,4)
        assert_eq!(n.len(), 7);
    }

    #[test]
    fn strictly_adjacent_neighbors() {
        let s = space();
        let center = s.index_of(&int_values([2, 2])).unwrap();
        let n = neighbors(&s, center, NeighborMethod::StrictlyAdjacent, None);
        // only the 4 axis-aligned direct neighbors
        assert_eq!(n.len(), 4);
        let corner = s.index_of(&int_values([1, 1])).unwrap();
        let n = neighbors(&s, corner, NeighborMethod::StrictlyAdjacent, None);
        assert_eq!(n.len(), 2);
    }

    #[test]
    fn neighborhood_is_symmetric() {
        let s = space();
        let index = NeighborIndex::build(&s);
        for method in [
            NeighborMethod::Hamming,
            NeighborMethod::Adjacent,
            NeighborMethod::StrictlyAdjacent,
        ] {
            for i in s.ids() {
                for &j in &neighbors(&s, i, method, Some(&index)) {
                    let back = neighbors(&s, j, method, Some(&index));
                    assert!(
                        back.contains(&i),
                        "{method:?} asymmetric between {i} and {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn invalid_id_has_no_neighbors() {
        let s = space();
        let bogus = ConfigId::from_index(999);
        assert!(neighbors(&s, bogus, NeighborMethod::Hamming, None).is_empty());
    }
}
