//! Storage of the code arena: owned, or borrowed from a shared backing.
//!
//! [`SearchSpace`](crate::SearchSpace) stores configurations as a flat
//! `u32` code arena. Until the zero-copy redesign that arena was always an
//! owned `Vec<u32>`, which meant every warm load from an `ATSS` store file
//! *copied* the whole arena out of the file — the dominant cost of serving
//! a pre-solved space. [`ArenaStorage`] abstracts the backing so the arena
//! (and the membership-table slots, which share the representation) can be
//! **borrowed from a memory-mapped store file** instead: the persistence
//! layer (`at_store`) maps the file, wraps the aligned in-file sections in a
//! [`CodeBacking`], and hands the space a [`ArenaStorage::Shared`] view.
//! Every accessor ([`SearchSpace::arena`](crate::SearchSpace::arena),
//! `codes_of`, `ConfigView`) is backing-agnostic, so consumers compile and
//! behave identically either way.
//!
//! Cloning is cheap for shared storage (an `Arc` bump) and deep for owned
//! storage, which preserves `SearchSpace: Clone` semantics unchanged.

use std::fmt;
use std::sync::Arc;

/// An immutable, shareable buffer of `u32` value codes.
///
/// The implementor guarantees the slice returned by [`CodeBacking::codes`]
/// is stable for the backing's lifetime (the bytes never change and never
/// move). `at_store` implements this over a 4-byte-aligned section of a
/// memory-mapped `ATSS` file; a test double can simply wrap a `Vec<u32>`.
pub trait CodeBacking: Send + Sync + fmt::Debug {
    /// The codes this backing holds.
    fn codes(&self) -> &[u32];
}

impl CodeBacking for Vec<u32> {
    fn codes(&self) -> &[u32] {
        self
    }
}

/// The storage of one `u32` code buffer: owned, or a view into a shared
/// backing (typically a memory-mapped store file). See the
/// [module docs](self).
#[derive(Debug, Clone)]
pub enum ArenaStorage {
    /// A plain owned vector (the result of in-process construction, or of a
    /// copying load).
    Owned(Vec<u32>),
    /// A borrowed view into a shared backing. The backing is kept alive by
    /// the `Arc`, so the view can never dangle; cloning shares the backing.
    Shared(Arc<dyn CodeBacking>),
}

impl ArenaStorage {
    /// The codes, whatever the backing.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        match self {
            ArenaStorage::Owned(codes) => codes,
            ArenaStorage::Shared(backing) => backing.codes(),
        }
    }

    /// Number of codes.
    #[inline]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when the storage holds no codes.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// True when the codes are borrowed from a shared backing (a zero-copy
    /// load) rather than owned.
    pub fn is_shared(&self) -> bool {
        matches!(self, ArenaStorage::Shared(_))
    }
}

impl From<Vec<u32>> for ArenaStorage {
    fn from(codes: Vec<u32>) -> Self {
        ArenaStorage::Owned(codes)
    }
}

impl Default for ArenaStorage {
    fn default() -> Self {
        ArenaStorage::Owned(Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_and_shared_expose_the_same_slice() {
        let codes = vec![1u32, 2, 3, 4];
        let owned = ArenaStorage::from(codes.clone());
        let shared = ArenaStorage::Shared(Arc::new(codes.clone()));
        assert_eq!(owned.as_slice(), shared.as_slice());
        assert_eq!(owned.len(), 4);
        assert!(!owned.is_shared());
        assert!(shared.is_shared());
        assert!(!shared.is_empty());
        assert!(ArenaStorage::default().is_empty());
    }

    #[test]
    fn cloning_shared_storage_shares_the_backing() {
        let backing: Arc<dyn CodeBacking> = Arc::new(vec![7u32; 8]);
        let storage = ArenaStorage::Shared(Arc::clone(&backing));
        let clone = storage.clone();
        assert_eq!(Arc::strong_count(&backing), 3);
        assert_eq!(clone.as_slice(), storage.as_slice());
    }
}
