//! Sampling from the resolved search space: uniform random sampling and
//! Latin Hypercube Sampling (LHS).
//!
//! Because the space is fully resolved before tuning, samples are always
//! valid configurations and uniform sampling is unbiased — unlike sampling
//! through a chain-of-trees or rejection sampling through forbidden-clause
//! checks (Section 4.4).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::space::SearchSpace;

/// Draw `count` distinct configuration indices uniformly at random.
/// If `count >= len`, all indices are returned (shuffled).
pub fn sample_indices<R: Rng>(space: &SearchSpace, count: usize, rng: &mut R) -> Vec<usize> {
    let n = space.len();
    let mut all: Vec<usize> = (0..n).collect();
    all.shuffle(rng);
    all.truncate(count.min(n));
    all
}

/// Latin Hypercube Sampling over the valid configurations.
///
/// Each numeric parameter's *occurring-value index range* is divided into
/// `count` strata; one stratum per parameter is drawn per sample (a Latin
/// square per dimension), the resulting grid point is snapped to the nearest
/// valid configuration (normalized Euclidean distance over value indices),
/// and duplicates are removed. The result therefore contains at most `count`
/// distinct, always-valid configurations spread over the space.
pub fn latin_hypercube_sample<R: Rng>(
    space: &SearchSpace,
    count: usize,
    rng: &mut R,
) -> Vec<usize> {
    let n = space.len();
    if n == 0 || count == 0 {
        return Vec::new();
    }
    let count = count.min(n);
    let dims = space.params().len();
    // Per dimension: a random permutation of the strata 0..count.
    let mut strata: Vec<Vec<usize>> = Vec::with_capacity(dims);
    for _ in 0..dims {
        let mut perm: Vec<usize> = (0..count).collect();
        perm.shuffle(rng);
        strata.push(perm);
    }
    // Normalized target coordinates per sample.
    let param_sizes: Vec<usize> = space.params().iter().map(|p| p.len().max(1)).collect();
    let mut picked = Vec::with_capacity(count);
    #[allow(clippy::needless_range_loop)] // `s` selects one stratum *per dimension*
    for s in 0..count {
        let target: Vec<f64> = (0..dims)
            .map(|d| {
                let stratum = strata[d][s] as f64;
                let jitter: f64 = rng.gen_range(0.0..1.0);
                (stratum + jitter) / count as f64 // in [0, 1)
            })
            .collect();
        //

        // Snap to the nearest valid configuration by normalized value index.
        let mut best = 0usize;
        let mut best_dist = f64::INFINITY;
        for i in 0..n {
            let indices = space.value_indices(i).expect("valid");
            let mut dist = 0.0;
            for d in 0..dims {
                let coord = indices[d] as f64 / param_sizes[d] as f64;
                let diff = coord - target[d];
                dist += diff * diff;
            }
            if dist < best_dist {
                best_dist = dist;
                best = i;
            }
        }
        picked.push(best);
    }
    picked.sort_unstable();
    picked.dedup();
    picked
}

/// Summary of how well a set of samples covers each parameter's range,
/// reported as the fraction of distinct occurring values hit per parameter.
/// Used to verify the stratification benefit of LHS over naive sampling.
pub fn coverage_per_parameter(space: &SearchSpace, samples: &[usize]) -> Vec<f64> {
    let occurring = space.occurring_values();
    space
        .params()
        .iter()
        .enumerate()
        .map(|(d, _)| {
            let total = occurring[d].len().max(1);
            let mut seen = std::collections::HashSet::new();
            for &i in samples {
                if let Some(cfg) = space.get(i) {
                    seen.insert(cfg[d].to_string());
                }
            }
            seen.len() as f64 / total as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::TunableParameter;
    use at_csp::value::int_values;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn grid_space(k: i64) -> SearchSpace {
        let vals: Vec<i64> = (1..=k).collect();
        let params = vec![
            TunableParameter::ints("x", vals.clone()),
            TunableParameter::ints("y", vals.clone()),
        ];
        let mut configs = Vec::new();
        for &x in &vals {
            for &y in &vals {
                configs.push(int_values([x, y]));
            }
        }
        SearchSpace::from_configs("grid", params, configs)
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let s = grid_space(8);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let samples = sample_indices(&s, 20, &mut rng);
        assert_eq!(samples.len(), 20);
        let mut dedup = samples.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 20);
        assert!(samples.iter().all(|&i| i < s.len()));
    }

    #[test]
    fn sample_more_than_space_returns_everything() {
        let s = grid_space(3);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let samples = sample_indices(&s, 100, &mut rng);
        assert_eq!(samples.len(), 9);
    }

    #[test]
    fn lhs_samples_are_valid_and_distinct() {
        let s = grid_space(10);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let samples = latin_hypercube_sample(&s, 10, &mut rng);
        assert!(!samples.is_empty());
        assert!(samples.len() <= 10);
        assert!(samples.iter().all(|&i| i < s.len()));
    }

    #[test]
    fn lhs_covers_parameter_ranges_better_than_a_single_stratum() {
        let s = grid_space(10);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let samples = latin_hypercube_sample(&s, 10, &mut rng);
        let coverage = coverage_per_parameter(&s, &samples);
        // with 10 strata over 10 values, each dimension should hit a good
        // spread of values (well above a clustered sample's coverage)
        for c in coverage {
            assert!(c >= 0.5, "coverage {c}");
        }
    }

    #[test]
    fn empty_space_and_zero_count() {
        let s =
            SearchSpace::from_configs("empty", vec![TunableParameter::ints("x", [1])], Vec::new());
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        assert!(latin_hypercube_sample(&s, 5, &mut rng).is_empty());
        let s2 = grid_space(3);
        assert!(latin_hypercube_sample(&s2, 0, &mut rng).is_empty());
    }
}
