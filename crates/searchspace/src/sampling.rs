//! Sampling from the resolved search space: uniform random sampling and
//! Latin Hypercube Sampling (LHS).
//!
//! Because the space is fully resolved before tuning, samples are always
//! valid configurations and uniform sampling is unbiased — unlike sampling
//! through a chain-of-trees or rejection sampling through forbidden-clause
//! checks (Section 4.4). Samples are returned as [`ConfigId`]s; distances
//! and coverage are computed on the encoded code rows without decoding.

use rand::seq::SliceRandom;
use rand::Rng;
use rustc_hash::FxHashMap;

use crate::space::{ConfigId, SearchSpace};

/// Draw `count` distinct configuration ids uniformly at random.
/// If `count >= len`, all ids are returned (shuffled).
///
/// This is a *partial* Fisher–Yates shuffle over a sparse view of the id
/// range: only the first `count` steps of the shuffle run, and only the
/// displaced positions are tracked (in a hash map), so a call costs
/// O(count) time and memory regardless of the size of the space — drawing
/// 100 ids from a ten-million-configuration space no longer allocates and
/// shuffles a ten-million-entry vector. Distinctness and per-seed
/// determinism are preserved.
pub fn sample_indices<R: Rng>(space: &SearchSpace, count: usize, rng: &mut R) -> Vec<ConfigId> {
    let n = space.len();
    let count = count.min(n);
    // `displaced[p]` is the id currently "stored" at position p of the
    // virtual id array; absent positions still hold their own id.
    let mut displaced: FxHashMap<usize, usize> = FxHashMap::default();
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let j = rng.gen_range(i..n);
        let pick = displaced.get(&j).copied().unwrap_or(j);
        let shadowed = displaced.get(&i).copied().unwrap_or(i);
        displaced.insert(j, shadowed);
        out.push(ConfigId::from_index(pick));
    }
    out
}

/// Latin Hypercube Sampling over the valid configurations.
///
/// Each parameter's *value code range* is divided into `count` strata; one
/// stratum per parameter is drawn per sample (a Latin square per dimension),
/// the resulting grid point is snapped to the nearest valid configuration
/// (normalized Euclidean distance over value codes), and duplicates are
/// removed. The result therefore contains at most `count` distinct,
/// always-valid configurations spread over the space.
pub fn latin_hypercube_sample<R: Rng>(
    space: &SearchSpace,
    count: usize,
    rng: &mut R,
) -> Vec<ConfigId> {
    let n = space.len();
    if n == 0 || count == 0 {
        return Vec::new();
    }
    let count = count.min(n);
    let dims = space.num_params();
    // Per dimension: a random permutation of the strata 0..count.
    let mut strata: Vec<Vec<usize>> = Vec::with_capacity(dims);
    for _ in 0..dims {
        let mut perm: Vec<usize> = (0..count).collect();
        perm.shuffle(rng);
        strata.push(perm);
    }
    // Normalized target coordinates per sample.
    let inv_sizes: Vec<f64> = space
        .params()
        .iter()
        .map(|p| 1.0 / p.len().max(1) as f64)
        .collect();
    let mut picked = Vec::with_capacity(count);
    #[allow(clippy::needless_range_loop)] // `s` selects one stratum *per dimension*
    for s in 0..count {
        let target: Vec<f64> = (0..dims)
            .map(|d| {
                let stratum = strata[d][s] as f64;
                let jitter: f64 = rng.gen_range(0.0..1.0);
                (stratum + jitter) / count as f64 // in [0, 1)
            })
            .collect();

        // Snap to the nearest valid configuration by normalized value code.
        let mut best = ConfigId::from_index(0);
        let mut best_dist = f64::INFINITY;
        for id in space.ids() {
            let codes = space.codes_of(id).expect("valid id");
            let mut dist = 0.0;
            for d in 0..dims {
                let diff = codes[d] as f64 * inv_sizes[d] - target[d];
                dist += diff * diff;
            }
            if dist < best_dist {
                best_dist = dist;
                best = id;
            }
        }
        picked.push(best);
    }
    picked.sort_unstable();
    picked.dedup();
    picked
}

/// Summary of how well a set of samples covers each parameter's range,
/// reported as the fraction of distinct occurring values hit per parameter.
/// Used to verify the stratification benefit of LHS over naive sampling.
pub fn coverage_per_parameter(space: &SearchSpace, samples: &[ConfigId]) -> Vec<f64> {
    let occurring = space.occurring_values();
    (0..space.num_params())
        .map(|d| {
            let total = occurring[d].len().max(1);
            let mut seen = std::collections::HashSet::new();
            for &id in samples {
                if let Some(codes) = space.codes_of(id) {
                    seen.insert(codes[d]);
                }
            }
            seen.len() as f64 / total as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::TunableParameter;
    use at_csp::value::int_values;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn grid_space(k: i64) -> SearchSpace {
        let vals: Vec<i64> = (1..=k).collect();
        let params = vec![
            TunableParameter::ints("x", vals.clone()),
            TunableParameter::ints("y", vals.clone()),
        ];
        let mut configs = Vec::new();
        for &x in &vals {
            for &y in &vals {
                configs.push(int_values([x, y]));
            }
        }
        SearchSpace::from_configs("grid", params, configs).unwrap()
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let s = grid_space(8);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let samples = sample_indices(&s, 20, &mut rng);
        assert_eq!(samples.len(), 20);
        let mut dedup = samples.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 20);
        assert!(samples.iter().all(|&i| i.index() < s.len()));
    }

    #[test]
    fn sample_more_than_space_returns_everything() {
        let s = grid_space(3);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let samples = sample_indices(&s, 100, &mut rng);
        assert_eq!(samples.len(), 9);
        let mut all: Vec<usize> = samples.iter().map(|id| id.index()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let s = grid_space(16);
        let a = sample_indices(&s, 40, &mut ChaCha8Rng::seed_from_u64(9));
        let b = sample_indices(&s, 40, &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(a, b);
        let c = sample_indices(&s, 40, &mut ChaCha8Rng::seed_from_u64(10));
        assert_ne!(a, c, "different seeds should draw different samples");
    }

    #[test]
    fn sampling_covers_the_whole_id_range() {
        // every id must be reachable, including the tail of the range
        let s = grid_space(8); // 64 configurations
        let mut seen = vec![false; s.len()];
        for seed in 0..200 {
            for id in sample_indices(&s, 4, &mut ChaCha8Rng::seed_from_u64(seed)) {
                seen[id.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some ids were never drawn");
    }

    #[test]
    fn lhs_samples_are_valid_and_distinct() {
        let s = grid_space(10);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let samples = latin_hypercube_sample(&s, 10, &mut rng);
        assert!(!samples.is_empty());
        assert!(samples.len() <= 10);
        assert!(samples.iter().all(|&i| i.index() < s.len()));
    }

    #[test]
    fn lhs_covers_parameter_ranges_better_than_a_single_stratum() {
        let s = grid_space(10);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let samples = latin_hypercube_sample(&s, 10, &mut rng);
        let coverage = coverage_per_parameter(&s, &samples);
        // with 10 strata over 10 values, each dimension should hit a good
        // spread of values (well above a clustered sample's coverage)
        for c in coverage {
            assert!(c >= 0.5, "coverage {c}");
        }
    }

    #[test]
    fn empty_space_and_zero_count() {
        let s = SearchSpace::from_configs("empty", vec![TunableParameter::ints("x", [1])], vec![])
            .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        assert!(latin_hypercube_sample(&s, 5, &mut rng).is_empty());
        let s2 = grid_space(3);
        assert!(latin_hypercube_sample(&s2, 0, &mut rng).is_empty());
    }
}
