//! Search space specifications: tunable parameters plus restrictions.

use at_csp::{CspError, CspResult, Problem};
use at_expr::{parse_restriction, parse_restriction_generic};

use crate::param::TunableParameter;
use crate::restriction::Restriction;

/// How restriction strings are lowered to CSP constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RestrictionLowering {
    /// Full parsing pipeline: constant folding, decomposition into
    /// minimal-scope conjuncts and specific-constraint recognition
    /// (the paper's optimized path).
    #[default]
    Optimized,
    /// One compiled function constraint per restriction string, no
    /// decomposition or recognition (the unoptimized baseline path).
    Generic,
}

/// The definition of a constrained auto-tuning search space.
#[derive(Debug, Clone, Default)]
pub struct SearchSpaceSpec {
    /// A short name for reports.
    pub name: String,
    /// The tunable parameters, in declaration order.
    pub params: Vec<TunableParameter>,
    /// The restrictions.
    pub restrictions: Vec<Restriction>,
}

impl SearchSpaceSpec {
    /// Create an empty specification.
    pub fn new(name: impl Into<String>) -> Self {
        SearchSpaceSpec {
            name: name.into(),
            params: Vec::new(),
            restrictions: Vec::new(),
        }
    }

    /// Add a tunable parameter (builder style).
    pub fn with_param(mut self, param: TunableParameter) -> Self {
        self.params.push(param);
        self
    }

    /// Add a restriction (builder style).
    pub fn with_restriction(mut self, restriction: Restriction) -> Self {
        self.restrictions.push(restriction);
        self
    }

    /// Add an expression restriction (builder style).
    pub fn with_expr(self, source: &str) -> Self {
        self.with_restriction(Restriction::expr(source))
    }

    /// Add a tunable parameter.
    pub fn add_param(&mut self, param: TunableParameter) -> &mut Self {
        self.params.push(param);
        self
    }

    /// Add a restriction.
    pub fn add_restriction(&mut self, restriction: Restriction) -> &mut Self {
        self.restrictions.push(restriction);
        self
    }

    /// Number of tunable parameters (dimensions).
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Number of restrictions as written by the user.
    pub fn num_restrictions(&self) -> usize {
        self.restrictions.len()
    }

    /// The Cartesian product size of the unconstrained space.
    pub fn cartesian_size(&self) -> u128 {
        self.params
            .iter()
            .map(|p| p.len() as u128)
            .fold(1, |a, b| a.saturating_mul(b))
    }

    /// Position of a parameter by name.
    pub fn param_index(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p.name() == name)
    }

    /// Lower the specification to a CSP [`Problem`].
    ///
    /// Expression restrictions are parsed with the selected lowering; closure
    /// and specific restrictions are attached directly. Restrictions that
    /// fold to a constant `False` are represented by a constraint that is
    /// always false over the first parameter so every solver agrees the space
    /// is empty.
    pub fn to_problem(&self, lowering: RestrictionLowering) -> CspResult<Problem> {
        let mut problem = Problem::new();
        for p in &self.params {
            problem.add_variable(p.name(), p.values().to_vec())?;
        }
        for restriction in &self.restrictions {
            match restriction {
                Restriction::Expression(source) => {
                    let parsed = match lowering {
                        RestrictionLowering::Optimized => parse_restriction(source),
                        RestrictionLowering::Generic => parse_restriction_generic(source),
                    }
                    .map_err(|e| CspError::Solver(format!("failed to parse `{source}`: {e}")))?;
                    if parsed.always_false {
                        let first = self
                            .params
                            .first()
                            .ok_or_else(|| CspError::Solver("empty specification".into()))?;
                        problem.add_constraint(
                            at_csp::constraints::FunctionConstraint::with_label(
                                |_| false,
                                format!("always false: {source}"),
                            ),
                            &[first.name()],
                        )?;
                        continue;
                    }
                    for c in parsed.constraints {
                        let scope: Vec<&str> = c.scope.iter().map(|s| s.as_str()).collect();
                        let ids = problem.resolve_scope(&scope)?;
                        problem.add_constraint_scoped(c.constraint, ids)?;
                    }
                }
                other => {
                    let (constraint, scope) = other
                        .as_function_constraint()
                        .expect("non-expression restrictions lower directly");
                    let scope: Vec<&str> = scope.iter().map(|s| s.as_str()).collect();
                    let ids = problem.resolve_scope(&scope)?;
                    problem.add_constraint_scoped(constraint, ids)?;
                }
            }
        }
        Ok(problem)
    }

    /// Lower the specification like [`Self::to_problem`], optionally
    /// running analyzer-driven domain pre-pruning on the result.
    ///
    /// With `prune` set, [`at_csp::preprune_domains`] removes every
    /// domain value that provably appears in no solution (generalized
    /// arc consistency) before any solver runs. The solution set — and
    /// therefore the constructed space — is unchanged; only the amount
    /// of work the solve performs shrinks. Unsatisfiable problems are
    /// left untouched so every method still discovers emptiness itself.
    pub fn to_problem_with(
        &self,
        lowering: RestrictionLowering,
        prune: bool,
    ) -> CspResult<Problem> {
        let mut problem = self.to_problem(lowering)?;
        if prune {
            at_csp::preprune_domains(&mut problem)?;
        }
        Ok(problem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_csp::prelude::*;

    fn spec() -> SearchSpaceSpec {
        SearchSpaceSpec::new("demo")
            .with_param(TunableParameter::pow2("block_size_x", 8))
            .with_param(TunableParameter::pow2("block_size_y", 6))
            .with_param(TunableParameter::switch("sh_power"))
            .with_expr("32 <= block_size_x*block_size_y <= 1024")
            .with_restriction(Restriction::func(
                &["sh_power", "block_size_x"],
                "sh_power == 0 or block_size_x >= 4",
                |v| v[0].as_i64() == Some(0) || v[1].as_i64().unwrap() >= 4,
            ))
    }

    #[test]
    fn spec_accessors() {
        let s = spec();
        assert_eq!(s.num_params(), 3);
        assert_eq!(s.num_restrictions(), 2);
        assert_eq!(s.cartesian_size(), 8 * 6 * 2);
        assert_eq!(s.param_index("sh_power"), Some(2));
        assert_eq!(s.param_index("nope"), None);
    }

    #[test]
    fn optimized_lowering_produces_more_specific_constraints() {
        let s = spec();
        let optimized = s.to_problem(RestrictionLowering::Optimized).unwrap();
        let generic = s.to_problem(RestrictionLowering::Generic).unwrap();
        // optimized: MinProduct + MaxProduct + function = 3; generic: 2 functions
        assert_eq!(optimized.num_constraints(), 3);
        assert_eq!(generic.num_constraints(), 2);
    }

    #[test]
    fn both_lowerings_yield_identical_spaces() {
        let s = spec();
        let optimized = s.to_problem(RestrictionLowering::Optimized).unwrap();
        let generic = s.to_problem(RestrictionLowering::Generic).unwrap();
        let a = OptimizedSolver::new().solve(&optimized).unwrap();
        let b = BruteForceSolver::new().solve(&generic).unwrap();
        assert!(a.solutions.same_solutions(&b.solutions));
    }

    #[test]
    fn always_false_restriction_empties_space() {
        let s = SearchSpaceSpec::new("empty")
            .with_param(TunableParameter::ints("x", [1, 2, 3]))
            .with_expr("1 > 2");
        let p = s.to_problem(RestrictionLowering::Optimized).unwrap();
        let r = OptimizedSolver::new().solve(&p).unwrap();
        assert!(r.solutions.is_empty());
    }

    #[test]
    fn bad_expression_reports_error() {
        let s = SearchSpaceSpec::new("bad")
            .with_param(TunableParameter::ints("x", [1]))
            .with_expr("x >");
        assert!(s.to_problem(RestrictionLowering::Optimized).is_err());
    }

    #[test]
    fn unknown_parameter_in_restriction_reports_error() {
        let s = SearchSpaceSpec::new("bad")
            .with_param(TunableParameter::ints("x", [1, 2]))
            .with_expr("x * zz <= 4");
        assert!(s.to_problem(RestrictionLowering::Optimized).is_err());
    }
}
