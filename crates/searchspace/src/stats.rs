//! Search space characteristics — the columns of Table 2 of the paper.

use at_csp::expected_brute_force_evaluations;

use crate::space::SearchSpace;
use crate::spec::{RestrictionLowering, SearchSpaceSpec};

/// The characteristics reported in Table 2 for each real-world search space.
#[derive(Debug, Clone, PartialEq)]
pub struct SpaceCharacteristics {
    /// Space name.
    pub name: String,
    /// Cartesian product size before constraints.
    pub cartesian_size: u128,
    /// Number of valid configurations ("constraint size" in Table 2).
    pub num_valid: u128,
    /// Number of tunable parameters (dimensions).
    pub num_params: usize,
    /// Number of constraints (after the user-facing restrictions are lowered
    /// with the *generic* lowering, i.e. as the user wrote them).
    pub num_constraints: usize,
    /// Average number of distinct parameters per constraint.
    pub avg_params_per_constraint: f64,
    /// Smallest number of values over all parameters.
    pub min_values_per_param: usize,
    /// Largest number of values over all parameters.
    pub max_values_per_param: usize,
    /// Percentage of the Cartesian size that is valid.
    pub percent_valid: f64,
    /// Average number of constraint evaluations a brute-force construction
    /// needs (the paper's closed-form estimate).
    pub avg_constraint_evaluations: f64,
}

impl SpaceCharacteristics {
    /// Compute the characteristics from a specification and its resolved space.
    pub fn compute(spec: &SearchSpaceSpec, space: &SearchSpace) -> Self {
        // Constraint structure as the user wrote it (generic lowering).
        let (num_constraints, avg_params_per_constraint) =
            match spec.to_problem(RestrictionLowering::Generic) {
                Ok(problem) => {
                    let n = problem.num_constraints();
                    let avg = if n == 0 {
                        0.0
                    } else {
                        problem
                            .constraints()
                            .iter()
                            .map(|e| {
                                let mut distinct = e.scope.clone();
                                distinct.sort_unstable();
                                distinct.dedup();
                                distinct.len() as f64
                            })
                            .sum::<f64>()
                            / n as f64
                    };
                    (n, avg)
                }
                Err(_) => (spec.num_restrictions(), 0.0),
            };
        let cartesian_size = spec.cartesian_size();
        let num_valid = space.len() as u128;
        let invalid = cartesian_size.saturating_sub(num_valid);
        let percent_valid = if cartesian_size == 0 {
            0.0
        } else {
            num_valid as f64 / cartesian_size as f64 * 100.0
        };
        let (min_values, max_values) = spec
            .params
            .iter()
            .map(|p| p.len())
            .fold((usize::MAX, 0usize), |(lo, hi), v| (lo.min(v), hi.max(v)));
        SpaceCharacteristics {
            name: spec.name.clone(),
            cartesian_size,
            num_valid,
            num_params: spec.num_params(),
            num_constraints,
            avg_params_per_constraint,
            min_values_per_param: if spec.params.is_empty() {
                0
            } else {
                min_values
            },
            max_values_per_param: max_values,
            percent_valid,
            avg_constraint_evaluations: expected_brute_force_evaluations(
                invalid,
                num_valid,
                num_constraints,
            ),
        }
    }

    /// Render as one row of a Table 2-style report.
    pub fn table_row(&self) -> String {
        format!(
            "{:<16} {:>14} {:>12} {:>6} {:>6} {:>8.3} {:>5}-{:<5} {:>8.3} {:>16.0}",
            self.name,
            self.cartesian_size,
            self.num_valid,
            self.num_params,
            self.num_constraints,
            self.avg_params_per_constraint,
            self.min_values_per_param,
            self.max_values_per_param,
            self.percent_valid,
            self.avg_constraint_evaluations,
        )
    }

    /// Header matching [`SpaceCharacteristics::table_row`].
    pub fn table_header() -> String {
        format!(
            "{:<16} {:>14} {:>12} {:>6} {:>6} {:>8} {:>11} {:>8} {:>16}",
            "Name",
            "Cartesian",
            "Valid",
            "Params",
            "Constr",
            "AvgVars",
            "Values",
            "%valid",
            "AvgEvals"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_search_space, Method};
    use crate::param::TunableParameter;

    fn spec() -> SearchSpaceSpec {
        SearchSpaceSpec::new("demo")
            .with_param(TunableParameter::pow2("x", 6))
            .with_param(TunableParameter::pow2("y", 6))
            .with_param(TunableParameter::ints("z", [1, 2, 3]))
            .with_expr("32 <= x*y <= 256")
            .with_expr("z <= 2")
    }

    #[test]
    fn characteristics_are_consistent() {
        let spec = spec();
        let (space, _) = build_search_space(&spec, Method::Optimized).unwrap();
        let c = SpaceCharacteristics::compute(&spec, &space);
        assert_eq!(c.cartesian_size, 6 * 6 * 3);
        assert_eq!(c.num_params, 3);
        assert_eq!(c.num_constraints, 2);
        assert_eq!(c.num_valid, space.len() as u128);
        assert!((c.percent_valid - space.len() as f64 / 108.0 * 100.0).abs() < 1e-9);
        assert_eq!(c.min_values_per_param, 3);
        assert_eq!(c.max_values_per_param, 6);
        assert!(c.avg_constraint_evaluations > c.num_valid as f64);
        // each constraint references 2 and 1 distinct parameters respectively
        assert!((c.avg_params_per_constraint - 1.5).abs() < 1e-9);
    }

    #[test]
    fn table_rendering() {
        let spec = spec();
        let (space, _) = build_search_space(&spec, Method::Optimized).unwrap();
        let c = SpaceCharacteristics::compute(&spec, &space);
        let header = SpaceCharacteristics::table_header();
        let row = c.table_row();
        assert!(header.contains("Cartesian"));
        assert!(row.contains("demo"));
    }
}
