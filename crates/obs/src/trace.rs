//! Chrome trace-event JSON export.
//!
//! [`chrome_trace`] serializes drained [`SpanRecord`]s into the
//! trace-event *array* format that `about://tracing` and
//! [Perfetto](https://ui.perfetto.dev) load directly: a JSON array of
//! event objects. Spans become complete events (`"ph":"X"` — start +
//! duration in one object, so no begin/end balancing is needed);
//! instant events become `"ph":"i"` with thread scope. Two metadata
//! (`"ph":"M"`) events name the process and each recorded thread so
//! the Perfetto track labels read `atss` / `thread 0..n` instead of
//! raw ids.
//!
//! Timestamps and durations are microseconds (the trace-event unit),
//! written as decimals with nanosecond precision so adjacent solver
//! chunks stay ordered.

use crate::json::Json;
use crate::recorder::{SpanKind, SpanRecord};

/// Serialize records (as returned by [`crate::drain`]) into a Chrome
/// trace-event JSON array. The result is self-contained and loadable
/// by Perfetto / `about://tracing` as-is.
pub fn chrome_trace(records: &[SpanRecord]) -> String {
    let mut events: Vec<Json> = Vec::with_capacity(records.len() + 8);

    let mut meta = Json::obj();
    meta.push("name", Json::Str("process_name".to_string()));
    meta.push("ph", Json::Str("M".to_string()));
    meta.push("pid", Json::U64(1));
    meta.push("tid", Json::U64(0));
    let mut args = Json::obj();
    args.push("name", Json::Str("atss".to_string()));
    meta.push("args", args);
    events.push(meta);

    let mut threads: Vec<u32> = records.iter().map(|r| r.thread).collect();
    threads.sort_unstable();
    threads.dedup();
    for t in threads {
        let mut meta = Json::obj();
        meta.push("name", Json::Str("thread_name".to_string()));
        meta.push("ph", Json::Str("M".to_string()));
        meta.push("pid", Json::U64(1));
        meta.push("tid", Json::U64(u64::from(t)));
        let mut args = Json::obj();
        args.push("name", Json::Str(format!("thread {t}")));
        meta.push("args", args);
        events.push(meta);
    }

    for r in records {
        events.push(record_event(r));
    }
    Json::Arr(events).to_string()
}

/// One record as a trace event object.
fn record_event(r: &SpanRecord) -> Json {
    let mut ev = Json::obj();
    ev.push("name", Json::Str(r.name.to_string()));
    ev.push("cat", Json::Str(r.cat.to_string()));
    match r.kind {
        SpanKind::Span => {
            ev.push("ph", Json::Str("X".to_string()));
        }
        SpanKind::Event => {
            ev.push("ph", Json::Str("i".to_string()));
            ev.push("s", Json::Str("t".to_string()));
        }
    }
    ev.push("ts", Json::F64(r.start_ns as f64 / 1_000.0));
    if r.kind == SpanKind::Span {
        ev.push("dur", Json::F64(r.dur_ns as f64 / 1_000.0));
    }
    ev.push("pid", Json::U64(1));
    ev.push("tid", Json::U64(u64::from(r.thread)));
    if r.num_args > 0 {
        let mut args = Json::obj();
        for (k, v) in r.args() {
            args.push(k, Json::U64(*v));
        }
        ev.push("args", args);
    }
    ev
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::MAX_ARGS;

    fn record(
        name: &'static str,
        thread: u32,
        start_ns: u64,
        dur_ns: u64,
        kind: SpanKind,
    ) -> SpanRecord {
        SpanRecord {
            name,
            cat: "test",
            thread,
            start_ns,
            dur_ns,
            kind,
            args: [("", 0); MAX_ARGS],
            num_args: 0,
        }
    }

    #[test]
    fn trace_is_an_array_with_metadata_and_one_event_per_record() {
        let records = vec![
            record("a", 0, 1_000, 2_000, SpanKind::Span),
            record("b", 1, 1_500, 0, SpanKind::Event),
        ];
        let text = chrome_trace(&records);
        let v: serde_json::Value = serde_json::from_str(&text).unwrap();
        let events = v.as_array().unwrap();
        // process_name + 2 thread_name + 2 records
        assert_eq!(events.len(), 5);
        let span = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("a"))
            .unwrap();
        assert_eq!(span.get("ph").and_then(|p| p.as_str()), Some("X"));
        assert_eq!(span.get("ts").and_then(|t| t.as_f64()), Some(1.0));
        assert_eq!(span.get("dur").and_then(|d| d.as_f64()), Some(2.0));
        assert_eq!(span.get("tid").and_then(|t| t.as_i64()), Some(0));
        let instant = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("b"))
            .unwrap();
        assert_eq!(instant.get("ph").and_then(|p| p.as_str()), Some("i"));
        assert_eq!(instant.get("s").and_then(|s| s.as_str()), Some("t"));
        assert!(instant.get("dur").is_none());
    }

    #[test]
    fn span_args_are_exported_as_an_args_object() {
        let mut r = record("solve", 2, 10, 20, SpanKind::Span);
        r.args[0] = ("rows", 128);
        r.num_args = 1;
        let text = chrome_trace(&[r]);
        let v: serde_json::Value = serde_json::from_str(&text).unwrap();
        let ev = v
            .as_array()
            .unwrap()
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("solve"))
            .unwrap();
        let args = ev.get("args").unwrap();
        assert_eq!(args.get("rows").and_then(|r| r.as_i64()), Some(128));
    }

    #[test]
    fn empty_record_set_still_yields_a_loadable_array() {
        let text = chrome_trace(&[]);
        let v: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(v.as_array().unwrap().len(), 1); // just process_name
    }
}
