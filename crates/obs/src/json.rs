//! A tiny hand-rolled JSON value + writer, in the house style of the
//! CLI's envelope emitters (`cache verify --json`, `tune --json`): no
//! serde, stable key order (insertion order), one-line output.
//!
//! The trace exporter and the CLI's `atss.metrics.v1` envelope are
//! both built on this. Floats are written with enough precision to
//! round-trip microsecond timestamps; non-finite floats become `null`
//! (matching what strict JSON parsers accept).

use std::fmt::Write as _;

/// A JSON value with insertion-ordered objects.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, to be filled with [`Json::push`].
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a key/value pair (builder-style; panics if not an object,
    /// which is always a programming error at an instrumentation site).
    pub fn push(&mut self, key: &str, value: Json) -> &mut Json {
        match self {
            Json::Obj(entries) => entries.push((key.to_string(), value)),
            _ => panic!("Json::push on a non-object"),
        }
        self
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Serializes to a compact one-line JSON string (so `to_string()` renders
/// the value).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Write `s` as a JSON string literal (quotes, backslashes, and control
/// characters escaped).
fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_serialize_compactly_in_insertion_order() {
        let mut obj = Json::obj();
        obj.push("b", Json::U64(2));
        obj.push(
            "a",
            Json::Arr(vec![Json::Null, Json::Bool(true), Json::F64(1.5)]),
        );
        obj.push("s", Json::Str("x\"y\n".to_string()));
        assert_eq!(
            obj.to_string(),
            r#"{"b":2,"a":[null,true,1.5],"s":"x\"y\n"}"#
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::F64(f64::NAN).to_string(), "null");
        assert_eq!(Json::F64(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(Json::Str("\u{1}".to_string()).to_string(), "\"\\u0001\"");
    }

    #[test]
    fn output_parses_with_the_serde_json_shim() {
        let mut obj = Json::obj();
        obj.push("n", Json::I64(-3));
        obj.push("f", Json::F64(2.25));
        obj.push("list", Json::Arr(vec![Json::U64(1), Json::U64(2)]));
        let v: serde_json::Value = serde_json::from_str(&obj.to_string()).unwrap();
        assert_eq!(v.get("n").and_then(|n| n.as_i64()), Some(-3));
        assert_eq!(v.get("f").and_then(|f| f.as_f64()), Some(2.25));
        assert_eq!(
            v.get("list").and_then(|l| l.as_array()).map(|l| l.len()),
            Some(2)
        );
    }
}
