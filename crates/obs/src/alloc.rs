//! The counting global allocator: a [`System`]-backed allocator that
//! tracks the high-water mark of live heap bytes.
//!
//! Promoted out of `benches/construction.rs` so any binary — the CLI
//! for `construct --metrics`, the benches, a test harness — can install
//! it and report the peak *transient* allocation of a pipeline phase:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: at_obs::alloc::CountingAllocator = at_obs::alloc::CountingAllocator;
//!
//! let baseline = at_obs::alloc::reset_peak();
//! let space = build(...);
//! let peak = at_obs::alloc::peak_since(baseline);
//! ```
//!
//! The counters are relaxed atomics updated on every alloc/dealloc —
//! a few nanoseconds per allocation, the same cost the benches have
//! always paid. Binaries that do not install the allocator still link
//! fine; the counters just stay at zero ([`installed`] reports which).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Live heap bytes under the counting allocator.
static LIVE: AtomicUsize = AtomicUsize::new(0);
/// High-water mark of [`LIVE`] since the last [`reset_peak`].
static PEAK: AtomicUsize = AtomicUsize::new(0);
/// Set on the first allocation routed through [`CountingAllocator`].
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// A [`System`]-backed allocator that tracks the high-water mark of
/// live heap bytes, so one instrumented run can report the peak
/// transient footprint of a construction. Install with
/// `#[global_allocator]`.
pub struct CountingAllocator;

// SAFETY: delegates every allocation verbatim to `System`; the counters
// are monotonic atomics with no other side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: `layout` is passed through unchanged from our caller,
        // which guarantees the `GlobalAlloc::alloc` contract.
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            INSTALLED.store(true, Ordering::Relaxed);
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        ptr
    }

    // SAFETY: `ptr`/`layout` were produced by the matching `alloc`
    // above, which delegated to `System`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: see the fn-level contract pass-through above.
        unsafe { System.dealloc(ptr, layout) };
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    // SAFETY: same contract pass-through as `alloc`/`dealloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: see the fn-level contract pass-through above.
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            if new_size >= layout.size() {
                let grown = new_size - layout.size();
                let live = LIVE.fetch_add(grown, Ordering::Relaxed) + grown;
                PEAK.fetch_max(live, Ordering::Relaxed);
            } else {
                LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        new_ptr
    }
}

/// Whether a [`CountingAllocator`] has served at least one allocation
/// in this process (i.e. it is actually installed as the global
/// allocator). When false, every probe below reports zero.
pub fn installed() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// Current live heap bytes.
pub fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// Current high-water mark of live heap bytes.
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Reset the high-water mark to the current live size and return that
/// baseline; pair with [`peak_since`] around the region to profile.
pub fn reset_peak() -> usize {
    let baseline = LIVE.load(Ordering::Relaxed);
    PEAK.store(baseline, Ordering::Relaxed);
    baseline
}

/// Peak transient bytes above `baseline` (from [`reset_peak`]) seen
/// since the reset.
pub fn peak_since(baseline: usize) -> usize {
    PEAK.load(Ordering::Relaxed).saturating_sub(baseline)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not install the allocator, so the counters
    // stay untouched — which is itself the documented behavior.
    #[test]
    fn probes_report_zero_when_not_installed() {
        assert!(!installed());
        assert_eq!(live_bytes(), 0);
        let baseline = reset_peak();
        let _v: Vec<u64> = (0..1024).collect();
        assert_eq!(peak_since(baseline), 0);
    }
}
