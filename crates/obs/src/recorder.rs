//! The span/event recorder: a process-wide, mutex-striped buffer of
//! timestamped records.
//!
//! Design notes (mirroring the `ShardedEvalCache` striping in
//! `at_tuner`): records are pushed into one of 16
//! mutex-protected vectors selected by the recording thread's ordinal,
//! so concurrent solver chunks and eval workers almost never contend on
//! the same lock. Thread ordinals are small dense integers (0, 1, 2,
//! ...) assigned lazily on a thread's first record — they become the
//! `tid` tracks of the exported Chrome trace.
//!
//! All timestamps are nanoseconds since a process-wide epoch
//! ([`std::time::Instant`] captured on first use), so `ts` values from
//! different threads are directly comparable and monotone per thread.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Number of mutex stripes the record buffer is sharded over. Matches
/// the eval cache's shard count: enough that per-thread pushes rarely
/// collide, small enough that draining stays trivial.
const STRIPE_COUNT: usize = 16;

/// Maximum number of `u64` key/value args carried inline by one record.
/// Four covers every instrumentation site in the pipeline; extra args
/// are silently dropped rather than allocating.
pub const MAX_ARGS: usize = 4;

/// Whether the recorder is currently capturing. Off by default; the
/// single relaxed load of this flag is the entire disabled-path cost.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The process-wide epoch all timestamps are relative to.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Dense thread ordinals, assigned on a thread's first record.
static NEXT_ORDINAL: AtomicU32 = AtomicU32::new(0);

thread_local! {
    /// This thread's ordinal, or `u32::MAX` if not yet assigned.
    static ORDINAL: Cell<u32> = const { Cell::new(u32::MAX) };
}

/// The striped record buffers.
static STRIPES: [Mutex<Vec<SpanRecord>>; STRIPE_COUNT] =
    [const { Mutex::new(Vec::new()) }; STRIPE_COUNT];

/// What a record represents in the exported timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A duration: maps to a Chrome complete (`"ph":"X"`) event.
    Span,
    /// A point in time: maps to a Chrome instant (`"ph":"i"`) event.
    Event,
}

/// One recorded span or event.
#[derive(Debug, Clone, Copy)]
pub struct SpanRecord {
    /// Static site name (e.g. `"solve"`, `"store-flush"`).
    pub name: &'static str,
    /// Static category, grouping sites by pipeline stage (e.g.
    /// `"construct"`, `"store"`, `"tune"`).
    pub cat: &'static str,
    /// Ordinal of the recording thread (the trace `tid`).
    pub thread: u32,
    /// Start, in nanoseconds since the process epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for events).
    pub dur_ns: u64,
    /// Span vs instant event.
    pub kind: SpanKind,
    /// Inline `u64` key/value args; only the first `num_args` are set.
    pub args: [(&'static str, u64); MAX_ARGS],
    /// How many entries of `args` are populated.
    pub num_args: usize,
}

impl SpanRecord {
    /// The populated args as a slice.
    pub fn args(&self) -> &[(&'static str, u64)] {
        &self.args[..self.num_args]
    }

    /// Look up one arg by key.
    pub fn arg(&self, key: &str) -> Option<u64> {
        self.args().iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }
}

/// Is the recorder currently capturing?
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Start capturing. Also pins the process epoch so the first span does
/// not pay the `OnceLock` initialization inside a timed region.
pub fn enable() {
    EPOCH.get_or_init(Instant::now);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Stop capturing. Already-buffered records are kept until [`drain`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Nanoseconds since the process epoch.
#[inline]
fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// This thread's dense ordinal, assigning one on first use.
fn thread_ordinal() -> u32 {
    ORDINAL.with(|cell| {
        let mut ord = cell.get();
        if ord == u32::MAX {
            ord = NEXT_ORDINAL.fetch_add(1, Ordering::Relaxed);
            cell.set(ord);
        }
        ord
    })
}

/// Push one finished record into this thread's stripe.
fn push(record: SpanRecord) {
    let stripe = record.thread as usize % STRIPE_COUNT;
    // A poisoned stripe means a panic mid-push elsewhere; observability
    // must never turn that into a second panic, so take the data anyway.
    let mut buf = match STRIPES[stripe].lock() {
        Ok(buf) => buf,
        Err(poisoned) => poisoned.into_inner(),
    };
    buf.push(record);
}

/// An in-flight span. Records itself on drop; every method is a no-op
/// when the guard was created while the recorder was disabled.
///
/// Create one with [`span`]; attach args with [`SpanGuard::arg`]:
///
/// ```
/// let _span = at_obs::span("solve", "construct").arg("nodes", 17);
/// ```
#[must_use = "a span records the duration until it is dropped"]
pub struct SpanGuard {
    /// `None` when the recorder was disabled at creation — the entire
    /// guard is then inert (no clock read, no buffer touch).
    live: Option<LiveSpan>,
}

struct LiveSpan {
    name: &'static str,
    cat: &'static str,
    start_ns: u64,
    args: [(&'static str, u64); MAX_ARGS],
    num_args: usize,
}

impl SpanGuard {
    /// Attach a `u64` arg (builder-style). At most [`MAX_ARGS`] args
    /// are kept; extras are dropped. No-op when disabled.
    pub fn arg(mut self, key: &'static str, value: u64) -> Self {
        if let Some(live) = self.live.as_mut() {
            if live.num_args < MAX_ARGS {
                live.args[live.num_args] = (key, value);
                live.num_args += 1;
            }
        }
        self
    }

    /// Attach an arg computed only when the recorder is enabled (for
    /// values that are not free to compute, e.g. a length).
    pub fn arg_with(mut self, key: &'static str, value: impl FnOnce() -> u64) -> Self {
        if let Some(live) = self.live.as_mut() {
            if live.num_args < MAX_ARGS {
                live.args[live.num_args] = (key, value());
                live.num_args += 1;
            }
        }
        self
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            let end = now_ns();
            push(SpanRecord {
                name: live.name,
                cat: live.cat,
                thread: thread_ordinal(),
                start_ns: live.start_ns,
                dur_ns: end.saturating_sub(live.start_ns),
                kind: SpanKind::Span,
                args: live.args,
                num_args: live.num_args,
            });
        }
    }
}

/// Open a span. The returned guard records {name, cat, start, duration,
/// args} into the buffer when dropped. When the recorder is disabled
/// this is one relaxed atomic load and an inert guard.
#[inline]
pub fn span(name: &'static str, cat: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { live: None };
    }
    SpanGuard {
        live: Some(LiveSpan {
            name,
            cat,
            start_ns: now_ns(),
            args: [("", 0); MAX_ARGS],
            num_args: 0,
        }),
    }
}

/// Record an instant event (a point in time, e.g. a cache hit). When
/// the recorder is disabled this is one relaxed atomic load.
#[inline]
pub fn event(name: &'static str, cat: &'static str, args: &[(&'static str, u64)]) {
    if !enabled() {
        return;
    }
    let mut inline = [("", 0u64); MAX_ARGS];
    let num_args = args.len().min(MAX_ARGS);
    inline[..num_args].copy_from_slice(&args[..num_args]);
    push(SpanRecord {
        name,
        cat,
        thread: thread_ordinal(),
        start_ns: now_ns(),
        dur_ns: 0,
        kind: SpanKind::Event,
        args: inline,
        num_args,
    });
}

/// Take every buffered record, sorted by start time (ties broken by
/// thread ordinal). The buffers are left empty; recording may continue.
pub fn drain() -> Vec<SpanRecord> {
    let mut all = Vec::new();
    for stripe in &STRIPES {
        let mut buf = match stripe.lock() {
            Ok(buf) => buf,
            Err(poisoned) => poisoned.into_inner(),
        };
        all.append(&mut buf);
    }
    all.sort_by_key(|r| (r.start_ns, r.thread));
    all
}

/// Aggregated wall-clock per (category, name) site — the phase timers
/// of the `atss.metrics.v1` envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseTotal {
    /// The site's category.
    pub cat: &'static str,
    /// The site's name.
    pub name: &'static str,
    /// Number of spans/events recorded at the site.
    pub count: u64,
    /// Summed span duration in nanoseconds (0 for pure event sites).
    pub total_ns: u64,
    /// Longest single span at the site, in nanoseconds.
    pub max_ns: u64,
}

/// Aggregate drained records into per-site totals, ordered by first
/// appearance in the record stream (i.e. pipeline order when the input
/// came from [`drain`]).
pub fn phase_totals(records: &[SpanRecord]) -> Vec<PhaseTotal> {
    let mut totals: Vec<PhaseTotal> = Vec::new();
    for r in records {
        match totals
            .iter_mut()
            .find(|t| t.cat == r.cat && t.name == r.name)
        {
            Some(t) => {
                t.count += 1;
                t.total_ns += r.dur_ns;
                t.max_ns = t.max_ns.max(r.dur_ns);
            }
            None => totals.push(PhaseTotal {
                cat: r.cat,
                name: r.name,
                count: 1,
                total_ns: r.dur_ns,
                max_ns: r.dur_ns,
            }),
        }
    }
    totals
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The recorder is process-global; tests that enable it must not
    /// interleave, so they all run under this lock.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn exclusive() -> std::sync::MutexGuard<'static, ()> {
        let guard = match TEST_LOCK.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        disable();
        drain();
        guard
    }

    #[test]
    fn disabled_recorder_captures_nothing() {
        let _x = exclusive();
        {
            let _span = span("noop", "test").arg("k", 1);
        }
        event("noop-event", "test", &[]);
        assert!(drain().is_empty());
    }

    #[test]
    fn spans_record_name_cat_args_and_duration() {
        let _x = exclusive();
        enable();
        {
            let _span = span("work", "test").arg("rows", 10).arg("bytes", 40);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        event("tick", "test", &[("n", 7)]);
        disable();
        let records = drain();
        assert_eq!(records.len(), 2);
        let s = records.iter().find(|r| r.name == "work").unwrap();
        assert_eq!(s.cat, "test");
        assert_eq!(s.kind, SpanKind::Span);
        assert_eq!(s.arg("rows"), Some(10));
        assert_eq!(s.arg("bytes"), Some(40));
        assert!(s.dur_ns >= 1_000_000, "slept 1ms inside the span");
        let e = records.iter().find(|r| r.name == "tick").unwrap();
        assert_eq!(e.kind, SpanKind::Event);
        assert_eq!(e.dur_ns, 0);
        assert_eq!(e.arg("n"), Some(7));
    }

    #[test]
    fn args_past_the_inline_capacity_are_dropped() {
        let _x = exclusive();
        enable();
        {
            let _span = span("many", "test")
                .arg("a", 1)
                .arg("b", 2)
                .arg("c", 3)
                .arg("d", 4)
                .arg("e", 5);
        }
        disable();
        let records = drain();
        assert_eq!(records[0].num_args, MAX_ARGS);
        assert_eq!(records[0].arg("e"), None);
    }

    #[test]
    fn drain_sorts_across_threads_and_empties_buffers() {
        let _x = exclusive();
        enable();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..8 {
                        let _span = span("chunk", "test");
                    }
                });
            }
        });
        disable();
        let records = drain();
        assert_eq!(records.len(), 32);
        assert!(records.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
        assert!(drain().is_empty());
    }

    #[test]
    fn phase_totals_aggregate_per_site() {
        let _x = exclusive();
        enable();
        for _ in 0..3 {
            let _span = span("solve", "construct");
        }
        {
            let _span = span("encode", "construct");
        }
        disable();
        let totals = phase_totals(&drain());
        assert_eq!(totals.len(), 2);
        let solve = totals.iter().find(|t| t.name == "solve").unwrap();
        assert_eq!(solve.count, 3);
        assert!(solve.max_ns <= solve.total_ns);
    }

    #[test]
    fn arg_with_is_lazy_when_disabled() {
        let _x = exclusive();
        let _span = span("lazy", "test").arg_with("expensive", || panic!("must not run"));
    }
}
