//! `at_obs` — end-to-end tracing, unified metrics, and profiling hooks
//! for the construct → store → tune pipeline.
//!
//! The paper's core claim is about *where time and memory go* during
//! search-space construction; this crate is the instrumentation layer
//! that lets the repo answer that question on every run instead of ad
//! hoc. It provides:
//!
//! * [`recorder`] — a process-wide span/event recorder. Instrumented
//!   code calls [`span`]/[`event`]; the records land in mutex-striped
//!   per-thread buffers with monotonic [`std::time::Instant`]-based
//!   timestamps. A harness (the CLI, a test, a bench) calls
//!   [`enable`], runs the pipeline, then [`drain`]s the records.
//! * [`trace`] — a Chrome trace-event JSON exporter
//!   ([`trace::chrome_trace`]): the drained spans as an
//!   `about://tracing` / [Perfetto](https://ui.perfetto.dev)-loadable
//!   array of complete (`"ph":"X"`) events, one track per recorded
//!   thread.
//! * [`json`] — the tiny hand-rolled JSON value/writer the exporter is
//!   built on, reusable for other machine-facing envelopes (the CLI's
//!   `atss.metrics.v1` DTO is assembled with it).
//! * [`alloc`] — the counting global allocator (promoted from
//!   `benches/construction.rs`) so any binary that installs it can
//!   report peak transient heap bytes alongside the timeline.
//!
//! # The disabled-path cost contract
//!
//! The recorder starts **disabled** and instrumentation must be safe to
//! leave in hot paths permanently:
//!
//! * When disabled, [`span`] performs exactly one relaxed atomic load
//!   and returns a guard whose `Drop` is a no-op (no clock read, no
//!   allocation, no lock, no thread-local access). [`event`] is the
//!   same single load. This is the "compile-to-nothing" path: the
//!   branch is perfectly predicted and the cost is not measurable in
//!   any macro benchmark (`benches/obs.rs` asserts this).
//! * When enabled, a span costs two `Instant::now` reads plus one
//!   short striped-mutex push on drop — bounded, allocation-amortised,
//!   and still well under 5% of construction wall-clock on the paper
//!   workloads (`benches/obs.rs` asserts this too).
//!
//! # The zero-interference invariant
//!
//! Enabling the recorder must not change **any** observable output of
//! the pipeline: constructed spaces are byte-identical and tuning
//! trajectories are bit-identical with the recorder on or off. The
//! recorder only ever *reads* the clock and *writes* its own buffers —
//! it never touches RNG state, iteration order, thread counts, or any
//! data structure of the pipeline. `crates/cli/tests/proptest_obs.rs`
//! proves the invariant end-to-end under proptest.
//!
//! # Example
//!
//! ```
//! // An instrumented phase (library side):
//! fn solve_phase() {
//!     let _span = at_obs::span("solve", "construct").arg("nodes", 42);
//!     // ... work; the span records on drop ...
//! }
//!
//! // A harness (CLI side):
//! at_obs::enable();
//! solve_phase();
//! let spans = at_obs::drain();
//! at_obs::disable();
//! assert_eq!(spans.len(), 1);
//! let json = at_obs::trace::chrome_trace(&spans);
//! assert!(json.starts_with('['));
//! ```
#![deny(unsafe_op_in_unsafe_fn)]

pub mod alloc;
pub mod json;
pub mod recorder;
pub mod trace;

pub use recorder::{
    disable, drain, enable, enabled, event, phase_totals, span, PhaseTotal, SpanGuard, SpanKind,
    SpanRecord,
};
