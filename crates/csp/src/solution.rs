//! Solution sets: the fully resolved search space.
//!
//! The paper stresses output formats that are "close to the internal
//! representation" (Section 4.3.4): the solver produces a dense matrix of
//! values (one row per solution, columns in variable order) instead of one
//! dictionary per solution, avoiding expensive per-solution rearrangement.

use std::collections::HashSet;
use std::sync::Arc;

use crate::value::Value;

/// The set of all valid configurations found by a solver.
///
/// Rows are stored densely in variable order; the variable names are shared
/// so that name-keyed views can be produced on demand.
#[derive(Debug, Clone, Default)]
pub struct SolutionSet {
    names: Arc<[String]>,
    rows: Vec<Vec<Value>>,
}

impl SolutionSet {
    /// Create an empty set over the given variable names.
    pub fn new(names: Vec<String>) -> Self {
        SolutionSet {
            names: names.into(),
            rows: Vec::new(),
        }
    }

    /// Create from pre-computed rows.
    pub fn from_rows(names: Vec<String>, rows: Vec<Vec<Value>>) -> Self {
        SolutionSet {
            names: names.into(),
            rows,
        }
    }

    /// The variable names, in column order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of solutions.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no solutions.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a solution row (values in variable order).
    pub fn push(&mut self, row: Vec<Value>) {
        debug_assert_eq!(row.len(), self.names.len());
        self.rows.push(row);
    }

    /// The raw rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// A single row.
    pub fn row(&self, i: usize) -> &[Value] {
        &self.rows[i]
    }

    /// Iterate over rows.
    pub fn iter(&self) -> impl Iterator<Item = &[Value]> {
        self.rows.iter().map(|r| r.as_slice())
    }

    /// Produce a `(name, value)` view of row `i`.
    pub fn named_row(&self, i: usize) -> Vec<(&str, &Value)> {
        self.names
            .iter()
            .map(|n| n.as_str())
            .zip(self.rows[i].iter())
            .collect()
    }

    /// Merge another solution set (same column order assumed).
    pub fn extend(&mut self, other: SolutionSet) {
        debug_assert_eq!(self.names.len(), other.names.len());
        self.rows.extend(other.rows);
    }

    /// Sort rows lexicographically by their display form, producing a
    /// canonical order for set comparisons in tests.
    pub fn canonicalize(&mut self) {
        self.rows.sort_by_cached_key(|row| {
            row.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\u{1}")
        });
    }

    /// Compare two solution sets as *sets* (order independent).
    pub fn same_solutions(&self, other: &SolutionSet) -> bool {
        if self.len() != other.len() || self.names.len() != other.names.len() {
            return false;
        }
        // Column order may differ between construction methods; align by name.
        let perm: Option<Vec<usize>> = self
            .names
            .iter()
            .map(|n| other.names.iter().position(|m| m == n))
            .collect();
        let perm = match perm {
            Some(p) => p,
            None => return false,
        };
        let key = |row: &[Value]| -> String {
            row.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\u{1}")
        };
        let ours: HashSet<String> = self.rows.iter().map(|r| key(r)).collect();
        let theirs: HashSet<String> = other
            .rows
            .iter()
            .map(|r| {
                let reordered: Vec<Value> = perm.iter().map(|&j| r[j].clone()).collect();
                key(&reordered)
            })
            .collect();
        ours == theirs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::int_values;

    fn names(n: &[&str]) -> Vec<String> {
        n.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn push_and_views() {
        let mut s = SolutionSet::new(names(&["x", "y"]));
        assert!(s.is_empty());
        s.push(int_values([1, 2]));
        s.push(int_values([3, 4]));
        assert_eq!(s.len(), 2);
        assert_eq!(s.row(1), &int_values([3, 4])[..]);
        let named = s.named_row(0);
        assert_eq!(named[0], ("x", &Value::Int(1)));
        assert_eq!(s.iter().count(), 2);
    }

    #[test]
    fn same_solutions_order_independent() {
        let mut a = SolutionSet::new(names(&["x", "y"]));
        a.push(int_values([1, 2]));
        a.push(int_values([3, 4]));
        let mut b = SolutionSet::new(names(&["x", "y"]));
        b.push(int_values([3, 4]));
        b.push(int_values([1, 2]));
        assert!(a.same_solutions(&b));
        b.push(int_values([5, 6]));
        assert!(!a.same_solutions(&b));
    }

    #[test]
    fn same_solutions_handles_column_permutation() {
        let mut a = SolutionSet::new(names(&["x", "y"]));
        a.push(int_values([1, 2]));
        let mut b = SolutionSet::new(names(&["y", "x"]));
        b.push(int_values([2, 1]));
        assert!(a.same_solutions(&b));
    }

    #[test]
    fn canonicalize_sorts() {
        let mut s = SolutionSet::new(names(&["x"]));
        s.push(int_values([3]));
        s.push(int_values([1]));
        s.push(int_values([2]));
        s.canonicalize();
        let vals: Vec<i64> = s.iter().map(|r| r[0].as_i64().unwrap()).collect();
        assert_eq!(vals, vec![1, 2, 3]);
    }

    #[test]
    fn extend_merges() {
        let mut a = SolutionSet::new(names(&["x"]));
        a.push(int_values([1]));
        let mut b = SolutionSet::new(names(&["x"]));
        b.push(int_values([2]));
        a.extend(b);
        assert_eq!(a.len(), 2);
    }
}
