//! Solution sets: the fully resolved search space.
//!
//! The paper stresses output formats that are "close to the internal
//! representation" (Section 4.3.4): the solver produces a dense matrix of
//! values (one row per solution, columns in variable order) instead of one
//! dictionary per solution, avoiding expensive per-solution rearrangement.

use std::cmp::Ordering;
use std::collections::HashSet;
use std::sync::Arc;

use crate::value::Value;

/// Structural total order on values: numerics (including booleans) compare
/// by numeric value and sort before strings; strings compare bytewise.
/// Unlike a rendered-display key, no separator characters are involved, so
/// values containing arbitrary strings can never collide. The order
/// *refines* [`Value`]'s Python-style equality: Python-equal but
/// structurally distinct values (`Int(2)` vs `Float(2.0)`) get a
/// deterministic relative order via a variant-rank tiebreak, so a sort by
/// this comparator is canonical regardless of input order.
fn cmp_values(a: &Value, b: &Value) -> Ordering {
    fn variant_rank(v: &Value) -> u8 {
        match v {
            Value::Bool(_) => 0,
            Value::Int(_) => 1,
            Value::Float(_) => 2,
            Value::Str(_) => 3,
        }
    }
    match (a.as_f64(), b.as_f64()) {
        // Numerics order by f64 first, then break rounded-to-equal ties by
        // a lexicographic (is-integer-like, exact i64, variant) key:
        // integers that differ only above 2^53 stay distinguishable, the
        // composite key remains a genuine total order (plain
        // exact-i64-first comparison is not: near `i64::MAX` two unequal
        // ints both round to the same f64 as a large float, breaking
        // transitivity and with it `sort_by`'s strict-weak-ordering
        // contract), and numerically-equal values of different variants
        // still order deterministically.
        (Some(x), Some(y)) => x
            .total_cmp(&y)
            .then_with(|| match (a.as_i64(), b.as_i64()) {
                (Some(i), Some(j)) => i.cmp(&j),
                (Some(_), None) => Ordering::Less,
                (None, Some(_)) => Ordering::Greater,
                (None, None) => Ordering::Equal,
            })
            .then_with(|| variant_rank(a).cmp(&variant_rank(b))),
        (Some(_), None) => Ordering::Less,
        (None, Some(_)) => Ordering::Greater,
        // `as_f64` is `None` only for strings.
        (None, None) => a.as_str().unwrap_or("").cmp(b.as_str().unwrap_or("")),
    }
}

/// Lexicographic row comparison using [`cmp_values`].
fn cmp_rows(a: &[Value], b: &[Value]) -> Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        match cmp_values(x, y) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    a.len().cmp(&b.len())
}

/// The set of all valid configurations found by a solver.
///
/// Rows are stored densely in variable order; the variable names are shared
/// so that name-keyed views can be produced on demand.
#[derive(Debug, Clone, Default)]
pub struct SolutionSet {
    names: Arc<[String]>,
    rows: Vec<Vec<Value>>,
}

impl SolutionSet {
    /// Create an empty set over the given variable names.
    pub fn new(names: Vec<String>) -> Self {
        SolutionSet {
            names: names.into(),
            rows: Vec::new(),
        }
    }

    /// Create from pre-computed rows.
    pub fn from_rows(names: Vec<String>, rows: Vec<Vec<Value>>) -> Self {
        SolutionSet {
            names: names.into(),
            rows,
        }
    }

    /// The variable names, in column order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of solutions.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no solutions.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a solution row (values in variable order).
    pub fn push(&mut self, row: Vec<Value>) {
        debug_assert_eq!(row.len(), self.names.len());
        self.rows.push(row);
    }

    /// The raw rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// A single row.
    pub fn row(&self, i: usize) -> &[Value] {
        &self.rows[i]
    }

    /// Iterate over rows.
    pub fn iter(&self) -> impl Iterator<Item = &[Value]> {
        self.rows.iter().map(|r| r.as_slice())
    }

    /// Produce a `(name, value)` view of row `i`.
    pub fn named_row(&self, i: usize) -> Vec<(&str, &Value)> {
        self.names
            .iter()
            .map(|n| n.as_str())
            .zip(self.rows[i].iter())
            .collect()
    }

    /// Merge another solution set (same column order assumed).
    pub fn extend(&mut self, other: SolutionSet) {
        debug_assert_eq!(self.names.len(), other.names.len());
        self.rows.extend(other.rows);
    }

    /// Sort rows lexicographically by a *structural* per-value key,
    /// producing a canonical order for set comparisons in tests.
    ///
    /// Earlier versions sorted by the rows' display strings joined with a
    /// separator character, which let two distinct rows collide when a
    /// string value contained the separator itself; the structural
    /// comparison has no separators to collide with.
    pub fn canonicalize(&mut self) {
        self.rows.sort_by(|a, b| cmp_rows(a, b));
    }

    /// Compare two solution sets as *sets* (order independent).
    ///
    /// Rows are compared structurally through [`Value`]'s Python-style
    /// equality and hashing (so `Int(2)`, `Float(2.0)` and a `Bool` used as
    /// an int still match across construction methods), never through
    /// rendered display strings.
    pub fn same_solutions(&self, other: &SolutionSet) -> bool {
        if self.len() != other.len() || self.names.len() != other.names.len() {
            return false;
        }
        // Column order may differ between construction methods; align by name.
        let perm: Option<Vec<usize>> = self
            .names
            .iter()
            .map(|n| other.names.iter().position(|m| m == n))
            .collect();
        let perm = match perm {
            Some(p) => p,
            None => return false,
        };
        let ours: HashSet<&[Value]> = self.rows.iter().map(|r| r.as_slice()).collect();
        let theirs: HashSet<Vec<Value>> = other
            .rows
            .iter()
            .map(|r| perm.iter().map(|&j| r[j].clone()).collect())
            .collect();
        ours.len() == theirs.len() && theirs.iter().all(|row| ours.contains(row.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::int_values;

    fn names(n: &[&str]) -> Vec<String> {
        n.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn push_and_views() {
        let mut s = SolutionSet::new(names(&["x", "y"]));
        assert!(s.is_empty());
        s.push(int_values([1, 2]));
        s.push(int_values([3, 4]));
        assert_eq!(s.len(), 2);
        assert_eq!(s.row(1), &int_values([3, 4])[..]);
        let named = s.named_row(0);
        assert_eq!(named[0], ("x", &Value::Int(1)));
        assert_eq!(s.iter().count(), 2);
    }

    #[test]
    fn same_solutions_order_independent() {
        let mut a = SolutionSet::new(names(&["x", "y"]));
        a.push(int_values([1, 2]));
        a.push(int_values([3, 4]));
        let mut b = SolutionSet::new(names(&["x", "y"]));
        b.push(int_values([3, 4]));
        b.push(int_values([1, 2]));
        assert!(a.same_solutions(&b));
        b.push(int_values([5, 6]));
        assert!(!a.same_solutions(&b));
    }

    #[test]
    fn same_solutions_handles_column_permutation() {
        let mut a = SolutionSet::new(names(&["x", "y"]));
        a.push(int_values([1, 2]));
        let mut b = SolutionSet::new(names(&["y", "x"]));
        b.push(int_values([2, 1]));
        assert!(a.same_solutions(&b));
    }

    #[test]
    fn canonicalize_sorts() {
        let mut s = SolutionSet::new(names(&["x"]));
        s.push(int_values([3]));
        s.push(int_values([1]));
        s.push(int_values([2]));
        s.canonicalize();
        let vals: Vec<i64> = s.iter().map(|r| r[0].as_i64().unwrap()).collect();
        assert_eq!(vals, vec![1, 2, 3]);
    }

    #[test]
    fn separator_strings_do_not_collide() {
        // Regression: the old display-join key `"a\u{1}" + SEP + "b"` equals
        // `"a" + SEP + "\u{1}b"`, so these two distinct rows compared equal
        // and sets containing them were conflated.
        let r1 = vec![Value::str("a\u{1}"), Value::str("b")];
        let r2 = vec![Value::str("a"), Value::str("\u{1}b")];
        let mut a = SolutionSet::new(names(&["x", "y"]));
        a.push(r1.clone());
        a.push(r2.clone());
        let mut b = SolutionSet::new(names(&["x", "y"]));
        b.push(r2.clone());
        b.push(r2.clone());
        assert!(!a.same_solutions(&b), "distinct rows must not collide");
        let mut c = SolutionSet::new(names(&["x", "y"]));
        c.push(r2);
        c.push(r1);
        assert!(a.same_solutions(&c), "same rows in another order match");
    }

    #[test]
    fn canonicalize_orders_adversarial_strings_structurally() {
        let mut s = SolutionSet::new(names(&["x", "y"]));
        s.push(vec![Value::str("a"), Value::str("\u{1}b")]);
        s.push(vec![Value::str("a\u{1}"), Value::str("b")]);
        s.push(vec![Value::str("a"), Value::str("b")]);
        let mut t = s.clone();
        // shuffle t's rows, canonicalize both: identical order must result
        t.rows.reverse();
        s.canonicalize();
        t.canonicalize();
        assert_eq!(s.rows(), t.rows());
        // numerics sort before strings, and mixed int/float compare by value
        let mut n = SolutionSet::new(names(&["x"]));
        n.push(vec![Value::str("0")]);
        n.push(vec![Value::Float(2.5)]);
        n.push(vec![Value::Int(3)]);
        n.canonicalize();
        assert_eq!(n.row(0), &[Value::Float(2.5)][..]);
        assert_eq!(n.row(1), &[Value::Int(3)][..]);
        assert_eq!(n.row(2), &[Value::str("0")][..]);
    }

    #[test]
    fn canonicalize_distinguishes_integers_beyond_f64_precision() {
        // 2^53 and 2^53 + 1 round to the same f64; integer-like pairs must
        // compare exactly on i64 so the canonical order is truly canonical.
        let big = 1i64 << 53;
        let mut a = SolutionSet::new(names(&["x"]));
        a.push(vec![Value::Int(big + 1)]);
        a.push(vec![Value::Int(big)]);
        let mut b = SolutionSet::new(names(&["x"]));
        b.push(vec![Value::Int(big)]);
        b.push(vec![Value::Int(big + 1)]);
        a.canonicalize();
        b.canonicalize();
        assert_eq!(a.rows(), b.rows());
        assert_eq!(a.row(0), &[Value::Int(big)][..]);
    }

    #[test]
    fn canonicalize_orders_python_equal_variants_deterministically() {
        // Int(2) and Float(2.0) are Python-equal but structurally distinct;
        // the canonical order must not depend on the input order.
        let mut a = SolutionSet::new(names(&["x"]));
        a.push(vec![Value::Float(2.0)]);
        a.push(vec![Value::Int(2)]);
        a.push(vec![Value::Bool(true)]);
        a.push(vec![Value::Int(1)]);
        let mut b = SolutionSet::new(names(&["x"]));
        for row in a.rows().iter().rev() {
            b.push(row.clone());
        }
        a.canonicalize();
        b.canonicalize();
        assert_eq!(a.rows(), b.rows());
        assert_eq!(a.row(0), &[Value::Bool(true)][..]);
        assert_eq!(a.row(1), &[Value::Int(1)][..]);
        assert_eq!(a.row(2), &[Value::Int(2)][..]);
        assert_eq!(a.row(3), &[Value::Float(2.0)][..]);
    }

    #[test]
    fn canonicalize_stays_a_total_order_near_i64_max() {
        // Int(i64::MAX) and Int(i64::MAX - 1) both round to the same f64 as
        // Float(2^63); the comparator must stay transitive there (or
        // `sort_by` may panic) and the canonical order must not depend on
        // the input order.
        let rows = [
            vec![Value::Int(i64::MAX)],
            vec![Value::Int(i64::MAX - 1)],
            vec![Value::Float(9.223372036854776e18)],
        ];
        let mut reference: Option<Vec<Vec<Value>>> = None;
        // all 6 permutations of 3 rows
        for perm in [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ] {
            let mut s = SolutionSet::new(names(&["x"]));
            for &i in &perm {
                s.push(rows[i].clone());
            }
            s.canonicalize();
            let got: Vec<Vec<Value>> = s.rows().to_vec();
            match &reference {
                None => reference = Some(got),
                Some(expected) => assert_eq!(&got, expected, "permutation {perm:?}"),
            }
        }
    }

    #[test]
    fn extend_merges() {
        let mut a = SolutionSet::new(names(&["x"]));
        a.push(int_values([1]));
        let mut b = SolutionSet::new(names(&["x"]));
        b.push(int_values([2]));
        a.extend(b);
        assert_eq!(a.len(), 2);
    }
}
