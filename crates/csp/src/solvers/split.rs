//! Multi-level domain splitting for the data-parallel solvers.
//!
//! Splitting the search tree on the first variable alone load-balances
//! badly when its domain is small (two values on an eight-core machine
//! leave six cores idle). Instead the parallel solvers split on as many
//! leading variables of the search order as it takes to produce at least
//! [`split_target`] independent subproblems, each identified by a *prefix*
//! of per-variable value indices.

/// Desired number of subproblems: a small multiple of the worker count so
/// uneven subtrees still fill all cores.
pub(crate) fn split_target() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        * 8
}

/// Choose the split depth `k` (number of leading variables of `order` to
/// pin) and enumerate the Cartesian prefixes over their domains.
///
/// Each prefix holds, for levels `0..k`, the *index* of the pinned value
/// within that variable's domain (`domain_len(order[level])` values). An
/// empty result means some split domain is empty, i.e. the problem has no
/// solutions; `k == 0` yields one empty prefix (a single subproblem).
pub(crate) fn split_prefixes(
    order: &[usize],
    domain_len: impl Fn(usize) -> usize,
    target: usize,
) -> Vec<Vec<usize>> {
    let mut k = 0usize;
    let mut count = 1usize;
    while k < order.len() && count < target {
        let len = domain_len(order[k]);
        if len == 0 {
            return Vec::new();
        }
        count = count.saturating_mul(len);
        k += 1;
    }
    let mut prefixes: Vec<Vec<usize>> = vec![Vec::new()];
    for &var in &order[..k] {
        let len = domain_len(var);
        let mut next = Vec::with_capacity(prefixes.len() * len);
        for prefix in &prefixes {
            for value_index in 0..len {
                let mut extended = Vec::with_capacity(k);
                extended.extend_from_slice(prefix);
                extended.push(value_index);
                next.push(extended);
            }
        }
        prefixes = next;
    }
    prefixes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_deep_enough_to_reach_the_target() {
        // first domain has 2 values: a first-variable split would yield 2
        // tasks; multi-level splitting keeps going.
        let sizes = [2usize, 3, 4, 5];
        let order = [0usize, 1, 2, 3];
        let prefixes = split_prefixes(&order, |v| sizes[v], 10);
        assert_eq!(prefixes.len(), 2 * 3 * 4);
        assert!(prefixes.iter().all(|p| p.len() == 3));
        // prefixes enumerate the full Cartesian product, no duplicates
        let mut sorted = prefixes.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 24);
    }

    #[test]
    fn small_target_keeps_the_split_shallow() {
        let sizes = [6usize, 3];
        let order = [0usize, 1];
        let prefixes = split_prefixes(&order, |v| sizes[v], 4);
        assert_eq!(prefixes.len(), 6);
        assert!(prefixes.iter().all(|p| p.len() == 1));
    }

    #[test]
    fn target_of_one_yields_a_single_empty_prefix() {
        let prefixes = split_prefixes(&[0, 1], |_| 5, 1);
        assert_eq!(prefixes, vec![Vec::<usize>::new()]);
    }

    #[test]
    fn exhausting_all_variables_stops_the_split() {
        let prefixes = split_prefixes(&[0, 1], |_| 2, 1000);
        assert_eq!(prefixes.len(), 4);
        assert!(prefixes.iter().all(|p| p.len() == 2));
    }

    #[test]
    fn empty_domain_reports_no_prefixes() {
        let sizes = [3usize, 0];
        let prefixes = split_prefixes(&[0, 1], |v| sizes[v], 100);
        assert!(prefixes.is_empty());
    }
}
