//! Data-parallel all-solutions solver.
//!
//! The search tree is split on the leading variables of the optimized search
//! order: every Cartesian combination of their values induces an independent
//! subproblem, which rayon distributes over worker threads. Splitting on the
//! first variable alone load-balances badly when its domain is small, so the
//! split deepens until there are enough subproblems to keep every core busy
//! (see [`super::split`]). Every subproblem is solved with the same iterative
//! optimized search; each worker streams its rows into a private sink chunk
//! and the chunks are merged in deterministic subproblem order. Because
//! subproblems share no mutable state, the result is identical to the
//! sequential solver (up to row order).

use rayon::prelude::*;

use super::optimized::OptimizedSolver;
use super::split::{split_prefixes, split_target};
use super::{OptimizedSolverConfig, Solver};
use crate::error::CspResult;
use crate::problem::Problem;
use crate::sink::{RowSink, SolutionSink};
use crate::stats::SolveStats;

/// Parallel variant of [`OptimizedSolver`] using multi-level domain splitting.
#[derive(Debug, Clone, Default)]
pub struct ParallelSolver {
    config: OptimizedSolverConfig,
}

impl ParallelSolver {
    /// Parallel solver with all optimizations enabled.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parallel solver with an explicit optimization configuration.
    pub fn with_config(config: OptimizedSolverConfig) -> Self {
        ParallelSolver { config }
    }
}

impl Solver for ParallelSolver {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn solve_into(&self, problem: &Problem, sink: &mut dyn SolutionSink) -> CspResult<SolveStats> {
        let mut stats = SolveStats::default();
        if problem.num_variables() == 0 {
            return Ok(stats);
        }
        let mut domains = problem.domain_store();
        if self.config.preprocess
            && !OptimizedSolver::preprocess(problem, &mut domains, &mut stats)?
        {
            return Ok(stats);
        }
        let order = OptimizedSolver::variable_order(problem, self.config.variable_ordering);
        let constraints_per_var = problem.constraints_per_variable();
        let forward_check = self.config.forward_check;
        let prefixes = split_prefixes(&order, |v| domains.domain(v).len(), split_target());
        if prefixes.is_empty() {
            // An empty split domain: the space has no configurations.
            return Ok(stats);
        }

        let sink_ref: &dyn SolutionSink = sink;
        let domains_ref = &domains;
        let order_ref = &order;
        let constraints_ref = &constraints_per_var;
        let partials: Vec<CspResult<(Box<dyn RowSink>, SolveStats)>> = prefixes
            .par_iter()
            .enumerate()
            .map(|(chunk_index, prefix)| {
                let span = at_obs::span("solve-chunk", "solve").arg("chunk", chunk_index as u64);
                // Pin the first `prefix.len()` variables of the search order
                // to one value each; the subsearch explores the rest. The
                // pin is by *index*, not equality: a domain may hold
                // distinct values that compare Python-equal (Int(2) and
                // Float(2.0)), and an equality retain would keep both in
                // every subproblem, duplicating rows vs the sequential run.
                let mut local_domains = domains_ref.clone();
                for (level, &value_index) in prefix.iter().enumerate() {
                    let var = order_ref[level];
                    let mut position = 0usize;
                    local_domains.domain_mut(var).retain(|_| {
                        let keep = position == value_index;
                        position += 1;
                        keep
                    });
                }
                let mut chunk = sink_ref.new_chunk();
                let mut local_stats = SolveStats::default();
                OptimizedSolver::search(
                    problem,
                    &mut local_domains,
                    order_ref,
                    constraints_ref,
                    forward_check,
                    chunk.as_mut(),
                    &mut local_stats,
                )?;
                drop(
                    span.arg("nodes", local_stats.nodes)
                        .arg("solutions", local_stats.solutions),
                );
                Ok((chunk, local_stats))
            })
            .collect();

        for partial in partials {
            let (chunk, local_stats) = partial?;
            sink.merge_chunk(chunk)?;
            stats.merge(&local_stats);
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::super::{BruteForceSolver, OptimizedSolver};
    use super::*;
    use crate::sink::CountingSink;

    #[test]
    fn matches_sequential_optimized() {
        let p = block_size_problem();
        let seq = OptimizedSolver::new().solve(&p).unwrap();
        let par = ParallelSolver::new().solve(&p).unwrap();
        assert!(seq.solutions.same_solutions(&par.solutions));
    }

    #[test]
    fn matches_brute_force_on_mixed() {
        let p = mixed_problem();
        let bf = BruteForceSolver::new().solve(&p).unwrap();
        let par = ParallelSolver::new().solve(&p).unwrap();
        assert!(bf.solutions.same_solutions(&par.solutions));
    }

    #[test]
    fn unsatisfiable_is_empty() {
        let p = unsatisfiable_problem();
        let r = ParallelSolver::new().solve(&p).unwrap();
        assert!(r.solutions.is_empty());
    }

    #[test]
    fn works_without_forward_checking() {
        let p = mixed_problem();
        let cfg = OptimizedSolverConfig {
            forward_check: false,
            ..Default::default()
        };
        let r = ParallelSolver::with_config(cfg).solve(&p).unwrap();
        assert_eq!(r.solutions.len(), expected_mixed_solutions());
    }

    #[test]
    fn python_equal_duplicate_domain_values_do_not_duplicate_rows() {
        // Int(2) and Float(2.0) compare Python-equal but are distinct domain
        // entries; pinning split variables by *index* must keep exactly one
        // per subproblem, or the parallel solver would return every such row
        // once per equal duplicate.
        use crate::value::{int_values, Value};
        let mut p = Problem::new();
        p.add_variable("x", vec![Value::Int(2), Value::Float(2.0)])
            .unwrap();
        p.add_variable("y", int_values(1..=8)).unwrap();
        let seq = OptimizedSolver::new().solve(&p).unwrap();
        let par = ParallelSolver::new().solve(&p).unwrap();
        assert_eq!(seq.solutions.len(), 16);
        assert_eq!(par.solutions.len(), seq.solutions.len());
    }

    #[test]
    fn streams_the_same_count_as_collecting() {
        let p = block_size_problem();
        let collected = ParallelSolver::new().solve(&p).unwrap();
        let mut count = CountingSink::default();
        let stats = ParallelSolver::new().solve_into(&p, &mut count).unwrap();
        assert_eq!(count.rows() as usize, collected.solutions.len());
        assert_eq!(stats.solutions, count.rows());
    }
}
