//! Data-parallel all-solutions solver.
//!
//! The search tree is split on the first variable of the optimized search
//! order: each of its values induces an independent subproblem, which rayon
//! distributes over worker threads. Every subproblem is solved with the same
//! iterative optimized search; results are concatenated. Because subproblems
//! share no mutable state, the result is identical to the sequential solver
//! (up to row order).

use rayon::prelude::*;

use super::optimized::OptimizedSolver;
use super::{OptimizedSolverConfig, SolveResult, Solver};
use crate::error::CspResult;
use crate::problem::Problem;
use crate::solution::SolutionSet;
use crate::stats::SolveStats;
use crate::value::Value;

/// Parallel variant of [`OptimizedSolver`] using first-variable domain splitting.
#[derive(Debug, Clone, Default)]
pub struct ParallelSolver {
    config: OptimizedSolverConfig,
}

impl ParallelSolver {
    /// Parallel solver with all optimizations enabled.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parallel solver with an explicit optimization configuration.
    pub fn with_config(config: OptimizedSolverConfig) -> Self {
        ParallelSolver { config }
    }
}

impl Solver for ParallelSolver {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn solve(&self, problem: &Problem) -> CspResult<SolveResult> {
        let names = problem.variable_names().to_vec();
        let mut stats = SolveStats::default();
        if problem.num_variables() == 0 {
            return Ok(SolveResult {
                solutions: SolutionSet::new(names),
                stats,
            });
        }
        let mut domains = problem.domain_store();
        if self.config.preprocess
            && !OptimizedSolver::preprocess(problem, &mut domains, &mut stats)?
        {
            return Ok(SolveResult {
                solutions: SolutionSet::new(names),
                stats,
            });
        }
        let order = OptimizedSolver::variable_order(problem, self.config.variable_ordering);
        let constraints_per_var = problem.constraints_per_variable();
        let split_var = order[0];
        let split_values: Vec<Value> = domains.domain(split_var).values().to_vec();
        let forward_check = self.config.forward_check;

        let partials: Vec<(SolutionSet, SolveStats)> = split_values
            .par_iter()
            .map(|value| {
                let mut local_domains = domains.clone();
                local_domains.domain_mut(split_var).retain(|v| v == value);
                let mut local_solutions = SolutionSet::new(problem.variable_names().to_vec());
                let mut local_stats = SolveStats::default();
                OptimizedSolver::search(
                    problem,
                    &mut local_domains,
                    &order,
                    &constraints_per_var,
                    forward_check,
                    &mut local_solutions,
                    &mut local_stats,
                );
                (local_solutions, local_stats)
            })
            .collect();

        let mut solutions = SolutionSet::new(names);
        for (s, st) in partials {
            solutions.extend(s);
            stats.merge(&st);
        }
        Ok(SolveResult { solutions, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::super::{BruteForceSolver, OptimizedSolver};
    use super::*;

    #[test]
    fn matches_sequential_optimized() {
        let p = block_size_problem();
        let seq = OptimizedSolver::new().solve(&p).unwrap();
        let par = ParallelSolver::new().solve(&p).unwrap();
        assert!(seq.solutions.same_solutions(&par.solutions));
    }

    #[test]
    fn matches_brute_force_on_mixed() {
        let p = mixed_problem();
        let bf = BruteForceSolver::new().solve(&p).unwrap();
        let par = ParallelSolver::new().solve(&p).unwrap();
        assert!(bf.solutions.same_solutions(&par.solutions));
    }

    #[test]
    fn unsatisfiable_is_empty() {
        let p = unsatisfiable_problem();
        let r = ParallelSolver::new().solve(&p).unwrap();
        assert!(r.solutions.is_empty());
    }

    #[test]
    fn works_without_forward_checking() {
        let p = mixed_problem();
        let cfg = OptimizedSolverConfig {
            forward_check: false,
            ..Default::default()
        };
        let r = ParallelSolver::with_config(cfg).solve(&p).unwrap();
        assert_eq!(r.solutions.len(), expected_mixed_solutions());
    }
}
