//! Brute-force search space construction.
//!
//! Iterates the full Cartesian product of all domains and filters out
//! combinations that violate a constraint — the baseline every auto-tuning
//! framework falls back to in the absence of something smarter. A rayon-based
//! parallel mode splits the first dimension across worker threads.

use rayon::prelude::*;

use super::{SolveResult, Solver};
use crate::error::CspResult;
use crate::problem::Problem;
use crate::solution::SolutionSet;
use crate::stats::SolveStats;
use crate::value::Value;

/// Exhaustive enumeration of the Cartesian product with post-hoc filtering.
#[derive(Debug, Clone, Default)]
pub struct BruteForceSolver {
    parallel: bool,
}

impl BruteForceSolver {
    /// Sequential brute force (the paper's `brute-force` series).
    pub fn new() -> Self {
        BruteForceSolver { parallel: false }
    }

    /// Parallel brute force: the outermost parameter is split across rayon
    /// worker threads.
    pub fn parallel() -> Self {
        BruteForceSolver { parallel: true }
    }

    fn enumerate_suffix(
        problem: &Problem,
        prefix: &[Value],
        solutions: &mut SolutionSet,
        stats: &mut SolveStats,
    ) {
        // Odometer enumeration over the variables after the prefix.
        let num_vars = problem.num_variables();
        let start = prefix.len();
        let domains: Vec<&[Value]> = (start..num_vars)
            .map(|v| problem.domain(v).values())
            .collect();
        if domains.iter().any(|d| d.is_empty()) {
            return;
        }
        let mut indices = vec![0usize; num_vars - start];
        let mut values: Vec<Value> = Vec::with_capacity(num_vars);
        loop {
            values.clear();
            values.extend_from_slice(prefix);
            for (i, &idx) in indices.iter().enumerate() {
                values.push(domains[i][idx].clone());
            }
            stats.nodes += 1;
            let mut ok = true;
            let mut scope_buf: Vec<Value> = Vec::new();
            for entry in problem.constraints() {
                scope_buf.clear();
                scope_buf.extend(entry.scope.iter().map(|&v| values[v].clone()));
                stats.constraint_checks += 1;
                if !entry.constraint.evaluate(&scope_buf) {
                    ok = false;
                    break;
                }
            }
            if ok {
                solutions.push(values.clone());
                stats.solutions += 1;
            }
            // advance odometer
            let mut pos = indices.len();
            loop {
                if pos == 0 {
                    return;
                }
                pos -= 1;
                indices[pos] += 1;
                if indices[pos] < domains[pos].len() {
                    break;
                }
                indices[pos] = 0;
            }
        }
    }
}

impl Solver for BruteForceSolver {
    fn name(&self) -> &'static str {
        if self.parallel {
            "brute-force-parallel"
        } else {
            "brute-force"
        }
    }

    fn solve(&self, problem: &Problem) -> CspResult<SolveResult> {
        let names = problem.variable_names().to_vec();
        if problem.num_variables() == 0 {
            return Ok(SolveResult {
                solutions: SolutionSet::new(names),
                stats: SolveStats::default(),
            });
        }
        if !self.parallel {
            let mut solutions = SolutionSet::new(names);
            let mut stats = SolveStats::default();
            Self::enumerate_suffix(problem, &[], &mut solutions, &mut stats);
            return Ok(SolveResult { solutions, stats });
        }
        // Parallel: one task per value of the first variable.
        let first_values: Vec<Value> = problem.domain(0).values().to_vec();
        let partials: Vec<(SolutionSet, SolveStats)> = first_values
            .par_iter()
            .map(|v| {
                let mut solutions = SolutionSet::new(problem.variable_names().to_vec());
                let mut stats = SolveStats::default();
                Self::enumerate_suffix(
                    problem,
                    std::slice::from_ref(v),
                    &mut solutions,
                    &mut stats,
                );
                (solutions, stats)
            })
            .collect();
        let mut solutions = SolutionSet::new(names);
        let mut stats = SolveStats::default();
        for (s, st) in partials {
            solutions.extend(s);
            stats.merge(&st);
        }
        Ok(SolveResult { solutions, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::*;

    #[test]
    fn block_size_count_matches_reference() {
        let p = block_size_problem();
        let r = BruteForceSolver::new().solve(&p).unwrap();
        assert_eq!(r.solutions.len(), expected_block_size_solutions());
        assert_eq!(r.stats.solutions as usize, r.solutions.len());
        assert_eq!(r.stats.nodes, p.cartesian_size() as u64);
    }

    #[test]
    fn mixed_problem_count() {
        let p = mixed_problem();
        let r = BruteForceSolver::new().solve(&p).unwrap();
        assert_eq!(r.solutions.len(), expected_mixed_solutions());
    }

    #[test]
    fn unsatisfiable_yields_empty() {
        let p = unsatisfiable_problem();
        let r = BruteForceSolver::new().solve(&p).unwrap();
        assert!(r.solutions.is_empty());
    }

    #[test]
    fn parallel_matches_sequential() {
        let p = block_size_problem();
        let seq = BruteForceSolver::new().solve(&p).unwrap();
        let par = BruteForceSolver::parallel().solve(&p).unwrap();
        assert!(seq.solutions.same_solutions(&par.solutions));
        assert_eq!(seq.stats.nodes, par.stats.nodes);
    }

    #[test]
    fn every_reported_solution_is_valid() {
        let p = mixed_problem();
        let r = BruteForceSolver::new().solve(&p).unwrap();
        for row in r.solutions.iter() {
            assert!(p.is_valid_configuration(row));
        }
    }

    #[test]
    fn empty_problem() {
        let p = Problem::new();
        let r = BruteForceSolver::new().solve(&p).unwrap();
        assert!(r.solutions.is_empty());
    }
}
