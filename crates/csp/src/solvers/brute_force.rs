//! Brute-force search space construction.
//!
//! Iterates the full Cartesian product of all domains and filters out
//! combinations that violate a constraint — the baseline every auto-tuning
//! framework falls back to in the absence of something smarter. A rayon-based
//! parallel mode splits the leading dimensions across worker threads.

use rayon::prelude::*;

use super::split::{split_prefixes, split_target};
use super::{SolveStats, Solver};
use crate::error::CspResult;
use crate::problem::Problem;
use crate::sink::{RowSink, SolutionSink};
use crate::value::Value;

/// Exhaustive enumeration of the Cartesian product with post-hoc filtering.
#[derive(Debug, Clone, Default)]
pub struct BruteForceSolver {
    parallel: bool,
}

impl BruteForceSolver {
    /// Sequential brute force (the paper's `brute-force` series).
    pub fn new() -> Self {
        BruteForceSolver { parallel: false }
    }

    /// Parallel brute force: the leading parameters are split across rayon
    /// worker threads — as many leading domains as it takes to produce
    /// enough subproblems to fill all cores.
    pub fn parallel() -> Self {
        BruteForceSolver { parallel: true }
    }

    fn enumerate_suffix(
        problem: &Problem,
        prefix: &[Value],
        sink: &mut dyn RowSink,
        stats: &mut SolveStats,
    ) -> CspResult<()> {
        // Odometer enumeration over the variables after the prefix.
        let num_vars = problem.num_variables();
        let start = prefix.len();
        let domains: Vec<&[Value]> = (start..num_vars)
            .map(|v| problem.domain(v).values())
            .collect();
        if domains.iter().any(|d| d.is_empty()) {
            return Ok(());
        }
        let mut indices = vec![0usize; num_vars - start];
        let mut values: Vec<Value> = Vec::with_capacity(num_vars);
        let mut scope_buf: Vec<Value> = Vec::new();
        loop {
            values.clear();
            values.extend_from_slice(prefix);
            for (i, &idx) in indices.iter().enumerate() {
                values.push(domains[i][idx].clone());
            }
            stats.nodes += 1;
            let mut ok = true;
            for entry in problem.constraints() {
                scope_buf.clear();
                scope_buf.extend(entry.scope.iter().map(|&v| values[v].clone()));
                stats.constraint_checks += 1;
                if !entry.constraint.evaluate(&scope_buf) {
                    ok = false;
                    break;
                }
            }
            if ok {
                sink.push_row(&values)?;
                stats.solutions += 1;
            }
            // advance odometer
            let mut pos = indices.len();
            loop {
                if pos == 0 {
                    return Ok(());
                }
                pos -= 1;
                indices[pos] += 1;
                if indices[pos] < domains[pos].len() {
                    break;
                }
                indices[pos] = 0;
            }
        }
    }
}

impl Solver for BruteForceSolver {
    fn name(&self) -> &'static str {
        if self.parallel {
            "brute-force-parallel"
        } else {
            "brute-force"
        }
    }

    fn solve_into(&self, problem: &Problem, sink: &mut dyn SolutionSink) -> CspResult<SolveStats> {
        let mut stats = SolveStats::default();
        if problem.num_variables() == 0 {
            return Ok(stats);
        }
        if !self.parallel {
            Self::enumerate_suffix(problem, &[], sink, &mut stats)?;
            return Ok(stats);
        }
        // Parallel: one task per Cartesian prefix of the leading variables.
        let order: Vec<usize> = (0..problem.num_variables()).collect();
        let prefixes = split_prefixes(&order, |v| problem.domain(v).len(), split_target());
        if prefixes.is_empty() {
            // Some domain is empty: there are no configurations at all.
            return Ok(stats);
        }
        let sink_ref: &dyn SolutionSink = sink;
        let partials: Vec<CspResult<(Box<dyn RowSink>, SolveStats)>> = prefixes
            .par_iter()
            .enumerate()
            .map(|(chunk_index, prefix)| {
                let span = at_obs::span("solve-chunk", "solve").arg("chunk", chunk_index as u64);
                let values: Vec<Value> = prefix
                    .iter()
                    .enumerate()
                    .map(|(var, &idx)| problem.domain(var).values()[idx].clone())
                    .collect();
                let mut chunk = sink_ref.new_chunk();
                let mut local_stats = SolveStats::default();
                Self::enumerate_suffix(problem, &values, chunk.as_mut(), &mut local_stats)?;
                drop(
                    span.arg("nodes", local_stats.nodes)
                        .arg("solutions", local_stats.solutions),
                );
                Ok((chunk, local_stats))
            })
            .collect();
        for partial in partials {
            let (chunk, local_stats) = partial?;
            sink.merge_chunk(chunk)?;
            stats.merge(&local_stats);
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::*;
    use crate::sink::CountingSink;

    #[test]
    fn block_size_count_matches_reference() {
        let p = block_size_problem();
        let r = BruteForceSolver::new().solve(&p).unwrap();
        assert_eq!(r.solutions.len(), expected_block_size_solutions());
        assert_eq!(r.stats.solutions as usize, r.solutions.len());
        assert_eq!(r.stats.nodes, p.cartesian_size() as u64);
    }

    #[test]
    fn mixed_problem_count() {
        let p = mixed_problem();
        let r = BruteForceSolver::new().solve(&p).unwrap();
        assert_eq!(r.solutions.len(), expected_mixed_solutions());
    }

    #[test]
    fn unsatisfiable_yields_empty() {
        let p = unsatisfiable_problem();
        let r = BruteForceSolver::new().solve(&p).unwrap();
        assert!(r.solutions.is_empty());
    }

    #[test]
    fn parallel_matches_sequential() {
        let p = block_size_problem();
        let seq = BruteForceSolver::new().solve(&p).unwrap();
        let par = BruteForceSolver::parallel().solve(&p).unwrap();
        assert!(seq.solutions.same_solutions(&par.solutions));
        assert_eq!(seq.stats.nodes, par.stats.nodes);
    }

    #[test]
    fn parallel_streams_through_chunks() {
        let p = block_size_problem();
        let mut count = CountingSink::default();
        let stats = BruteForceSolver::parallel()
            .solve_into(&p, &mut count)
            .unwrap();
        assert_eq!(count.rows() as usize, expected_block_size_solutions());
        assert_eq!(stats.solutions, count.rows());
    }

    #[test]
    fn every_reported_solution_is_valid() {
        let p = mixed_problem();
        let r = BruteForceSolver::new().solve(&p).unwrap();
        for row in r.solutions.iter() {
            assert!(p.is_valid_configuration(row));
        }
    }

    #[test]
    fn empty_problem() {
        let p = Problem::new();
        let r = BruteForceSolver::new().solve(&p).unwrap();
        assert!(r.solutions.is_empty());
    }
}
