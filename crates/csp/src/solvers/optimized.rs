//! The optimized all-solutions solver (the paper's contribution).
//!
//! This implements Algorithm 1 together with the optimizations of
//! Section 4.3:
//!
//! * **iterative** stack-based backtracking (no recursion),
//! * **variable ordering** by the number of constraints a variable
//!   participates in (descending), tie-broken by domain size (ascending),
//!   computed once before the search,
//! * **domain preprocessing** driven by the specific constraints
//!   (`MaxProduct`, `MinProduct`, `MaxSum`, …) before the search starts,
//! * **forward checking** and specific-constraint partial rejection during
//!   the search,
//! * solutions emitted directly in the dense output format (Section 4.3.4).
//!
//! Each optimization can be disabled individually through
//! [`OptimizedSolverConfig`] for the ablation benchmarks.

use super::Solver;
use crate::assignment::Assignment;
use crate::domain::DomainStore;
use crate::error::CspResult;
use crate::problem::Problem;
use crate::sink::{RowSink, SolutionSink};
use crate::stats::SolveStats;
use crate::value::Value;

/// Feature toggles for [`OptimizedSolver`], used by the ablation study.
#[derive(Debug, Clone, Copy)]
pub struct OptimizedSolverConfig {
    /// Sort variables by constraint degree before searching.
    pub variable_ordering: bool,
    /// Run specific-constraint domain preprocessing before searching.
    pub preprocess: bool,
    /// Forward check: prune the domain of the single unassigned variable of a
    /// constraint during search.
    pub forward_check: bool,
    /// Run an AC-3 generalized arc-consistency pass before searching
    /// (off by default: the specific-constraint preprocessing usually already
    /// captures the profitable pruning; this flag exists for the ablation
    /// study and for constraint networks dominated by generic functions).
    pub arc_consistency: bool,
}

impl Default for OptimizedSolverConfig {
    fn default() -> Self {
        OptimizedSolverConfig {
            variable_ordering: true,
            preprocess: true,
            forward_check: true,
            arc_consistency: false,
        }
    }
}

/// The optimized iterative backtracking solver.
#[derive(Debug, Clone, Default)]
pub struct OptimizedSolver {
    config: OptimizedSolverConfig,
}

struct Level {
    var: usize,
    candidates: Vec<Value>,
    next: usize,
    active: bool,
}

impl OptimizedSolver {
    /// Solver with all optimizations enabled.
    pub fn new() -> Self {
        Self::default()
    }

    /// Solver with an explicit configuration (for ablations).
    pub fn with_config(config: OptimizedSolverConfig) -> Self {
        OptimizedSolver { config }
    }

    /// The active configuration.
    pub fn config(&self) -> OptimizedSolverConfig {
        self.config
    }

    /// Compute the search order: variables participating in more constraints
    /// first, smaller domains first among ties (Section 4.3.1). Ties use
    /// the *declared* domain size, so analyzer-driven pre-pruning (which
    /// shrinks domains without changing the solution set) cannot perturb
    /// the order — the constructed space stays byte-identical.
    pub(crate) fn variable_order(problem: &Problem, enabled: bool) -> Vec<usize> {
        let mut order: Vec<usize> = (0..problem.num_variables()).collect();
        if !enabled {
            return order;
        }
        let per_var = problem.constraints_per_variable();
        order.sort_by_key(|&v| {
            (
                std::cmp::Reverse(per_var[v].len()),
                problem.domain(v).declared_len(),
                v,
            )
        });
        order
    }

    /// Run preprocessing on a domain copy. Returns `false` if some domain was
    /// emptied (the problem has no solutions).
    pub(crate) fn preprocess(
        problem: &Problem,
        domains: &mut DomainStore,
        stats: &mut SolveStats,
    ) -> CspResult<bool> {
        for entry in problem.constraints() {
            let removed = entry.constraint.preprocess(&entry.scope, domains)?;
            stats.preprocess_removed += removed as u64;
            // Any unary constraint — specific or not — can be resolved
            // entirely by filtering the single variable's domain up front.
            if entry.scope.len() == 1 {
                let var = entry.scope[0];
                let removed = domains
                    .domain_mut(var)
                    .retain(|v| entry.constraint.evaluate(std::slice::from_ref(v)));
                stats.preprocess_removed += removed as u64;
            }
        }
        for v in 0..problem.num_variables() {
            if domains.domain(v).is_empty() {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Core iterative search over a prepared domain store and variable
    /// order, streaming each solution into `sink` as it is found.
    pub(crate) fn search(
        problem: &Problem,
        domains: &mut DomainStore,
        order: &[usize],
        constraints_per_var: &[Vec<usize>],
        forward_check: bool,
        sink: &mut dyn RowSink,
        stats: &mut SolveStats,
    ) -> CspResult<()> {
        let n = order.len();
        if n == 0 {
            return Ok(());
        }
        let mut assignment = Assignment::new(problem.num_variables());
        let mut row_buf: Vec<Value> = Vec::with_capacity(n);
        let mut levels: Vec<Level> = Vec::with_capacity(n);
        levels.push(Level {
            var: order[0],
            candidates: domains.domain(order[0]).values().to_vec(),
            next: 0,
            active: false,
        });

        while !levels.is_empty() {
            let depth = levels.len() - 1;
            {
                let level = &mut levels[depth];
                if level.active {
                    // Undo the previous attempt at this level before trying
                    // the next candidate (or before backtracking).
                    if forward_check {
                        domains.pop_state_all();
                    }
                    assignment.unassign(level.var);
                    level.active = false;
                }
                if level.next >= level.candidates.len() {
                    levels.pop();
                    continue;
                }
            }
            let (var, value) = {
                let level = &mut levels[depth];
                let value = level.candidates[level.next].clone();
                level.next += 1;
                level.active = true;
                (level.var, value)
            };
            assignment.assign(var, value);
            stats.nodes += 1;
            if forward_check {
                domains.push_state_all();
            }
            let mut ok = true;
            for &ci in &constraints_per_var[var] {
                let entry = &problem.constraints()[ci];
                stats.constraint_checks += 1;
                if !entry
                    .constraint
                    .check(&entry.scope, &assignment, domains, forward_check)
                {
                    ok = false;
                    break;
                }
            }
            if !ok {
                stats.backtracks += 1;
                if forward_check {
                    domains.pop_state_all();
                }
                assignment.unassign(var);
                levels[depth].active = false;
                continue;
            }
            if levels.len() == n {
                assignment.write_solution(&mut row_buf);
                sink.push_row(&row_buf)?;
                stats.solutions += 1;
                if forward_check {
                    domains.pop_state_all();
                }
                assignment.unassign(var);
                levels[depth].active = false;
                continue;
            }
            let next_var = order[levels.len()];
            let candidates = domains.domain(next_var).values().to_vec();
            levels.push(Level {
                var: next_var,
                candidates,
                next: 0,
                active: false,
            });
        }
        Ok(())
    }
}

impl Solver for OptimizedSolver {
    fn name(&self) -> &'static str {
        "optimized"
    }

    fn solve_into(&self, problem: &Problem, sink: &mut dyn SolutionSink) -> CspResult<SolveStats> {
        let mut stats = SolveStats::default();
        if problem.num_variables() == 0 {
            return Ok(stats);
        }
        let mut domains = problem.domain_store();
        if self.config.preprocess && !Self::preprocess(problem, &mut domains, &mut stats)? {
            return Ok(stats);
        }
        if self.config.arc_consistency {
            let report = crate::consistency::arc_consistency(problem, &mut domains)?;
            stats.preprocess_removed += report.removed as u64;
            if !report.consistent {
                return Ok(stats);
            }
        }
        let order = Self::variable_order(problem, self.config.variable_ordering);
        let constraints_per_var = problem.constraints_per_variable();
        Self::search(
            problem,
            &mut domains,
            &order,
            &constraints_per_var,
            self.config.forward_check,
            sink,
            &mut stats,
        )?;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::super::BruteForceSolver;
    use super::*;
    use crate::solvers::Solver;

    #[test]
    fn matches_brute_force_on_block_size() {
        let p = block_size_problem();
        let bf = BruteForceSolver::new().solve(&p).unwrap();
        let opt = OptimizedSolver::new().solve(&p).unwrap();
        assert_eq!(opt.solutions.len(), expected_block_size_solutions());
        assert!(bf.solutions.same_solutions(&opt.solutions));
    }

    #[test]
    fn matches_brute_force_on_mixed() {
        let p = mixed_problem();
        let bf = BruteForceSolver::new().solve(&p).unwrap();
        let opt = OptimizedSolver::new().solve(&p).unwrap();
        assert!(bf.solutions.same_solutions(&opt.solutions));
    }

    #[test]
    fn unsatisfiable_detected_by_preprocessing() {
        let p = unsatisfiable_problem();
        let r = OptimizedSolver::new().solve(&p).unwrap();
        assert!(r.solutions.is_empty());
        // preprocessing alone empties a domain, so no nodes are explored
        assert_eq!(r.stats.nodes, 0);
    }

    #[test]
    fn every_config_combination_is_correct() {
        let p = mixed_problem();
        let reference = BruteForceSolver::new().solve(&p).unwrap();
        for ordering in [false, true] {
            for preprocess in [false, true] {
                for forward_check in [false, true] {
                    for arc_consistency in [false, true] {
                        let cfg = OptimizedSolverConfig {
                            variable_ordering: ordering,
                            preprocess,
                            forward_check,
                            arc_consistency,
                        };
                        let r = OptimizedSolver::with_config(cfg).solve(&p).unwrap();
                        assert!(
                            reference.solutions.same_solutions(&r.solutions),
                            "config {cfg:?} produced a different solution set"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn optimized_does_much_less_work_than_brute_force() {
        let p = block_size_problem();
        let bf = BruteForceSolver::new().solve(&p).unwrap();
        let opt = OptimizedSolver::new().solve(&p).unwrap();
        assert!(
            opt.stats.constraint_checks * 2 < bf.stats.constraint_checks,
            "optimized {} vs brute force {}",
            opt.stats.constraint_checks,
            bf.stats.constraint_checks
        );
    }

    #[test]
    fn variable_order_puts_constrained_variables_first() {
        let p = mixed_problem(); // a and b occur in 3 constraints, c in 1
        let order = OptimizedSolver::variable_order(&p, true);
        let c_id = p.variable_id("c").unwrap();
        assert_eq!(order[2], c_id);
    }

    #[test]
    fn ordering_disabled_is_declaration_order() {
        let p = mixed_problem();
        let order = OptimizedSolver::variable_order(&p, false);
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn solutions_are_in_declaration_column_order_regardless_of_search_order() {
        let p = mixed_problem();
        let r = OptimizedSolver::new().solve(&p).unwrap();
        // column order must match variable declaration order
        assert_eq!(r.solutions.names(), p.variable_names());
        for row in r.solutions.iter() {
            assert!(p.is_valid_configuration(row));
        }
    }
}
