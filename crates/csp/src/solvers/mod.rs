//! All-solutions solvers.
//!
//! The paper's evaluation compares five construction methods; each has a
//! counterpart here:
//!
//! | Paper series | Solver |
//! |---|---|
//! | `brute-force` | [`BruteForceSolver`] |
//! | `original` (unoptimized python-constraint) | [`OriginalBacktrackingSolver`] |
//! | `optimized` (this work) | [`OptimizedSolver`] |
//! | ATF / pyATF (chain-of-trees) | the `at-cot` crate |
//! | PySMT + Z3 (one solution at a time) | [`BlockingClauseSolver`] |
//!
//! In addition, [`ParallelSolver`] extends the optimized solver with
//! domain-splitting data parallelism over rayon worker threads.

use crate::error::CspResult;
use crate::problem::Problem;
use crate::sink::SolutionSink;
use crate::solution::SolutionSet;
use crate::stats::SolveStats;

mod blocking_clause;
mod brute_force;
mod optimized;
mod original;
mod parallel;
mod split;

pub use blocking_clause::BlockingClauseSolver;
pub use brute_force::BruteForceSolver;
pub use optimized::{OptimizedSolver, OptimizedSolverConfig};
pub use original::OriginalBacktrackingSolver;
pub use parallel::ParallelSolver;

/// The outcome of solving a problem for all solutions.
#[derive(Debug, Clone, Default)]
pub struct SolveResult {
    /// All valid configurations.
    pub solutions: SolutionSet,
    /// Counters describing the work the solver performed.
    pub stats: SolveStats,
}

/// An all-solutions constraint solver.
///
/// `solve` and `solve_into` have default implementations in terms of each
/// other: implement **at least one** of them (the built-in solvers implement
/// the streaming `solve_into` and get the collecting `solve` for free;
/// pre-existing external solvers that only implement `solve` keep working
/// and stream through a compatibility replay).
pub trait Solver: Send + Sync {
    /// Short name used in reports (e.g. `"optimized"`).
    fn name(&self) -> &'static str;

    /// Enumerate every valid configuration of `problem` into an owned
    /// [`SolutionSet`].
    fn solve(&self, problem: &Problem) -> CspResult<SolveResult> {
        let mut solutions = SolutionSet::new(problem.variable_names().to_vec());
        let stats = self.solve_into(problem, &mut solutions)?;
        Ok(SolveResult { solutions, stats })
    }

    /// Enumerate every valid configuration of `problem`, pushing each row
    /// into `sink` the moment it is found (rows are in variable declaration
    /// order). This is the streaming path: no intermediate `Vec<Vec<Value>>`
    /// of all solutions is ever materialized by the built-in solvers.
    ///
    /// The default implementation falls back to [`Solver::solve`] and
    /// replays the collected rows, for solver implementations that predate
    /// the sink API.
    fn solve_into(&self, problem: &Problem, sink: &mut dyn SolutionSink) -> CspResult<SolveStats> {
        let result = self.solve(problem)?;
        for row in result.solutions.iter() {
            sink.push_row(row)?;
        }
        Ok(result.stats)
    }
}

/// Construct one of the built-in solvers by paper series name.
/// Recognised names: `brute-force`, `original`, `optimized`, `parallel`,
/// `blocking-clause`.
pub fn solver_by_name(name: &str) -> Option<Box<dyn Solver>> {
    match name {
        "brute-force" | "bruteforce" => Some(Box::new(BruteForceSolver::new())),
        "original" => Some(Box::new(OriginalBacktrackingSolver::new())),
        "optimized" => Some(Box::new(OptimizedSolver::new())),
        "parallel" => Some(Box::new(ParallelSolver::new())),
        "blocking-clause" | "smt" => Some(Box::new(BlockingClauseSolver::new())),
        _ => None,
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared problem fixtures for solver tests.
    use crate::constraints::{AllDifferent, MaxProduct, MaxSum, MinProduct};
    use crate::problem::Problem;
    use crate::value::int_values;

    /// The Listing 3 block-size problem; 37 x 6 Cartesian, both product
    /// constraints. The reference solution count is computed by direct
    /// enumeration in `expected_block_size_solutions`.
    pub fn block_size_problem() -> Problem {
        let mut p = Problem::new();
        let mut xs: Vec<i64> = vec![1, 2, 4, 8, 16];
        xs.extend((1..=32).map(|i| 32 * i));
        p.add_variable("block_size_x", int_values(xs)).unwrap();
        p.add_variable("block_size_y", int_values((0..6).map(|i| 1 << i)))
            .unwrap();
        p.add_constraint(MinProduct::new(32.0), &["block_size_x", "block_size_y"])
            .unwrap();
        p.add_constraint(MaxProduct::new(1024.0), &["block_size_x", "block_size_y"])
            .unwrap();
        p
    }

    /// Independent reference count for [`block_size_problem`].
    pub fn expected_block_size_solutions() -> usize {
        let mut xs: Vec<i64> = vec![1, 2, 4, 8, 16];
        xs.extend((1..=32).map(|i| 32 * i));
        let ys: Vec<i64> = (0..6).map(|i| 1 << i).collect();
        let mut count = 0;
        for &x in &xs {
            for &y in &ys {
                if x * y >= 32 && x * y <= 1024 {
                    count += 1;
                }
            }
        }
        count
    }

    /// A small problem mixing constraint kinds, with string values.
    pub fn mixed_problem() -> Problem {
        let mut p = Problem::new();
        p.add_variable("a", int_values([1, 2, 3, 4])).unwrap();
        p.add_variable("b", int_values([1, 2, 3, 4])).unwrap();
        p.add_variable("c", int_values([0, 1])).unwrap();
        p.add_constraint(MaxSum::new(6.0), &["a", "b"]).unwrap();
        p.add_constraint(AllDifferent::new(), &["a", "b"]).unwrap();
        p.add_function_constraint(&["a", "b", "c"], |v| {
            // when c == 1 require a*b to be even
            if v[2].as_i64().unwrap() == 1 {
                (v[0].as_i64().unwrap() * v[1].as_i64().unwrap()) % 2 == 0
            } else {
                true
            }
        })
        .unwrap();
        p
    }

    /// Reference count for [`mixed_problem`] by direct enumeration.
    pub fn expected_mixed_solutions() -> usize {
        let mut count = 0;
        for a in 1..=4i64 {
            for b in 1..=4i64 {
                for c in 0..=1i64 {
                    if a + b <= 6 && a != b && (c == 0 || (a * b) % 2 == 0) {
                        count += 1;
                    }
                }
            }
        }
        count
    }

    /// A problem with zero solutions.
    pub fn unsatisfiable_problem() -> Problem {
        let mut p = Problem::new();
        p.add_variable("x", int_values([1, 2, 3])).unwrap();
        p.add_variable("y", int_values([1, 2, 3])).unwrap();
        p.add_constraint(MinProduct::new(100.0), &["x", "y"])
            .unwrap();
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_by_name_resolves() {
        for name in [
            "brute-force",
            "original",
            "optimized",
            "parallel",
            "blocking-clause",
        ] {
            assert!(solver_by_name(name).is_some(), "{name}");
        }
        assert!(solver_by_name("nope").is_none());
    }
}
