//! The *original* (unoptimized) backtracking solver.
//!
//! This reproduces the behaviour of vanilla `python-constraint` before the
//! paper's optimizations: recursive backtracking in variable declaration
//! order, no domain preprocessing, no forward checking and no variable
//! ordering. Constraints are only evaluated once every variable in their
//! scope has been assigned, which is what gives it its roughly
//! one-order-of-magnitude advantage over brute force on sparse spaces
//! (Figure 5C) while still scaling poorly compared to the optimized solver.

use super::Solver;
use crate::assignment::Assignment;
use crate::error::CspResult;
use crate::problem::Problem;
use crate::sink::SolutionSink;
use crate::stats::SolveStats;
use crate::value::Value;

/// Unoptimized recursive backtracking solver (the paper's `original` series).
#[derive(Debug, Clone, Default)]
pub struct OriginalBacktrackingSolver;

impl OriginalBacktrackingSolver {
    /// Create the solver.
    pub fn new() -> Self {
        OriginalBacktrackingSolver
    }

    #[allow(clippy::too_many_arguments)]
    fn search(
        problem: &Problem,
        ready_constraints: &[Vec<usize>],
        depth: usize,
        assignment: &mut Assignment,
        scope_buf: &mut Vec<Value>,
        row_buf: &mut Vec<Value>,
        sink: &mut dyn SolutionSink,
        stats: &mut SolveStats,
    ) -> CspResult<()> {
        if depth == problem.num_variables() {
            assignment.write_solution(row_buf);
            sink.push_row(row_buf)?;
            stats.solutions += 1;
            return Ok(());
        }
        let values: Vec<Value> = problem.domain(depth).values().to_vec();
        for value in values {
            assignment.assign(depth, value);
            stats.nodes += 1;
            let mut ok = true;
            for &ci in &ready_constraints[depth] {
                let entry = &problem.constraints()[ci];
                scope_buf.clear();
                for &v in &entry.scope {
                    scope_buf.push(assignment.get(v).expect("scope assigned").clone());
                }
                stats.constraint_checks += 1;
                if !entry.constraint.evaluate(scope_buf) {
                    ok = false;
                    break;
                }
            }
            if ok {
                Self::search(
                    problem,
                    ready_constraints,
                    depth + 1,
                    assignment,
                    scope_buf,
                    row_buf,
                    sink,
                    stats,
                )?;
            } else {
                stats.backtracks += 1;
            }
            assignment.unassign(depth);
        }
        Ok(())
    }
}

impl Solver for OriginalBacktrackingSolver {
    fn name(&self) -> &'static str {
        "original"
    }

    fn solve_into(&self, problem: &Problem, sink: &mut dyn SolutionSink) -> CspResult<SolveStats> {
        let mut stats = SolveStats::default();
        if problem.num_variables() == 0 {
            return Ok(stats);
        }
        // A constraint becomes checkable exactly when the latest variable of
        // its scope (in declaration order) is assigned.
        let mut ready_constraints: Vec<Vec<usize>> = vec![Vec::new(); problem.num_variables()];
        for (ci, entry) in problem.constraints().iter().enumerate() {
            let last = entry.scope.iter().copied().max().expect("non-empty scope");
            ready_constraints[last].push(ci);
        }
        let mut assignment = Assignment::new(problem.num_variables());
        let mut scope_buf = Vec::new();
        let mut row_buf = Vec::with_capacity(problem.num_variables());
        Self::search(
            problem,
            &ready_constraints,
            0,
            &mut assignment,
            &mut scope_buf,
            &mut row_buf,
            sink,
            &mut stats,
        )?;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::super::BruteForceSolver;
    use super::*;

    #[test]
    fn matches_brute_force_on_block_size() {
        let p = block_size_problem();
        let bf = BruteForceSolver::new().solve(&p).unwrap();
        let orig = OriginalBacktrackingSolver::new().solve(&p).unwrap();
        assert!(bf.solutions.same_solutions(&orig.solutions));
    }

    #[test]
    fn matches_brute_force_on_mixed() {
        let p = mixed_problem();
        let bf = BruteForceSolver::new().solve(&p).unwrap();
        let orig = OriginalBacktrackingSolver::new().solve(&p).unwrap();
        assert!(bf.solutions.same_solutions(&orig.solutions));
    }

    #[test]
    fn does_less_work_than_brute_force_on_sparse_space() {
        let p = unsatisfiable_problem();
        let bf = BruteForceSolver::new().solve(&p).unwrap();
        let orig = OriginalBacktrackingSolver::new().solve(&p).unwrap();
        assert!(orig.solutions.is_empty());
        assert!(orig.stats.constraint_checks <= bf.stats.constraint_checks);
    }

    #[test]
    fn all_solutions_valid() {
        let p = mixed_problem();
        let r = OriginalBacktrackingSolver::new().solve(&p).unwrap();
        for row in r.solutions.iter() {
            assert!(p.is_valid_configuration(row));
        }
        assert_eq!(r.solutions.len(), expected_mixed_solutions());
    }
}
