//! One-solution-at-a-time enumeration with blocking clauses.
//!
//! SAT/SMT solvers such as Z3 return a *single* model; to enumerate a search
//! space they must be re-invoked with the previous model excluded (a
//! *blocking clause*) until the problem becomes unsatisfiable (Section 4.1).
//! This solver reproduces that usage pattern faithfully — including its poor
//! scaling in the number of valid configurations (Figure 4): every iteration
//! restarts the search from scratch and must skip all previously found
//! solutions.

use std::collections::HashSet;

use super::{SolveResult, Solver};
use crate::assignment::Assignment;
use crate::error::CspResult;
use crate::problem::Problem;
use crate::solution::SolutionSet;
use crate::stats::SolveStats;
use crate::value::Value;

/// Enumerates solutions one at a time, excluding each found solution with a
/// blocking clause and re-solving, like a SAT/SMT solver would.
#[derive(Debug, Clone, Default)]
pub struct BlockingClauseSolver {
    /// Optional safety cap on the number of solutions to enumerate.
    max_solutions: Option<usize>,
}

impl BlockingClauseSolver {
    /// Enumerate all solutions.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enumerate at most `max_solutions` solutions (useful to bound the
    /// quadratic blow-up on large spaces).
    pub fn with_max_solutions(max_solutions: usize) -> Self {
        BlockingClauseSolver {
            max_solutions: Some(max_solutions),
        }
    }

    /// Find the first solution not contained in `blocked`, restarting the
    /// search from the root (as an SMT solver re-invocation would).
    #[allow(clippy::too_many_arguments)]
    fn find_one(
        problem: &Problem,
        ready_constraints: &[Vec<usize>],
        blocked: &HashSet<Vec<String>>,
        depth: usize,
        assignment: &mut Assignment,
        stats: &mut SolveStats,
    ) -> Option<Vec<Value>> {
        if depth == problem.num_variables() {
            let solution = assignment.to_solution();
            let key: Vec<String> = solution.iter().map(|v| v.to_string()).collect();
            // The blocking clauses are additional constraints in the re-solved
            // problem; count their evaluation as one check.
            stats.constraint_checks += 1;
            if blocked.contains(&key) {
                return None;
            }
            return Some(solution);
        }
        let values: Vec<Value> = problem.domain(depth).values().to_vec();
        let mut scope_buf: Vec<Value> = Vec::new();
        for value in values {
            assignment.assign(depth, value);
            stats.nodes += 1;
            let mut ok = true;
            for &ci in &ready_constraints[depth] {
                let entry = &problem.constraints()[ci];
                scope_buf.clear();
                for &v in &entry.scope {
                    scope_buf.push(assignment.get(v).expect("assigned").clone());
                }
                stats.constraint_checks += 1;
                if !entry.constraint.evaluate(&scope_buf) {
                    ok = false;
                    break;
                }
            }
            if ok {
                if let Some(found) = Self::find_one(
                    problem,
                    ready_constraints,
                    blocked,
                    depth + 1,
                    assignment,
                    stats,
                ) {
                    assignment.unassign(depth);
                    return Some(found);
                }
            } else {
                stats.backtracks += 1;
            }
            assignment.unassign(depth);
        }
        None
    }
}

impl Solver for BlockingClauseSolver {
    fn name(&self) -> &'static str {
        "blocking-clause"
    }

    fn solve(&self, problem: &Problem) -> CspResult<SolveResult> {
        let names = problem.variable_names().to_vec();
        let mut solutions = SolutionSet::new(names);
        let mut stats = SolveStats::default();
        if problem.num_variables() == 0 {
            return Ok(SolveResult { solutions, stats });
        }
        let mut ready_constraints: Vec<Vec<usize>> = vec![Vec::new(); problem.num_variables()];
        for (ci, entry) in problem.constraints().iter().enumerate() {
            let last = entry.scope.iter().copied().max().expect("non-empty scope");
            ready_constraints[last].push(ci);
        }
        let mut blocked: HashSet<Vec<String>> = HashSet::new();
        loop {
            if let Some(cap) = self.max_solutions {
                if solutions.len() >= cap {
                    break;
                }
            }
            let mut assignment = Assignment::new(problem.num_variables());
            match Self::find_one(
                problem,
                &ready_constraints,
                &blocked,
                0,
                &mut assignment,
                &mut stats,
            ) {
                Some(solution) => {
                    blocked.insert(solution.iter().map(|v| v.to_string()).collect());
                    solutions.push(solution);
                    stats.solutions += 1;
                }
                None => break,
            }
        }
        Ok(SolveResult { solutions, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::super::{BruteForceSolver, OptimizedSolver};
    use super::*;

    #[test]
    fn matches_brute_force_on_mixed() {
        let p = mixed_problem();
        let bf = BruteForceSolver::new().solve(&p).unwrap();
        let bc = BlockingClauseSolver::new().solve(&p).unwrap();
        assert!(bf.solutions.same_solutions(&bc.solutions));
    }

    #[test]
    fn matches_optimized_on_block_size() {
        let p = block_size_problem();
        let opt = OptimizedSolver::new().solve(&p).unwrap();
        let bc = BlockingClauseSolver::new().solve(&p).unwrap();
        assert!(opt.solutions.same_solutions(&bc.solutions));
    }

    #[test]
    fn respects_max_solutions() {
        let p = block_size_problem();
        let bc = BlockingClauseSolver::with_max_solutions(5)
            .solve(&p)
            .unwrap();
        assert_eq!(bc.solutions.len(), 5);
    }

    #[test]
    fn does_far_more_work_than_a_single_enumeration() {
        // The re-solving pattern must visit many more nodes than the original
        // single-pass backtracking enumeration.
        let p = mixed_problem();
        let orig = super::super::OriginalBacktrackingSolver::new()
            .solve(&p)
            .unwrap();
        let bc = BlockingClauseSolver::new().solve(&p).unwrap();
        assert!(bc.stats.nodes > orig.stats.nodes);
    }

    #[test]
    fn unsatisfiable_is_empty() {
        let p = unsatisfiable_problem();
        let r = BlockingClauseSolver::new().solve(&p).unwrap();
        assert!(r.solutions.is_empty());
    }
}
