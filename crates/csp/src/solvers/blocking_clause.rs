//! One-solution-at-a-time enumeration with blocking clauses.
//!
//! SAT/SMT solvers such as Z3 return a *single* model; to enumerate a search
//! space they must be re-invoked with the previous model excluded (a
//! *blocking clause*) until the problem becomes unsatisfiable (Section 4.1).
//! This solver reproduces that usage pattern faithfully — including its poor
//! scaling in the number of valid configurations (Figure 4): every iteration
//! restarts the search from scratch and must skip all previously found
//! solutions.

use std::collections::HashSet;

use super::Solver;
use crate::assignment::Assignment;
use crate::error::CspResult;
use crate::problem::Problem;
use crate::sink::SolutionSink;
use crate::stats::SolveStats;
use crate::value::Value;

/// Enumerates solutions one at a time, excluding each found solution with a
/// blocking clause and re-solving, like a SAT/SMT solver would.
#[derive(Debug, Clone, Default)]
pub struct BlockingClauseSolver {
    /// Optional safety cap on the number of solutions to enumerate.
    max_solutions: Option<usize>,
}

impl BlockingClauseSolver {
    /// Enumerate all solutions.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enumerate at most `max_solutions` solutions (useful to bound the
    /// quadratic blow-up on large spaces).
    pub fn with_max_solutions(max_solutions: usize) -> Self {
        BlockingClauseSolver {
            max_solutions: Some(max_solutions),
        }
    }

    /// Find the first solution not contained in `blocked`, restarting the
    /// search from the root (as an SMT solver re-invocation would).
    ///
    /// Blocked solutions are identified by their *domain index path* (the
    /// per-variable index of each assigned value), not by the values
    /// themselves: value-based keys conflate distinct domain entries that
    /// compare equal — rendered display strings collide for `Int(1)` vs
    /// `Str("1")`, and Python-style value equality collides for `Int(2)` vs
    /// `Float(2.0)` — silently dropping the later solution and returning
    /// fewer rows than every other solver. Index paths are unambiguous.
    ///
    /// On success, `path` holds the found solution's full index path (the
    /// caller inserts it into `blocked`); on failure `path` is restored.
    #[allow(clippy::too_many_arguments)]
    fn find_one(
        problem: &Problem,
        ready_constraints: &[Vec<usize>],
        blocked: &HashSet<Vec<u32>>,
        depth: usize,
        assignment: &mut Assignment,
        path: &mut Vec<u32>,
        stats: &mut SolveStats,
    ) -> Option<Vec<Value>> {
        if depth == problem.num_variables() {
            // The blocking clauses are additional constraints in the re-solved
            // problem; count their evaluation as one check.
            stats.constraint_checks += 1;
            if blocked.contains(path) {
                return None;
            }
            return Some(assignment.to_solution());
        }
        let values: Vec<Value> = problem.domain(depth).values().to_vec();
        let mut scope_buf: Vec<Value> = Vec::new();
        for (index, value) in values.into_iter().enumerate() {
            assignment.assign(depth, value);
            path.push(index as u32);
            stats.nodes += 1;
            let mut ok = true;
            for &ci in &ready_constraints[depth] {
                let entry = &problem.constraints()[ci];
                scope_buf.clear();
                for &v in &entry.scope {
                    scope_buf.push(assignment.get(v).expect("assigned").clone());
                }
                stats.constraint_checks += 1;
                if !entry.constraint.evaluate(&scope_buf) {
                    ok = false;
                    break;
                }
            }
            if ok {
                if let Some(found) = Self::find_one(
                    problem,
                    ready_constraints,
                    blocked,
                    depth + 1,
                    assignment,
                    path,
                    stats,
                ) {
                    // Leave `path` intact: it is the found index path.
                    assignment.unassign(depth);
                    return Some(found);
                }
            } else {
                stats.backtracks += 1;
            }
            path.pop();
            assignment.unassign(depth);
        }
        None
    }
}

impl Solver for BlockingClauseSolver {
    fn name(&self) -> &'static str {
        "blocking-clause"
    }

    fn solve_into(&self, problem: &Problem, sink: &mut dyn SolutionSink) -> CspResult<SolveStats> {
        let mut stats = SolveStats::default();
        if problem.num_variables() == 0 {
            return Ok(stats);
        }
        let mut ready_constraints: Vec<Vec<usize>> = vec![Vec::new(); problem.num_variables()];
        for (ci, entry) in problem.constraints().iter().enumerate() {
            let last = entry.scope.iter().copied().max().expect("non-empty scope");
            ready_constraints[last].push(ci);
        }
        let mut blocked: HashSet<Vec<u32>> = HashSet::new();
        let mut path: Vec<u32> = Vec::with_capacity(problem.num_variables());
        loop {
            if let Some(cap) = self.max_solutions {
                if blocked.len() >= cap {
                    break;
                }
            }
            let mut assignment = Assignment::new(problem.num_variables());
            path.clear();
            match Self::find_one(
                problem,
                &ready_constraints,
                &blocked,
                0,
                &mut assignment,
                &mut path,
                &mut stats,
            ) {
                Some(solution) => {
                    sink.push_row(&solution)?;
                    stats.solutions += 1;
                    blocked.insert(path.clone());
                }
                None => break,
            }
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::super::{BruteForceSolver, OptimizedSolver};
    use super::*;

    #[test]
    fn matches_brute_force_on_mixed() {
        let p = mixed_problem();
        let bf = BruteForceSolver::new().solve(&p).unwrap();
        let bc = BlockingClauseSolver::new().solve(&p).unwrap();
        assert!(bf.solutions.same_solutions(&bc.solutions));
    }

    #[test]
    fn matches_optimized_on_block_size() {
        let p = block_size_problem();
        let opt = OptimizedSolver::new().solve(&p).unwrap();
        let bc = BlockingClauseSolver::new().solve(&p).unwrap();
        assert!(opt.solutions.same_solutions(&bc.solutions));
    }

    #[test]
    fn respects_max_solutions() {
        let p = block_size_problem();
        let bc = BlockingClauseSolver::with_max_solutions(5)
            .solve(&p)
            .unwrap();
        assert_eq!(bc.solutions.len(), 5);
    }

    #[test]
    fn does_far_more_work_than_a_single_enumeration() {
        // The re-solving pattern must visit many more nodes than the original
        // single-pass backtracking enumeration.
        let p = mixed_problem();
        let orig = super::super::OriginalBacktrackingSolver::new()
            .solve(&p)
            .unwrap();
        let bc = BlockingClauseSolver::new().solve(&p).unwrap();
        assert!(bc.stats.nodes > orig.stats.nodes);
    }

    #[test]
    fn unsatisfiable_is_empty() {
        let p = unsatisfiable_problem();
        let r = BlockingClauseSolver::new().solve(&p).unwrap();
        assert!(r.solutions.is_empty());
    }

    #[test]
    fn solutions_with_identical_display_forms_are_not_conflated() {
        // Int(1) and Str("1") both render as "1": with display-string
        // blocking keys the second solution was treated as already blocked
        // and silently dropped from the enumeration.
        use crate::value::Value;
        let mut p = Problem::new();
        p.add_variable("x", vec![Value::Int(1), Value::str("1")])
            .unwrap();
        p.add_variable("y", vec![Value::Int(7)]).unwrap();
        let bf = BruteForceSolver::new().solve(&p).unwrap();
        let bc = BlockingClauseSolver::new().solve(&p).unwrap();
        assert_eq!(bf.solutions.len(), 2);
        assert_eq!(bc.solutions.len(), 2);
        assert!(bf.solutions.same_solutions(&bc.solutions));
    }

    #[test]
    fn python_equal_duplicate_domain_values_are_not_conflated() {
        // Int(2) and Float(2.0) are distinct domain entries that compare
        // Python-equal; index-path blocking keys must enumerate both, like
        // every other solver does.
        use crate::value::{int_values, Value};
        let mut p = Problem::new();
        p.add_variable("x", vec![Value::Int(2), Value::Float(2.0)])
            .unwrap();
        p.add_variable("y", int_values(1..=8)).unwrap();
        let bf = BruteForceSolver::new().solve(&p).unwrap();
        let bc = BlockingClauseSolver::new().solve(&p).unwrap();
        assert_eq!(bf.solutions.len(), 16);
        assert_eq!(bc.solutions.len(), 16);
    }
}
