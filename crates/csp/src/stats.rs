//! Solver statistics: constraint evaluations, search nodes, pruning counts.
//!
//! Table 2 of the paper reports the *average number of constraint evaluations
//! required* to brute-force a search space; the solvers here count their
//! actual constraint checks so the harness can reproduce that column and
//! compare solver effort independent of wall-clock noise.

/// Counters accumulated during one solver run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Number of constraint checks / evaluations performed.
    pub constraint_checks: u64,
    /// Number of search nodes visited (value assignments tried).
    pub nodes: u64,
    /// Number of solutions found.
    pub solutions: u64,
    /// Number of domain values removed by preprocessing.
    pub preprocess_removed: u64,
    /// Number of backtracks performed.
    pub backtracks: u64,
}

impl SolveStats {
    /// Merge another stats record into this one (used by parallel solvers).
    pub fn merge(&mut self, other: &SolveStats) {
        self.constraint_checks += other.constraint_checks;
        self.nodes += other.nodes;
        self.solutions += other.solutions;
        self.preprocess_removed += other.preprocess_removed;
        self.backtracks += other.backtracks;
    }
}

/// Theoretical average number of constraint evaluations for brute force, as
/// defined in Section 5.3 of the paper: every invalid combination is rejected
/// after between 1 (best case) and `|S_c|` (worst case) evaluations — on
/// average `(1 + |S_c|)/2` — and every valid combination is counted once, so
/// `avg = |S_i| * (1 + |S_c|)/2 + |S_v|`. This reproduces the rightmost
/// column of Table 2 exactly (e.g. Dedispersion 33414, ExpDist 23889240).
pub fn expected_brute_force_evaluations(invalid: u128, valid: u128, num_constraints: usize) -> f64 {
    invalid as f64 * (1.0 + num_constraints as f64) / 2.0 + valid as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = SolveStats {
            constraint_checks: 10,
            nodes: 5,
            solutions: 2,
            preprocess_removed: 1,
            backtracks: 3,
        };
        let b = SolveStats {
            constraint_checks: 7,
            nodes: 2,
            solutions: 1,
            preprocess_removed: 0,
            backtracks: 1,
        };
        a.merge(&b);
        assert_eq!(a.constraint_checks, 17);
        assert_eq!(a.nodes, 7);
        assert_eq!(a.solutions, 3);
        assert_eq!(a.backtracks, 4);
    }

    #[test]
    fn paper_formula_matches_dedispersion_row() {
        // Table 2: Dedispersion has Cartesian 22272, 49.973% valid, 3
        // constraints, avg evaluations 33414.
        let cartesian = 22272u128;
        let valid = (cartesian as f64 * 0.49973).round() as u128;
        let invalid = cartesian - valid;
        let avg = expected_brute_force_evaluations(invalid, valid, 3);
        assert!((avg - 33414.0).abs() < 150.0, "avg = {avg}");
    }

    #[test]
    fn paper_formula_matches_expdist_row() {
        // Table 2: ExpDist has Cartesian 9732096, 294000 valid configurations,
        // 4 constraints, avg evaluations 23889240.
        let cartesian = 9_732_096u128;
        let valid = 294_000u128;
        let invalid = cartesian - valid;
        let avg = expected_brute_force_evaluations(invalid, valid, 4);
        assert!((avg - 23_889_240.0).abs() < 1.0, "avg = {avg}");
    }
}
