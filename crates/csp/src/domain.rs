//! Finite variable domains with hide/restore support for forward checking.
//!
//! A [`Domain`] is an ordered list of candidate [`Value`]s for one variable.
//! During search, forward checking temporarily *hides* values that are
//! incompatible with the current partial assignment; on backtrack the hidden
//! values are restored. This mirrors the `Domain` class of python-constraint
//! (`pushState` / `popState` / `hideValue`), with one deliberate difference:
//! restoration puts every value back at the position it was hidden from, so
//! the visible order never depends on search history. Solvers therefore
//! enumerate solutions in a canonical order — which is what makes
//! analyzer-driven domain pre-pruning produce byte-identical spaces.

use crate::value::Value;

/// The domain of a single variable.
#[derive(Debug, Clone)]
pub struct Domain {
    values: Vec<Value>,
    /// Hidden values with the index they were removed from; restored LIFO,
    /// which exactly inverts the removals.
    hidden: Vec<(usize, Value)>,
    states: Vec<usize>,
    /// Size at construction, before any permanent removal. Search-order
    /// heuristics tie-break on this instead of [`Domain::len`] so that
    /// pre-pruning (which shrinks domains without changing the solution
    /// set) cannot perturb the enumeration order.
    declared: usize,
}

impl Domain {
    /// Create a domain from a list of values. Duplicate values are retained
    /// (problem construction is responsible for deduplication if desired).
    pub fn new(values: Vec<Value>) -> Self {
        let declared = values.len();
        Domain {
            values,
            hidden: Vec::new(),
            states: Vec::new(),
            declared,
        }
    }

    /// The domain size at construction, unaffected by permanent removals
    /// (pre-pruning, preprocessing). See the field docs for why search
    /// heuristics use this rather than the live [`Domain::len`].
    pub fn declared_len(&self) -> usize {
        self.declared
    }

    /// Currently visible values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of currently visible values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no values are currently visible.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Whether the (visible) domain contains `value`.
    pub fn contains(&self, value: &Value) -> bool {
        self.values.iter().any(|v| v == value)
    }

    /// Permanently remove a value (used by preprocessing).
    /// Returns `true` if a value was removed.
    pub fn remove(&mut self, value: &Value) -> bool {
        if let Some(pos) = self.values.iter().position(|v| v == value) {
            self.values.remove(pos);
            true
        } else {
            false
        }
    }

    /// Permanently retain only values for which the predicate holds.
    /// Returns the number of removed values.
    pub fn retain<F: FnMut(&Value) -> bool>(&mut self, mut pred: F) -> usize {
        let before = self.values.len();
        self.values.retain(|v| pred(v));
        before - self.values.len()
    }

    /// Record a restore point for [`Domain::pop_state`].
    pub fn push_state(&mut self) {
        self.states.push(self.hidden.len());
    }

    /// Restore all values hidden since the matching [`Domain::push_state`].
    /// Values go back to the positions they were hidden from (LIFO
    /// reinsertion exactly inverts the removals), so the visible order is
    /// independent of what the search hid in between.
    pub fn pop_state(&mut self) {
        let mark = self.states.pop().unwrap_or(0);
        while self.hidden.len() > mark {
            let (pos, v) = self.hidden.pop().expect("hidden not empty");
            self.values.insert(pos.min(self.values.len()), v);
        }
    }

    /// Temporarily hide `value` until the enclosing state is popped.
    /// Returns `true` if the value was present and is now hidden.
    pub fn hide_value(&mut self, value: &Value) -> bool {
        if let Some(pos) = self.values.iter().position(|v| v == value) {
            let v = self.values.remove(pos);
            self.hidden.push((pos, v));
            true
        } else {
            false
        }
    }

    /// Hide all values for which the predicate returns `false`.
    /// Returns `true` if at least one value remains visible afterwards.
    pub fn hide_where<F: FnMut(&Value) -> bool>(&mut self, mut keep: F) -> bool {
        let mut i = 0;
        while i < self.values.len() {
            if keep(&self.values[i]) {
                i += 1;
            } else {
                let v = self.values.remove(i);
                self.hidden.push((i, v));
            }
        }
        !self.values.is_empty()
    }

    /// Reset the domain, restoring every hidden value and dropping states.
    pub fn reset(&mut self) {
        while let Some((pos, v)) = self.hidden.pop() {
            self.values.insert(pos.min(self.values.len()), v);
        }
        self.states.clear();
    }

    /// Minimum numeric value in the visible domain, if all values are numeric.
    pub fn numeric_min(&self) -> Option<f64> {
        self.values
            .iter()
            .map(|v| v.as_f64())
            .try_fold(f64::INFINITY, |acc, v| v.map(|v| acc.min(v)))
            .filter(|_| !self.values.is_empty())
    }

    /// Maximum numeric value in the visible domain, if all values are numeric.
    pub fn numeric_max(&self) -> Option<f64> {
        self.values
            .iter()
            .map(|v| v.as_f64())
            .try_fold(f64::NEG_INFINITY, |acc, v| v.map(|v| acc.max(v)))
            .filter(|_| !self.values.is_empty())
    }
}

/// The set of domains of all variables in a problem, indexed by variable id.
#[derive(Debug, Clone, Default)]
pub struct DomainStore {
    domains: Vec<Domain>,
}

impl DomainStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a store from per-variable domains in variable-id order.
    pub fn from_domains(domains: Vec<Domain>) -> Self {
        DomainStore { domains }
    }

    /// Add a domain, returning its variable id.
    pub fn push(&mut self, domain: Domain) -> usize {
        self.domains.push(domain);
        self.domains.len() - 1
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// True when the store holds no variables.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// Domain of variable `var`.
    pub fn domain(&self, var: usize) -> &Domain {
        &self.domains[var]
    }

    /// Mutable domain of variable `var`.
    pub fn domain_mut(&mut self, var: usize) -> &mut Domain {
        &mut self.domains[var]
    }

    /// Iterate over `(variable id, domain)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Domain)> {
        self.domains.iter().enumerate()
    }

    /// Product of visible domain sizes (the Cartesian size), saturating.
    pub fn cartesian_size(&self) -> u128 {
        self.domains
            .iter()
            .map(|d| d.len() as u128)
            .fold(1u128, |a, b| a.saturating_mul(b))
    }

    /// Push a restore state on every domain.
    pub fn push_state_all(&mut self) {
        for d in &mut self.domains {
            d.push_state();
        }
    }

    /// Pop a restore state from every domain.
    pub fn pop_state_all(&mut self) {
        for d in &mut self.domains {
            d.pop_state();
        }
    }

    /// Reset every domain.
    pub fn reset_all(&mut self) {
        for d in &mut self.domains {
            d.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::int_values;

    #[test]
    fn basic_accessors() {
        let d = Domain::new(int_values([1, 2, 3]));
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert!(d.contains(&Value::Int(2)));
        assert!(!d.contains(&Value::Int(9)));
        assert_eq!(d.numeric_min(), Some(1.0));
        assert_eq!(d.numeric_max(), Some(3.0));
    }

    #[test]
    fn hide_and_restore() {
        let mut d = Domain::new(int_values([1, 2, 3, 4]));
        d.push_state();
        assert!(d.hide_value(&Value::Int(2)));
        assert!(d.hide_value(&Value::Int(4)));
        assert!(!d.hide_value(&Value::Int(9)));
        assert_eq!(d.len(), 2);
        d.pop_state();
        assert_eq!(d.len(), 4);
        assert!(d.contains(&Value::Int(2)));
        assert!(d.contains(&Value::Int(4)));
    }

    #[test]
    fn nested_states() {
        let mut d = Domain::new(int_values([1, 2, 3, 4, 5]));
        d.push_state();
        d.hide_value(&Value::Int(1));
        d.push_state();
        d.hide_value(&Value::Int(2));
        d.hide_value(&Value::Int(3));
        assert_eq!(d.len(), 2);
        d.pop_state();
        assert_eq!(d.len(), 4);
        d.pop_state();
        assert_eq!(d.len(), 5);
    }

    #[test]
    fn hide_where_keeps_matching() {
        let mut d = Domain::new(int_values([1, 2, 3, 4, 5, 6]));
        d.push_state();
        let nonempty = d.hide_where(|v| v.as_i64().unwrap() % 2 == 0);
        assert!(nonempty);
        assert_eq!(d.values(), &int_values([2, 4, 6])[..]);
        d.pop_state();
        assert_eq!(d.len(), 6);
    }

    #[test]
    fn hide_where_can_empty_domain() {
        let mut d = Domain::new(int_values([1, 3, 5]));
        d.push_state();
        let nonempty = d.hide_where(|v| v.as_i64().unwrap() % 2 == 0);
        assert!(!nonempty);
        assert!(d.is_empty());
        d.pop_state();
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn permanent_removal() {
        let mut d = Domain::new(int_values([1, 2, 3, 4]));
        assert!(d.remove(&Value::Int(3)));
        assert!(!d.remove(&Value::Int(3)));
        assert_eq!(d.retain(|v| v.as_i64().unwrap() < 4), 1);
        assert_eq!(d.values(), &int_values([1, 2])[..]);
    }

    #[test]
    fn reset_restores_everything() {
        let mut d = Domain::new(int_values([1, 2, 3]));
        d.push_state();
        d.hide_value(&Value::Int(1));
        d.hide_value(&Value::Int(2));
        d.reset();
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn store_cartesian_size() {
        let mut s = DomainStore::new();
        s.push(Domain::new(int_values([1, 2, 3])));
        s.push(Domain::new(int_values([1, 2])));
        s.push(Domain::new(int_values([1, 2, 3, 4])));
        assert_eq!(s.cartesian_size(), 24);
        assert_eq!(s.len(), 3);
        s.push_state_all();
        s.domain_mut(1).hide_value(&Value::Int(1));
        assert_eq!(s.cartesian_size(), 12);
        s.pop_state_all();
        assert_eq!(s.cartesian_size(), 24);
    }

    #[test]
    fn non_numeric_min_max() {
        let d = Domain::new(vec![Value::str("a"), Value::str("b")]);
        assert_eq!(d.numeric_min(), None);
        assert_eq!(d.numeric_max(), None);
    }
}
