//! Dynamic values for tunable parameters.
//!
//! Auto-tuning frameworks such as Kernel Tuner allow tunable parameters to
//! take integer, floating point, boolean and string values, and constraints
//! are written against them with Python semantics (integers and floats mix
//! freely, `/` is true division, `//` is floor division, `**` is power).
//! [`Value`] reproduces those semantics so constraint expressions written for
//! the Python tuners evaluate identically here.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A single parameter value.
///
/// Values are small and cheap to clone: strings are reference counted.
#[derive(Debug, Clone)]
pub enum Value {
    /// A signed integer value.
    Int(i64),
    /// A double-precision floating point value.
    Float(f64),
    /// A boolean value. Booleans participate in arithmetic as 0/1, mirroring
    /// Python's `bool` (a subtype of `int`).
    Bool(bool),
    /// A string value (e.g. a code-generation variant name).
    Str(Arc<str>),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Returns `true` for [`Value::Int`], [`Value::Float`] and [`Value::Bool`].
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_) | Value::Bool(_))
    }

    /// Returns the value as an `f64` if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Str(_) => None,
        }
    }

    /// Returns the value as an `i64` if it is an integer-like value
    /// (an `Int`, a `Bool`, or a `Float` with an exact integral value).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Bool(b) => Some(if *b { 1 } else { 0 }),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => Some(*f as i64),
            _ => None,
        }
    }

    /// Returns the string contents if the value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Python-style truthiness: zero, `false` and the empty string are falsy.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Bool(b) => *b,
            Value::Str(s) => !s.is_empty(),
        }
    }

    /// Name of the runtime type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Bool(_) => "bool",
            Value::Str(_) => "str",
        }
    }

    fn as_int_like(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Bool(b) => Some(if *b { 1 } else { 0 }),
            _ => None,
        }
    }

    /// Addition with Python numeric promotion. Returns `None` on a type error.
    pub fn add(&self, other: &Value) -> Option<Value> {
        match (self.as_int_like(), other.as_int_like()) {
            (Some(a), Some(b)) => match a.checked_add(b) {
                Some(v) => Some(Value::Int(v)),
                None => Some(Value::Float(a as f64 + b as f64)),
            },
            _ => Some(Value::Float(self.as_f64()? + other.as_f64()?)),
        }
    }

    /// Subtraction with Python numeric promotion.
    pub fn sub(&self, other: &Value) -> Option<Value> {
        match (self.as_int_like(), other.as_int_like()) {
            (Some(a), Some(b)) => match a.checked_sub(b) {
                Some(v) => Some(Value::Int(v)),
                None => Some(Value::Float(a as f64 - b as f64)),
            },
            _ => Some(Value::Float(self.as_f64()? - other.as_f64()?)),
        }
    }

    /// Multiplication with Python numeric promotion.
    pub fn mul(&self, other: &Value) -> Option<Value> {
        match (self.as_int_like(), other.as_int_like()) {
            (Some(a), Some(b)) => match a.checked_mul(b) {
                Some(v) => Some(Value::Int(v)),
                None => Some(Value::Float(a as f64 * b as f64)),
            },
            _ => Some(Value::Float(self.as_f64()? * other.as_f64()?)),
        }
    }

    /// True division (always produces a float), like Python's `/`.
    pub fn div(&self, other: &Value) -> Option<Value> {
        let d = other.as_f64()?;
        if d == 0.0 {
            return None;
        }
        Some(Value::Float(self.as_f64()? / d))
    }

    /// Floor division, like Python's `//`.
    pub fn floordiv(&self, other: &Value) -> Option<Value> {
        match (self.as_int_like(), other.as_int_like()) {
            (Some(a), Some(b)) => {
                if b == 0 {
                    return None;
                }
                Some(Value::Int(a.div_euclid(b)))
            }
            _ => {
                let d = other.as_f64()?;
                if d == 0.0 {
                    return None;
                }
                Some(Value::Float((self.as_f64()? / d).floor()))
            }
        }
    }

    /// Modulo, like Python's `%` (result takes the sign of the divisor).
    pub fn rem(&self, other: &Value) -> Option<Value> {
        match (self.as_int_like(), other.as_int_like()) {
            (Some(a), Some(b)) => {
                if b == 0 {
                    return None;
                }
                Some(Value::Int(a.rem_euclid(b)))
            }
            _ => {
                let d = other.as_f64()?;
                if d == 0.0 {
                    return None;
                }
                let r = self.as_f64()?.rem_euclid(d);
                Some(Value::Float(r))
            }
        }
    }

    /// Exponentiation, like Python's `**`.
    pub fn pow(&self, other: &Value) -> Option<Value> {
        match (self.as_int_like(), other.as_int_like()) {
            (Some(a), Some(b)) if b >= 0 && b <= u32::MAX as i64 => match a.checked_pow(b as u32) {
                Some(v) => Some(Value::Int(v)),
                None => Some(Value::Float((a as f64).powf(b as f64))),
            },
            _ => Some(Value::Float(self.as_f64()?.powf(other.as_f64()?))),
        }
    }

    /// Unary negation.
    pub fn neg(&self) -> Option<Value> {
        match self {
            Value::Int(i) => Some(Value::Int(-i)),
            Value::Float(f) => Some(Value::Float(-f)),
            Value::Bool(b) => Some(Value::Int(if *b { -1 } else { 0 })),
            Value::Str(_) => None,
        }
    }

    /// Ordering with Python comparison semantics: numerics compare by value
    /// across `Int`/`Float`/`Bool`, strings compare lexicographically, and
    /// cross-type comparisons between numbers and strings are undefined.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Str(_), _) | (_, Value::Str(_)) => None,
            _ => self.as_f64()?.partial_cmp(&other.as_f64()?),
        }
    }

    /// Python `==` semantics: numerics compare by value, strings by content,
    /// numbers never equal strings.
    pub fn py_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Str(_), _) | (_, Value::Str(_)) => false,
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            },
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.py_eq(other)
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
            v => {
                // Hash numerics consistently with `py_eq`: integral floats and
                // booleans hash identically to the corresponding integer.
                let f = v.as_f64().expect("numeric variant");
                if f.fract() == 0.0 && f.abs() < 9.0e18 {
                    0u8.hash(state);
                    (f as i64).hash(state);
                } else {
                    1u8.hash(state);
                    f.to_bits().hash(state);
                }
            }
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.compare(other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Bool(b) => write!(f, "{}", if *b { "True" } else { "False" }),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::str(v)
    }
}

/// Convenience: build a `Vec<Value>` of integers from an iterator.
pub fn int_values<I: IntoIterator<Item = i64>>(iter: I) -> Vec<Value> {
    iter.into_iter().map(Value::Int).collect()
}

/// Convenience: build a `Vec<Value>` of powers of two `2^0 .. 2^(n-1)`.
pub fn pow2_values(n: u32) -> Vec<Value> {
    (0..n).map(|i| Value::Int(1 << i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_arithmetic_stays_int() {
        let a = Value::Int(6);
        let b = Value::Int(4);
        assert_eq!(a.add(&b).unwrap(), Value::Int(10));
        assert_eq!(a.sub(&b).unwrap(), Value::Int(2));
        assert_eq!(a.mul(&b).unwrap(), Value::Int(24));
        assert_eq!(a.floordiv(&b).unwrap(), Value::Int(1));
        assert_eq!(a.rem(&b).unwrap(), Value::Int(2));
        assert_eq!(a.pow(&Value::Int(2)).unwrap(), Value::Int(36));
    }

    #[test]
    fn true_division_is_float() {
        let a = Value::Int(6);
        let b = Value::Int(4);
        assert_eq!(a.div(&b).unwrap(), Value::Float(1.5));
    }

    #[test]
    fn division_by_zero_is_none() {
        assert!(Value::Int(1).div(&Value::Int(0)).is_none());
        assert!(Value::Int(1).floordiv(&Value::Int(0)).is_none());
        assert!(Value::Int(1).rem(&Value::Int(0)).is_none());
    }

    #[test]
    fn mixed_arithmetic_promotes_to_float() {
        let a = Value::Int(3);
        let b = Value::Float(0.5);
        assert_eq!(a.add(&b).unwrap(), Value::Float(3.5));
        assert_eq!(a.mul(&b).unwrap(), Value::Float(1.5));
    }

    #[test]
    fn overflow_promotes_to_float() {
        let a = Value::Int(i64::MAX);
        let r = a.add(&Value::Int(1)).unwrap();
        assert!(matches!(r, Value::Float(_)));
    }

    #[test]
    fn bool_participates_as_int() {
        assert_eq!(
            Value::Bool(true).add(&Value::Int(1)).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            Value::Bool(false).mul(&Value::Int(5)).unwrap(),
            Value::Int(0)
        );
    }

    #[test]
    fn python_floor_and_mod_signs() {
        // Python: -7 // 2 == -4, -7 % 2 == 1
        assert_eq!(
            Value::Int(-7).floordiv(&Value::Int(2)).unwrap(),
            Value::Int(-4)
        );
        assert_eq!(Value::Int(-7).rem(&Value::Int(2)).unwrap(), Value::Int(1));
    }

    #[test]
    fn cross_type_equality() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert_eq!(Value::Bool(true), Value::Int(1));
        assert_ne!(Value::Int(2), Value::str("2"));
        assert_eq!(Value::str("abc"), Value::str("abc"));
    }

    #[test]
    fn hash_consistent_with_eq() {
        assert_eq!(hash_of(&Value::Int(2)), hash_of(&Value::Float(2.0)));
        assert_eq!(hash_of(&Value::Bool(true)), hash_of(&Value::Int(1)));
    }

    #[test]
    fn comparisons() {
        assert_eq!(
            Value::Int(2).compare(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::str("b").compare(&Value::str("a")),
            Some(Ordering::Greater)
        );
        assert_eq!(Value::Int(2).compare(&Value::str("a")), None);
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Int(0).truthy());
        assert!(Value::Int(-1).truthy());
        assert!(!Value::str("").truthy());
        assert!(Value::str("x").truthy());
        assert!(!Value::Float(0.0).truthy());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Bool(true).to_string(), "True");
        assert_eq!(Value::str("abc").to_string(), "abc");
    }

    #[test]
    fn helpers() {
        assert_eq!(pow2_values(4), int_values([1, 2, 4, 8]));
        assert_eq!(Value::Float(4.0).as_i64(), Some(4));
        assert_eq!(Value::Float(4.5).as_i64(), None);
        assert_eq!(Value::str("x").as_f64(), None);
    }

    #[test]
    fn pow_negative_exponent_is_float() {
        let r = Value::Int(2).pow(&Value::Int(-1)).unwrap();
        assert_eq!(r, Value::Float(0.5));
    }
}
