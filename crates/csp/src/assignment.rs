//! Partial assignments of values to variables during search.

use crate::value::Value;

/// A partial assignment of values to variables, indexed by variable id.
///
/// The solver keeps exactly one `Assignment` alive during the search and
/// mutates it in place; completed solutions are copied out.
#[derive(Debug, Clone)]
pub struct Assignment {
    values: Vec<Option<Value>>,
    assigned: usize,
}

impl Assignment {
    /// Create an empty assignment over `n` variables.
    pub fn new(n: usize) -> Self {
        Assignment {
            values: vec![None; n],
            assigned: 0,
        }
    }

    /// Number of variables (assigned or not).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the assignment covers zero variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of assigned variables.
    pub fn assigned_count(&self) -> usize {
        self.assigned
    }

    /// True when every variable has a value.
    pub fn is_complete(&self) -> bool {
        self.assigned == self.values.len()
    }

    /// The value of variable `var`, if assigned.
    #[inline]
    pub fn get(&self, var: usize) -> Option<&Value> {
        self.values[var].as_ref()
    }

    /// Whether variable `var` is assigned.
    #[inline]
    pub fn is_assigned(&self, var: usize) -> bool {
        self.values[var].is_some()
    }

    /// Assign `value` to variable `var` (replacing any previous value).
    pub fn assign(&mut self, var: usize, value: Value) {
        if self.values[var].is_none() {
            self.assigned += 1;
        }
        self.values[var] = Some(value);
    }

    /// Remove the value of variable `var`.
    pub fn unassign(&mut self, var: usize) {
        if self.values[var].is_some() {
            self.assigned -= 1;
        }
        self.values[var] = None;
    }

    /// Copy the current complete assignment into a dense solution vector in
    /// variable-id order. Panics if the assignment is not complete.
    pub fn to_solution(&self) -> Vec<Value> {
        self.values
            .iter()
            .map(|v| v.clone().expect("assignment complete"))
            .collect()
    }

    /// Copy the current complete assignment into a caller-provided buffer
    /// (cleared first), avoiding an allocation per solution on the streaming
    /// path. Panics if the assignment is not complete.
    pub fn write_solution(&self, out: &mut Vec<Value>) {
        out.clear();
        out.extend(
            self.values
                .iter()
                .map(|v| v.clone().expect("assignment complete")),
        );
    }

    /// Collect the values of `scope`, or `None` if any variable in the scope
    /// is unassigned.
    pub fn scope_values(&self, scope: &[usize]) -> Option<Vec<Value>> {
        let mut out = Vec::with_capacity(scope.len());
        for &v in scope {
            out.push(self.values[v].clone()?);
        }
        Some(out)
    }

    /// Number of unassigned variables in `scope`.
    pub fn unassigned_in_scope(&self, scope: &[usize]) -> usize {
        scope.iter().filter(|&&v| self.values[v].is_none()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_unassign_cycle() {
        let mut a = Assignment::new(3);
        assert!(!a.is_complete());
        a.assign(0, Value::Int(1));
        a.assign(2, Value::Int(3));
        assert_eq!(a.assigned_count(), 2);
        assert!(a.is_assigned(0));
        assert!(!a.is_assigned(1));
        a.assign(0, Value::Int(5)); // re-assignment does not double count
        assert_eq!(a.assigned_count(), 2);
        assert_eq!(a.get(0), Some(&Value::Int(5)));
        a.unassign(0);
        a.unassign(0); // idempotent
        assert_eq!(a.assigned_count(), 1);
    }

    #[test]
    fn complete_and_solution() {
        let mut a = Assignment::new(2);
        a.assign(0, Value::Int(10));
        a.assign(1, Value::str("x"));
        assert!(a.is_complete());
        assert_eq!(a.to_solution(), vec![Value::Int(10), Value::str("x")]);
    }

    #[test]
    fn scope_values_and_unassigned() {
        let mut a = Assignment::new(4);
        a.assign(1, Value::Int(7));
        a.assign(3, Value::Int(9));
        assert_eq!(
            a.scope_values(&[1, 3]),
            Some(vec![Value::Int(7), Value::Int(9)])
        );
        assert_eq!(a.scope_values(&[0, 1]), None);
        assert_eq!(a.unassigned_in_scope(&[0, 1, 2, 3]), 2);
    }
}
