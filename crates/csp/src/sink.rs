//! Streaming solution output: push rows into a sink as they are found.
//!
//! The paper stresses that solver output formats must stay "close to the
//! internal representation" to scale to millions of configurations
//! (Section 4.3.4). Materializing every solution as an owned
//! `Vec<Vec<Value>>` before handing it to the search-space indexer doubles
//! the peak memory of construction and adds an O(n·params) copy on the hot
//! path. The sink traits here let a solver push each solution row exactly
//! once, the moment it is found, into whatever representation the consumer
//! keeps — a [`SolutionSet`] for the classic API, or an encoding sink that
//! maps rows straight to `u32` code rows (see `at_searchspace`).
//!
//! # Trait layout
//!
//! * [`RowSink`] — the minimal receiver: `push_row(&[Value])`. Implemented
//!   by per-thread chunk buffers and by [`SolutionSet`] itself.
//! * [`SolutionSink`] — a `RowSink` that can additionally hand out
//!   independent per-thread chunk buffers ([`SolutionSink::new_chunk`]) and
//!   merge them back ([`SolutionSink::merge_chunk`]), which is how the
//!   parallel solvers stream without sharing mutable state across workers.
//!
//! A sink may abort enumeration by returning an error from
//! [`RowSink::push_row`]; solvers propagate it immediately.
//!
//! ```
//! use at_csp::prelude::*;
//! use at_csp::sink::CountingSink;
//!
//! let mut problem = Problem::new();
//! problem.add_variable("x", int_values([1, 2, 3, 4])).unwrap();
//! problem.add_variable("y", int_values([1, 2, 3, 4])).unwrap();
//! problem.add_constraint(MaxProduct::new(4.0), &["x", "y"]).unwrap();
//!
//! // Count solutions without materializing any of them.
//! let mut count = CountingSink::default();
//! let stats = OptimizedSolver::new().solve_into(&problem, &mut count).unwrap();
//! assert_eq!(count.rows(), stats.solutions);
//! ```

use std::any::Any;

use crate::error::{CspError, CspResult};
use crate::solution::SolutionSet;
use crate::value::Value;

/// The minimal streaming receiver of solver output.
///
/// `row` holds the values of one valid configuration in **variable
/// declaration order** (the same column order as [`SolutionSet`]); the slice
/// is only valid for the duration of the call — implementations must copy
/// (or encode) what they keep.
pub trait RowSink: Send {
    /// Receive one solution row. Returning an error aborts the enumeration;
    /// the solver propagates it unchanged.
    fn push_row(&mut self, row: &[Value]) -> CspResult<()>;

    /// Type-erased move out of a `Box<Self>`, used by
    /// [`SolutionSink::merge_chunk`] implementations to recover the concrete
    /// chunk type without copying its contents.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// A streaming receiver that also supports data-parallel production.
///
/// The parallel solvers never push into the sink from worker threads.
/// Instead each worker calls [`SolutionSink::new_chunk`] through a shared
/// reference, pushes its rows into the private chunk, and the solver merges
/// the finished chunks back on its own thread — in deterministic subproblem
/// order — with [`SolutionSink::merge_chunk`].
///
/// The default implementations buffer decoded rows in a [`RowChunk`]; sinks
/// with a cheaper internal representation (such as `at_searchspace`'s
/// encoding sink) override **both** methods so chunks carry that
/// representation and merging is a buffer append, not a re-push of rows.
/// Chunks are only ever merged into the sink that created them.
pub trait SolutionSink: RowSink + Sync {
    /// Create an empty per-thread chunk buffer. Callable concurrently from
    /// worker threads through a shared reference.
    fn new_chunk(&self) -> Box<dyn RowSink> {
        Box::new(RowChunk::default())
    }

    /// Merge a chunk previously produced by [`SolutionSink::new_chunk`] on
    /// this sink (rows keep their per-chunk order).
    fn merge_chunk(&mut self, chunk: Box<dyn RowSink>) -> CspResult<()> {
        let chunk = chunk
            .into_any()
            .downcast::<RowChunk>()
            .map_err(|_| CspError::Solver("merge_chunk: foreign chunk type".into()))?;
        for row in &chunk.rows {
            self.push_row(row)?;
        }
        Ok(())
    }
}

/// The default per-thread chunk buffer: owned decoded rows.
///
/// Used by sinks that do not override [`SolutionSink::new_chunk`]; it holds
/// O(chunk) decoded values, not the whole space.
#[derive(Debug, Default)]
pub struct RowChunk {
    rows: Vec<Vec<Value>>,
}

impl RowChunk {
    /// The buffered rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }
}

impl RowSink for RowChunk {
    fn push_row(&mut self, row: &[Value]) -> CspResult<()> {
        self.rows.push(row.to_vec());
        Ok(())
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Collecting into a [`SolutionSet`] is the compatibility path: the classic
/// [`Solver::solve`](crate::solvers::Solver::solve) API is implemented as
/// `solve_into` with the set itself as the sink.
impl RowSink for SolutionSet {
    fn push_row(&mut self, row: &[Value]) -> CspResult<()> {
        self.push(row.to_vec());
        Ok(())
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl SolutionSink for SolutionSet {}

/// A sink that counts rows and stores nothing — useful for cardinality
/// queries and for tests that only care about solution counts.
#[derive(Debug, Default)]
pub struct CountingSink {
    rows: u64,
}

impl CountingSink {
    /// Number of rows pushed so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }
}

impl RowSink for CountingSink {
    fn push_row(&mut self, _row: &[Value]) -> CspResult<()> {
        self.rows += 1;
        Ok(())
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl SolutionSink for CountingSink {
    fn new_chunk(&self) -> Box<dyn RowSink> {
        Box::new(CountingSink::default())
    }

    fn merge_chunk(&mut self, chunk: Box<dyn RowSink>) -> CspResult<()> {
        let chunk = chunk
            .into_any()
            .downcast::<CountingSink>()
            .map_err(|_| CspError::Solver("merge_chunk: foreign chunk type".into()))?;
        self.rows += chunk.rows;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::int_values;

    struct FailingSink {
        after: u64,
        seen: u64,
    }

    impl RowSink for FailingSink {
        fn push_row(&mut self, _row: &[Value]) -> CspResult<()> {
            self.seen += 1;
            if self.seen > self.after {
                return Err(CspError::Solver("sink full".into()));
            }
            Ok(())
        }

        fn into_any(self: Box<Self>) -> Box<dyn Any> {
            self
        }
    }

    impl SolutionSink for FailingSink {}

    #[test]
    fn solution_set_collects_pushed_rows() {
        let mut set = SolutionSet::new(vec!["x".into(), "y".into()]);
        set.push_row(&int_values([1, 2])).unwrap();
        set.push_row(&int_values([3, 4])).unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.row(1), &int_values([3, 4])[..]);
    }

    #[test]
    fn default_chunking_replays_rows_in_order() {
        let mut set = SolutionSet::new(vec!["x".into()]);
        let mut chunk = set.new_chunk();
        chunk.push_row(&int_values([7])).unwrap();
        chunk.push_row(&int_values([8])).unwrap();
        set.merge_chunk(chunk).unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.row(0), &int_values([7])[..]);
    }

    #[test]
    fn counting_sink_merges_counts() {
        let mut count = CountingSink::default();
        count.push_row(&int_values([1])).unwrap();
        let mut chunk = count.new_chunk();
        chunk.push_row(&int_values([2])).unwrap();
        chunk.push_row(&int_values([3])).unwrap();
        count.merge_chunk(chunk).unwrap();
        assert_eq!(count.rows(), 3);
    }

    #[test]
    fn foreign_chunk_is_rejected() {
        let mut count = CountingSink::default();
        let foreign: Box<dyn RowSink> = Box::new(RowChunk::default());
        assert!(count.merge_chunk(foreign).is_err());
    }

    #[test]
    fn sink_errors_propagate_from_solvers() {
        use crate::constraints::MaxSum;
        use crate::problem::Problem;
        use crate::solvers::{OptimizedSolver, Solver};

        let mut p = Problem::new();
        p.add_variable("a", int_values([1, 2, 3])).unwrap();
        p.add_variable("b", int_values([1, 2, 3])).unwrap();
        p.add_constraint(MaxSum::new(100.0), &["a", "b"]).unwrap();
        let mut sink = FailingSink { after: 2, seen: 0 };
        let err = OptimizedSolver::new().solve_into(&p, &mut sink);
        assert!(err.is_err(), "push_row errors must abort enumeration");
        assert_eq!(sink.seen, 3, "enumeration stops at the failing row");
    }
}
