//! Error types for problem definition and solving.

use std::fmt;

/// Errors arising from building or solving a constraint problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CspError {
    /// A constraint referenced a variable name that was never added.
    UnknownVariable(String),
    /// A variable with the same name was added twice.
    DuplicateVariable(String),
    /// A variable was added with an empty domain.
    EmptyDomain(String),
    /// A constraint was given an invalid scope (e.g. empty, or wrong arity).
    InvalidScope(String),
    /// A type error occurred while evaluating a constraint.
    TypeError(String),
    /// A solver-specific failure.
    Solver(String),
}

impl fmt::Display for CspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CspError::UnknownVariable(n) => write!(f, "unknown variable `{n}`"),
            CspError::DuplicateVariable(n) => write!(f, "variable `{n}` defined twice"),
            CspError::EmptyDomain(n) => write!(f, "variable `{n}` has an empty domain"),
            CspError::InvalidScope(m) => write!(f, "invalid constraint scope: {m}"),
            CspError::TypeError(m) => write!(f, "type error: {m}"),
            CspError::Solver(m) => write!(f, "solver error: {m}"),
        }
    }
}

impl std::error::Error for CspError {}

/// Result alias for CSP operations.
pub type CspResult<T> = Result<T, CspError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CspError::UnknownVariable("x".into())
            .to_string()
            .contains("x"));
        assert!(CspError::EmptyDomain("y".into()).to_string().contains("y"));
        assert!(CspError::TypeError("bad".into())
            .to_string()
            .contains("bad"));
    }
}
