//! # at-csp — all-solutions constraint satisfaction for auto-tuning
//!
//! This crate is the constraint-solving substrate of the ICPP'25 paper
//! *Efficient Construction of Large Search Spaces for Auto-Tuning*: a finite
//! domain CSP library in the spirit of `python-constraint`, extended with the
//! paper's optimizations — specific constraints with domain preprocessing,
//! an iterative all-solutions backtracking solver with constraint-degree
//! variable ordering and forward checking, a data-parallel solver, and
//! baseline solvers (brute force, unoptimized backtracking, blocking-clause
//! enumeration) used in the paper's evaluation.
//!
//! Solvers produce output two ways: [`Solver::solve`] collects an owned
//! [`SolutionSet`], and [`Solver::solve_into`] *streams* each row into a
//! [`sink::SolutionSink`] the moment it is found (Section 4.3.4: output
//! close to the internal representation) — the path `at_searchspace` uses
//! to encode rows straight into its columnar arena without a decoded
//! intermediate.
//!
//! ## Quick example
//!
//! ```
//! use at_csp::prelude::*;
//!
//! let mut problem = Problem::new();
//! problem.add_variable("block_size_x", int_values([1, 2, 4, 8, 16, 32, 64])).unwrap();
//! problem.add_variable("block_size_y", int_values([1, 2, 4, 8, 16, 32, 64])).unwrap();
//! problem
//!     .add_constraint(MinProduct::new(32.0), &["block_size_x", "block_size_y"])
//!     .unwrap();
//! problem
//!     .add_constraint(MaxProduct::new(1024.0), &["block_size_x", "block_size_y"])
//!     .unwrap();
//!
//! let result = OptimizedSolver::new().solve(&problem).unwrap();
//! assert!(result.solutions.len() > 0);
//! for row in result.solutions.iter() {
//!     assert!(problem.is_valid_configuration(row));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assignment;
pub mod consistency;
pub mod constraints;
pub mod domain;
pub mod error;
pub mod problem;
pub mod sink;
pub mod solution;
pub mod solvers;
pub mod stats;
pub mod value;

pub use assignment::Assignment;
pub use consistency::{arc_consistency, node_consistency, preprune_domains, ConsistencyReport};
pub use constraints::{
    AllDifferent, AllEqual, AllowedTuples, CmpOp, Constraint, ConstraintRef, Divides, ExactProduct,
    ExactSum, FixedValue, ForbiddenTuples, FunctionConstraint, InSet, MaxProduct, MaxSum,
    MinProduct, MinSum, ModuloEquals, NotInSet, PairCompare, VarCompare,
};
pub use domain::{Domain, DomainStore};
pub use error::{CspError, CspResult};
pub use problem::{ConstraintEntry, Problem, VarId};
pub use sink::{CountingSink, RowChunk, RowSink, SolutionSink};
pub use solution::SolutionSet;
pub use solvers::{
    solver_by_name, BlockingClauseSolver, BruteForceSolver, OptimizedSolver, OptimizedSolverConfig,
    OriginalBacktrackingSolver, ParallelSolver, SolveResult, Solver,
};
pub use stats::{expected_brute_force_evaluations, SolveStats};
pub use value::Value;

/// Commonly used items in one import.
pub mod prelude {
    pub use crate::constraints::{
        AllDifferent, AllEqual, AllowedTuples, CmpOp, Constraint, Divides, ExactProduct, ExactSum,
        FixedValue, ForbiddenTuples, FunctionConstraint, InSet, MaxProduct, MaxSum, MinProduct,
        MinSum, ModuloEquals, NotInSet, PairCompare, VarCompare,
    };
    pub use crate::problem::Problem;
    pub use crate::sink::{RowSink, SolutionSink};
    pub use crate::solution::SolutionSet;
    pub use crate::solvers::{
        BlockingClauseSolver, BruteForceSolver, OptimizedSolver, OptimizedSolverConfig,
        OriginalBacktrackingSolver, ParallelSolver, SolveResult, Solver,
    };
    pub use crate::value::{int_values, pow2_values, Value};
}
