//! Arc-consistency preprocessing (AC-3 style).
//!
//! The optimized solver already prunes domains through the *specific*
//! constraints (Section 4.3.2). Arc consistency generalizes that idea to any
//! constraint: a value is removed from a variable's domain when no combination
//! of values of the other variables in the constraint's scope supports it.
//! This is the classic AC-3 algorithm extended to non-binary scopes
//! (generalized arc consistency), bounded to small scopes because the support
//! check is exponential in the scope size — auto-tuning constraints involve
//! 2.6 unique parameters on average (Table 2 of the paper), so the bound is
//! rarely hit in practice.
//!
//! Arc consistency is exposed both as a standalone preprocessing pass and as
//! an opt-in flag on [`crate::OptimizedSolverConfig`], so the ablation
//! benchmarks can measure whether the extra propagation pays for itself.

use crate::domain::DomainStore;
use crate::error::CspResult;
use crate::problem::Problem;
use crate::value::Value;

/// Maximum constraint scope size for which support checking is attempted.
/// Larger scopes are skipped (they are still enforced during search).
pub const MAX_GAC_SCOPE: usize = 3;

/// The outcome of a consistency pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConsistencyReport {
    /// Total number of values removed from domains.
    pub removed: usize,
    /// False when some domain was emptied — the problem has no solutions.
    pub consistent: bool,
}

/// Enforce node consistency: filter every variable's domain through the unary
/// constraints that mention it.
pub fn node_consistency(
    problem: &Problem,
    domains: &mut DomainStore,
) -> CspResult<ConsistencyReport> {
    let mut removed = 0usize;
    for entry in problem.constraints() {
        if entry.scope.len() != 1 {
            continue;
        }
        let var = entry.scope[0];
        removed += domains
            .domain_mut(var)
            .retain(|v| entry.constraint.evaluate(std::slice::from_ref(v)));
        if domains.domain(var).is_empty() {
            return Ok(ConsistencyReport {
                removed,
                consistent: false,
            });
        }
    }
    Ok(ConsistencyReport {
        removed,
        consistent: true,
    })
}

/// Enforce (generalized) arc consistency with an AC-3 worklist.
///
/// Returns the number of removed values and whether every domain is still
/// non-empty. Constraints with more than [`MAX_GAC_SCOPE`] variables are
/// skipped.
pub fn arc_consistency(
    problem: &Problem,
    domains: &mut DomainStore,
) -> CspResult<ConsistencyReport> {
    let node = node_consistency(problem, domains)?;
    if !node.consistent {
        return Ok(node);
    }
    let mut removed = node.removed;

    // Worklist of (constraint index, position of the variable to revise).
    let eligible: Vec<usize> = problem
        .constraints()
        .iter()
        .enumerate()
        .filter(|(_, e)| e.scope.len() >= 2 && e.scope.len() <= MAX_GAC_SCOPE)
        .map(|(i, _)| i)
        .collect();
    let mut worklist: Vec<(usize, usize)> = eligible
        .iter()
        .flat_map(|&ci| (0..problem.constraints()[ci].scope.len()).map(move |pos| (ci, pos)))
        .collect();

    while let Some((ci, pos)) = worklist.pop() {
        let entry = &problem.constraints()[ci];
        let var = entry.scope[pos];
        let pruned = revise(problem, domains, ci, pos)?;
        if pruned == 0 {
            continue;
        }
        removed += pruned;
        if domains.domain(var).is_empty() {
            return Ok(ConsistencyReport {
                removed,
                consistent: false,
            });
        }
        // Re-examine every other constraint that mentions `var`, for each of
        // its *other* variables.
        for &cj in &eligible {
            if cj == ci {
                continue;
            }
            let other = &problem.constraints()[cj];
            if !other.scope.contains(&var) {
                continue;
            }
            for (qos, &other_var) in other.scope.iter().enumerate() {
                if other_var != var && !worklist.contains(&(cj, qos)) {
                    worklist.push((cj, qos));
                }
            }
        }
    }
    Ok(ConsistencyReport {
        removed,
        consistent: true,
    })
}

/// Analyzer-driven domain pre-pruning: run [`arc_consistency`] over a
/// scratch domain store and commit the shrunken domains back into the
/// problem itself.
///
/// Every removed value has no supporting assignment in some constraint,
/// so it appears in **no** solution: the solution set — and any search
/// space built from it — is unchanged, while every solver now iterates
/// smaller domains. Domains are never emptied: when the pass detects a
/// wipeout (the problem is unsatisfiable) the problem is left exactly
/// as it was and the report says `consistent: false`; discovering
/// emptiness stays the solve's job.
pub fn preprune_domains(problem: &mut Problem) -> CspResult<ConsistencyReport> {
    let mut domains = problem.domain_store();
    let report = arc_consistency(problem, &mut domains)?;
    if !report.consistent {
        return Ok(ConsistencyReport {
            removed: 0,
            consistent: false,
        });
    }
    let mut removed = 0usize;
    for id in 0..problem.num_variables() {
        let survivors = domains.domain(id);
        removed += problem
            .retain_domain(id, |v| survivors.contains(v))
            .unwrap_or(0);
    }
    Ok(ConsistencyReport {
        removed,
        consistent: true,
    })
}

/// Remove the values of the variable at `pos` in the scope of constraint `ci`
/// that have no supporting combination of the other scope variables.
/// Returns the number of removed values.
fn revise(problem: &Problem, domains: &mut DomainStore, ci: usize, pos: usize) -> CspResult<usize> {
    let entry = &problem.constraints()[ci];
    let scope = &entry.scope;
    let var = scope[pos];

    // Snapshot the other variables' current domains.
    let others: Vec<(usize, Vec<Value>)> = scope
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != pos)
        .map(|(i, &v)| (i, domains.domain(v).values().to_vec()))
        .collect();

    let constraint = &entry.constraint;
    let removed = domains.domain_mut(var).retain(|candidate| {
        let mut tuple: Vec<Value> = vec![Value::Int(0); scope.len()];
        tuple[pos] = candidate.clone();
        has_support(constraint.as_ref(), &mut tuple, &others, 0)
    });
    Ok(removed)
}

/// Depth-first search for one supporting assignment of the remaining scope
/// positions in `others[depth..]`.
fn has_support(
    constraint: &dyn crate::constraints::Constraint,
    tuple: &mut [Value],
    others: &[(usize, Vec<Value>)],
    depth: usize,
) -> bool {
    if depth == others.len() {
        return constraint.evaluate(tuple);
    }
    let (pos, ref values) = others[depth];
    for v in values {
        tuple[pos] = v.clone();
        if has_support(constraint, tuple, others, depth + 1) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::{MaxProduct, MinProduct, PairCompare};
    use crate::prelude::*;
    use crate::value::int_values;

    fn block_problem() -> Problem {
        let mut p = Problem::new();
        p.add_variable("x", int_values([1, 2, 4, 8, 16, 32, 64, 128]))
            .unwrap();
        p.add_variable("y", int_values([1, 2, 4, 8, 16, 32]))
            .unwrap();
        p.add_constraint(MinProduct::new(32.0), &["x", "y"])
            .unwrap();
        p.add_constraint(MaxProduct::new(256.0), &["x", "y"])
            .unwrap();
        p
    }

    #[test]
    fn node_consistency_filters_unary_constraints() {
        let mut p = Problem::new();
        p.add_variable("x", int_values([1, 2, 3, 4, 5, 6])).unwrap();
        p.add_function_constraint(&["x"], |v| v[0].as_i64().unwrap() % 2 == 0)
            .unwrap();
        let mut domains = p.domain_store();
        let report = node_consistency(&p, &mut domains).unwrap();
        assert!(report.consistent);
        assert_eq!(report.removed, 3);
        assert_eq!(domains.domain(0).values(), &int_values([2, 4, 6])[..]);
    }

    #[test]
    fn arc_consistency_prunes_unsupported_values() {
        let p = block_problem();
        let mut domains = p.domain_store();
        let report = arc_consistency(&p, &mut domains).unwrap();
        assert!(report.consistent);
        // x = 1 has no y with x*y >= 32 and <= 256? 1*32 = 32 works, so 1 stays.
        // x = 128 needs y >= 0.25 and y <= 2: y in {1, 2} works, so it stays.
        // y = 1 needs x >= 32: satisfied by 32/64/128, stays.
        // Every x value has some support; but x = 1 requires y = 32 exactly,
        // which is present, so nothing may be pruned for x. Check y: y = 32
        // needs x <= 8 and x >= 1: supported. The constraint network is
        // already arc consistent, so nothing is removed.
        assert_eq!(report.removed, 0);
        // Tighten the product ceiling: x = 128 then has no supporting y
        // (it would need 32 <= 128*y <= 64, i.e. a fractional y).
        let mut p2 = Problem::new();
        p2.add_variable("x", int_values([1, 2, 4, 8, 16, 32, 64, 128]))
            .unwrap();
        p2.add_variable("y", int_values([1, 2, 4, 8, 16, 32]))
            .unwrap();
        p2.add_constraint(MinProduct::new(32.0), &["x", "y"])
            .unwrap();
        p2.add_constraint(MaxProduct::new(64.0), &["x", "y"])
            .unwrap();
        let mut domains2 = p2.domain_store();
        let report2 = arc_consistency(&p2, &mut domains2).unwrap();
        assert!(report2.consistent);
        assert!(report2.removed > 0);
        // every surviving x must still admit some surviving y
        for v in domains2.domain(0).values() {
            let x = v.as_i64().unwrap();
            assert!(
                domains2.domain(1).values().iter().any(|yv| {
                    let y = yv.as_i64().unwrap();
                    x * y >= 32 && x * y <= 64
                }),
                "unsupported x value {x} survived"
            );
        }
        assert!(!domains2.domain(0).contains(&Value::Int(128)));
    }

    #[test]
    fn arc_consistency_detects_wipeout() {
        let mut p = Problem::new();
        p.add_variable("a", int_values([1, 2, 3])).unwrap();
        p.add_variable("b", int_values([1, 2, 3])).unwrap();
        p.add_constraint(MinProduct::new(100.0), &["a", "b"])
            .unwrap();
        let mut domains = p.domain_store();
        let report = arc_consistency(&p, &mut domains).unwrap();
        assert!(!report.consistent);
    }

    #[test]
    fn arc_consistency_skips_large_scopes() {
        let mut p = Problem::new();
        for name in ["a", "b", "c", "d"] {
            p.add_variable(name, int_values([1, 2, 3])).unwrap();
        }
        // 4-ary constraint: above MAX_GAC_SCOPE, must be left untouched even
        // though it is unsatisfiable.
        p.add_function_constraint(&["a", "b", "c", "d"], |_| false)
            .unwrap();
        let mut domains = p.domain_store();
        let report = arc_consistency(&p, &mut domains).unwrap();
        assert!(report.consistent);
        assert_eq!(report.removed, 0);
    }

    #[test]
    fn consistent_problems_keep_all_solutions() {
        let p = block_problem();
        let before = BruteForceSolver::new().solve(&p).unwrap();
        let mut domains = p.domain_store();
        arc_consistency(&p, &mut domains).unwrap();
        // Re-solve over the pruned domains by constructing an equivalent
        // problem and compare solution sets.
        let mut pruned = Problem::new();
        pruned
            .add_variable("x", domains.domain(0).values().to_vec())
            .unwrap();
        pruned
            .add_variable("y", domains.domain(1).values().to_vec())
            .unwrap();
        pruned
            .add_constraint(MinProduct::new(32.0), &["x", "y"])
            .unwrap();
        pruned
            .add_constraint(MaxProduct::new(256.0), &["x", "y"])
            .unwrap();
        let after = BruteForceSolver::new().solve(&pruned).unwrap();
        assert!(before.solutions.same_solutions(&after.solutions));
    }

    #[test]
    fn preprune_commits_shrunken_domains() {
        let mut p = Problem::new();
        p.add_variable("x", int_values([1, 2, 4, 8, 16, 32, 64, 128]))
            .unwrap();
        p.add_variable("y", int_values([1, 2, 4, 8, 16, 32]))
            .unwrap();
        p.add_constraint(MinProduct::new(32.0), &["x", "y"])
            .unwrap();
        p.add_constraint(MaxProduct::new(64.0), &["x", "y"])
            .unwrap();
        let before = BruteForceSolver::new().solve(&p).unwrap();
        let report = preprune_domains(&mut p).unwrap();
        assert!(report.consistent);
        assert!(report.removed > 0);
        assert!(!p.domain(0).contains(&Value::Int(128)));
        // The solution set is untouched.
        let after = BruteForceSolver::new().solve(&p).unwrap();
        assert!(before.solutions.same_solutions(&after.solutions));
    }

    #[test]
    fn preprune_leaves_unsatisfiable_problems_untouched() {
        let mut p = Problem::new();
        p.add_variable("a", int_values([1, 2, 3])).unwrap();
        p.add_variable("b", int_values([1, 2, 3])).unwrap();
        p.add_constraint(MinProduct::new(100.0), &["a", "b"])
            .unwrap();
        let report = preprune_domains(&mut p).unwrap();
        assert!(!report.consistent);
        assert_eq!(report.removed, 0);
        // Domains keep every value: emptiness is the solver's call.
        assert_eq!(p.domain(0).len(), 3);
        assert_eq!(p.domain(1).len(), 3);
    }

    #[test]
    fn retain_domain_refuses_wipeout() {
        let mut p = Problem::new();
        p.add_variable("x", int_values([1, 2, 3])).unwrap();
        assert_eq!(p.retain_domain(0, |_| false), None);
        assert_eq!(p.domain(0).len(), 3, "refused retain leaves the domain");
        assert_eq!(p.retain_domain(0, |v| v.as_i64().unwrap() >= 2), Some(1));
        assert_eq!(p.domain(0).values(), &int_values([2, 3])[..]);
    }

    #[test]
    fn directional_constraints_propagate_transitively() {
        // a < b and b < c: arc consistency should trim the ends.
        let mut p = Problem::new();
        p.add_variable("a", int_values([1, 2, 3, 4])).unwrap();
        p.add_variable("b", int_values([1, 2, 3, 4])).unwrap();
        p.add_variable("c", int_values([1, 2, 3, 4])).unwrap();
        p.add_constraint(PairCompare::new(CmpOp::Lt), &["a", "b"])
            .unwrap();
        p.add_constraint(PairCompare::new(CmpOp::Lt), &["b", "c"])
            .unwrap();
        let mut domains = p.domain_store();
        let report = arc_consistency(&p, &mut domains).unwrap();
        assert!(report.consistent);
        assert_eq!(domains.domain(0).values(), &int_values([1, 2])[..]);
        assert_eq!(domains.domain(1).values(), &int_values([2, 3])[..]);
        assert_eq!(domains.domain(2).values(), &int_values([3, 4])[..]);
    }
}
