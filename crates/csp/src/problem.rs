//! Constraint problem definition.
//!
//! A [`Problem`] collects variables (each with a finite domain) and
//! constraints over subsets of those variables, mirroring the
//! `python-constraint` `Problem` API used in Listing 3 of the paper:
//!
//! ```text
//! p = Problem()
//! p.addVariable("block_size_x", [1,2,4,8,16] + [32*i for i in range(1,33)])
//! p.addVariable("block_size_y", [2**i for i in range(6)])
//! p.addConstraint(MinProd(32, ["block_size_x", "block_size_y"]))
//! p.addConstraint(MaxProd(1024, ["block_size_x", "block_size_y"]))
//! ```

use std::sync::Arc;

use rustc_hash::FxHashMap;

use crate::constraints::{Constraint, ConstraintRef, FunctionConstraint};
use crate::domain::{Domain, DomainStore};
use crate::error::{CspError, CspResult};
use crate::value::Value;

/// Index of a variable within a [`Problem`], in insertion order.
pub type VarId = usize;

/// A constraint together with the variables it ranges over.
#[derive(Clone)]
pub struct ConstraintEntry {
    /// The constraint predicate.
    pub constraint: ConstraintRef,
    /// The variables the constraint ranges over, in the order the constraint
    /// expects its values.
    pub scope: Vec<VarId>,
}

impl std::fmt::Debug for ConstraintEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConstraintEntry")
            .field("kind", &self.constraint.kind())
            .field("scope", &self.scope)
            .finish()
    }
}

/// A complete constraint satisfaction problem over finite domains.
#[derive(Debug, Default, Clone)]
pub struct Problem {
    names: Vec<String>,
    index: FxHashMap<String, VarId>,
    domains: Vec<Domain>,
    constraints: Vec<ConstraintEntry>,
}

impl Problem {
    /// Create an empty problem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a variable with the given domain values. Returns its [`VarId`].
    ///
    /// Errors if the name is already taken or the domain is empty.
    pub fn add_variable(
        &mut self,
        name: impl Into<String>,
        values: Vec<Value>,
    ) -> CspResult<VarId> {
        let name = name.into();
        if self.index.contains_key(&name) {
            return Err(CspError::DuplicateVariable(name));
        }
        if values.is_empty() {
            return Err(CspError::EmptyDomain(name));
        }
        let id = self.names.len();
        self.index.insert(name.clone(), id);
        self.names.push(name);
        self.domains.push(Domain::new(values));
        Ok(id)
    }

    /// Add a constraint over the named variables.
    pub fn add_constraint<C: Constraint + 'static>(
        &mut self,
        constraint: C,
        variables: &[&str],
    ) -> CspResult<()> {
        let scope = self.resolve_scope(variables)?;
        self.add_constraint_scoped(Arc::new(constraint), scope)
    }

    /// Add an already shared constraint over variable ids.
    pub fn add_constraint_scoped(
        &mut self,
        constraint: ConstraintRef,
        scope: Vec<VarId>,
    ) -> CspResult<()> {
        if scope.is_empty() {
            return Err(CspError::InvalidScope(
                "constraint scope must not be empty".to_string(),
            ));
        }
        for &v in &scope {
            if v >= self.names.len() {
                return Err(CspError::InvalidScope(format!(
                    "variable id {v} out of range"
                )));
            }
        }
        self.constraints.push(ConstraintEntry { constraint, scope });
        Ok(())
    }

    /// Add a predicate constraint over the named variables (the values are
    /// passed to the closure in the same order as `variables`).
    pub fn add_function_constraint<F>(&mut self, variables: &[&str], func: F) -> CspResult<()>
    where
        F: Fn(&[Value]) -> bool + Send + Sync + 'static,
    {
        self.add_constraint(FunctionConstraint::new(func), variables)
    }

    /// Resolve variable names to ids.
    pub fn resolve_scope(&self, variables: &[&str]) -> CspResult<Vec<VarId>> {
        variables
            .iter()
            .map(|name| {
                self.index
                    .get(*name)
                    .copied()
                    .ok_or_else(|| CspError::UnknownVariable((*name).to_string()))
            })
            .collect()
    }

    /// Id of a named variable.
    pub fn variable_id(&self, name: &str) -> Option<VarId> {
        self.index.get(name).copied()
    }

    /// Name of a variable id.
    pub fn variable_name(&self, id: VarId) -> &str {
        &self.names[id]
    }

    /// All variable names, in id order.
    pub fn variable_names(&self) -> &[String] {
        &self.names
    }

    /// Number of variables.
    pub fn num_variables(&self) -> usize {
        self.names.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Domain of a variable.
    pub fn domain(&self, id: VarId) -> &Domain {
        &self.domains[id]
    }

    /// All constraints.
    pub fn constraints(&self) -> &[ConstraintEntry] {
        &self.constraints
    }

    /// A fresh, independent copy of all domains (solvers mutate their copy).
    pub fn domain_store(&self) -> DomainStore {
        DomainStore::from_domains(self.domains.clone())
    }

    /// Shrink a variable's domain to the values satisfying `keep`,
    /// preserving their relative order.
    ///
    /// Refuses to empty a domain: when no value would survive, the
    /// domain is left untouched and `None` is returned (an empty domain
    /// would violate the [`Problem`] invariant; emptiness is the
    /// solver's discovery to make). Otherwise returns the number of
    /// values removed.
    pub fn retain_domain(&mut self, id: VarId, keep: impl Fn(&Value) -> bool) -> Option<usize> {
        let domain = &self.domains[id];
        if !domain.values().iter().any(&keep) {
            return None;
        }
        Some(self.domains[id].retain(keep))
    }

    /// For each variable, the indices of the constraints whose scope contains it.
    pub fn constraints_per_variable(&self) -> Vec<Vec<usize>> {
        let mut per_var = vec![Vec::new(); self.names.len()];
        for (ci, entry) in self.constraints.iter().enumerate() {
            for &v in &entry.scope {
                if !per_var[v].contains(&ci) {
                    per_var[v].push(ci);
                }
            }
        }
        per_var
    }

    /// Cartesian product size of the unconstrained space.
    pub fn cartesian_size(&self) -> u128 {
        self.domains
            .iter()
            .map(|d| d.len() as u128)
            .fold(1, |a, b| a.saturating_mul(b))
    }

    /// Check a complete configuration (values in variable-id order) against
    /// every constraint. Used for validation and by brute-force solvers.
    pub fn is_valid_configuration(&self, values: &[Value]) -> bool {
        let mut scope_buf: Vec<Value> = Vec::new();
        for entry in &self.constraints {
            scope_buf.clear();
            scope_buf.extend(entry.scope.iter().map(|&v| values[v].clone()));
            if !entry.constraint.evaluate(&scope_buf) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::{MaxProduct, MinProduct};
    use crate::value::int_values;

    fn block_size_problem() -> Problem {
        let mut p = Problem::new();
        let mut xs: Vec<i64> = vec![1, 2, 4, 8, 16];
        xs.extend((1..=32).map(|i| 32 * i));
        p.add_variable("block_size_x", int_values(xs)).unwrap();
        p.add_variable("block_size_y", int_values((0..6).map(|i| 1 << i)))
            .unwrap();
        p.add_constraint(MinProduct::new(32.0), &["block_size_x", "block_size_y"])
            .unwrap();
        p.add_constraint(MaxProduct::new(1024.0), &["block_size_x", "block_size_y"])
            .unwrap();
        p
    }

    #[test]
    fn listing3_problem_builds() {
        let p = block_size_problem();
        assert_eq!(p.num_variables(), 2);
        assert_eq!(p.num_constraints(), 2);
        assert_eq!(p.cartesian_size(), 37 * 6);
        assert_eq!(p.variable_name(0), "block_size_x");
        assert_eq!(p.variable_id("block_size_y"), Some(1));
    }

    #[test]
    fn duplicate_and_empty_domain_errors() {
        let mut p = Problem::new();
        p.add_variable("x", int_values([1])).unwrap();
        assert!(matches!(
            p.add_variable("x", int_values([2])),
            Err(CspError::DuplicateVariable(_))
        ));
        assert!(matches!(
            p.add_variable("y", vec![]),
            Err(CspError::EmptyDomain(_))
        ));
    }

    #[test]
    fn unknown_variable_in_scope() {
        let mut p = Problem::new();
        p.add_variable("x", int_values([1, 2])).unwrap();
        let err = p.add_constraint(MaxProduct::new(4.0), &["x", "zz"]);
        assert!(matches!(err, Err(CspError::UnknownVariable(_))));
    }

    #[test]
    fn empty_scope_rejected() {
        let mut p = Problem::new();
        p.add_variable("x", int_values([1, 2])).unwrap();
        let err = p.add_constraint(MaxProduct::new(4.0), &[]);
        assert!(matches!(err, Err(CspError::InvalidScope(_))));
    }

    #[test]
    fn valid_configuration_check() {
        let p = block_size_problem();
        assert!(p.is_valid_configuration(&int_values([32, 2])));
        assert!(!p.is_valid_configuration(&int_values([1, 2]))); // product 2 < 32
        assert!(!p.is_valid_configuration(&int_values([1024, 2]))); // product 2048 > 1024
    }

    #[test]
    fn constraints_per_variable() {
        let p = block_size_problem();
        let per_var = p.constraints_per_variable();
        assert_eq!(per_var[0], vec![0, 1]);
        assert_eq!(per_var[1], vec![0, 1]);
    }

    #[test]
    fn function_constraint_api() {
        let mut p = Problem::new();
        p.add_variable("a", int_values([1, 2, 3])).unwrap();
        p.add_variable("b", int_values([1, 2, 3])).unwrap();
        p.add_function_constraint(&["a", "b"], |vals| {
            vals[0].as_i64().unwrap() < vals[1].as_i64().unwrap()
        })
        .unwrap();
        assert!(p.is_valid_configuration(&int_values([1, 2])));
        assert!(!p.is_valid_configuration(&int_values([3, 2])));
    }
}
