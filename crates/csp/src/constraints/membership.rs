//! Set membership constraints (`InSet`, `NotInSet`) and fixed values.
//!
//! These arise from constraints such as `tile_size in (1, 2, 4)` or from
//! conditional constraints whose condition has been constant-folded away
//! (e.g. `sh_power == 1`). They are fully resolved during preprocessing.

use std::collections::HashSet;

use super::Constraint;
use crate::domain::DomainStore;
use crate::error::CspResult;
use crate::value::Value;

/// Every variable in the scope must take a value from the given set.
#[derive(Debug)]
pub struct InSet {
    set: HashSet<Value>,
}

impl InSet {
    /// Build from any iterator of values.
    pub fn new<I: IntoIterator<Item = Value>>(values: I) -> Self {
        InSet {
            set: values.into_iter().collect(),
        }
    }

    /// Number of allowed values.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// True if the allowed set is empty (the constraint is unsatisfiable).
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

impl Constraint for InSet {
    fn kind(&self) -> &'static str {
        "InSet"
    }

    fn evaluate(&self, values: &[Value]) -> bool {
        values.iter().all(|v| self.set.contains(v))
    }

    fn preprocess(&self, scope: &[usize], domains: &mut DomainStore) -> CspResult<usize> {
        let mut removed = 0usize;
        for &var in scope {
            removed += domains.domain_mut(var).retain(|v| self.set.contains(v));
        }
        Ok(removed)
    }
}

/// No variable in the scope may take a value from the given set.
#[derive(Debug)]
pub struct NotInSet {
    set: HashSet<Value>,
}

impl NotInSet {
    /// Build from any iterator of values.
    pub fn new<I: IntoIterator<Item = Value>>(values: I) -> Self {
        NotInSet {
            set: values.into_iter().collect(),
        }
    }
}

impl Constraint for NotInSet {
    fn kind(&self) -> &'static str {
        "NotInSet"
    }

    fn evaluate(&self, values: &[Value]) -> bool {
        values.iter().all(|v| !self.set.contains(v))
    }

    fn preprocess(&self, scope: &[usize], domains: &mut DomainStore) -> CspResult<usize> {
        let mut removed = 0usize;
        for &var in scope {
            removed += domains.domain_mut(var).retain(|v| !self.set.contains(v));
        }
        Ok(removed)
    }
}

/// A single variable is pinned to one exact value.
#[derive(Debug)]
pub struct FixedValue {
    value: Value,
}

impl FixedValue {
    /// Build `x == value`.
    pub fn new(value: Value) -> Self {
        FixedValue { value }
    }

    /// The pinned value.
    pub fn value(&self) -> &Value {
        &self.value
    }
}

impl Constraint for FixedValue {
    fn kind(&self) -> &'static str {
        "FixedValue"
    }

    fn evaluate(&self, values: &[Value]) -> bool {
        values.iter().all(|v| v == &self.value)
    }

    fn preprocess(&self, scope: &[usize], domains: &mut DomainStore) -> CspResult<usize> {
        let mut removed = 0usize;
        for &var in scope {
            removed += domains.domain_mut(var).retain(|v| v == &self.value);
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::value::int_values;

    fn store(domains: Vec<Vec<i64>>) -> DomainStore {
        let mut s = DomainStore::new();
        for d in domains {
            s.push(Domain::new(int_values(d)));
        }
        s
    }

    #[test]
    fn in_set_evaluate_and_preprocess() {
        let c = InSet::new(int_values([1, 2, 4]));
        assert!(c.evaluate(&int_values([2, 4])));
        assert!(!c.evaluate(&int_values([2, 3])));
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        let mut doms = store(vec![vec![1, 2, 3, 4, 5]]);
        assert_eq!(c.preprocess(&[0], &mut doms).unwrap(), 2);
        assert_eq!(doms.domain(0).values(), &int_values([1, 2, 4])[..]);
    }

    #[test]
    fn not_in_set() {
        let c = NotInSet::new(int_values([3, 5]));
        assert!(c.evaluate(&int_values([1, 2])));
        assert!(!c.evaluate(&int_values([1, 3])));
        let mut doms = store(vec![vec![1, 2, 3, 4, 5]]);
        assert_eq!(c.preprocess(&[0], &mut doms).unwrap(), 2);
    }

    #[test]
    fn fixed_value() {
        let c = FixedValue::new(Value::Int(8));
        assert!(c.evaluate(&int_values([8])));
        assert!(!c.evaluate(&int_values([4])));
        assert_eq!(c.value(), &Value::Int(8));
        let mut doms = store(vec![vec![1, 4, 8, 16]]);
        assert_eq!(c.preprocess(&[0], &mut doms).unwrap(), 3);
        assert_eq!(doms.domain(0).values(), &int_values([8])[..]);
    }

    #[test]
    fn in_set_with_strings() {
        let c = InSet::new(vec![Value::str("on"), Value::str("off")]);
        assert!(c.evaluate(&[Value::str("on")]));
        assert!(!c.evaluate(&[Value::str("auto")]));
    }
}
