//! Uniqueness constraints: `AllDifferent` and `AllEqual`.

use std::collections::HashSet;

use super::Constraint;
use crate::assignment::Assignment;
use crate::domain::DomainStore;
use crate::value::Value;

/// All variables in the scope must take pairwise distinct values.
#[derive(Debug, Default)]
pub struct AllDifferent;

impl AllDifferent {
    /// Create the constraint.
    pub fn new() -> Self {
        AllDifferent
    }
}

impl Constraint for AllDifferent {
    fn kind(&self) -> &'static str {
        "AllDifferent"
    }

    fn evaluate(&self, values: &[Value]) -> bool {
        let mut seen: HashSet<&Value> = HashSet::with_capacity(values.len());
        values.iter().all(|v| seen.insert(v))
    }

    fn check(
        &self,
        scope: &[usize],
        assignment: &Assignment,
        domains: &mut DomainStore,
        forward_check: bool,
    ) -> bool {
        // Any duplicate among the already-assigned values is already fatal.
        let mut seen: HashSet<&Value> = HashSet::with_capacity(scope.len());
        let mut unassigned: Vec<usize> = Vec::new();
        for &var in scope {
            match assignment.get(var) {
                Some(v) => {
                    if !seen.insert(v) {
                        return false;
                    }
                }
                None => unassigned.push(var),
            }
        }
        if unassigned.is_empty() {
            return true;
        }
        if forward_check {
            for var in unassigned {
                let ok = domains.domain_mut(var).hide_where(|v| !seen.contains(v));
                if !ok {
                    return false;
                }
            }
        }
        true
    }
}

/// All variables in the scope must take the same value.
#[derive(Debug, Default)]
pub struct AllEqual;

impl AllEqual {
    /// Create the constraint.
    pub fn new() -> Self {
        AllEqual
    }
}

impl Constraint for AllEqual {
    fn kind(&self) -> &'static str {
        "AllEqual"
    }

    fn evaluate(&self, values: &[Value]) -> bool {
        values.windows(2).all(|w| w[0] == w[1])
    }

    fn check(
        &self,
        scope: &[usize],
        assignment: &Assignment,
        domains: &mut DomainStore,
        forward_check: bool,
    ) -> bool {
        let mut first: Option<&Value> = None;
        let mut unassigned: Vec<usize> = Vec::new();
        for &var in scope {
            match assignment.get(var) {
                Some(v) => match first {
                    Some(f) => {
                        if f != v {
                            return false;
                        }
                    }
                    None => first = Some(v),
                },
                None => unassigned.push(var),
            }
        }
        if unassigned.is_empty() {
            return true;
        }
        if forward_check {
            if let Some(f) = first {
                let f = f.clone();
                for var in unassigned {
                    let ok = domains.domain_mut(var).hide_where(|v| *v == f);
                    if !ok {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::value::int_values;

    fn store(domains: Vec<Vec<i64>>) -> DomainStore {
        let mut s = DomainStore::new();
        for d in domains {
            s.push(Domain::new(int_values(d)));
        }
        s
    }

    #[test]
    fn all_different_evaluate() {
        let c = AllDifferent::new();
        assert!(c.evaluate(&int_values([1, 2, 3])));
        assert!(!c.evaluate(&int_values([1, 2, 1])));
    }

    #[test]
    fn all_different_partial_rejection_and_fc() {
        let c = AllDifferent::new();
        let mut doms = store(vec![vec![1], vec![1, 2], vec![1, 2, 3]]);
        let mut a = Assignment::new(3);
        a.assign(0, Value::Int(1));
        a.assign(1, Value::Int(1));
        assert!(!c.check(&[0, 1, 2], &a, &mut doms, false));
        a.assign(1, Value::Int(2));
        assert!(c.check(&[0, 1, 2], &a, &mut doms, true));
        // forward checking removed 1 and 2 from var 2
        assert_eq!(doms.domain(2).values(), &int_values([3])[..]);
    }

    #[test]
    fn all_different_fc_wipeout() {
        let c = AllDifferent::new();
        let mut doms = store(vec![vec![1], vec![2], vec![1, 2]]);
        let mut a = Assignment::new(3);
        a.assign(0, Value::Int(1));
        a.assign(1, Value::Int(2));
        assert!(!c.check(&[0, 1, 2], &a, &mut doms, true));
    }

    #[test]
    fn all_equal_evaluate() {
        let c = AllEqual::new();
        assert!(c.evaluate(&int_values([4, 4, 4])));
        assert!(!c.evaluate(&int_values([4, 4, 5])));
        assert!(c.evaluate(&int_values([7])));
    }

    #[test]
    fn all_equal_partial_and_fc() {
        let c = AllEqual::new();
        let mut doms = store(vec![vec![4], vec![4, 5], vec![3, 4, 5]]);
        let mut a = Assignment::new(3);
        a.assign(0, Value::Int(4));
        a.assign(1, Value::Int(5));
        assert!(!c.check(&[0, 1, 2], &a, &mut doms, false));
        a.assign(1, Value::Int(4));
        assert!(c.check(&[0, 1, 2], &a, &mut doms, true));
        assert_eq!(doms.domain(2).values(), &int_values([4])[..]);
    }
}
