//! Product constraints: `MaxProduct`, `MinProduct` and `ExactProduct`.
//!
//! Products of tunable parameters are the single most common constraint shape
//! in auto-tuning (e.g. *the thread block may not exceed 1024 threads*, *the
//! tile must hold at least 32 elements*, *shared memory usage must fit*). The
//! paper adds `MaxProduct`/`MinProduct` as specific constraints precisely
//! because recognising them enables domain preprocessing and early partial
//! rejection (Section 4.3.2).

use std::sync::OnceLock;

use super::{numeric_product, Constraint};
use crate::assignment::Assignment;
use crate::domain::DomainStore;
use crate::error::CspResult;
use crate::value::Value;

/// Cached facts about the scope domains, established during preprocessing and
/// reused for partial-assignment reasoning. Domains only ever shrink during
/// the search, so these facts stay valid once computed.
#[derive(Debug, Clone, Copy, Default)]
struct ScopeFacts {
    /// Every value of every scope domain is `>= 0`.
    all_non_negative: bool,
    /// Every value of every scope domain is `>= 1`.
    all_ge_one: bool,
}

fn scope_facts(scope: &[usize], domains: &DomainStore) -> ScopeFacts {
    let mut facts = ScopeFacts {
        all_non_negative: true,
        all_ge_one: true,
    };
    for &var in scope {
        match domains.domain(var).numeric_min() {
            Some(min) => {
                if min < 0.0 {
                    facts.all_non_negative = false;
                }
                if min < 1.0 {
                    facts.all_ge_one = false;
                }
            }
            None => {
                facts.all_non_negative = false;
                facts.all_ge_one = false;
            }
        }
    }
    facts
}

/// `prod(scope) <= limit` (or `< limit` when `strict`).
#[derive(Debug)]
pub struct MaxProduct {
    limit: f64,
    strict: bool,
    facts: OnceLock<ScopeFacts>,
}

impl MaxProduct {
    /// `prod(scope) <= limit`.
    pub fn new(limit: f64) -> Self {
        MaxProduct {
            limit,
            strict: false,
            facts: OnceLock::new(),
        }
    }

    /// `prod(scope) < limit`.
    pub fn strict(limit: f64) -> Self {
        MaxProduct {
            limit,
            strict: true,
            facts: OnceLock::new(),
        }
    }

    /// The product limit.
    pub fn limit(&self) -> f64 {
        self.limit
    }

    fn within(&self, product: f64) -> bool {
        if self.strict {
            product < self.limit
        } else {
            product <= self.limit
        }
    }
}

impl Constraint for MaxProduct {
    fn kind(&self) -> &'static str {
        "MaxProduct"
    }

    fn evaluate(&self, values: &[Value]) -> bool {
        match numeric_product(values) {
            Some(p) => self.within(p),
            None => false,
        }
    }

    fn check(
        &self,
        scope: &[usize],
        assignment: &Assignment,
        domains: &mut DomainStore,
        forward_check: bool,
    ) -> bool {
        let facts = *self.facts.get_or_init(|| scope_facts(scope, domains));
        // Early partial rejection: with every remaining factor >= 1 the
        // product can only grow, so exceeding the limit now is fatal.
        if facts.all_ge_one {
            let mut partial = 1.0f64;
            let mut missing = 0usize;
            for &var in scope {
                match assignment.get(var) {
                    Some(v) => match v.as_f64() {
                        Some(f) => partial *= f,
                        None => return false,
                    },
                    None => missing += 1,
                }
            }
            if !self.within(partial) {
                return false;
            }
            if missing == 0 {
                return true;
            }
        }
        super::generic_check(self, scope, assignment, domains, forward_check)
    }

    fn preprocess(&self, scope: &[usize], domains: &mut DomainStore) -> CspResult<usize> {
        let facts = scope_facts(scope, domains);
        let _ = self.facts.set(facts);
        if !facts.all_non_negative || scope.len() < 2 {
            // With a unary scope the generic evaluation is already exact; with
            // possible negative factors no sound one-sided pruning exists.
            if scope.len() == 1 && facts.all_non_negative {
                let removed = domains
                    .domain_mut(scope[0])
                    .retain(|v| v.as_f64().map(|f| self.within(f)).unwrap_or(false));
                return Ok(removed);
            }
            return Ok(0);
        }
        // For each variable, the smallest possible product of the *other*
        // variables bounds how large this variable's value may be.
        let mins: Vec<f64> = scope
            .iter()
            .map(|&v| domains.domain(v).numeric_min().unwrap_or(0.0))
            .collect();
        let mut removed = 0usize;
        for (i, &var) in scope.iter().enumerate() {
            let others_min: f64 = mins
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, m)| *m)
                .product();
            removed += domains.domain_mut(var).retain(|v| match v.as_f64() {
                Some(f) => self.within(f * others_min),
                None => false,
            });
        }
        Ok(removed)
    }
}

/// `prod(scope) >= minimum` (or `> minimum` when `strict`).
#[derive(Debug)]
pub struct MinProduct {
    minimum: f64,
    strict: bool,
    facts: OnceLock<ScopeFacts>,
}

impl MinProduct {
    /// `prod(scope) >= minimum`.
    pub fn new(minimum: f64) -> Self {
        MinProduct {
            minimum,
            strict: false,
            facts: OnceLock::new(),
        }
    }

    /// `prod(scope) > minimum`.
    pub fn strict(minimum: f64) -> Self {
        MinProduct {
            minimum,
            strict: true,
            facts: OnceLock::new(),
        }
    }

    /// The product minimum.
    pub fn minimum(&self) -> f64 {
        self.minimum
    }

    fn within(&self, product: f64) -> bool {
        if self.strict {
            product > self.minimum
        } else {
            product >= self.minimum
        }
    }
}

impl Constraint for MinProduct {
    fn kind(&self) -> &'static str {
        "MinProduct"
    }

    fn evaluate(&self, values: &[Value]) -> bool {
        match numeric_product(values) {
            Some(p) => self.within(p),
            None => false,
        }
    }

    fn check(
        &self,
        scope: &[usize],
        assignment: &Assignment,
        domains: &mut DomainStore,
        forward_check: bool,
    ) -> bool {
        let facts = *self.facts.get_or_init(|| scope_facts(scope, domains));
        if facts.all_non_negative {
            // Upper-bound the achievable product: assigned values times the
            // domain maxima of the unassigned variables.
            let mut bound = 1.0f64;
            let mut missing = 0usize;
            let mut ok = true;
            for &var in scope {
                match assignment.get(var) {
                    Some(v) => match v.as_f64() {
                        Some(f) => bound *= f,
                        None => return false,
                    },
                    None => {
                        missing += 1;
                        match domains.domain(var).numeric_max() {
                            Some(m) => bound *= m,
                            None => ok = false,
                        }
                    }
                }
            }
            if ok && !self.within(bound) {
                return false;
            }
            if missing == 0 {
                return true;
            }
        }
        super::generic_check(self, scope, assignment, domains, forward_check)
    }

    fn preprocess(&self, scope: &[usize], domains: &mut DomainStore) -> CspResult<usize> {
        let facts = scope_facts(scope, domains);
        let _ = self.facts.set(facts);
        if !facts.all_non_negative {
            return Ok(0);
        }
        if scope.len() == 1 {
            let removed = domains
                .domain_mut(scope[0])
                .retain(|v| v.as_f64().map(|f| self.within(f)).unwrap_or(false));
            return Ok(removed);
        }
        let maxs: Vec<f64> = scope
            .iter()
            .map(|&v| domains.domain(v).numeric_max().unwrap_or(0.0))
            .collect();
        let mut removed = 0usize;
        for (i, &var) in scope.iter().enumerate() {
            let others_max: f64 = maxs
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, m)| *m)
                .product();
            removed += domains.domain_mut(var).retain(|v| match v.as_f64() {
                Some(f) => self.within(f * others_max),
                None => false,
            });
        }
        Ok(removed)
    }
}

/// `prod(scope) == target`.
#[derive(Debug)]
pub struct ExactProduct {
    target: f64,
}

impl ExactProduct {
    /// `prod(scope) == target`.
    pub fn new(target: f64) -> Self {
        ExactProduct { target }
    }

    /// The required product.
    pub fn target(&self) -> f64 {
        self.target
    }
}

impl Constraint for ExactProduct {
    fn kind(&self) -> &'static str {
        "ExactProduct"
    }

    fn evaluate(&self, values: &[Value]) -> bool {
        match numeric_product(values) {
            Some(p) => p == self.target,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::value::int_values;

    fn store(domains: Vec<Vec<i64>>) -> DomainStore {
        let mut s = DomainStore::new();
        for d in domains {
            s.push(Domain::new(int_values(d)));
        }
        s
    }

    #[test]
    fn max_product_evaluate() {
        let c = MaxProduct::new(1024.0);
        assert!(c.evaluate(&int_values([32, 32])));
        assert!(!c.evaluate(&int_values([64, 32])));
        assert!(MaxProduct::strict(1024.0).evaluate(&int_values([31, 32])));
        assert!(!MaxProduct::strict(1024.0).evaluate(&int_values([32, 32])));
        assert!(!c.evaluate(&[Value::str("x"), Value::Int(2)]));
    }

    #[test]
    fn min_product_evaluate() {
        let c = MinProduct::new(32.0);
        assert!(c.evaluate(&int_values([8, 4])));
        assert!(!c.evaluate(&int_values([2, 4])));
        assert!(!MinProduct::strict(32.0).evaluate(&int_values([8, 4])));
    }

    #[test]
    fn exact_product_evaluate() {
        let c = ExactProduct::new(64.0);
        assert!(c.evaluate(&int_values([8, 8])));
        assert!(!c.evaluate(&int_values([8, 4])));
        assert_eq!(c.target(), 64.0);
    }

    #[test]
    fn max_product_preprocess_prunes() {
        let c = MaxProduct::new(64.0);
        let mut doms = store(vec![vec![1, 16, 32, 128], vec![2, 4]]);
        let removed = c.preprocess(&[0, 1], &mut doms).unwrap();
        // 128 * min(2) = 256 > 64 must go; 32*2=64 stays.
        assert_eq!(removed, 1);
        assert_eq!(doms.domain(0).values(), &int_values([1, 16, 32])[..]);
    }

    #[test]
    fn min_product_preprocess_prunes() {
        let c = MinProduct::new(64.0);
        let mut doms = store(vec![vec![1, 2, 16, 32], vec![2, 4]]);
        let removed = c.preprocess(&[0, 1], &mut doms).unwrap();
        // value * max_other(4) >= 64 required → 1*4 and 2*4 go.
        assert_eq!(removed, 2);
        assert_eq!(doms.domain(0).values(), &int_values([16, 32])[..]);
    }

    #[test]
    fn max_product_no_prune_with_negatives() {
        let c = MaxProduct::new(10.0);
        let mut doms = store(vec![vec![-5, 100], vec![2, 4]]);
        let removed = c.preprocess(&[0, 1], &mut doms).unwrap();
        assert_eq!(removed, 0);
    }

    #[test]
    fn max_product_partial_rejection() {
        let c = MaxProduct::new(1024.0);
        let mut doms = store(vec![vec![32, 64], vec![32, 64], vec![1, 2]]);
        c.preprocess(&[0, 1, 2], &mut doms).unwrap();
        let mut a = Assignment::new(3);
        a.assign(0, Value::Int(64));
        a.assign(1, Value::Int(64));
        // 64*64 = 4096 > 1024 already: rejected with a variable still missing.
        assert!(!c.check(&[0, 1, 2], &a, &mut doms, false));
    }

    #[test]
    fn min_product_partial_bound_rejection() {
        let c = MinProduct::new(1000.0);
        let mut doms = store(vec![vec![1, 2], vec![1, 2], vec![1, 4]]);
        let mut a = Assignment::new(3);
        a.assign(0, Value::Int(1));
        a.assign(1, Value::Int(2));
        // best case 1*2*4 = 8 < 1000: reject early.
        assert!(!c.check(&[0, 1, 2], &a, &mut doms, false));
    }

    #[test]
    fn unary_scope_preprocess() {
        let c = MaxProduct::new(8.0);
        let mut doms = store(vec![vec![1, 4, 8, 16]]);
        let removed = c.preprocess(&[0], &mut doms).unwrap();
        assert_eq!(removed, 1);
        assert_eq!(doms.domain(0).values(), &int_values([1, 4, 8])[..]);
    }

    #[test]
    fn forward_check_still_works() {
        let c = MaxProduct::new(64.0);
        let mut doms = store(vec![vec![4], vec![4, 8, 16, 32]]);
        c.preprocess(&[0, 1], &mut doms).unwrap();
        let mut a = Assignment::new(2);
        a.assign(0, Value::Int(4));
        assert!(c.check(&[0, 1], &a, &mut doms, true));
        assert_eq!(doms.domain(1).values(), &int_values([4, 8, 16])[..]);
    }
}
