//! Sum constraints: `MaxSum`, `MinSum` and `ExactSum`, with optional weights.
//!
//! Weighted sums express resource budgets such as *total shared memory used
//! by all buffers must fit in 48 KiB* or register-count limits.

use std::sync::OnceLock;

use super::{numeric_sum, Constraint};
use crate::assignment::Assignment;
use crate::domain::DomainStore;
use crate::error::CspResult;
use crate::value::Value;

fn weighted(values: &[Value], weights: Option<&[f64]>) -> Option<f64> {
    match weights {
        None => numeric_sum(values),
        Some(w) => values
            .iter()
            .zip(w.iter())
            .try_fold(0.0, |acc, (v, w)| Some(acc + v.as_f64()? * w)),
    }
}

fn all_non_negative(scope: &[usize], domains: &DomainStore, weights: Option<&[f64]>) -> bool {
    scope.iter().enumerate().all(|(i, &var)| {
        let w = weights.map(|w| w[i]).unwrap_or(1.0);
        match domains.domain(var).numeric_min() {
            Some(min) => min * w >= 0.0 && w >= 0.0,
            None => false,
        }
    })
}

/// `sum(w_i * x_i) <= limit` (or `<` when strict).
#[derive(Debug)]
pub struct MaxSum {
    limit: f64,
    strict: bool,
    weights: Option<Vec<f64>>,
    non_negative: OnceLock<bool>,
}

impl MaxSum {
    /// `sum(scope) <= limit`.
    pub fn new(limit: f64) -> Self {
        MaxSum {
            limit,
            strict: false,
            weights: None,
            non_negative: OnceLock::new(),
        }
    }

    /// `sum(scope) < limit`.
    pub fn strict(limit: f64) -> Self {
        MaxSum {
            strict: true,
            ..MaxSum::new(limit)
        }
    }

    /// Weighted variant: `sum(w_i * x_i) <= limit`.
    pub fn weighted(limit: f64, weights: Vec<f64>) -> Self {
        MaxSum {
            weights: Some(weights),
            ..MaxSum::new(limit)
        }
    }

    /// The sum limit.
    pub fn limit(&self) -> f64 {
        self.limit
    }

    fn within(&self, sum: f64) -> bool {
        if self.strict {
            sum < self.limit
        } else {
            sum <= self.limit
        }
    }
}

impl Constraint for MaxSum {
    fn kind(&self) -> &'static str {
        "MaxSum"
    }

    fn evaluate(&self, values: &[Value]) -> bool {
        match weighted(values, self.weights.as_deref()) {
            Some(s) => self.within(s),
            None => false,
        }
    }

    fn check(
        &self,
        scope: &[usize],
        assignment: &Assignment,
        domains: &mut DomainStore,
        forward_check: bool,
    ) -> bool {
        let non_negative = *self
            .non_negative
            .get_or_init(|| all_non_negative(scope, domains, self.weights.as_deref()));
        if non_negative {
            // Remaining terms can only add: reject once the partial sum exceeds the limit.
            let mut partial = 0.0f64;
            let mut missing = 0usize;
            for (i, &var) in scope.iter().enumerate() {
                let w = self.weights.as_ref().map(|w| w[i]).unwrap_or(1.0);
                match assignment.get(var) {
                    Some(v) => match v.as_f64() {
                        Some(f) => partial += f * w,
                        None => return false,
                    },
                    None => missing += 1,
                }
            }
            if !self.within(partial) {
                return false;
            }
            if missing == 0 {
                return true;
            }
        }
        super::generic_check(self, scope, assignment, domains, forward_check)
    }

    fn preprocess(&self, scope: &[usize], domains: &mut DomainStore) -> CspResult<usize> {
        let non_negative = all_non_negative(scope, domains, self.weights.as_deref());
        let _ = self.non_negative.set(non_negative);
        if !non_negative {
            return Ok(0);
        }
        let mins: Vec<f64> = scope
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let w = self.weights.as_ref().map(|w| w[i]).unwrap_or(1.0);
                domains.domain(v).numeric_min().unwrap_or(0.0) * w
            })
            .collect();
        let total_min: f64 = mins.iter().sum();
        let mut removed = 0usize;
        for (i, &var) in scope.iter().enumerate() {
            let w = self.weights.as_ref().map(|w| w[i]).unwrap_or(1.0);
            let others_min = total_min - mins[i];
            removed += domains.domain_mut(var).retain(|v| match v.as_f64() {
                Some(f) => self.within(f * w + others_min),
                None => false,
            });
        }
        Ok(removed)
    }
}

/// `sum(w_i * x_i) >= minimum` (or `>` when strict).
#[derive(Debug)]
pub struct MinSum {
    minimum: f64,
    strict: bool,
    weights: Option<Vec<f64>>,
}

impl MinSum {
    /// `sum(scope) >= minimum`.
    pub fn new(minimum: f64) -> Self {
        MinSum {
            minimum,
            strict: false,
            weights: None,
        }
    }

    /// `sum(scope) > minimum`.
    pub fn strict(minimum: f64) -> Self {
        MinSum {
            strict: true,
            ..MinSum::new(minimum)
        }
    }

    /// Weighted variant: `sum(w_i * x_i) >= minimum`.
    pub fn weighted(minimum: f64, weights: Vec<f64>) -> Self {
        MinSum {
            weights: Some(weights),
            ..MinSum::new(minimum)
        }
    }

    /// The sum minimum.
    pub fn minimum(&self) -> f64 {
        self.minimum
    }

    fn within(&self, sum: f64) -> bool {
        if self.strict {
            sum > self.minimum
        } else {
            sum >= self.minimum
        }
    }
}

impl Constraint for MinSum {
    fn kind(&self) -> &'static str {
        "MinSum"
    }

    fn evaluate(&self, values: &[Value]) -> bool {
        match weighted(values, self.weights.as_deref()) {
            Some(s) => self.within(s),
            None => false,
        }
    }

    fn check(
        &self,
        scope: &[usize],
        assignment: &Assignment,
        domains: &mut DomainStore,
        forward_check: bool,
    ) -> bool {
        // Upper-bound the achievable sum with the domain maxima of the
        // unassigned variables; if even that misses the minimum, reject.
        let mut bound = 0.0f64;
        let mut missing = 0usize;
        let mut bound_valid = true;
        for (i, &var) in scope.iter().enumerate() {
            let w = self.weights.as_ref().map(|w| w[i]).unwrap_or(1.0);
            match assignment.get(var) {
                Some(v) => match v.as_f64() {
                    Some(f) => bound += f * w,
                    None => return false,
                },
                None => {
                    missing += 1;
                    let extreme = if w >= 0.0 {
                        domains.domain(var).numeric_max()
                    } else {
                        domains.domain(var).numeric_min()
                    };
                    match extreme {
                        Some(m) => bound += m * w,
                        None => bound_valid = false,
                    }
                }
            }
        }
        if bound_valid && !self.within(bound) {
            return false;
        }
        if missing == 0 {
            return true;
        }
        super::generic_check(self, scope, assignment, domains, forward_check)
    }

    fn preprocess(&self, scope: &[usize], domains: &mut DomainStore) -> CspResult<usize> {
        if scope.len() != 1 {
            return Ok(0);
        }
        let w = self.weights.as_ref().map(|w| w[0]).unwrap_or(1.0);
        let removed = domains.domain_mut(scope[0]).retain(|v| match v.as_f64() {
            Some(f) => self.within(f * w),
            None => false,
        });
        Ok(removed)
    }
}

/// `sum(w_i * x_i) == target`.
#[derive(Debug)]
pub struct ExactSum {
    target: f64,
    weights: Option<Vec<f64>>,
}

impl ExactSum {
    /// `sum(scope) == target`.
    pub fn new(target: f64) -> Self {
        ExactSum {
            target,
            weights: None,
        }
    }

    /// Weighted variant.
    pub fn weighted(target: f64, weights: Vec<f64>) -> Self {
        ExactSum {
            target,
            weights: Some(weights),
        }
    }

    /// The required sum.
    pub fn target(&self) -> f64 {
        self.target
    }
}

impl Constraint for ExactSum {
    fn kind(&self) -> &'static str {
        "ExactSum"
    }

    fn evaluate(&self, values: &[Value]) -> bool {
        match weighted(values, self.weights.as_deref()) {
            Some(s) => s == self.target,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::value::int_values;

    fn store(domains: Vec<Vec<i64>>) -> DomainStore {
        let mut s = DomainStore::new();
        for d in domains {
            s.push(Domain::new(int_values(d)));
        }
        s
    }

    #[test]
    fn max_sum_evaluate() {
        let c = MaxSum::new(10.0);
        assert!(c.evaluate(&int_values([4, 6])));
        assert!(!c.evaluate(&int_values([5, 6])));
        assert!(!MaxSum::strict(10.0).evaluate(&int_values([4, 6])));
    }

    #[test]
    fn weighted_max_sum() {
        // 4*x + 2*y <= 20
        let c = MaxSum::weighted(20.0, vec![4.0, 2.0]);
        assert!(c.evaluate(&int_values([3, 4])));
        assert!(!c.evaluate(&int_values([4, 3])));
    }

    #[test]
    fn min_sum_evaluate() {
        let c = MinSum::new(5.0);
        assert!(c.evaluate(&int_values([2, 3])));
        assert!(!c.evaluate(&int_values([1, 3])));
        assert!(!MinSum::strict(5.0).evaluate(&int_values([2, 3])));
        assert_eq!(c.minimum(), 5.0);
    }

    #[test]
    fn exact_sum_evaluate() {
        let c = ExactSum::new(6.0);
        assert!(c.evaluate(&int_values([2, 4])));
        assert!(!c.evaluate(&int_values([2, 5])));
        let w = ExactSum::weighted(10.0, vec![2.0, 1.0]);
        assert!(w.evaluate(&int_values([3, 4])));
    }

    #[test]
    fn max_sum_preprocess_prunes() {
        let c = MaxSum::new(10.0);
        let mut doms = store(vec![vec![1, 5, 9, 12], vec![2, 4]]);
        let removed = c.preprocess(&[0, 1], &mut doms).unwrap();
        // others_min = 2, so 9 + 2 = 11 > 10 and 12 + 2 go.
        assert_eq!(removed, 2);
        assert_eq!(doms.domain(0).values(), &int_values([1, 5])[..]);
    }

    #[test]
    fn max_sum_partial_rejection() {
        let c = MaxSum::new(10.0);
        let mut doms = store(vec![vec![6], vec![6], vec![1, 2]]);
        c.preprocess(&[0, 1, 2], &mut doms).unwrap();
        let mut a = Assignment::new(3);
        a.assign(0, Value::Int(6));
        a.assign(1, Value::Int(6));
        assert!(!c.check(&[0, 1, 2], &a, &mut doms, false));
    }

    #[test]
    fn min_sum_bound_rejection() {
        let c = MinSum::new(100.0);
        let mut doms = store(vec![vec![1, 2], vec![1, 2], vec![1, 5]]);
        let mut a = Assignment::new(3);
        a.assign(0, Value::Int(2));
        // best case 2 + 2 + 5 = 9 < 100
        assert!(!c.check(&[0, 1, 2], &a, &mut doms, false));
    }

    #[test]
    fn no_prune_with_negative_values() {
        let c = MaxSum::new(5.0);
        let mut doms = store(vec![vec![-10, 20], vec![1, 2]]);
        assert_eq!(c.preprocess(&[0, 1], &mut doms).unwrap(), 0);
    }

    #[test]
    fn non_numeric_rejects() {
        let c = MaxSum::new(5.0);
        assert!(!c.evaluate(&[Value::str("a"), Value::Int(1)]));
    }

    #[test]
    fn min_sum_unary_preprocess() {
        let c = MinSum::new(4.0);
        let mut doms = store(vec![vec![1, 2, 4, 8]]);
        assert_eq!(c.preprocess(&[0], &mut doms).unwrap(), 2);
        assert_eq!(doms.domain(0).values(), &int_values([4, 8])[..]);
    }
}
