//! Comparison constraints between a variable and a constant, or between two
//! variables. These arise from decomposed comparison chains such as
//! `2 <= block_size_y <= 32 <= block_size_x * block_size_y <= 1024`.

use std::cmp::Ordering;

use super::Constraint;
use crate::domain::DomainStore;
use crate::error::CspResult;
use crate::value::Value;

/// A comparison operator with Python semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// Apply the operator to two values. Returns `false` on type errors,
    /// except for `!=` which treats incomparable values as unequal.
    pub fn apply(&self, a: &Value, b: &Value) -> bool {
        match self {
            CmpOp::Eq => a.py_eq(b),
            CmpOp::Ne => !a.py_eq(b),
            _ => match a.compare(b) {
                Some(ord) => self.apply_ordering(ord),
                None => false,
            },
        }
    }

    /// Apply the operator to an [`Ordering`].
    pub fn apply_ordering(&self, ord: Ordering) -> bool {
        match self {
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
        }
    }

    /// The operator with swapped operands (`a op b` ⇔ `b op.swap() a`).
    pub fn swap(&self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
        }
    }

    /// The logical negation of the operator (`!(a op b)` ⇔ `a op.negate() b`).
    pub fn negate(&self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
        }
    }

    /// Source form of the operator.
    pub fn symbol(&self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        }
    }
}

/// Unary constraint `x op constant`. Fully resolved by preprocessing.
#[derive(Debug)]
pub struct VarCompare {
    op: CmpOp,
    constant: Value,
}

impl VarCompare {
    /// Build `x op constant`.
    pub fn new(op: CmpOp, constant: Value) -> Self {
        VarCompare { op, constant }
    }

    /// The comparison operator.
    pub fn op(&self) -> CmpOp {
        self.op
    }

    /// The constant operand.
    pub fn constant(&self) -> &Value {
        &self.constant
    }
}

impl Constraint for VarCompare {
    fn kind(&self) -> &'static str {
        "VarCompare"
    }

    fn evaluate(&self, values: &[Value]) -> bool {
        self.op.apply(&values[0], &self.constant)
    }

    fn preprocess(&self, scope: &[usize], domains: &mut DomainStore) -> CspResult<usize> {
        let removed = domains
            .domain_mut(scope[0])
            .retain(|v| self.op.apply(v, &self.constant));
        Ok(removed)
    }
}

/// Binary constraint `x op y` between two variables.
#[derive(Debug)]
pub struct PairCompare {
    op: CmpOp,
}

impl PairCompare {
    /// Build `x op y` where `x` is the first and `y` the second scope variable.
    pub fn new(op: CmpOp) -> Self {
        PairCompare { op }
    }

    /// The comparison operator.
    pub fn op(&self) -> CmpOp {
        self.op
    }
}

impl Constraint for PairCompare {
    fn kind(&self) -> &'static str {
        "PairCompare"
    }

    fn evaluate(&self, values: &[Value]) -> bool {
        self.op.apply(&values[0], &values[1])
    }

    fn preprocess(&self, scope: &[usize], domains: &mut DomainStore) -> CspResult<usize> {
        // Bound-consistency pruning for ordering operators: a value of x that
        // cannot be matched by any y (and vice versa) can never participate in
        // a solution.
        let (xmin, xmax) = match (
            domains.domain(scope[0]).numeric_min(),
            domains.domain(scope[0]).numeric_max(),
        ) {
            (Some(a), Some(b)) => (a, b),
            _ => return Ok(0),
        };
        let (ymin, ymax) = match (
            domains.domain(scope[1]).numeric_min(),
            domains.domain(scope[1]).numeric_max(),
        ) {
            (Some(a), Some(b)) => (a, b),
            _ => return Ok(0),
        };
        let mut removed = 0usize;
        match self.op {
            CmpOp::Lt | CmpOp::Le => {
                let op = self.op;
                removed += domains.domain_mut(scope[0]).retain(|v| {
                    v.as_f64()
                        .map(|f| op.apply(&Value::Float(f), &Value::Float(ymax)))
                        .unwrap_or(false)
                });
                removed += domains.domain_mut(scope[1]).retain(|v| {
                    v.as_f64()
                        .map(|f| op.apply(&Value::Float(xmin), &Value::Float(f)))
                        .unwrap_or(false)
                });
            }
            CmpOp::Gt | CmpOp::Ge => {
                let op = self.op;
                removed += domains.domain_mut(scope[0]).retain(|v| {
                    v.as_f64()
                        .map(|f| op.apply(&Value::Float(f), &Value::Float(ymin)))
                        .unwrap_or(false)
                });
                removed += domains.domain_mut(scope[1]).retain(|v| {
                    v.as_f64()
                        .map(|f| op.apply(&Value::Float(xmax), &Value::Float(f)))
                        .unwrap_or(false)
                });
            }
            CmpOp::Eq | CmpOp::Ne => {}
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::value::int_values;

    fn store(domains: Vec<Vec<i64>>) -> DomainStore {
        let mut s = DomainStore::new();
        for d in domains {
            s.push(Domain::new(int_values(d)));
        }
        s
    }

    #[test]
    fn op_apply() {
        assert!(CmpOp::Le.apply(&Value::Int(2), &Value::Int(2)));
        assert!(!CmpOp::Lt.apply(&Value::Int(2), &Value::Int(2)));
        assert!(CmpOp::Ne.apply(&Value::Int(2), &Value::str("2")));
        assert!(!CmpOp::Eq.apply(&Value::Int(2), &Value::str("2")));
        assert!(CmpOp::Gt.apply(&Value::Float(2.5), &Value::Int(2)));
    }

    #[test]
    fn op_swap_negate_symbol() {
        assert_eq!(CmpOp::Lt.swap(), CmpOp::Gt);
        assert_eq!(CmpOp::Le.negate(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.swap(), CmpOp::Eq);
        assert_eq!(CmpOp::Ne.negate(), CmpOp::Eq);
        assert_eq!(CmpOp::Ge.symbol(), ">=");
    }

    #[test]
    fn var_compare_preprocess() {
        let c = VarCompare::new(CmpOp::Ge, Value::Int(4));
        let mut doms = store(vec![vec![1, 2, 4, 8, 16]]);
        assert_eq!(c.preprocess(&[0], &mut doms).unwrap(), 2);
        assert_eq!(doms.domain(0).values(), &int_values([4, 8, 16])[..]);
        assert!(c.evaluate(&int_values([8])));
        assert!(!c.evaluate(&int_values([2])));
    }

    #[test]
    fn pair_compare_evaluate() {
        let c = PairCompare::new(CmpOp::Le);
        assert!(c.evaluate(&int_values([2, 4])));
        assert!(!c.evaluate(&int_values([5, 4])));
        assert_eq!(c.op(), CmpOp::Le);
    }

    #[test]
    fn pair_compare_bound_pruning() {
        // x <= y with x in {1..10}, y in {1..4}: x in {5..10} impossible.
        let c = PairCompare::new(CmpOp::Le);
        let mut doms = store(vec![vec![1, 2, 5, 8, 10], vec![1, 2, 4]]);
        let removed = c.preprocess(&[0, 1], &mut doms).unwrap();
        assert_eq!(removed, 3);
        assert_eq!(doms.domain(0).values(), &int_values([1, 2])[..]);
        // y values below x's minimum (1) stay since 1 <= y for all.
        assert_eq!(doms.domain(1).len(), 3);
    }

    #[test]
    fn pair_compare_gt_pruning() {
        // x > y with x in {1,2,3}, y in {2,3,4}: x=1,2 can't exceed min(y)=2? only x>2 survive vs ymin.
        let c = PairCompare::new(CmpOp::Gt);
        let mut doms = store(vec![vec![1, 2, 3], vec![2, 3, 4]]);
        c.preprocess(&[0, 1], &mut doms).unwrap();
        assert_eq!(doms.domain(0).values(), &int_values([3])[..]);
        assert_eq!(doms.domain(1).values(), &int_values([2])[..]);
    }

    #[test]
    fn eq_ne_no_bound_pruning() {
        let c = PairCompare::new(CmpOp::Eq);
        let mut doms = store(vec![vec![1, 2], vec![2, 3]]);
        assert_eq!(c.preprocess(&[0, 1], &mut doms).unwrap(), 0);
    }
}
