//! Divisibility constraints.
//!
//! Divisibility is one of the most common constraint shapes in auto-tuning:
//! tile sizes must divide block sizes, unroll factors must divide loop trip
//! counts, cache-block sizes must divide the input size. Recognising these as
//! specific constraints enables domain pruning that a generic function
//! constraint cannot provide.

use super::compare::CmpOp;
use super::Constraint;
use crate::assignment::Assignment;
use crate::domain::DomainStore;
use crate::error::CspResult;
use crate::value::Value;

/// Unary constraint `x % modulus == remainder`.
#[derive(Debug)]
pub struct ModuloEquals {
    modulus: i64,
    remainder: i64,
}

impl ModuloEquals {
    /// Build `x % modulus == remainder`. `modulus` must be non-zero.
    pub fn new(modulus: i64, remainder: i64) -> Self {
        assert!(modulus != 0, "modulus must be non-zero");
        ModuloEquals { modulus, remainder }
    }

    /// The modulus.
    pub fn modulus(&self) -> i64 {
        self.modulus
    }

    /// The required remainder.
    pub fn remainder(&self) -> i64 {
        self.remainder
    }
}

impl Constraint for ModuloEquals {
    fn kind(&self) -> &'static str {
        "ModuloEquals"
    }

    fn evaluate(&self, values: &[Value]) -> bool {
        // Mirror the expression interpreter exactly: `v % modulus` via
        // Value::rem (which also handles non-integral floats), compared
        // with Python equality. A modulo error rejects, like any other
        // evaluation error in a restriction.
        let modulus = Value::Int(self.modulus);
        let remainder = Value::Int(self.remainder);
        values.iter().all(|v| match v.rem(&modulus) {
            Some(r) => CmpOp::Eq.apply(&r, &remainder),
            None => false,
        })
    }

    fn preprocess(&self, scope: &[usize], domains: &mut DomainStore) -> CspResult<usize> {
        let mut removed = 0;
        for &var in scope {
            removed += domains
                .domain_mut(var)
                .retain(|v| self.evaluate(std::slice::from_ref(v)));
        }
        Ok(removed)
    }
}

/// Binary constraint `dividend % divisor == 0` (the divisor evenly divides the
/// dividend). Scope order: `[dividend, divisor]`.
#[derive(Debug, Default)]
pub struct Divides;

impl Divides {
    /// Build the constraint.
    pub fn new() -> Self {
        Divides
    }
}

impl Constraint for Divides {
    fn kind(&self) -> &'static str {
        "Divides"
    }

    fn evaluate(&self, values: &[Value]) -> bool {
        // Same parity-by-construction as ModuloEquals: evaluate through
        // Value::rem so floats and error cases behave exactly as the
        // interpreter's `dividend % divisor == 0`.
        match values[0].rem(&values[1]) {
            Some(r) => CmpOp::Eq.apply(&r, &Value::Int(0)),
            None => false,
        }
    }

    fn check(
        &self,
        scope: &[usize],
        assignment: &Assignment,
        domains: &mut DomainStore,
        forward_check: bool,
    ) -> bool {
        super::generic_check(self, scope, assignment, domains, forward_check)
    }

    fn preprocess(&self, scope: &[usize], domains: &mut DomainStore) -> CspResult<usize> {
        if scope.len() != 2 {
            return Ok(0);
        }
        let dividend_values: Vec<i64> = domains
            .domain(scope[0])
            .values()
            .iter()
            .filter_map(|v| v.as_i64())
            .collect();
        let divisor_values: Vec<i64> = domains
            .domain(scope[1])
            .values()
            .iter()
            .filter_map(|v| v.as_i64())
            .collect();
        // Every value must be numeric for sound pruning.
        if dividend_values.len() != domains.domain(scope[0]).len()
            || divisor_values.len() != domains.domain(scope[1]).len()
        {
            return Ok(0);
        }
        let mut removed = 0;
        // A dividend value needs at least one divisor value dividing it.
        removed += domains.domain_mut(scope[0]).retain(|v| {
            let dividend = v.as_i64().expect("numeric");
            divisor_values.iter().any(|&d| d != 0 && dividend % d == 0)
        });
        // A divisor value needs at least one dividend value it divides.
        removed += domains.domain_mut(scope[1]).retain(|v| {
            let divisor = v.as_i64().expect("numeric");
            divisor != 0 && dividend_values.iter().any(|&n| n % divisor == 0)
        });
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::value::int_values;

    fn store(domains: Vec<Vec<i64>>) -> DomainStore {
        let mut s = DomainStore::new();
        for d in domains {
            s.push(Domain::new(int_values(d)));
        }
        s
    }

    #[test]
    fn modulo_follows_value_rem_semantics() {
        // Found by the fuzzer: `y % y == False` with y = 1.75 must hold —
        // Value::rem handles non-integral floats (1.75 % 1.75 == 0.0, and
        // 0.0 equals False numerically) — while the old integer-only
        // evaluation rejected every non-integral float.
        let d = Divides::new();
        assert!(d.evaluate(&[Value::Float(1.75), Value::Float(1.75)]));
        assert!(d.evaluate(&[Value::Float(3.5), Value::Float(1.75)]));
        assert!(!d.evaluate(&[Value::Float(2.5), Value::Float(1.75)]));
        assert!(!d.evaluate(&[Value::Float(1.0), Value::Float(0.0)]));
        assert!(!d.evaluate(&[Value::str("half"), Value::Int(2)]));
        let m = ModuloEquals::new(2, 1);
        assert!(m.evaluate(&[Value::Float(3.0)]));
        assert!(!m.evaluate(&[Value::Float(3.5)]));
        assert!(!m.evaluate(&[Value::str("half")]));
    }

    #[test]
    fn modulo_equals_evaluate_and_preprocess() {
        let c = ModuloEquals::new(16, 0);
        assert!(c.evaluate(&int_values([32])));
        assert!(!c.evaluate(&int_values([20])));
        assert_eq!(c.modulus(), 16);
        assert_eq!(c.remainder(), 0);
        let mut doms = store(vec![vec![1, 8, 16, 24, 32, 48]]);
        assert_eq!(c.preprocess(&[0], &mut doms).unwrap(), 3);
        assert_eq!(doms.domain(0).values(), &int_values([16, 32, 48])[..]);
    }

    #[test]
    fn modulo_equals_non_zero_remainder() {
        let c = ModuloEquals::new(4, 1);
        assert!(c.evaluate(&int_values([5])));
        assert!(!c.evaluate(&int_values([4])));
        assert!(!c.evaluate(&[Value::str("x")]));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn modulo_zero_panics() {
        let _ = ModuloEquals::new(0, 0);
    }

    #[test]
    fn divides_evaluate() {
        let c = Divides::new();
        assert!(c.evaluate(&int_values([32, 8])));
        assert!(!c.evaluate(&int_values([32, 5])));
        assert!(!c.evaluate(&int_values([32, 0])));
    }

    #[test]
    fn divides_preprocess_prunes_both_sides() {
        let c = Divides::new();
        // dividend in {7, 8, 9}, divisor in {4, 5}: 7 and 9 have no divisor,
        // 5 divides nothing.
        let mut doms = store(vec![vec![7, 8, 9], vec![4, 5]]);
        let removed = c.preprocess(&[0, 1], &mut doms).unwrap();
        assert_eq!(removed, 3);
        assert_eq!(doms.domain(0).values(), &int_values([8])[..]);
        assert_eq!(doms.domain(1).values(), &int_values([4])[..]);
    }

    #[test]
    fn divides_forward_checks_through_generic_path() {
        let c = Divides::new();
        let mut doms = store(vec![vec![12], vec![1, 2, 3, 4, 5, 6, 7, 8]]);
        let mut a = Assignment::new(2);
        a.assign(0, Value::Int(12));
        assert!(c.check(&[0, 1], &a, &mut doms, true));
        assert_eq!(doms.domain(1).values(), &int_values([1, 2, 3, 4, 6])[..]);
    }

    #[test]
    fn divides_preprocess_skips_non_numeric_domains() {
        let c = Divides::new();
        let mut s = DomainStore::new();
        s.push(Domain::new(vec![Value::str("a"), Value::Int(4)]));
        s.push(Domain::new(int_values([2])));
        assert_eq!(c.preprocess(&[0, 1], &mut s).unwrap(), 0);
    }
}
