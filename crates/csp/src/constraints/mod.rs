//! Constraint trait and the built-in constraint library.
//!
//! Constraints are predicates over a *scope* (an ordered list of variables).
//! The solver calls [`Constraint::check`] with a partial assignment during
//! search and [`Constraint::evaluate`] with a complete value tuple when brute
//! forcing or validating. *Specific* constraints (products, sums, set
//! membership, comparisons) additionally implement
//! [`Constraint::preprocess`], which prunes variable domains once before the
//! search starts — one of the key optimizations of the paper (Section 4.3.2).

use std::fmt::Debug;
use std::sync::Arc;

use crate::assignment::Assignment;
use crate::domain::DomainStore;
use crate::error::CspResult;
use crate::value::Value;

mod compare;
mod divisibility;
mod function;
mod membership;
mod product;
mod sum;
mod table;
mod uniqueness;

pub use compare::{CmpOp, PairCompare, VarCompare};
pub use divisibility::{Divides, ModuloEquals};
pub use function::FunctionConstraint;
pub use membership::{FixedValue, InSet, NotInSet};
pub use product::{ExactProduct, MaxProduct, MinProduct};
pub use sum::{ExactSum, MaxSum, MinSum};
pub use table::{AllowedTuples, ForbiddenTuples};
pub use uniqueness::{AllDifferent, AllEqual};

/// A constraint over a scope of variables.
///
/// Implementations must be cheap to share across threads: the parallel
/// solvers evaluate the same constraint objects concurrently.
pub trait Constraint: Send + Sync + Debug {
    /// Short human-readable kind, e.g. `"MaxProduct"`.
    fn kind(&self) -> &'static str;

    /// Evaluate the constraint against a complete tuple of values, given in
    /// scope order.
    fn evaluate(&self, values: &[Value]) -> bool;

    /// Check the constraint under a (possibly partial) assignment.
    ///
    /// Must return `false` only when the constraint is certainly violated by
    /// every completion of the assignment. When `forward_check` is set and
    /// exactly one scope variable is unassigned, implementations may hide
    /// incompatible values from that variable's domain and return `false` if
    /// the domain becomes empty.
    fn check(
        &self,
        scope: &[usize],
        assignment: &Assignment,
        domains: &mut DomainStore,
        forward_check: bool,
    ) -> bool {
        generic_check(self, scope, assignment, domains, forward_check)
    }

    /// Prune domains once before search. Returns the number of removed values.
    ///
    /// The default does nothing; specific constraints override this.
    fn preprocess(&self, _scope: &[usize], _domains: &mut DomainStore) -> CspResult<usize> {
        Ok(0)
    }

    /// Whether this is a *specific* constraint (i.e. not a generic function
    /// constraint). Used for reporting and ablation studies.
    fn is_specific(&self) -> bool {
        true
    }
}

/// Shared, dynamically typed constraint handle.
pub type ConstraintRef = Arc<dyn Constraint>;

/// Generic partial-assignment check built on [`Constraint::evaluate`].
///
/// * all scope variables assigned → evaluate the tuple;
/// * exactly one unassigned and `forward_check` → hide the values of that
///   variable that would violate the constraint, fail if none remain;
/// * otherwise → the constraint cannot be decided yet, return `true`.
pub fn generic_check<C: Constraint + ?Sized>(
    constraint: &C,
    scope: &[usize],
    assignment: &Assignment,
    domains: &mut DomainStore,
    forward_check: bool,
) -> bool {
    let mut values: Vec<Value> = Vec::with_capacity(scope.len());
    let mut missing: Option<(usize, usize)> = None;
    let mut missing_count = 0usize;
    for (pos, &var) in scope.iter().enumerate() {
        match assignment.get(var) {
            Some(v) => values.push(v.clone()),
            None => {
                values.push(Value::Int(0));
                missing = Some((pos, var));
                missing_count += 1;
            }
        }
    }
    if missing_count == 0 {
        return constraint.evaluate(&values);
    }
    if forward_check && missing_count == 1 {
        let (pos, var) = missing.expect("one missing variable");
        let domain = domains.domain_mut(var);
        return domain.hide_where(|candidate| {
            values[pos] = candidate.clone();
            constraint.evaluate(&values)
        });
    }
    true
}

/// Sum of the numeric interpretations of `values`; `None` if any is non-numeric.
pub(crate) fn numeric_sum(values: &[Value]) -> Option<f64> {
    values
        .iter()
        .try_fold(0.0, |acc, v| Some(acc + v.as_f64()?))
}

/// Product of the numeric interpretations of `values`; `None` if any is non-numeric.
pub(crate) fn numeric_product(values: &[Value]) -> Option<f64> {
    values
        .iter()
        .try_fold(1.0, |acc, v| Some(acc * v.as_f64()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::value::int_values;

    #[derive(Debug)]
    struct SumIsEven;

    impl Constraint for SumIsEven {
        fn kind(&self) -> &'static str {
            "SumIsEven"
        }
        fn evaluate(&self, values: &[Value]) -> bool {
            let s: i64 = values.iter().map(|v| v.as_i64().unwrap_or(1)).sum();
            s % 2 == 0
        }
        fn is_specific(&self) -> bool {
            false
        }
    }

    fn store(domains: Vec<Vec<i64>>) -> DomainStore {
        let mut s = DomainStore::new();
        for d in domains {
            s.push(Domain::new(int_values(d)));
        }
        s
    }

    #[test]
    fn generic_check_complete_assignment() {
        let c = SumIsEven;
        let mut doms = store(vec![vec![1, 2], vec![1, 2]]);
        let mut a = Assignment::new(2);
        a.assign(0, Value::Int(1));
        a.assign(1, Value::Int(3));
        assert!(c.check(&[0, 1], &a, &mut doms, false));
        a.assign(1, Value::Int(2));
        assert!(!c.check(&[0, 1], &a, &mut doms, false));
    }

    #[test]
    fn generic_check_partial_without_fc_is_true() {
        let c = SumIsEven;
        let mut doms = store(vec![vec![1, 2], vec![1, 2]]);
        let mut a = Assignment::new(2);
        a.assign(0, Value::Int(1));
        assert!(c.check(&[0, 1], &a, &mut doms, false));
    }

    #[test]
    fn generic_check_forward_checks_single_missing() {
        let c = SumIsEven;
        let mut doms = store(vec![vec![1, 2], vec![1, 2, 3, 4]]);
        let mut a = Assignment::new(2);
        a.assign(0, Value::Int(1));
        doms.push_state_all();
        assert!(c.check(&[0, 1], &a, &mut doms, true));
        // only odd values remain compatible with x=1
        assert_eq!(doms.domain(1).values(), &int_values([1, 3])[..]);
        doms.pop_state_all();
        assert_eq!(doms.domain(1).len(), 4);
    }

    #[test]
    fn generic_check_forward_check_wipeout_fails() {
        let c = SumIsEven;
        let mut doms = store(vec![vec![1], vec![2, 4, 6]]);
        let mut a = Assignment::new(2);
        a.assign(0, Value::Int(1));
        assert!(!c.check(&[0, 1], &a, &mut doms, true));
    }

    #[test]
    fn numeric_helpers() {
        assert_eq!(numeric_sum(&int_values([1, 2, 3])), Some(6.0));
        assert_eq!(numeric_product(&int_values([2, 3, 4])), Some(24.0));
        assert_eq!(numeric_sum(&[Value::str("a")]), None);
    }
}
