//! Table (extension) constraints: explicitly allowed or forbidden tuples.
//!
//! Some tuning dependencies are easiest to state by simply listing the
//! combinations that are allowed (for example, the three legal
//! `(vector_width, element_type)` pairs a kernel supports) or forbidden
//! (combinations known to miscompile). ConfigSpace calls the latter
//! *forbidden clauses*; CSP literature calls both *extension* constraints.

use rustc_hash::FxHashSet;

use super::Constraint;
use crate::domain::DomainStore;
use crate::error::CspResult;
use crate::value::Value;

/// Only the listed tuples are allowed (values in scope order).
#[derive(Debug)]
pub struct AllowedTuples {
    tuples: FxHashSet<Vec<Value>>,
    arity: usize,
}

impl AllowedTuples {
    /// Create the constraint from the allowed tuples. All tuples must have the
    /// same length, which must match the scope the constraint is attached to.
    pub fn new(tuples: impl IntoIterator<Item = Vec<Value>>) -> Self {
        let tuples: FxHashSet<Vec<Value>> = tuples.into_iter().collect();
        let arity = tuples.iter().map(|t| t.len()).next().unwrap_or(0);
        debug_assert!(tuples.iter().all(|t| t.len() == arity));
        AllowedTuples { tuples, arity }
    }

    /// Number of allowed tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when no tuple is allowed (the constraint is unsatisfiable).
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

impl Constraint for AllowedTuples {
    fn kind(&self) -> &'static str {
        "AllowedTuples"
    }

    fn evaluate(&self, values: &[Value]) -> bool {
        values.len() == self.arity && self.tuples.contains(values)
    }

    fn preprocess(&self, scope: &[usize], domains: &mut DomainStore) -> CspResult<usize> {
        if scope.len() != self.arity {
            return Ok(0);
        }
        // A domain value is only useful if it appears at that position in at
        // least one allowed tuple.
        let mut removed = 0usize;
        for (pos, &var) in scope.iter().enumerate() {
            removed += domains
                .domain_mut(var)
                .retain(|v| self.tuples.iter().any(|t| &t[pos] == v));
        }
        Ok(removed)
    }
}

/// The listed tuples are forbidden (values in scope order); everything else is
/// allowed.
#[derive(Debug)]
pub struct ForbiddenTuples {
    tuples: FxHashSet<Vec<Value>>,
    arity: usize,
}

impl ForbiddenTuples {
    /// Create the constraint from the forbidden tuples.
    pub fn new(tuples: impl IntoIterator<Item = Vec<Value>>) -> Self {
        let tuples: FxHashSet<Vec<Value>> = tuples.into_iter().collect();
        let arity = tuples.iter().map(|t| t.len()).next().unwrap_or(0);
        debug_assert!(tuples.iter().all(|t| t.len() == arity));
        ForbiddenTuples { tuples, arity }
    }

    /// Number of forbidden tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when nothing is forbidden (the constraint is trivially satisfied).
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

impl Constraint for ForbiddenTuples {
    fn kind(&self) -> &'static str {
        "ForbiddenTuples"
    }

    fn evaluate(&self, values: &[Value]) -> bool {
        values.len() != self.arity || !self.tuples.contains(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::prelude::*;
    use crate::value::int_values;

    fn allowed() -> AllowedTuples {
        AllowedTuples::new(vec![
            int_values([1, 2]),
            int_values([2, 4]),
            int_values([4, 8]),
        ])
    }

    #[test]
    fn allowed_tuples_evaluate() {
        let c = allowed();
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert!(c.evaluate(&int_values([2, 4])));
        assert!(!c.evaluate(&int_values([2, 8])));
        assert!(!c.evaluate(&int_values([2])));
    }

    #[test]
    fn allowed_tuples_preprocess_projects_domains() {
        let c = allowed();
        let mut domains = DomainStore::new();
        domains.push(Domain::new(int_values([1, 2, 3, 4])));
        domains.push(Domain::new(int_values([2, 4, 6, 8])));
        let removed = c.preprocess(&[0, 1], &mut domains).unwrap();
        assert_eq!(removed, 2); // 3 from the first domain, 6 from the second
        assert_eq!(domains.domain(0).values(), &int_values([1, 2, 4])[..]);
        assert_eq!(domains.domain(1).values(), &int_values([2, 4, 8])[..]);
    }

    #[test]
    fn forbidden_tuples_evaluate() {
        let c = ForbiddenTuples::new(vec![int_values([1, 1]), int_values([2, 2])]);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert!(c.evaluate(&int_values([1, 2])));
        assert!(!c.evaluate(&int_values([2, 2])));
        // arity mismatch: the constraint cannot apply, so it does not reject
        assert!(c.evaluate(&int_values([2])));
    }

    #[test]
    fn empty_allowed_set_is_unsatisfiable_in_a_problem() {
        let mut p = Problem::new();
        p.add_variable("x", int_values([1, 2])).unwrap();
        p.add_variable("y", int_values([1, 2])).unwrap();
        p.add_constraint(AllowedTuples::new(Vec::<Vec<Value>>::new()), &["x", "y"])
            .unwrap();
        let r = OptimizedSolver::new().solve(&p).unwrap();
        assert!(r.solutions.is_empty());
    }

    #[test]
    fn table_constraints_agree_with_brute_force() {
        let mut p = Problem::new();
        p.add_variable("vector_width", int_values([1, 2, 4, 8]))
            .unwrap();
        p.add_variable("elements_per_thread", int_values([1, 2, 4]))
            .unwrap();
        p.add_constraint(
            AllowedTuples::new(vec![
                int_values([1, 1]),
                int_values([2, 2]),
                int_values([4, 2]),
                int_values([4, 4]),
                int_values([8, 4]),
            ]),
            &["vector_width", "elements_per_thread"],
        )
        .unwrap();
        p.add_constraint(
            ForbiddenTuples::new(vec![int_values([8, 4])]),
            &["vector_width", "elements_per_thread"],
        )
        .unwrap();
        let bf = BruteForceSolver::new().solve(&p).unwrap();
        let opt = OptimizedSolver::new().solve(&p).unwrap();
        assert_eq!(bf.solutions.len(), 4);
        assert!(bf.solutions.same_solutions(&opt.solutions));
    }
}
