//! Generic user-defined function constraints.
//!
//! This is the Rust analogue of Kernel Tuner's lambda-based constraints and
//! python-constraint's `FunctionConstraint`: an arbitrary predicate over the
//! scope values. Function constraints are the fallback when the expression
//! parser cannot map a constraint onto one of the specific constraint types.

use std::fmt;
use std::sync::Arc;

use super::Constraint;
use crate::value::Value;

/// Predicate signature for function constraints.
pub type ConstraintFn = dyn Fn(&[Value]) -> bool + Send + Sync;

/// A constraint defined by an arbitrary predicate over the scope values
/// (given in scope order).
#[derive(Clone)]
pub struct FunctionConstraint {
    func: Arc<ConstraintFn>,
    label: String,
}

impl FunctionConstraint {
    /// Wrap a predicate. The `label` is used in debug output only.
    pub fn new<F>(func: F) -> Self
    where
        F: Fn(&[Value]) -> bool + Send + Sync + 'static,
    {
        FunctionConstraint {
            func: Arc::new(func),
            label: "<fn>".to_string(),
        }
    }

    /// Wrap a predicate with a descriptive label (e.g. the source text).
    pub fn with_label<F>(func: F, label: impl Into<String>) -> Self
    where
        F: Fn(&[Value]) -> bool + Send + Sync + 'static,
    {
        FunctionConstraint {
            func: Arc::new(func),
            label: label.into(),
        }
    }

    /// The debug label.
    pub fn label(&self) -> &str {
        &self.label
    }
}

impl fmt::Debug for FunctionConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FunctionConstraint")
            .field("label", &self.label)
            .finish()
    }
}

impl Constraint for FunctionConstraint {
    fn kind(&self) -> &'static str {
        "Function"
    }

    fn evaluate(&self, values: &[Value]) -> bool {
        (self.func)(values)
    }

    fn is_specific(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::Assignment;
    use crate::domain::{Domain, DomainStore};
    use crate::value::int_values;

    #[test]
    fn evaluates_predicate() {
        let c = FunctionConstraint::new(|vals: &[Value]| {
            vals[0].as_i64().unwrap() * vals[1].as_i64().unwrap() >= 32
        });
        assert!(c.evaluate(&int_values([8, 4])));
        assert!(!c.evaluate(&int_values([2, 4])));
        assert_eq!(c.kind(), "Function");
        assert!(!c.is_specific());
    }

    #[test]
    fn forward_checking_through_generic_path() {
        let c = FunctionConstraint::with_label(
            |vals: &[Value]| vals[0].as_i64().unwrap() + vals[1].as_i64().unwrap() <= 5,
            "x + y <= 5",
        );
        assert_eq!(c.label(), "x + y <= 5");
        let mut doms = DomainStore::new();
        doms.push(Domain::new(int_values([1, 2, 3])));
        doms.push(Domain::new(int_values([1, 2, 3, 4, 5])));
        let mut a = Assignment::new(2);
        a.assign(0, Value::Int(3));
        assert!(c.check(&[0, 1], &a, &mut doms, true));
        assert_eq!(doms.domain(1).values(), &int_values([1, 2])[..]);
    }

    #[test]
    fn debug_format_contains_label() {
        let c = FunctionConstraint::with_label(|_| true, "always");
        assert!(format!("{c:?}").contains("always"));
    }
}
