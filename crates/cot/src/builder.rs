//! End-to-end chain-of-trees construction from a generic space specification.

use at_csp::sink::RowSink;
use at_csp::{ConstraintRef, CspResult, Problem, SolutionSet, Value};

use crate::chain::ChainOfTrees;
use crate::grouping::group_parameters;
use crate::tree::{GroupConstraint, GroupTree};

/// Build a chain of trees for a search space given as parameter names,
/// per-parameter domains and constraints with name-index scopes.
///
/// * `names` — parameter names, declaration order
/// * `domains` — for each parameter, its values
/// * `constraints` — `(constraint, scope)` pairs where the scope holds
///   parameter indices in the order the constraint expects its values
pub fn build_chain(
    names: &[String],
    domains: &[Vec<Value>],
    constraints: &[(ConstraintRef, Vec<usize>)],
) -> ChainOfTrees {
    assert_eq!(names.len(), domains.len());
    let scopes: Vec<Vec<usize>> = constraints.iter().map(|(_, s)| s.clone()).collect();
    let groups = group_parameters(names.len(), &scopes);
    let mut trees = Vec::with_capacity(groups.len());
    for group in groups {
        // position of each global parameter inside the group
        let pos_of = |param: usize| group.iter().position(|&p| p == param);
        let group_domains: Vec<Vec<Value>> = group.iter().map(|&p| domains[p].clone()).collect();
        let mut group_constraints = Vec::new();
        for (constraint, scope) in constraints {
            let positions: Option<Vec<usize>> = scope.iter().map(|&p| pos_of(p)).collect();
            if let Some(scope_positions) = positions {
                let ready_at = scope_positions.iter().copied().max().unwrap_or(0);
                group_constraints.push(GroupConstraint {
                    constraint: constraint.clone(),
                    scope_positions,
                    ready_at,
                });
            }
        }
        trees.push(GroupTree::build(
            group.clone(),
            &group_domains,
            &group_constraints,
        ));
    }
    ChainOfTrees::new(names.to_vec(), trees)
}

/// Build a chain of trees directly from an [`at_csp::Problem`] and enumerate
/// it into a [`SolutionSet`] — the drop-in equivalent of running one of the
/// CSP solvers, used by the evaluation harness and the equivalence tests.
pub fn build_chain_from_problem(problem: &Problem) -> ChainOfTrees {
    let names = problem.variable_names().to_vec();
    let domains: Vec<Vec<Value>> = (0..problem.num_variables())
        .map(|v| problem.domain(v).values().to_vec())
        .collect();
    let constraints: Vec<(ConstraintRef, Vec<usize>)> = problem
        .constraints()
        .iter()
        .map(|e| (e.constraint.clone(), e.scope.clone()))
        .collect();
    build_chain(&names, &domains, &constraints)
}

/// Enumerate a chain into the same dense [`SolutionSet`] format the CSP
/// solvers produce.
pub fn enumerate_chain(chain: &ChainOfTrees) -> SolutionSet {
    SolutionSet::from_rows(chain.names().to_vec(), chain.enumerate())
}

/// Stream every configuration of a chain into a [`RowSink`] (rows in
/// declaration order) — the chain-of-trees counterpart of
/// [`at_csp::Solver::solve_into`](at_csp::Solver): no decoded intermediate
/// of the whole space is ever allocated.
pub fn enumerate_chain_into(chain: &ChainOfTrees, sink: &mut dyn RowSink) -> CspResult<()> {
    chain.for_each_configuration(|row| sink.push_row(row))
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_csp::prelude::*;
    use at_csp::value::int_values;

    fn block_size_problem() -> Problem {
        let mut p = Problem::new();
        let mut xs: Vec<i64> = vec![1, 2, 4, 8, 16];
        xs.extend((1..=32).map(|i| 32 * i));
        p.add_variable("block_size_x", int_values(xs)).unwrap();
        p.add_variable("block_size_y", int_values((0..6).map(|i| 1 << i)))
            .unwrap();
        p.add_variable("unroll", int_values([1, 2, 4])).unwrap();
        p.add_constraint(MinProduct::new(32.0), &["block_size_x", "block_size_y"])
            .unwrap();
        p.add_constraint(MaxProduct::new(1024.0), &["block_size_x", "block_size_y"])
            .unwrap();
        p
    }

    #[test]
    fn chain_matches_csp_solver_on_block_size_problem() {
        let p = block_size_problem();
        let chain = build_chain_from_problem(&p);
        // two groups: {block_size_x, block_size_y} and {unroll}
        assert_eq!(chain.trees().len(), 2);
        let from_chain = enumerate_chain(&chain);
        let from_solver = OptimizedSolver::new().solve(&p).unwrap();
        assert_eq!(from_chain.len() as u128, chain.size());
        assert!(from_solver.solutions.same_solutions(&from_chain));
    }

    #[test]
    fn streaming_enumeration_matches_collected() {
        let p = block_size_problem();
        let chain = build_chain_from_problem(&p);
        let collected = enumerate_chain(&chain);
        let mut streamed = SolutionSet::new(chain.names().to_vec());
        enumerate_chain_into(&chain, &mut streamed).unwrap();
        assert_eq!(streamed.len(), collected.len());
        assert_eq!(streamed.rows(), collected.rows());
    }

    #[test]
    fn chain_handles_function_constraints() {
        let mut p = Problem::new();
        p.add_variable("a", int_values([1, 2, 3, 4])).unwrap();
        p.add_variable("b", int_values([1, 2, 3, 4])).unwrap();
        p.add_function_constraint(&["a", "b"], |v| {
            v[0].as_i64().unwrap() % v[1].as_i64().unwrap() == 0
        })
        .unwrap();
        let chain = build_chain_from_problem(&p);
        let from_chain = enumerate_chain(&chain);
        let reference = BruteForceSolver::new().solve(&p).unwrap();
        assert!(reference.solutions.same_solutions(&from_chain));
    }

    #[test]
    fn independent_parameters_are_singleton_trees() {
        let mut p = Problem::new();
        p.add_variable("a", int_values([1, 2])).unwrap();
        p.add_variable("b", int_values([1, 2, 3])).unwrap();
        let chain = build_chain_from_problem(&p);
        assert_eq!(chain.trees().len(), 2);
        assert_eq!(chain.size(), 6);
    }

    #[test]
    fn chain_reuse_reduces_memory_vs_flat_enumeration() {
        // With 3 chained parameters under a loose constraint, the chain's node
        // count must stay below the number of flat configuration cells.
        let mut p = Problem::new();
        p.add_variable("a", int_values(1..=8)).unwrap();
        p.add_variable("b", int_values(1..=8)).unwrap();
        p.add_variable("c", int_values(1..=8)).unwrap();
        p.add_constraint(MaxSum::new(18.0), &["a", "b", "c"])
            .unwrap();
        let chain = build_chain_from_problem(&p);
        let flat_cells = enumerate_chain(&chain).len() * 3;
        assert!(chain.node_count() < flat_cells);
    }
}
