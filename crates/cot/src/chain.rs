//! The chain of trees: linked per-group trees and whole-space operations.

use at_csp::Value;
use rand::Rng;

use crate::tree::GroupTree;

/// A chain of per-group trees representing a constrained search space.
#[derive(Debug, Clone)]
pub struct ChainOfTrees {
    /// Variable names of the full space, in declaration order.
    names: Vec<String>,
    /// The group trees, in group order.
    trees: Vec<GroupTree>,
}

impl ChainOfTrees {
    /// Assemble a chain from its trees. `names` are the full space's
    /// parameter names in declaration order.
    pub fn new(names: Vec<String>, trees: Vec<GroupTree>) -> Self {
        ChainOfTrees { names, trees }
    }

    /// Parameter names in declaration order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The per-group trees.
    pub fn trees(&self) -> &[GroupTree] {
        &self.trees
    }

    /// Number of valid configurations (product of per-tree leaf counts).
    pub fn size(&self) -> u128 {
        self.trees
            .iter()
            .map(|t| t.leaf_count as u128)
            .fold(1, |a, b| a.saturating_mul(b))
    }

    /// Total constraint evaluations spent building the chain.
    pub fn constraint_checks(&self) -> u64 {
        self.trees.iter().map(|t| t.constraint_checks).sum()
    }

    /// Total number of tree nodes (memory proxy; the chain is usually much
    /// smaller than the flat enumeration).
    pub fn node_count(&self) -> usize {
        self.trees.iter().map(|t| t.node_count()).sum()
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.trees.iter().any(|t| t.leaf_count == 0)
    }

    /// The configuration at `index` (0 ≤ index < `size()`), decoded mixed-radix
    /// over the group sizes. Values are returned in declaration order.
    pub fn configuration(&self, index: u128) -> Option<Vec<Value>> {
        if index >= self.size() || self.is_empty() {
            return None;
        }
        let mut remaining = index;
        let mut values: Vec<Option<Value>> = vec![None; self.names.len()];
        // Least-significant group last for a stable lexicographic-ish order.
        for tree in self.trees.iter().rev() {
            let radix = tree.leaf_count as u128;
            let digit = (remaining % radix) as usize;
            remaining /= radix;
            let combo = tree.combination(digit)?;
            for (pos, &param) in tree.params.iter().enumerate() {
                values[param] = Some(combo[pos].clone());
            }
        }
        values.into_iter().collect()
    }

    /// Enumerate every configuration in the space (values in declaration
    /// order). Intended for validation and for spaces that fit in memory.
    pub fn enumerate(&self) -> Vec<Vec<Value>> {
        if self.is_empty() {
            return Vec::new();
        }
        let per_group: Vec<Vec<Vec<Value>>> = self.trees.iter().map(|t| t.enumerate()).collect();
        let mut out: Vec<Vec<Option<Value>>> = vec![vec![None; self.names.len()]];
        for (tree, combos) in self.trees.iter().zip(per_group.iter()) {
            let mut next = Vec::with_capacity(out.len() * combos.len());
            for partial in &out {
                for combo in combos {
                    let mut row = partial.clone();
                    for (pos, &param) in tree.params.iter().enumerate() {
                        row[param] = Some(combo[pos].clone());
                    }
                    next.push(row);
                }
            }
            out = next;
        }
        out.into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|v| v.expect("all params covered"))
                    .collect()
            })
            .collect()
    }

    /// Sample a configuration uniformly at random by index.
    pub fn sample_uniform<R: Rng>(&self, rng: &mut R) -> Option<Vec<Value>> {
        if self.is_empty() {
            return None;
        }
        let size = self.size();
        let index = rng.gen_range(0..size as u64 as u128);
        self.configuration(index)
    }

    /// Sample by walking each tree from the root, picking a uniformly random
    /// child at every level. This is the "naive" tree sampling the paper
    /// notes is *biased towards the sparser parts* of the chain-of-trees:
    /// paths through sparsely populated subtrees are over-represented.
    pub fn sample_path_biased<R: Rng>(&self, rng: &mut R) -> Option<Vec<Value>> {
        if self.is_empty() {
            return None;
        }
        let mut values: Vec<Option<Value>> = vec![None; self.names.len()];
        for tree in &self.trees {
            let mut nodes = &tree.roots;
            for level in 0..tree.depth() {
                let node = &nodes[rng.gen_range(0..nodes.len())];
                values[tree.params[level]] = Some(node.value.clone());
                nodes = &node.children;
            }
        }
        values.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{GroupConstraint, GroupTree};
    use at_csp::value::int_values;
    use at_csp::MaxProduct;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::collections::HashSet;
    use std::sync::Arc;

    /// Two groups: (x, y) with x*y <= 8, and an independent z.
    fn small_chain() -> ChainOfTrees {
        let t1 = GroupTree::build(
            vec![0, 1],
            &[int_values([1, 2, 4]), int_values([1, 2, 4])],
            &[GroupConstraint {
                constraint: Arc::new(MaxProduct::new(8.0)),
                scope_positions: vec![0, 1],
                ready_at: 1,
            }],
        );
        let t2 = GroupTree::build(vec![2], &[int_values([10, 20])], &[]);
        ChainOfTrees::new(
            vec!["x".to_string(), "y".to_string(), "z".to_string()],
            vec![t1, t2],
        )
    }

    fn reference() -> HashSet<(i64, i64, i64)> {
        let mut set = HashSet::new();
        for x in [1i64, 2, 4] {
            for y in [1i64, 2, 4] {
                for z in [10i64, 20] {
                    if x * y <= 8 {
                        set.insert((x, y, z));
                    }
                }
            }
        }
        set
    }

    fn as_tuple(row: &[Value]) -> (i64, i64, i64) {
        (
            row[0].as_i64().unwrap(),
            row[1].as_i64().unwrap(),
            row[2].as_i64().unwrap(),
        )
    }

    #[test]
    fn size_and_enumeration_match_reference() {
        let chain = small_chain();
        let expected = reference();
        assert_eq!(chain.size(), expected.len() as u128);
        let got: HashSet<_> = chain.enumerate().iter().map(|r| as_tuple(r)).collect();
        assert_eq!(got, expected);
        assert!(!chain.is_empty());
        assert!(chain.constraint_checks() > 0);
    }

    #[test]
    fn indexed_configurations_cover_the_space_exactly_once() {
        let chain = small_chain();
        let mut seen = HashSet::new();
        for i in 0..chain.size() {
            let row = chain.configuration(i).unwrap();
            assert!(seen.insert(as_tuple(&row)), "duplicate at index {i}");
        }
        assert_eq!(seen, reference());
        assert!(chain.configuration(chain.size()).is_none());
    }

    #[test]
    fn uniform_sampling_hits_every_configuration() {
        let chain = small_chain();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut seen = HashSet::new();
        for _ in 0..2000 {
            seen.insert(as_tuple(&chain.sample_uniform(&mut rng).unwrap()));
        }
        assert_eq!(seen, reference());
    }

    #[test]
    fn biased_sampling_yields_valid_configurations() {
        let chain = small_chain();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let expected = reference();
        for _ in 0..200 {
            let row = chain.sample_path_biased(&mut rng).unwrap();
            assert!(expected.contains(&as_tuple(&row)));
        }
    }

    #[test]
    fn empty_chain_reports_empty() {
        let t = GroupTree::build(
            vec![0],
            &[int_values([10, 20])],
            &[GroupConstraint {
                constraint: Arc::new(MaxProduct::new(1.0)),
                scope_positions: vec![0],
                ready_at: 0,
            }],
        );
        let chain = ChainOfTrees::new(vec!["x".to_string()], vec![t]);
        assert!(chain.is_empty());
        assert_eq!(chain.size(), 0);
        assert!(chain.enumerate().is_empty());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(chain.sample_uniform(&mut rng).is_none());
    }

    #[test]
    fn node_count_is_reported() {
        let chain = small_chain();
        assert!(chain.node_count() >= 3);
    }
}
