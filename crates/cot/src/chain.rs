//! The chain of trees: linked per-group trees and whole-space operations.

use at_csp::Value;
use rand::Rng;

use crate::tree::{GroupTree, TreeNode};

/// Draw a uniform index in `[0, span)` by rejection sampling over two `u64`
/// draws.
///
/// The word is assembled from two full 64-bit draws; words falling in the
/// final partial block of `span`-sized buckets above `zone` would bias the
/// low residues, so they are rejected and redrawn (rejection probability is
/// `(2^128 mod span) / 2^128`, i.e. at most one in two and practically zero
/// for realistic chain sizes).
fn uniform_u128<R: Rng>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0, "cannot sample an empty range");
    let rem = (u128::MAX % span + 1) % span; // 2^128 mod span
    let zone = u128::MAX - rem;
    loop {
        let word = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if word <= zone {
            return word % span;
        }
    }
}

/// A chain of per-group trees representing a constrained search space.
#[derive(Debug, Clone)]
pub struct ChainOfTrees {
    /// Variable names of the full space, in declaration order.
    names: Vec<String>,
    /// The group trees, in group order.
    trees: Vec<GroupTree>,
}

impl ChainOfTrees {
    /// Assemble a chain from its trees. `names` are the full space's
    /// parameter names in declaration order.
    pub fn new(names: Vec<String>, trees: Vec<GroupTree>) -> Self {
        ChainOfTrees { names, trees }
    }

    /// Parameter names in declaration order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The per-group trees.
    pub fn trees(&self) -> &[GroupTree] {
        &self.trees
    }

    /// Number of valid configurations (product of per-tree leaf counts).
    pub fn size(&self) -> u128 {
        self.trees
            .iter()
            .map(|t| t.leaf_count as u128)
            .fold(1, |a, b| a.saturating_mul(b))
    }

    /// Total constraint evaluations spent building the chain.
    pub fn constraint_checks(&self) -> u64 {
        self.trees.iter().map(|t| t.constraint_checks).sum()
    }

    /// Total number of tree nodes (memory proxy; the chain is usually much
    /// smaller than the flat enumeration).
    pub fn node_count(&self) -> usize {
        self.trees.iter().map(|t| t.node_count()).sum()
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.trees.iter().any(|t| t.leaf_count == 0)
    }

    /// The configuration at `index` (0 ≤ index < `size()`), decoded mixed-radix
    /// over the group sizes. Values are returned in declaration order.
    pub fn configuration(&self, index: u128) -> Option<Vec<Value>> {
        if index >= self.size() || self.is_empty() {
            return None;
        }
        let mut remaining = index;
        let mut values: Vec<Option<Value>> = vec![None; self.names.len()];
        // Least-significant group last for a stable lexicographic-ish order.
        for tree in self.trees.iter().rev() {
            let radix = tree.leaf_count as u128;
            let digit = (remaining % radix) as usize;
            remaining /= radix;
            let combo = tree.combination(digit)?;
            for (pos, &param) in tree.params.iter().enumerate() {
                values[param] = Some(combo[pos].clone());
            }
        }
        values.into_iter().collect()
    }

    /// Visit every configuration in the space (values in declaration order)
    /// without materializing the set: each row is assembled in a reused
    /// buffer and passed to `visit` the moment it is complete, so the whole
    /// walk allocates O(params), not O(size × params). Returning an error
    /// from `visit` aborts the walk.
    ///
    /// The visit order matches [`ChainOfTrees::configuration`]: the last
    /// tree varies fastest.
    pub fn for_each_configuration<E, F>(&self, mut visit: F) -> Result<(), E>
    where
        F: FnMut(&[Value]) -> Result<(), E>,
    {
        if self.is_empty() {
            return Ok(());
        }
        let mut values: Vec<Option<Value>> = vec![None; self.names.len()];
        let mut row: Vec<Value> = Vec::with_capacity(self.names.len());
        self.walk_tree(0, &mut values, &mut row, &mut visit)
    }

    /// DFS helper for [`ChainOfTrees::for_each_configuration`]: place tree
    /// `ti`'s values, then recurse into the next tree.
    fn walk_tree<E, F>(
        &self,
        ti: usize,
        values: &mut Vec<Option<Value>>,
        row: &mut Vec<Value>,
        visit: &mut F,
    ) -> Result<(), E>
    where
        F: FnMut(&[Value]) -> Result<(), E>,
    {
        if ti == self.trees.len() {
            row.clear();
            row.extend(
                values
                    .iter()
                    .map(|v| v.clone().expect("all params covered")),
            );
            return visit(row);
        }
        let tree = &self.trees[ti];
        if tree.depth() == 0 {
            return self.walk_tree(ti + 1, values, row, visit);
        }
        self.walk_nodes(ti, &tree.roots, 0, values, row, visit)
    }

    /// DFS helper walking one tree's levels.
    #[allow(clippy::too_many_arguments)]
    fn walk_nodes<E, F>(
        &self,
        ti: usize,
        nodes: &[TreeNode],
        level: usize,
        values: &mut Vec<Option<Value>>,
        row: &mut Vec<Value>,
        visit: &mut F,
    ) -> Result<(), E>
    where
        F: FnMut(&[Value]) -> Result<(), E>,
    {
        let tree = &self.trees[ti];
        for node in nodes {
            values[tree.params[level]] = Some(node.value.clone());
            if level + 1 == tree.depth() {
                self.walk_tree(ti + 1, values, row, visit)?;
            } else {
                self.walk_nodes(ti, &node.children, level + 1, values, row, visit)?;
            }
        }
        Ok(())
    }

    /// Enumerate every configuration in the space (values in declaration
    /// order). Intended for validation and for spaces that fit in memory;
    /// use [`ChainOfTrees::for_each_configuration`] to stream instead.
    pub fn enumerate(&self) -> Vec<Vec<Value>> {
        let mut out = Vec::new();
        let result: Result<(), std::convert::Infallible> = self.for_each_configuration(|row| {
            out.push(row.to_vec());
            Ok(())
        });
        match result {
            Ok(()) => out,
        }
    }

    /// Sample a configuration uniformly at random by index.
    ///
    /// The index is drawn as a full-width `u128` by rejection sampling
    /// over two `u64` draws, so it is unbiased at any chain size.
    /// (An earlier version cast `size()` through `u64`, which panicked on
    /// chains of exactly `2^64` configurations and made every configuration
    /// beyond index `u64::MAX - 1` unreachable on larger chains.)
    pub fn sample_uniform<R: Rng>(&self, rng: &mut R) -> Option<Vec<Value>> {
        if self.is_empty() {
            return None;
        }
        let index = uniform_u128(rng, self.size());
        self.configuration(index)
    }

    /// Sample by walking each tree from the root, picking a uniformly random
    /// child at every level. This is the "naive" tree sampling the paper
    /// notes is *biased towards the sparser parts* of the chain-of-trees:
    /// paths through sparsely populated subtrees are over-represented.
    pub fn sample_path_biased<R: Rng>(&self, rng: &mut R) -> Option<Vec<Value>> {
        if self.is_empty() {
            return None;
        }
        let mut values: Vec<Option<Value>> = vec![None; self.names.len()];
        for tree in &self.trees {
            let mut nodes = &tree.roots;
            for level in 0..tree.depth() {
                let node = &nodes[rng.gen_range(0..nodes.len())];
                values[tree.params[level]] = Some(node.value.clone());
                nodes = &node.children;
            }
        }
        values.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{GroupConstraint, GroupTree};
    use at_csp::value::int_values;
    use at_csp::MaxProduct;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::collections::HashSet;
    use std::sync::Arc;

    /// Two groups: (x, y) with x*y <= 8, and an independent z.
    fn small_chain() -> ChainOfTrees {
        let t1 = GroupTree::build(
            vec![0, 1],
            &[int_values([1, 2, 4]), int_values([1, 2, 4])],
            &[GroupConstraint {
                constraint: Arc::new(MaxProduct::new(8.0)),
                scope_positions: vec![0, 1],
                ready_at: 1,
            }],
        );
        let t2 = GroupTree::build(vec![2], &[int_values([10, 20])], &[]);
        ChainOfTrees::new(
            vec!["x".to_string(), "y".to_string(), "z".to_string()],
            vec![t1, t2],
        )
    }

    fn reference() -> HashSet<(i64, i64, i64)> {
        let mut set = HashSet::new();
        for x in [1i64, 2, 4] {
            for y in [1i64, 2, 4] {
                for z in [10i64, 20] {
                    if x * y <= 8 {
                        set.insert((x, y, z));
                    }
                }
            }
        }
        set
    }

    fn as_tuple(row: &[Value]) -> (i64, i64, i64) {
        (
            row[0].as_i64().unwrap(),
            row[1].as_i64().unwrap(),
            row[2].as_i64().unwrap(),
        )
    }

    #[test]
    fn size_and_enumeration_match_reference() {
        let chain = small_chain();
        let expected = reference();
        assert_eq!(chain.size(), expected.len() as u128);
        let got: HashSet<_> = chain.enumerate().iter().map(|r| as_tuple(r)).collect();
        assert_eq!(got, expected);
        assert!(!chain.is_empty());
        assert!(chain.constraint_checks() > 0);
    }

    #[test]
    fn indexed_configurations_cover_the_space_exactly_once() {
        let chain = small_chain();
        let mut seen = HashSet::new();
        for i in 0..chain.size() {
            let row = chain.configuration(i).unwrap();
            assert!(seen.insert(as_tuple(&row)), "duplicate at index {i}");
        }
        assert_eq!(seen, reference());
        assert!(chain.configuration(chain.size()).is_none());
    }

    #[test]
    fn uniform_sampling_hits_every_configuration() {
        let chain = small_chain();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut seen = HashSet::new();
        for _ in 0..2000 {
            seen.insert(as_tuple(&chain.sample_uniform(&mut rng).unwrap()));
        }
        assert_eq!(seen, reference());
    }

    #[test]
    fn biased_sampling_yields_valid_configurations() {
        let chain = small_chain();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let expected = reference();
        for _ in 0..200 {
            let row = chain.sample_path_biased(&mut rng).unwrap();
            assert!(expected.contains(&as_tuple(&row)));
        }
    }

    #[test]
    fn streaming_matches_enumerate_in_order() {
        let chain = small_chain();
        let mut streamed: Vec<Vec<Value>> = Vec::new();
        chain
            .for_each_configuration(|row| -> Result<(), std::convert::Infallible> {
                streamed.push(row.to_vec());
                Ok(())
            })
            .unwrap();
        assert_eq!(streamed, chain.enumerate());
        // and the indexed access agrees with the streaming order
        for (i, row) in streamed.iter().enumerate() {
            assert_eq!(chain.configuration(i as u128).as_ref(), Some(row));
        }
    }

    #[test]
    fn streaming_aborts_on_error() {
        let chain = small_chain();
        let mut seen = 0usize;
        let result = chain.for_each_configuration(|_| {
            seen += 1;
            if seen == 3 {
                Err("stop")
            } else {
                Ok(())
            }
        });
        assert_eq!(result, Err("stop"));
        assert_eq!(seen, 3);
    }

    /// A chain of `num_binary` independent two-value parameters: its size is
    /// exactly `2^num_binary`, letting tests cross the `u64` boundary with a
    /// structure that is cheap to build.
    fn huge_chain(num_binary: usize) -> ChainOfTrees {
        let names = (0..num_binary).map(|i| format!("p{i}")).collect();
        let trees = (0..num_binary)
            .map(|i| GroupTree::build(vec![i], &[int_values([0, 1])], &[]))
            .collect();
        ChainOfTrees::new(names, trees)
    }

    #[test]
    fn sampling_a_chain_of_exactly_two_pow_64_configurations() {
        // Regression: `size as u64` truncated 2^64 to 0, so the index draw
        // panicked on an empty range.
        let chain = huge_chain(64);
        assert_eq!(chain.size(), 1u128 << 64);
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        for _ in 0..32 {
            let row = chain.sample_uniform(&mut rng).unwrap();
            assert_eq!(row.len(), 64);
        }
    }

    #[test]
    fn sampling_reaches_beyond_the_u64_boundary() {
        // Regression: with the truncating cast every drawn index stayed
        // below 2^64, so the first (most significant) parameter could never
        // take its second value on a chain of size 2^65.
        let chain = huge_chain(65);
        assert!(chain.size() > u64::MAX as u128);
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let mut high_half_seen = false;
        for _ in 0..64 {
            let row = chain.sample_uniform(&mut rng).unwrap();
            assert_eq!(row.len(), 65);
            high_half_seen |= row[0].as_i64() == Some(1);
        }
        assert!(
            high_half_seen,
            "64 draws from a 2^65 space never reached the high half \
             (probability 2^-64 under a correct sampler)"
        );
    }

    #[test]
    fn uniform_u128_stays_in_range_and_covers_small_spans() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..500 {
            let x = uniform_u128(&mut rng, 7);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let span = 3u128 << 100;
            assert!(uniform_u128(&mut rng, span) < span);
            assert!(uniform_u128(&mut rng, u128::MAX) < u128::MAX);
            assert_eq!(uniform_u128(&mut rng, 1), 0);
        }
    }

    #[test]
    fn empty_chain_reports_empty() {
        let t = GroupTree::build(
            vec![0],
            &[int_values([10, 20])],
            &[GroupConstraint {
                constraint: Arc::new(MaxProduct::new(1.0)),
                scope_positions: vec![0],
                ready_at: 0,
            }],
        );
        let chain = ChainOfTrees::new(vec!["x".to_string()], vec![t]);
        assert!(chain.is_empty());
        assert_eq!(chain.size(), 0);
        assert!(chain.enumerate().is_empty());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(chain.sample_uniform(&mut rng).is_none());
    }

    #[test]
    fn node_count_is_reported() {
        let chain = small_chain();
        assert!(chain.node_count() >= 3);
    }
}
