//! Parameter grouping by constraint interdependence.
//!
//! Two parameters are *interdependent* when they occur in the scope of the
//! same constraint (Rasch et al.). The chain-of-trees method first partitions
//! the parameters into connected components of this interdependence relation;
//! each component becomes one tree, independent parameters become
//! single-parameter trees.

/// A disjoint-set (union-find) structure over parameter indices.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// Create `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    /// Find the representative of `x` with path compression.
    pub fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    /// Merge the sets containing `a` and `b`.
    pub fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
    }
}

/// Partition `num_params` parameters into interdependence groups given the
/// constraint scopes (each scope is a list of parameter indices).
///
/// Groups are returned in order of their smallest member; members within a
/// group keep declaration order. Parameters not mentioned by any constraint
/// form singleton groups.
pub fn group_parameters(num_params: usize, scopes: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut uf = UnionFind::new(num_params);
    for scope in scopes {
        for w in scope.windows(2) {
            uf.union(w[0], w[1]);
        }
    }
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut root_to_group: Vec<Option<usize>> = vec![None; num_params];
    for p in 0..num_params {
        let root = uf.find(p);
        match root_to_group[root] {
            Some(g) => groups[g].push(p),
            None => {
                root_to_group[root] = Some(groups.len());
                groups.push(vec![p]);
            }
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_basic() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(3, 4);
        assert_eq!(uf.find(0), uf.find(1));
        assert_ne!(uf.find(1), uf.find(3));
        uf.union(1, 3);
        assert_eq!(uf.find(0), uf.find(4));
        assert_ne!(uf.find(2), uf.find(0));
    }

    #[test]
    fn grouping_connected_components() {
        // constraints over {0,1}, {1,2} and {4,5}; 3 and 6 are free
        let groups = group_parameters(7, &[vec![0, 1], vec![1, 2], vec![4, 5]]);
        assert_eq!(groups, vec![vec![0, 1, 2], vec![3], vec![4, 5], vec![6]]);
    }

    #[test]
    fn no_constraints_all_singletons() {
        let groups = group_parameters(3, &[]);
        assert_eq!(groups, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn single_group_when_fully_connected() {
        let groups = group_parameters(4, &[vec![0, 1, 2, 3]]);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0], vec![0, 1, 2, 3]);
    }

    #[test]
    fn unary_constraints_do_not_merge() {
        let groups = group_parameters(3, &[vec![0], vec![2]]);
        assert_eq!(groups.len(), 3);
    }
}
