//! Per-group trees of valid parameter-value prefixes.
//!
//! A group tree has one level per parameter of the group (in declaration
//! order). Every root-to-leaf path of full depth is a valid combination of
//! the group's parameter values with respect to the constraints whose scope
//! lies inside the group. Following ATF, a constraint is evaluated at the
//! level of the *last* of its parameters (in the group's order), i.e. as soon
//! as all of its parameters are on the current path.

use at_csp::{ConstraintRef, Value};

/// A node of a group tree, holding one parameter value and the subtree of
/// valid completions.
#[derive(Debug, Clone)]
pub struct TreeNode {
    /// The value of this level's parameter on this path.
    pub value: Value,
    /// Children at the next level (empty at the deepest level).
    pub children: Vec<TreeNode>,
    /// Number of full-depth leaves below (1 for a deepest-level node).
    pub leaves: usize,
}

/// A constraint restricted to a group, with its scope expressed as positions
/// *within the group's parameter list*.
#[derive(Clone)]
pub struct GroupConstraint {
    /// The constraint.
    pub constraint: ConstraintRef,
    /// For each scope entry, the index into the group's parameter list.
    pub scope_positions: Vec<usize>,
    /// The level (position of the last scope parameter) at which the
    /// constraint becomes evaluable.
    pub ready_at: usize,
}

impl std::fmt::Debug for GroupConstraint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupConstraint")
            .field("kind", &self.constraint.kind())
            .field("scope_positions", &self.scope_positions)
            .field("ready_at", &self.ready_at)
            .finish()
    }
}

/// The tree of valid value combinations for one parameter group.
#[derive(Debug, Clone)]
pub struct GroupTree {
    /// Global parameter indices of this group, in declaration order.
    pub params: Vec<usize>,
    /// The first-level nodes.
    pub roots: Vec<TreeNode>,
    /// Total number of valid combinations (full-depth leaves).
    pub leaf_count: usize,
    /// Number of constraint evaluations performed while building the tree.
    pub constraint_checks: u64,
}

impl GroupTree {
    /// Build the tree for a group.
    ///
    /// * `params` — global parameter indices of the group (declaration order)
    /// * `domains` — for each group parameter (same order), its values
    /// * `constraints` — the constraints whose scope lies within this group
    pub fn build(
        params: Vec<usize>,
        domains: &[Vec<Value>],
        constraints: &[GroupConstraint],
    ) -> Self {
        assert_eq!(params.len(), domains.len());
        let mut checks = 0u64;
        let mut prefix: Vec<Value> = Vec::with_capacity(params.len());
        let roots = build_level(0, domains, constraints, &mut prefix, &mut checks);
        let leaf_count = roots.iter().map(|n| n.leaves).sum();
        GroupTree {
            params,
            roots,
            leaf_count,
            constraint_checks: checks,
        }
    }

    /// Depth (number of parameters) of the tree.
    pub fn depth(&self) -> usize {
        self.params.len()
    }

    /// Enumerate all valid combinations (each of length `depth()`, in the
    /// group's parameter order).
    pub fn enumerate(&self) -> Vec<Vec<Value>> {
        let mut out = Vec::with_capacity(self.leaf_count);
        let mut path: Vec<Value> = Vec::with_capacity(self.depth());
        for root in &self.roots {
            collect_paths(root, self.depth(), &mut path, &mut out);
        }
        out
    }

    /// The `index`-th valid combination in deterministic (depth-first) order.
    pub fn combination(&self, mut index: usize) -> Option<Vec<Value>> {
        if index >= self.leaf_count {
            return None;
        }
        let mut path: Vec<Value> = Vec::with_capacity(self.depth());
        let mut nodes = &self.roots;
        loop {
            let mut chosen: Option<&TreeNode> = None;
            for node in nodes {
                if index < node.leaves {
                    chosen = Some(node);
                    break;
                }
                index -= node.leaves;
            }
            let node = chosen?;
            path.push(node.value.clone());
            if path.len() == self.depth() {
                return Some(path);
            }
            nodes = &node.children;
        }
    }

    /// Total number of tree nodes (a memory-use proxy).
    pub fn node_count(&self) -> usize {
        fn count(node: &TreeNode) -> usize {
            1 + node.children.iter().map(count).sum::<usize>()
        }
        self.roots.iter().map(count).sum()
    }
}

fn build_level(
    depth: usize,
    domains: &[Vec<Value>],
    constraints: &[GroupConstraint],
    prefix: &mut Vec<Value>,
    checks: &mut u64,
) -> Vec<TreeNode> {
    let last_level = depth + 1 == domains.len();
    let mut nodes = Vec::new();
    for value in &domains[depth] {
        prefix.push(value.clone());
        let mut ok = true;
        let mut scope_buf: Vec<Value> = Vec::new();
        for gc in constraints.iter().filter(|c| c.ready_at == depth) {
            scope_buf.clear();
            scope_buf.extend(gc.scope_positions.iter().map(|&p| prefix[p].clone()));
            *checks += 1;
            if !gc.constraint.evaluate(&scope_buf) {
                ok = false;
                break;
            }
        }
        if ok {
            if last_level {
                nodes.push(TreeNode {
                    value: value.clone(),
                    children: Vec::new(),
                    leaves: 1,
                });
            } else {
                let children = build_level(depth + 1, domains, constraints, prefix, checks);
                if !children.is_empty() {
                    let leaves = children.iter().map(|c| c.leaves).sum();
                    nodes.push(TreeNode {
                        value: value.clone(),
                        children,
                        leaves,
                    });
                }
            }
        }
        prefix.pop();
    }
    nodes
}

fn collect_paths(node: &TreeNode, depth: usize, path: &mut Vec<Value>, out: &mut Vec<Vec<Value>>) {
    path.push(node.value.clone());
    if path.len() == depth {
        out.push(path.clone());
    } else {
        for child in &node.children {
            collect_paths(child, depth, path, out);
        }
    }
    path.pop();
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_csp::value::int_values;
    use at_csp::{MaxProduct, MinProduct};
    use std::sync::Arc;

    fn product_group() -> GroupTree {
        // two parameters x in {1..32 pow2}, y in {1..32 pow2}, 32 <= x*y <= 256
        let domains = vec![
            int_values([1, 2, 4, 8, 16, 32]),
            int_values([1, 2, 4, 8, 16, 32]),
        ];
        let constraints = vec![
            GroupConstraint {
                constraint: Arc::new(MinProduct::new(32.0)),
                scope_positions: vec![0, 1],
                ready_at: 1,
            },
            GroupConstraint {
                constraint: Arc::new(MaxProduct::new(256.0)),
                scope_positions: vec![0, 1],
                ready_at: 1,
            },
        ];
        GroupTree::build(vec![0, 1], &domains, &constraints)
    }

    fn reference_count() -> usize {
        let vals = [1i64, 2, 4, 8, 16, 32];
        let mut n = 0;
        for &x in &vals {
            for &y in &vals {
                if x * y >= 32 && x * y <= 256 {
                    n += 1;
                }
            }
        }
        n
    }

    #[test]
    fn leaf_count_matches_reference() {
        let tree = product_group();
        assert_eq!(tree.leaf_count, reference_count());
        assert_eq!(tree.depth(), 2);
        assert!(tree.constraint_checks > 0);
        assert!(tree.node_count() >= tree.leaf_count);
    }

    #[test]
    fn enumerate_yields_only_valid_combinations() {
        let tree = product_group();
        let combos = tree.enumerate();
        assert_eq!(combos.len(), tree.leaf_count);
        for combo in &combos {
            let p = combo[0].as_i64().unwrap() * combo[1].as_i64().unwrap();
            assert!((32..=256).contains(&p));
        }
    }

    #[test]
    fn indexed_access_matches_enumeration() {
        let tree = product_group();
        let combos = tree.enumerate();
        for (i, combo) in combos.iter().enumerate() {
            assert_eq!(tree.combination(i).unwrap(), *combo);
        }
        assert!(tree.combination(tree.leaf_count).is_none());
    }

    #[test]
    fn dead_branches_are_pruned() {
        // x in {1, 100}, y in {1, 2}: with x*y <= 4 the x=100 branch vanishes.
        let domains = vec![int_values([1, 100]), int_values([1, 2])];
        let constraints = vec![GroupConstraint {
            constraint: Arc::new(MaxProduct::new(4.0)),
            scope_positions: vec![0, 1],
            ready_at: 1,
        }];
        let tree = GroupTree::build(vec![0, 1], &domains, &constraints);
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.leaf_count, 2);
    }

    #[test]
    fn unconstrained_single_parameter_tree() {
        let domains = vec![int_values([1, 2, 3])];
        let tree = GroupTree::build(vec![5], &domains, &[]);
        assert_eq!(tree.leaf_count, 3);
        assert_eq!(tree.enumerate().len(), 3);
    }
}
