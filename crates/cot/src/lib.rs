//! # at-cot — chain-of-trees search space construction
//!
//! An independent Rust implementation of the *chain-of-trees* method of
//! Rasch et al. (ATF), the state-of-the-art baseline the paper compares
//! against. Parameters are grouped by constraint interdependence; each group
//! is represented by a tree whose root-to-leaf paths are the valid value
//! combinations of that group; the trees are linked into a chain whose
//! cross product is the constrained search space.
//!
//! The implementation supports counting, full enumeration, O(depth) indexed
//! access, unbiased index-based sampling and the naive (biased) per-level
//! path sampling discussed in Section 4.4 of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod chain;
pub mod grouping;
pub mod tree;

pub use builder::{build_chain, build_chain_from_problem, enumerate_chain, enumerate_chain_into};
pub use chain::ChainOfTrees;
pub use grouping::{group_parameters, UnionFind};
pub use tree::{GroupConstraint, GroupTree, TreeNode};
