//! The diagnostic model: stable codes, severities, spans and rendering.

use std::fmt;

use at_expr::Span;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The spec is suspicious or wasteful but still constructible.
    Warning,
    /// The spec is wrong: construction would fail, reference an unknown
    /// parameter, or provably produce an empty space.
    Error,
}

impl Severity {
    /// Lowercase label used in rendered output and the JSON DTO.
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// Stable diagnostic codes.
///
/// Codes are append-only: a code never changes meaning or severity once
/// released, so scripts can match on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Code {
    /// AT0001: a restriction references a variable that is not a
    /// parameter of the spec.
    UnknownVariable,
    /// AT0002: a comparison between values whose types can never compare
    /// as equal or ordered (numbers vs. strings).
    CrossTypeComparison,
    /// AT0003: an `==`/`!=` whose operand is always a float; exact float
    /// equality rarely means what the author intended.
    FloatEquality,
    /// AT0004: a `/`, `//` or `%` whose divisor can be zero for some
    /// reachable assignment; configurations hitting it are rejected.
    PossibleDivisionByZero,
    /// AT0005: an operand of `and`/`or` whose truth is forced by the
    /// parameter domains, making the branch dead.
    DeadBranch,
    /// AT0006: a restriction that is satisfied by every assignment in
    /// the parameter domains — it never rejects anything.
    Tautology,
    /// AT0007: a restriction no assignment satisfies — the space is
    /// provably empty and no solve is needed.
    Contradiction,
    /// AT0008: two individually satisfiable restrictions that can never
    /// hold at the same time — the space is provably empty.
    PairwiseContradiction,
    /// AT0009: a restriction string that does not parse.
    ParseFailure,
}

impl Code {
    /// Every code, in numeric order.
    pub const ALL: [Code; 9] = [
        Code::UnknownVariable,
        Code::CrossTypeComparison,
        Code::FloatEquality,
        Code::PossibleDivisionByZero,
        Code::DeadBranch,
        Code::Tautology,
        Code::Contradiction,
        Code::PairwiseContradiction,
        Code::ParseFailure,
    ];

    /// The stable `AT`-prefixed code string.
    pub fn as_str(&self) -> &'static str {
        match self {
            Code::UnknownVariable => "AT0001",
            Code::CrossTypeComparison => "AT0002",
            Code::FloatEquality => "AT0003",
            Code::PossibleDivisionByZero => "AT0004",
            Code::DeadBranch => "AT0005",
            Code::Tautology => "AT0006",
            Code::Contradiction => "AT0007",
            Code::PairwiseContradiction => "AT0008",
            Code::ParseFailure => "AT0009",
        }
    }

    /// The fixed severity of this code.
    pub fn severity(&self) -> Severity {
        match self {
            Code::UnknownVariable
            | Code::Contradiction
            | Code::PairwiseContradiction
            | Code::ParseFailure => Severity::Error,
            Code::CrossTypeComparison
            | Code::FloatEquality
            | Code::PossibleDivisionByZero
            | Code::DeadBranch
            | Code::Tautology => Severity::Warning,
        }
    }

    /// A short title for tables and docs.
    pub fn title(&self) -> &'static str {
        match self {
            Code::UnknownVariable => "unknown variable",
            Code::CrossTypeComparison => "cross-type comparison never holds",
            Code::FloatEquality => "exact equality on floats",
            Code::PossibleDivisionByZero => "possible division or modulo by zero",
            Code::DeadBranch => "domain-forced dead branch",
            Code::Tautology => "restriction is always satisfied",
            Code::Contradiction => "restriction is never satisfied",
            Code::PairwiseContradiction => "restrictions are mutually contradictory",
            Code::ParseFailure => "restriction does not parse",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding of the analyzer.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The stable code.
    pub code: Code,
    /// The main message (one line, no trailing period).
    pub message: String,
    /// Index of the restriction the diagnostic is about, if any.
    pub restriction: Option<usize>,
    /// The restriction source text, when the restriction is an
    /// expression (used for the caret snippet).
    pub source: Option<String>,
    /// Byte span into `source` the diagnostic points at.
    pub span: Option<Span>,
    /// An optional `help:` suggestion (e.g. did-you-mean).
    pub help: Option<String>,
}

impl Diagnostic {
    /// The severity (fixed per code).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }

    /// Render the diagnostic in the compiler-style human format:
    ///
    /// ```text
    /// warning[AT0004]: `luf` can be zero here; `tile % luf` rejects those configurations
    ///   --> restriction 2
    ///    |
    ///    |  luf == 0 or tile % luf == 0
    ///    |                     ^^^
    ///    = help: guard the division behind `luf == 0 or …`
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{}[{}]: {}\n",
            self.severity().label(),
            self.code,
            self.message
        ));
        if let Some(idx) = self.restriction {
            out.push_str(&format!("  --> restriction {idx}\n"));
        }
        if let Some(source) = &self.source {
            out.push_str("   |\n");
            out.push_str(&format!("   |  {source}\n"));
            if let Some(span) = self.span {
                // Clamp into the source and snap to char boundaries (spans
                // are byte offsets and may land inside a multi-byte char).
                let mut start = span.start.min(source.len());
                while !source.is_char_boundary(start) {
                    start -= 1;
                }
                let mut end = span.end.clamp(start, source.len());
                while !source.is_char_boundary(end) {
                    end += 1;
                }
                // Align by character so multi-byte source still points at
                // the right column.
                let lead = source[..start].chars().count();
                let width = source[start..end].chars().count().max(1);
                out.push_str(&format!(
                    "   |  {}{}\n",
                    " ".repeat(lead),
                    "^".repeat(width)
                ));
            }
        }
        if let Some(help) = &self.help {
            out.push_str(&format!("   = help: {help}\n"));
        }
        out
    }
}

/// Levenshtein edit distance, for did-you-mean suggestions.
pub(crate) fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The closest candidate within an edit-distance budget, for
/// did-you-mean suggestions. Ties go to the earlier candidate.
pub(crate) fn closest<'a>(name: &str, candidates: &'a [String]) -> Option<&'a str> {
    let budget = (name.chars().count() / 3).max(2);
    candidates
        .iter()
        .map(|c| (edit_distance(name, c), c))
        .filter(|(d, _)| *d <= budget)
        .min_by_key(|(d, _)| *d)
        .map(|(_, c)| c.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_ordered() {
        let strs: Vec<&str> = Code::ALL.iter().map(|c| c.as_str()).collect();
        let mut sorted = strs.clone();
        sorted.sort_unstable();
        assert_eq!(strs, sorted, "codes must be in numeric order");
        assert_eq!(strs[0], "AT0001");
        assert_eq!(strs[8], "AT0009");
    }

    #[test]
    fn severities_are_fixed() {
        assert_eq!(Code::UnknownVariable.severity(), Severity::Error);
        assert_eq!(Code::Tautology.severity(), Severity::Warning);
        assert_eq!(Code::Contradiction.severity(), Severity::Error);
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", "abd"), 1);
        assert_eq!(edit_distance("block_size_x", "block_size_y"), 1);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }

    #[test]
    fn closest_respects_budget() {
        let candidates = vec!["block_size_x".to_string(), "tile".to_string()];
        assert_eq!(closest("block_size_z", &candidates), Some("block_size_x"));
        assert_eq!(closest("blocksizex", &candidates), Some("block_size_x"));
        assert_eq!(closest("zzzzz", &candidates), None);
    }

    #[test]
    fn render_points_carets_at_the_span() {
        let d = Diagnostic {
            code: Code::PossibleDivisionByZero,
            message: "divisor can be zero".into(),
            restriction: Some(1),
            source: Some("tile % luf == 0".into()),
            span: Some(Span::new(7, 10)),
            help: Some("guard it".into()),
        };
        let rendered = d.render();
        assert!(rendered.starts_with("warning[AT0004]: divisor can be zero"));
        assert!(rendered.contains("--> restriction 1"));
        assert!(rendered.contains("|  tile % luf == 0"));
        assert!(rendered.contains("|         ^^^"));
        assert!(rendered.contains("= help: guard it"));
    }

    #[test]
    fn render_survives_out_of_range_spans() {
        let d = Diagnostic {
            code: Code::ParseFailure,
            message: "bad".into(),
            restriction: Some(0),
            source: Some("x >".into()),
            span: Some(Span::new(3, 9)),
            help: None,
        };
        // Caret clamps to the source; no panic.
        assert!(d.render().contains("^"));
    }
}
