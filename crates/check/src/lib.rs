//! # at_check: static analysis for search-space specifications
//!
//! A compiler-style analyzer over [`SearchSpaceSpec`] and the
//! restriction DSL. It runs **before** any space is constructed and
//! reports problems the way `rustc` would: stable `AT0001`-style codes,
//! severities, source spans, caret snippets and `help:` suggestions.
//!
//! The analysis has three layers:
//!
//! 1. **Typechecking** against the parameter domains ([`diag`]):
//!    unknown variables with did-you-mean suggestions (AT0001),
//!    cross-type comparisons that can never hold (AT0002), exact float
//!    equality (AT0003), and possible division/modulo by zero (AT0004).
//! 2. **Abstract interpretation** over per-parameter value sets
//!    ([`absdom`]): every restriction is classified as a *tautology*
//!    (AT0006 — never rejects anything, can be dropped), a
//!    *contradiction* (AT0007 — the space is provably empty), or
//!    *contingent*; dead `and`/`or` operands are flagged (AT0005) and
//!    individually satisfiable but jointly unsatisfiable restriction
//!    pairs are found (AT0008).
//! 3. **Domain pre-pruning** evidence: for restrictions small enough to
//!    enumerate exactly, the per-parameter values that appear in *no*
//!    satisfying assignment — values the solve can drop up front without
//!    changing the resulting space.
//!
//! ## Soundness
//!
//! The abstract domain is a finite value set per node (widening to
//! `Top`), computed by running the *real* interpreter operations over
//! operand combinations — the abstraction cannot drift from the
//! semantics it describes. All claims are one-sided:
//!
//! - a **contradiction** verdict means `can_true` is provably false:
//!   no assignment satisfies the restriction (evaluation errors count
//!   as rejection, matching the pipeline's error→reject convention);
//! - a **tautology** verdict means the restriction provably evaluates
//!   truthily for every assignment, *and* can never error — dropping it
//!   leaves the constructed space code-for-code identical;
//! - everything else stays **contingent**; the analyzer never guesses.
//!
//! When the restriction scope grounds out below [`analyze::EXACT_CAP`]
//! assignments, verdicts come from exhaustive evaluation with the
//! reference interpreter and are exact rather than abstract. `and`/`or`
//! chains are analyzed path-sensitively — each operand under the
//! refinement implied by the short-circuit path that reaches it — so the
//! pervasive guard idiom `luf == 0 or tile % luf == 0` analyzes without
//! a spurious division-by-zero warning.
//!
//! [`SearchSpaceSpec`]: at_searchspace::SearchSpaceSpec

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod absdom;
pub mod analyze;
pub mod diag;

pub use absdom::{Abs, AbsVal};
pub use analyze::{check_spec, CheckReport, PrunableParam, Verdict};
pub use diag::{Code, Diagnostic, Severity};
