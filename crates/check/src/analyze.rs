//! The analysis passes: typechecking, abstract interpretation over the
//! parameter domains, and verdict classification.

use at_csp::{CmpOp, Value};
use at_expr::ast::apply_builtin;
use at_expr::{parse_spanned, BinOp, Expr, ExprError, Span, SpanNode};
use at_searchspace::{Restriction, SearchSpaceSpec};
use rustc_hash::{FxHashMap, FxHashSet};

use crate::absdom::{binop, cmp_link, neg, Abs, AbsVal, PAIR_CAP, SET_CAP};
use crate::diag::{closest, Code, Diagnostic, Severity};

/// Maximum number of assignments the exact enumeration refinement will
/// ground out. Below this, verdicts and per-value support come from the
/// reference interpreter itself and are exact, not abstract.
pub const EXACT_CAP: u128 = 4096;

/// What the analyzer concluded about one restriction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Satisfied by some assignments and violated (or errored) by others.
    Contingent,
    /// Provably satisfied by every assignment in the domains: dropping
    /// it leaves the space identical.
    Tautology,
    /// Provably satisfied by no assignment: the space is empty.
    Contradiction,
}

impl Verdict {
    /// Short lowercase label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Contingent => "contingent",
            Verdict::Tautology => "tautology",
            Verdict::Contradiction => "contradiction",
        }
    }
}

/// Values of one parameter that restrictions provably exclude.
#[derive(Debug, Clone)]
pub struct PrunableParam {
    /// The parameter name.
    pub param: String,
    /// Domain values no satisfying assignment of some restriction uses.
    pub values: Vec<Value>,
}

/// The full result of analyzing a spec.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// The spec's name.
    pub spec_name: String,
    /// All findings, in restriction order.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-restriction verdicts; `None` when the restriction could not
    /// be analyzed (parse failure, unknown variables, oversized scope).
    pub verdicts: Vec<Option<Verdict>>,
    /// Parameter values provably excluded by some restriction.
    pub prunable: Vec<PrunableParam>,
}

impl CheckReport {
    /// Number of error-severity diagnostics.
    pub fn num_errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    pub fn num_warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Warning)
            .count()
    }

    /// Whether any diagnostic is an error.
    pub fn has_errors(&self) -> bool {
        self.num_errors() > 0
    }

    /// Whether the report is completely clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Total number of prunable values across parameters.
    pub fn num_prunable_values(&self) -> usize {
        self.prunable.iter().map(|p| p.values.len()).sum()
    }

    /// Render every diagnostic plus a one-line summary, in the style of
    /// a compiler run.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "{}: {} error(s), {} warning(s) across {} restriction(s)\n",
            self.spec_name,
            self.num_errors(),
            self.num_warnings(),
            self.verdicts.len(),
        ));
        if self.num_prunable_values() > 0 {
            out.push_str(&format!(
                "domain pre-pruning could remove {} value(s) across {} parameter(s)\n",
                self.num_prunable_values(),
                self.prunable.len()
            ));
        }
        out
    }
}

/// Run the full analysis over a spec.
pub fn check_spec(spec: &SearchSpaceSpec) -> CheckReport {
    let _span = at_obs::span("check", "analyze")
        .arg("restrictions", spec.restrictions.len() as u64)
        .arg("params", spec.params.len() as u64);
    let param_names: Vec<String> = spec.params.iter().map(|p| p.name().to_string()).collect();
    let mut diagnostics = Vec::new();
    let mut verdicts: Vec<Option<Verdict>> = vec![None; spec.restrictions.len()];
    // Per-restriction exact satisfying-support, for pruning and pairwise
    // checks: (vars, per-var allowed value indices) — only for exactly
    // enumerated restrictions.
    let mut exact_info: Vec<Option<ExactInfo>> =
        (0..spec.restrictions.len()).map(|_| None).collect();

    for (index, restriction) in spec.restrictions.iter().enumerate() {
        match restriction {
            Restriction::Expression(source) => {
                analyze_expression(
                    spec,
                    &param_names,
                    index,
                    source,
                    &mut diagnostics,
                    &mut verdicts,
                    &mut exact_info,
                );
            }
            other => {
                analyze_opaque(
                    spec,
                    &param_names,
                    index,
                    other,
                    &mut diagnostics,
                    &mut verdicts,
                    &mut exact_info,
                );
            }
        }
    }

    pairwise_contradictions(spec, &verdicts, &exact_info, &mut diagnostics);
    let prunable = collect_prunable(spec, &verdicts, &exact_info);

    CheckReport {
        spec_name: spec.name.clone(),
        diagnostics,
        verdicts,
        prunable,
    }
}

/// Exact enumeration result for one restriction.
struct ExactInfo {
    /// Parameter indices in the restriction's scope.
    scope: Vec<usize>,
    /// For each scope entry, the set of domain-value indices that appear
    /// in at least one satisfying assignment.
    support: Vec<FxHashSet<usize>>,
    /// Number of satisfying assignments.
    n_sat: u128,
    /// Total number of assignments.
    n_total: u128,
}

#[allow(clippy::too_many_arguments)]
fn analyze_expression(
    spec: &SearchSpaceSpec,
    param_names: &[String],
    index: usize,
    source: &str,
    diagnostics: &mut Vec<Diagnostic>,
    verdicts: &mut [Option<Verdict>],
    exact_info: &mut [Option<ExactInfo>],
) {
    let (expr, spans) = match parse_spanned(source) {
        Ok(pair) => pair,
        Err(e) => {
            let position = match &e {
                ExprError::Lex { position, .. } | ExprError::Parse { position, .. } => {
                    Some(*position)
                }
                _ => None,
            };
            diagnostics.push(Diagnostic {
                code: Code::ParseFailure,
                message: format!("restriction does not parse: {e}"),
                restriction: Some(index),
                source: Some(source.to_string()),
                // Error positions can sit at end-of-input (e.g. an empty
                // source); clamp the span into the source.
                span: position.map(|p| {
                    let start = p.min(source.len());
                    Span::new(start, (p + 1).min(source.len()).max(start))
                }),
                help: None,
            });
            return;
        }
    };

    // Layer 1: unknown variables (with did-you-mean).
    let vars = expr.variables();
    let mut any_unknown = false;
    for name in &vars {
        if !param_names.contains(name) {
            any_unknown = true;
            let span = find_var_span(&expr, &spans, name);
            let help = match closest(name, param_names) {
                Some(candidate) => format!("did you mean `{candidate}`?"),
                None => format!("parameters: {}", param_names.join(", ")),
            };
            diagnostics.push(Diagnostic {
                code: Code::UnknownVariable,
                message: format!("unknown variable `{name}`"),
                restriction: Some(index),
                source: Some(source.to_string()),
                span,
                help: Some(help),
            });
        }
    }
    if any_unknown {
        return;
    }

    // Layer 2: the abstract walk — node diagnostics plus an abstract
    // truth summary.
    let env: Env = vars
        .iter()
        .map(|name| {
            let p = &spec.params[spec.param_index(name).expect("known variable")];
            (name.clone(), domain_abs(p.values()))
        })
        .collect();
    let mut walker = Walker {
        source,
        restriction: index,
        diags: Vec::new(),
        dead: Vec::new(),
    };
    let summary = walker.eval(&expr, &spans, &env);
    let Walker { diags, dead, .. } = walker;
    diagnostics.extend(diags);

    // Exact refinement: when the scope grounds out below EXACT_CAP, the
    // reference interpreter gives the precise verdict and the per-value
    // support sets.
    let scope: Vec<usize> = vars
        .iter()
        .map(|name| spec.param_index(name).expect("known variable"))
        .collect();
    let verdict = match enumerate_exact(
        spec,
        &scope,
        |env| matches!(expr.evaluate(env), Ok(v) if v.truthy()),
    ) {
        Some(info) => {
            let verdict = verdict_of(&info);
            exact_info[index] = Some(info);
            verdict
        }
        None => {
            // Abstract verdict; sound one-sided claims only.
            if !summary.can_true() {
                Verdict::Contradiction
            } else if !summary.can_false() && !summary.may_error {
                Verdict::Tautology
            } else {
                Verdict::Contingent
            }
        }
    };
    verdicts[index] = Some(verdict);

    emit_verdict_diagnostics(verdict, index, source, &spans, diagnostics);
    if verdict == Verdict::Contingent {
        for d in dead {
            diagnostics.push(Diagnostic {
                code: Code::DeadBranch,
                message: d.message,
                restriction: Some(index),
                source: Some(source.to_string()),
                span: Some(d.span),
                help: None,
            });
        }
    }
}

/// Closure and pre-built specific restrictions: their predicate can be
/// run but not inspected, so the analysis is black-box — exact
/// enumeration when the scope is small, nothing otherwise.
#[allow(clippy::too_many_arguments)]
fn analyze_opaque(
    spec: &SearchSpaceSpec,
    param_names: &[String],
    index: usize,
    restriction: &Restriction,
    diagnostics: &mut Vec<Diagnostic>,
    verdicts: &mut [Option<Verdict>],
    exact_info: &mut [Option<ExactInfo>],
) {
    let Some((constraint, scope_names)) = restriction.as_function_constraint() else {
        return;
    };
    let mut any_unknown = false;
    for name in &scope_names {
        if !param_names.contains(name) {
            any_unknown = true;
            let help = match closest(name, param_names) {
                Some(candidate) => format!("did you mean `{candidate}`?"),
                None => format!("parameters: {}", param_names.join(", ")),
            };
            diagnostics.push(Diagnostic {
                code: Code::UnknownVariable,
                message: format!(
                    "unknown variable `{name}` in the scope of `{}`",
                    restriction.describe()
                ),
                restriction: Some(index),
                source: None,
                span: None,
                help: Some(help),
            });
        }
    }
    if any_unknown {
        return;
    }
    let scope: Vec<usize> = scope_names
        .iter()
        .map(|name| spec.param_index(name).expect("known variable"))
        .collect();
    let mut values = Vec::with_capacity(scope.len());
    if let Some(info) = enumerate_exact(spec, &scope, |env| {
        values.clear();
        for name in &scope_names {
            values.push(env.get(name).expect("scope variable").clone());
        }
        constraint.evaluate(&values)
    }) {
        let verdict = verdict_of(&info);
        exact_info[index] = Some(info);
        verdicts[index] = Some(verdict);
        if verdict != Verdict::Contingent {
            emit_opaque_verdict(verdict, index, restriction, diagnostics);
        }
    }
}

fn verdict_of(info: &ExactInfo) -> Verdict {
    if info.n_sat == info.n_total {
        Verdict::Tautology
    } else if info.n_sat == 0 {
        Verdict::Contradiction
    } else {
        Verdict::Contingent
    }
}

fn emit_verdict_diagnostics(
    verdict: Verdict,
    index: usize,
    source: &str,
    spans: &SpanNode,
    diagnostics: &mut Vec<Diagnostic>,
) {
    match verdict {
        Verdict::Tautology => diagnostics.push(Diagnostic {
            code: Code::Tautology,
            message: "restriction is satisfied by every configuration in the domains".into(),
            restriction: Some(index),
            source: Some(source.to_string()),
            span: Some(spans.span),
            help: Some("it never rejects anything and can be dropped".into()),
        }),
        Verdict::Contradiction => diagnostics.push(Diagnostic {
            code: Code::Contradiction,
            message: "no configuration satisfies this restriction".into(),
            restriction: Some(index),
            source: Some(source.to_string()),
            span: Some(spans.span),
            help: Some("the search space is provably empty; no solve is needed".into()),
        }),
        Verdict::Contingent => {}
    }
}

fn emit_opaque_verdict(
    verdict: Verdict,
    index: usize,
    restriction: &Restriction,
    diagnostics: &mut Vec<Diagnostic>,
) {
    let (code, message) = match verdict {
        Verdict::Tautology => (
            Code::Tautology,
            format!(
                "`{}` is satisfied by every configuration in the domains",
                restriction.describe()
            ),
        ),
        Verdict::Contradiction => (
            Code::Contradiction,
            format!("no configuration satisfies `{}`", restriction.describe()),
        ),
        Verdict::Contingent => return,
    };
    diagnostics.push(Diagnostic {
        code,
        message,
        restriction: Some(index),
        source: None,
        span: None,
        help: None,
    });
}

/// Enumerate all assignments of `scope` (by parameter index) when the
/// product of domain sizes is within [`EXACT_CAP`], feeding each
/// assignment to `satisfied` and recording the support.
fn enumerate_exact(
    spec: &SearchSpaceSpec,
    scope: &[usize],
    mut satisfied: impl FnMut(&FxHashMap<String, Value>) -> bool,
) -> Option<ExactInfo> {
    let mut total: u128 = 1;
    for &p in scope {
        total = total.saturating_mul(spec.params[p].len() as u128);
    }
    if total == 0 || total > EXACT_CAP {
        return None;
    }
    let domains: Vec<&[Value]> = scope.iter().map(|&p| spec.params[p].values()).collect();
    let names: Vec<&str> = scope.iter().map(|&p| spec.params[p].name()).collect();
    let mut counters = vec![0usize; scope.len()];
    let mut support: Vec<FxHashSet<usize>> = vec![FxHashSet::default(); scope.len()];
    let mut env: FxHashMap<String, Value> = FxHashMap::default();
    let mut n_sat: u128 = 0;
    loop {
        for (k, &i) in counters.iter().enumerate() {
            env.insert(names[k].to_string(), domains[k][i].clone());
        }
        if satisfied(&env) {
            n_sat += 1;
            for (k, &i) in counters.iter().enumerate() {
                support[k].insert(i);
            }
        }
        // Odometer step.
        let mut k = scope.len();
        loop {
            if k == 0 {
                return Some(ExactInfo {
                    scope: scope.to_vec(),
                    support,
                    n_sat,
                    n_total: total,
                });
            }
            k -= 1;
            counters[k] += 1;
            if counters[k] < domains[k].len() {
                break;
            }
            counters[k] = 0;
        }
        if scope.is_empty() {
            // Single empty assignment already evaluated.
            return Some(ExactInfo {
                scope: Vec::new(),
                support,
                n_sat,
                n_total: total,
            });
        }
    }
}

/// AT0008: pairs of individually satisfiable restrictions that are
/// jointly unsatisfiable. Only exactly-enumerated restrictions with
/// overlapping scopes participate (disjoint scopes are independent, so
/// individual satisfiability implies joint satisfiability).
fn pairwise_contradictions(
    spec: &SearchSpaceSpec,
    verdicts: &[Option<Verdict>],
    exact_info: &[Option<ExactInfo>],
    diagnostics: &mut Vec<Diagnostic>,
) {
    let candidates: Vec<usize> = (0..spec.restrictions.len())
        .filter(|&i| verdicts[i] == Some(Verdict::Contingent) && exact_info[i].is_some())
        .collect();
    for (a_pos, &i) in candidates.iter().enumerate() {
        for &j in &candidates[a_pos + 1..] {
            let (si, sj) = (
                &exact_info[i].as_ref().expect("candidate").scope,
                &exact_info[j].as_ref().expect("candidate").scope,
            );
            if !si.iter().any(|p| sj.contains(p)) {
                continue;
            }
            let joint: Vec<usize> = {
                let mut s = si.clone();
                for &p in sj {
                    if !s.contains(&p) {
                        s.push(p);
                    }
                }
                s
            };
            let (sat_i, sat_j) = match (
                restriction_predicate(&spec.restrictions[i]),
                restriction_predicate(&spec.restrictions[j]),
            ) {
                (Some(a), Some(b)) => (a, b),
                _ => continue,
            };
            let jointly_satisfiable = enumerate_exact(spec, &joint, |env| sat_i(env) && sat_j(env));
            if let Some(info) = jointly_satisfiable {
                if info.n_sat == 0 {
                    diagnostics.push(Diagnostic {
                        code: Code::PairwiseContradiction,
                        message: format!(
                            "restrictions {i} and {j} can never hold at the same time: \
                             `{}` and `{}`",
                            spec.restrictions[i].describe(),
                            spec.restrictions[j].describe()
                        ),
                        restriction: Some(j),
                        source: None,
                        span: None,
                        help: Some("the search space is provably empty".into()),
                    });
                }
            }
        }
    }
}

/// A closure evaluating one restriction under an assignment env.
/// `None` when the restriction cannot be evaluated this way.
#[allow(clippy::type_complexity)]
fn restriction_predicate(
    restriction: &Restriction,
) -> Option<Box<dyn Fn(&FxHashMap<String, Value>) -> bool + '_>> {
    match restriction {
        Restriction::Expression(source) => {
            let expr = at_expr::parse(source).ok()?;
            Some(Box::new(
                move |env| matches!(expr.evaluate(env), Ok(v) if v.truthy()),
            ))
        }
        other => {
            let (constraint, scope) = other.as_function_constraint()?;
            Some(Box::new(move |env| {
                let values: Vec<Value> = scope
                    .iter()
                    .map(|name| env.get(name).expect("scope variable").clone())
                    .collect();
                constraint.evaluate(&values)
            }))
        }
    }
}

/// Fold exact supports into per-parameter prunable value lists. A value
/// is prunable when **some** restriction's satisfying assignments never
/// use it — the conjunction then cannot either. Contradictory specs are
/// skipped (the space is empty; pruning is moot).
fn collect_prunable(
    spec: &SearchSpaceSpec,
    verdicts: &[Option<Verdict>],
    exact_info: &[Option<ExactInfo>],
) -> Vec<PrunableParam> {
    if verdicts.contains(&Some(Verdict::Contradiction)) {
        return Vec::new();
    }
    let mut removable: FxHashMap<usize, FxHashSet<usize>> = FxHashMap::default();
    for info in exact_info.iter().flatten() {
        for (k, &p) in info.scope.iter().enumerate() {
            let domain_len = spec.params[p].len();
            for value_index in 0..domain_len {
                if !info.support[k].contains(&value_index) {
                    removable.entry(p).or_default().insert(value_index);
                }
            }
        }
    }
    let mut out: Vec<PrunableParam> = removable
        .into_iter()
        .filter(|(_, values)| !values.is_empty())
        .map(|(p, values)| {
            let param = &spec.params[p];
            let mut indices: Vec<usize> = values.into_iter().collect();
            indices.sort_unstable();
            PrunableParam {
                param: param.name().to_string(),
                values: indices
                    .into_iter()
                    .map(|i| param.values()[i].clone())
                    .collect(),
            }
        })
        .collect();
    out.sort_by(|a, b| a.param.cmp(&b.param));
    out
}

/// Find the span of the first occurrence of variable `name`.
fn find_var_span(expr: &Expr, spans: &SpanNode, name: &str) -> Option<Span> {
    match expr {
        Expr::Var(v) if v == name => Some(spans.span),
        _ => {
            let children = expr_children(expr);
            debug_assert_eq!(children.len(), spans.children.len());
            children
                .iter()
                .zip(&spans.children)
                .find_map(|(child, child_span)| find_var_span(child, child_span, name))
        }
    }
}

/// The sub-expressions of a node, in [`SpanNode`] child order.
fn expr_children(expr: &Expr) -> Vec<&Expr> {
    match expr {
        Expr::Const(_) | Expr::Var(_) => Vec::new(),
        Expr::Neg(e) | Expr::Not(e) => vec![e.as_ref()],
        Expr::Binary { lhs, rhs, .. } => vec![lhs.as_ref(), rhs.as_ref()],
        Expr::Compare { first, rest } => {
            let mut v = vec![first.as_ref()];
            v.extend(rest.iter().map(|(_, e)| e));
            v
        }
        Expr::And(parts) | Expr::Or(parts) => parts.iter().collect(),
        Expr::In { value, set, .. } => {
            let mut v = vec![value.as_ref()];
            v.extend(set.iter());
            v
        }
        Expr::Call { args, .. } => args.iter().collect(),
    }
}

/// Abstract a parameter domain.
fn domain_abs(values: &[Value]) -> Abs {
    if values.len() > SET_CAP {
        Abs::Top
    } else {
        Abs::Set(values.to_vec())
    }
}

type Env = FxHashMap<String, Abs>;

/// A dead-branch candidate recorded during the walk.
struct DeadCandidate {
    span: Span,
    message: String,
}

/// The abstract interpreter over one restriction expression.
struct Walker<'a> {
    source: &'a str,
    restriction: usize,
    diags: Vec<Diagnostic>,
    dead: Vec<DeadCandidate>,
}

impl Walker<'_> {
    fn eval(&mut self, expr: &Expr, spans: &SpanNode, env: &Env) -> AbsVal {
        match expr {
            Expr::Const(v) => AbsVal::exact(Abs::singleton(v.clone())),
            Expr::Var(name) => match env.get(name) {
                Some(abs) => AbsVal::exact(abs.clone()),
                None => AbsVal::top(),
            },
            Expr::Neg(inner) => {
                let v = self.eval(inner, &spans.children[0], env);
                neg(&v)
            }
            Expr::Not(inner) => {
                let v = self.eval(inner, &spans.children[0], env);
                AbsVal::bools(v.can_false(), v.can_true(), v.may_error)
            }
            Expr::Binary { op, lhs, rhs } => {
                let l = self.eval(lhs, &spans.children[0], env);
                let r = self.eval(rhs, &spans.children[1], env);
                if matches!(op, BinOp::Div | BinOp::FloorDiv | BinOp::Mod) && r.abs.can_be_zero() {
                    let rhs_span = spans.children[1].span;
                    self.diags.push(Diagnostic {
                        code: Code::PossibleDivisionByZero,
                        message: format!(
                            "`{}` can be zero here; configurations hitting `{}` with a zero \
                             divisor are rejected",
                            snippet(self.source, rhs_span),
                            op.symbol()
                        ),
                        restriction: Some(self.restriction),
                        source: Some(self.source.to_string()),
                        span: Some(rhs_span),
                        help: Some(format!(
                            "guard it, e.g. `{} == 0 or …`",
                            snippet(self.source, rhs_span)
                        )),
                    });
                }
                binop(*op, &l, &r)
            }
            Expr::Compare { first, rest } => {
                let mut operands = Vec::with_capacity(1 + rest.len());
                operands.push(self.eval(first, &spans.children[0], env));
                for (k, (_, rhs)) in rest.iter().enumerate() {
                    operands.push(self.eval(rhs, &spans.children[k + 1], env));
                }
                let may_error = operands.iter().any(|o| o.may_error);
                let mut can_true = true;
                let mut can_false = false;
                for (k, (op, _)) in rest.iter().enumerate() {
                    let (l, r) = (&operands[k], &operands[k + 1]);
                    let link_span = spans.children[k].span.to(spans.children[k + 1].span);
                    self.check_link(*op, l, r, link_span);
                    let (ct, cf) = cmp_link(*op, &l.abs, &r.abs);
                    can_true &= ct;
                    can_false |= cf;
                }
                AbsVal::bools(can_true, can_false, may_error)
            }
            Expr::In {
                value,
                set,
                negated,
            } => {
                let v = self.eval(value, &spans.children[0], env);
                let elems: Vec<AbsVal> = set
                    .iter()
                    .enumerate()
                    .map(|(k, e)| self.eval(e, &spans.children[k + 1], env))
                    .collect();
                let may_error = v.may_error || elems.iter().any(|e| e.may_error);
                let (mut can_hit, mut can_miss) = (true, true);
                let total: usize = elems
                    .iter()
                    .map(|e| e.abs.members().map_or(PAIR_CAP, <[Value]>::len))
                    .sum();
                if let Some(xs) = v.abs.members() {
                    if xs.len().saturating_mul(total.max(1)) <= PAIR_CAP
                        && elems.iter().all(|e| e.abs.members().is_some())
                    {
                        can_hit = xs.iter().any(|x| {
                            elems.iter().any(|e| {
                                e.abs
                                    .members()
                                    .expect("checked finite")
                                    .iter()
                                    .any(|y| x.py_eq(y))
                            })
                        });
                        can_miss = xs.is_empty()
                            || xs.iter().any(|x| {
                                elems.iter().all(|e| {
                                    e.abs
                                        .members()
                                        .expect("checked finite")
                                        .iter()
                                        .any(|y| !x.py_eq(y))
                                        || e.abs.is_empty_set()
                                })
                            });
                        if xs.is_empty() {
                            can_hit = false;
                            can_miss = false;
                        }
                    }
                }
                let (ct, cf) = if *negated {
                    (can_miss, can_hit)
                } else {
                    (can_hit, can_miss)
                };
                AbsVal::bools(ct, cf, may_error)
            }
            Expr::Call { func, args } => {
                let arg_vals: Vec<AbsVal> = args
                    .iter()
                    .enumerate()
                    .map(|(k, a)| self.eval(a, &spans.children[k], env))
                    .collect();
                let mut may_error = arg_vals.iter().any(|a| a.may_error);
                let mut product: usize = 1;
                for a in &arg_vals {
                    match a.abs.members() {
                        Some(m) => product = product.saturating_mul(m.len().max(1)),
                        None => return AbsVal::top(),
                    }
                }
                if product > PAIR_CAP {
                    return AbsVal::top();
                }
                if arg_vals.iter().any(|a| a.abs.is_empty_set()) {
                    return AbsVal {
                        abs: Abs::Set(Vec::new()),
                        may_error,
                    };
                }
                let members: Vec<&[Value]> = arg_vals
                    .iter()
                    .map(|a| a.abs.members().expect("checked finite"))
                    .collect();
                let mut counters = vec![0usize; members.len()];
                let mut out = Vec::new();
                'outer: loop {
                    let values: Vec<Value> = counters
                        .iter()
                        .enumerate()
                        .map(|(k, &i)| members[k][i].clone())
                        .collect();
                    match apply_builtin(*func, &values) {
                        Ok(v) => out.push(v),
                        Err(_) => may_error = true,
                    }
                    let mut k = members.len();
                    loop {
                        if k == 0 {
                            break 'outer;
                        }
                        k -= 1;
                        counters[k] += 1;
                        if counters[k] < members[k].len() {
                            break;
                        }
                        counters[k] = 0;
                    }
                    if members.is_empty() {
                        break;
                    }
                }
                AbsVal {
                    abs: Abs::from_values(out),
                    may_error,
                }
            }
            Expr::And(parts) => self.eval_connective(parts, spans, env, true),
            Expr::Or(parts) => self.eval_connective(parts, spans, env, false),
        }
    }

    /// Per-link comparison diagnostics (AT0002, AT0003).
    fn check_link(&mut self, op: CmpOp, l: &AbsVal, r: &AbsVal, link_span: Span) {
        let cross_type =
            (l.abs.all_numeric() && r.abs.all_str()) || (l.abs.all_str() && r.abs.all_numeric());
        if cross_type && op != CmpOp::Ne {
            self.diags.push(Diagnostic {
                code: Code::CrossTypeComparison,
                message: format!(
                    "`{}` between a number and a string never holds (Python semantics: \
                     numbers and strings are incomparable)",
                    op.symbol()
                ),
                restriction: Some(self.restriction),
                source: Some(self.source.to_string()),
                span: Some(link_span),
                help: None,
            });
            return;
        }
        if matches!(op, CmpOp::Eq | CmpOp::Ne)
            && (l.abs.all_float() || r.abs.all_float())
            && l.abs.all_numeric()
            && r.abs.all_numeric()
        {
            self.diags.push(Diagnostic {
                code: Code::FloatEquality,
                message: format!(
                    "`{}` on a value that is always a float; exact float equality depends \
                     on rounding",
                    op.symbol()
                ),
                restriction: Some(self.restriction),
                source: Some(self.source.to_string()),
                span: Some(link_span),
                help: Some("compare with a tolerance or use integer arithmetic".into()),
            });
        }
    }

    /// `and`/`or` with short-circuit paths: operand *k* is analyzed
    /// under the refinement implied by operands `0..k` (all true for
    /// `and`, all false for `or`), which is what makes the pervasive
    /// `luf == 0 or tile % luf == 0` guard idiom analyze cleanly.
    fn eval_connective(
        &mut self,
        parts: &[Expr],
        spans: &SpanNode,
        env: &Env,
        is_and: bool,
    ) -> AbsVal {
        let mut env = env.clone();
        let mut may_error = false;
        let mut all_parts_processed = true;
        let mut forced = true; // AND: all can_true; OR: all can_false
        let mut escape = false; // AND: any can_false; OR: any can_true
        for (k, part) in parts.iter().enumerate() {
            let v = self.eval(part, &spans.children[k], &env);
            may_error |= v.may_error;
            let (continues, decides) = if is_and {
                (v.can_true(), v.can_false())
            } else {
                (v.can_false(), v.can_true())
            };
            escape |= decides;
            forced &= continues;
            // Dead-branch candidates: an operand that can never decide
            // the connective (and never errors) is inert.
            if !decides && !v.may_error {
                self.dead.push(DeadCandidate {
                    span: spans.children[k].span,
                    message: if is_and {
                        "this `and` operand is always satisfied here; it never rejects \
                         anything"
                            .into()
                    } else {
                        "this `or` branch can never be true for any parameter value".into()
                    },
                });
            }
            if !continues {
                // Later operands are never evaluated.
                if k + 1 < parts.len() {
                    all_parts_processed = false;
                }
                break;
            }
            refine(&mut env, part, is_and);
        }
        let forced = forced && all_parts_processed;
        if is_and {
            AbsVal::bools(forced, escape, may_error)
        } else {
            AbsVal::bools(escape, forced, may_error)
        }
    }
}

/// Shrink `env` by the knowledge that `expr` evaluated to `truth`.
/// Only simple, provably-invertible shapes refine; anything else is a
/// no-op (which keeps the env an over-approximation — sound).
fn refine(env: &mut Env, expr: &Expr, truth: bool) {
    match expr {
        Expr::Not(inner) => refine(env, inner, !truth),
        Expr::Var(name) => {
            retain(env, name, |v| v.truthy() == truth);
        }
        Expr::Compare { first, rest } if rest.len() == 1 => {
            let (op, rhs) = (&rest[0].0, &rest[0].1);
            match (first.as_ref(), rhs) {
                (Expr::Var(name), Expr::Const(c)) => {
                    retain(env, name, |v| op.apply(v, c) == truth);
                }
                (Expr::Const(c), Expr::Var(name)) => {
                    retain(env, name, |v| op.apply(c, v) == truth);
                }
                _ => {}
            }
        }
        Expr::In {
            value,
            set,
            negated,
        } => {
            if let Expr::Var(name) = value.as_ref() {
                let consts: Option<Vec<&Value>> = set
                    .iter()
                    .map(|e| match e {
                        Expr::Const(c) => Some(c),
                        _ => None,
                    })
                    .collect();
                if let Some(consts) = consts {
                    retain(env, name, |v| {
                        (consts.iter().any(|c| v.py_eq(c)) != *negated) == truth
                    });
                }
            }
        }
        _ => {}
    }
}

fn retain(env: &mut Env, name: &str, keep: impl Fn(&Value) -> bool) {
    if let Some(Abs::Set(values)) = env.get_mut(name) {
        values.retain(|v| keep(v));
    }
}

fn snippet(source: &str, span: Span) -> &str {
    // Clamp into the source and snap to char boundaries (spans are byte
    // offsets and may land inside a multi-byte char on lossily-decoded
    // input).
    let mut start = span.start.min(source.len());
    while !source.is_char_boundary(start) {
        start -= 1;
    }
    let mut end = span.end.clamp(start, source.len());
    while !source.is_char_boundary(end) {
        end += 1;
    }
    &source[start..end]
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_searchspace::TunableParameter;

    fn spec(params: &[(&str, Vec<i64>)], restrictions: &[&str]) -> SearchSpaceSpec {
        let mut s = SearchSpaceSpec::new("test");
        for (name, values) in params {
            s.add_param(TunableParameter::ints(*name, values.iter().copied()));
        }
        for r in restrictions {
            s.add_restriction(Restriction::expr(*r));
        }
        s
    }

    fn codes(report: &CheckReport) -> Vec<Code> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_spec_is_clean() {
        let s = spec(
            &[("x", vec![1, 2, 4]), ("y", vec![1, 2])],
            &["x * y <= 4", "x >= y"],
        );
        let report = check_spec(&s);
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(
            report.verdicts,
            vec![Some(Verdict::Contingent), Some(Verdict::Contingent)]
        );
    }

    #[test]
    fn unknown_variable_with_suggestion() {
        let s = spec(&[("block_size_x", vec![1, 2])], &["block_size_z <= 2"]);
        let report = check_spec(&s);
        assert_eq!(codes(&report), vec![Code::UnknownVariable]);
        let d = &report.diagnostics[0];
        assert!(d.message.contains("block_size_z"));
        assert!(d.help.as_ref().unwrap().contains("block_size_x"));
        assert!(d.span.is_some());
        assert_eq!(report.verdicts, vec![None]);
    }

    #[test]
    fn parse_failure_reports_at0009() {
        let s = spec(&[("x", vec![1])], &["x >"]);
        let report = check_spec(&s);
        assert_eq!(codes(&report), vec![Code::ParseFailure]);
        assert!(report.has_errors());
    }

    #[test]
    fn tautology_and_contradiction_verdicts() {
        let s = spec(&[("x", vec![1, 2, 4])], &["x >= 1", "x > 99"]);
        let report = check_spec(&s);
        assert_eq!(report.verdicts[0], Some(Verdict::Tautology));
        assert_eq!(report.verdicts[1], Some(Verdict::Contradiction));
        assert!(codes(&report).contains(&Code::Tautology));
        assert!(codes(&report).contains(&Code::Contradiction));
        assert!(report.has_errors());
    }

    #[test]
    fn guard_idiom_produces_no_division_warning() {
        // The classic Kernel Tuner guard: the division is only reachable
        // when luf != 0, which the path refinement understands.
        let s = spec(
            &[("luf", vec![0, 1, 2, 4]), ("tile", vec![1, 2, 4, 8])],
            &["luf == 0 or tile % luf == 0"],
        );
        let report = check_spec(&s);
        assert!(
            !codes(&report).contains(&Code::PossibleDivisionByZero),
            "{}",
            report.render()
        );
        assert_eq!(report.verdicts[0], Some(Verdict::Contingent));
    }

    #[test]
    fn unguarded_division_by_zero_warns() {
        let s = spec(
            &[("luf", vec![0, 1, 2]), ("tile", vec![2, 4])],
            &["tile % luf == 0"],
        );
        let report = check_spec(&s);
        assert!(codes(&report).contains(&Code::PossibleDivisionByZero));
        // The span points at the divisor.
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == Code::PossibleDivisionByZero)
            .unwrap();
        let span = d.span.unwrap();
        assert_eq!(&d.source.as_ref().unwrap()[span.start..span.end], "luf");
    }

    #[test]
    fn cross_type_comparison_warns() {
        let mut s = SearchSpaceSpec::new("test");
        s.add_param(TunableParameter::ints("x", [1, 2]));
        s.add_param(TunableParameter::strings("mode", &["fast", "slow"]));
        s.add_restriction(Restriction::expr("x < mode"));
        let report = check_spec(&s);
        assert!(codes(&report).contains(&Code::CrossTypeComparison));
        // `x < mode` is also never true — a contradiction.
        assert_eq!(report.verdicts[0], Some(Verdict::Contradiction));
    }

    #[test]
    fn string_equality_is_not_cross_type() {
        let mut s = SearchSpaceSpec::new("test");
        s.add_param(TunableParameter::strings("mode", &["fast", "slow"]));
        s.add_restriction(Restriction::expr("mode == 'fast'"));
        let report = check_spec(&s);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn float_equality_warns() {
        let mut s = SearchSpaceSpec::new("test");
        s.add_param(TunableParameter::new(
            "scale",
            vec![Value::Float(0.25), Value::Float(0.5)],
        ));
        s.add_restriction(Restriction::expr("scale == 0.25"));
        let report = check_spec(&s);
        assert!(codes(&report).contains(&Code::FloatEquality));
    }

    #[test]
    fn int_equality_does_not_warn_floats() {
        let s = spec(&[("x", vec![1, 2, 3])], &["x == 2"]);
        let report = check_spec(&s);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn dead_or_branch_is_flagged() {
        let s = spec(&[("x", vec![1, 2, 3])], &["x < 0 or x >= 2"]);
        let report = check_spec(&s);
        assert!(
            codes(&report).contains(&Code::DeadBranch),
            "{}",
            report.render()
        );
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == Code::DeadBranch)
            .unwrap();
        let span = d.span.unwrap();
        assert_eq!(&d.source.as_ref().unwrap()[span.start..span.end], "x < 0");
    }

    #[test]
    fn dead_and_operand_is_flagged() {
        let s = spec(
            &[("x", vec![1, 2, 3]), ("y", vec![1, 2])],
            &["x >= 1 and y <= x"],
        );
        let report = check_spec(&s);
        assert!(
            codes(&report).contains(&Code::DeadBranch),
            "{}",
            report.render()
        );
    }

    #[test]
    fn pairwise_contradiction_is_found() {
        let s = spec(&[("x", vec![1, 2, 3, 4])], &["x <= 2", "x >= 3"]);
        let report = check_spec(&s);
        assert_eq!(report.verdicts[0], Some(Verdict::Contingent));
        assert_eq!(report.verdicts[1], Some(Verdict::Contingent));
        assert!(codes(&report).contains(&Code::PairwiseContradiction));
        assert!(report.has_errors());
    }

    #[test]
    fn disjoint_scopes_are_never_pairwise_contradictory() {
        let s = spec(
            &[("x", vec![1, 2]), ("y", vec![1, 2])],
            &["x <= 1", "y <= 1"],
        );
        let report = check_spec(&s);
        assert!(!codes(&report).contains(&Code::PairwiseContradiction));
    }

    #[test]
    fn prunable_values_are_reported() {
        // x must divide 4 → 3 is prunable.
        let s = spec(&[("x", vec![1, 2, 3, 4])], &["4 % x == 0"]);
        let report = check_spec(&s);
        assert_eq!(report.prunable.len(), 1);
        assert_eq!(report.prunable[0].param, "x");
        assert_eq!(report.prunable[0].values, vec![Value::Int(3)]);
    }

    #[test]
    fn closure_restrictions_get_exact_verdicts() {
        let mut s = SearchSpaceSpec::new("test");
        s.add_param(TunableParameter::ints("x", [1, 2, 3]));
        s.add_restriction(Restriction::func(&["x"], "x is small", |v| {
            v[0].as_i64().unwrap() <= 10
        }));
        s.add_restriction(Restriction::func(&["x"], "x is huge", |v| {
            v[0].as_i64().unwrap() > 10
        }));
        let report = check_spec(&s);
        assert_eq!(report.verdicts[0], Some(Verdict::Tautology));
        assert_eq!(report.verdicts[1], Some(Verdict::Contradiction));
    }

    #[test]
    fn oversized_scopes_fall_back_to_abstract_analysis() {
        // 17^3 = 4913 assignments: past EXACT_CAP, but the abstract
        // walk still proves the tautology (sum of three positives > 0).
        let domain: Vec<i64> = (1..=17).collect();
        let s = spec(
            &[("a", domain.clone()), ("b", domain.clone()), ("c", domain)],
            &["a + b + c > 0"],
        );
        let report = check_spec(&s);
        assert_eq!(report.verdicts[0], Some(Verdict::Tautology));
    }

    #[test]
    fn no_variable_restrictions_ground_out() {
        let s = spec(&[("x", vec![1])], &["1 > 2"]);
        let report = check_spec(&s);
        assert_eq!(report.verdicts[0], Some(Verdict::Contradiction));
    }

    #[test]
    fn in_membership_analyzes() {
        let s = spec(&[("x", vec![1, 2, 3])], &["x in [1, 2, 3]", "x in [9]"]);
        let report = check_spec(&s);
        assert_eq!(report.verdicts[0], Some(Verdict::Tautology));
        assert_eq!(report.verdicts[1], Some(Verdict::Contradiction));
    }

    #[test]
    fn builtin_calls_analyze() {
        let s = spec(
            &[("x", vec![1, 2, 3]), ("y", vec![4, 5])],
            &["min(x, y) <= 3", "max(x, y) < 2"],
        );
        let report = check_spec(&s);
        assert_eq!(report.verdicts[0], Some(Verdict::Tautology));
        assert_eq!(report.verdicts[1], Some(Verdict::Contradiction));
    }
}
