//! The abstract domain of the analyzer: finite value sets with a `Top`.
//!
//! Every expression node is abstracted by the *set of values it can
//! evaluate to* plus a flag for *whether evaluation can error* (an error
//! rejects the configuration under the pipeline's error→reject
//! convention). Sets are computed by running the **real** concrete
//! operations ([`BinOp::apply`], [`CmpOp::apply`], [`Value`] semantics)
//! over all operand combinations, so the abstraction cannot drift from
//! the interpreter it describes. When a set would exceed [`SET_CAP`]
//! values — or an operator would have to combine more than [`PAIR_CAP`]
//! operand pairs — the result widens to [`Abs::Top`], "any value, may
//! error", which is trivially sound.
//!
//! # Soundness
//!
//! For every node, the abstract set is a **superset** of the values the
//! node can concretely take over the (refined) variable domains, and
//! `may_error` is `true` whenever any concrete evaluation can error.
//! Claims derived from the abstraction are therefore one-sided:
//!
//! - `!can_true()` proves the node is never truthy (used for
//!   *contradiction* verdicts),
//! - `!can_false() && !may_error` proves it always evaluates truthily
//!   (used for *tautology* verdicts),
//! - the converses are **not** claimed: `can_true()` does not prove a
//!   satisfying assignment exists. Warning-class diagnostics that need
//!   an existence claim (e.g. AT0004) only fire from `Abs::Set`
//!   evidence, never from `Top`.

use at_csp::{CmpOp, Value};
use at_expr::BinOp;
use rustc_hash::FxHashSet;

/// Maximum number of values an abstract set may hold before widening.
pub const SET_CAP: usize = 512;

/// Maximum number of operand combinations an operator application may
/// enumerate before widening.
pub const PAIR_CAP: usize = 4096;

/// An abstract value: a finite set of possible concrete values, or
/// everything.
#[derive(Debug, Clone, PartialEq)]
pub enum Abs {
    /// The node evaluates to one of these values (possibly none, when
    /// every evaluation errors or the path is unreachable).
    Set(Vec<Value>),
    /// Unknown: any value at all.
    Top,
}

impl Abs {
    /// A single-value set.
    pub fn singleton(v: Value) -> Abs {
        Abs::Set(vec![v])
    }

    /// A deduplicated set, widening to `Top` past [`SET_CAP`].
    pub fn from_values(values: impl IntoIterator<Item = Value>) -> Abs {
        let mut seen = FxHashSet::default();
        let mut out = Vec::new();
        for v in values {
            if seen.insert(v.clone()) {
                out.push(v);
                if out.len() > SET_CAP {
                    return Abs::Top;
                }
            }
        }
        Abs::Set(out)
    }

    /// The members, when finite.
    pub fn members(&self) -> Option<&[Value]> {
        match self {
            Abs::Set(vs) => Some(vs),
            Abs::Top => None,
        }
    }

    /// Whether the set is provably empty (bottom: the node never
    /// produces a value).
    pub fn is_empty_set(&self) -> bool {
        matches!(self, Abs::Set(vs) if vs.is_empty())
    }

    /// Whether a numeric zero is *known* to be a possible value. `Top`
    /// answers `false`: zero-based warnings only fire on positive
    /// evidence.
    pub fn can_be_zero(&self) -> bool {
        match self {
            Abs::Set(vs) => vs.iter().any(|v| v.as_f64() == Some(0.0)),
            Abs::Top => false,
        }
    }

    /// Whether every member is a string (and there is at least one).
    pub fn all_str(&self) -> bool {
        match self {
            Abs::Set(vs) => !vs.is_empty() && vs.iter().all(|v| v.as_str().is_some()),
            Abs::Top => false,
        }
    }

    /// Whether every member is numeric (and there is at least one).
    pub fn all_numeric(&self) -> bool {
        match self {
            Abs::Set(vs) => !vs.is_empty() && vs.iter().all(|v| v.is_numeric()),
            Abs::Top => false,
        }
    }

    /// Whether every member is a float (and there is at least one).
    pub fn all_float(&self) -> bool {
        match self {
            Abs::Set(vs) => !vs.is_empty() && vs.iter().all(|v| matches!(v, Value::Float(_))),
            Abs::Top => false,
        }
    }
}

/// An abstract value plus the may-error flag.
#[derive(Debug, Clone)]
pub struct AbsVal {
    /// The value set.
    pub abs: Abs,
    /// Whether evaluation of the node can error for some assignment
    /// (errors reject the configuration).
    pub may_error: bool,
}

impl AbsVal {
    /// An exact (never-erroring) set.
    pub fn exact(abs: Abs) -> AbsVal {
        AbsVal {
            abs,
            may_error: false,
        }
    }

    /// The unknown value.
    pub fn top() -> AbsVal {
        AbsVal {
            abs: Abs::Top,
            may_error: true,
        }
    }

    /// Whether some member is truthy (over-approximated: `Top` → yes).
    pub fn can_true(&self) -> bool {
        match &self.abs {
            Abs::Set(vs) => vs.iter().any(Value::truthy),
            Abs::Top => true,
        }
    }

    /// Whether some member is falsy (over-approximated: `Top` → yes).
    pub fn can_false(&self) -> bool {
        match &self.abs {
            Abs::Set(vs) => vs.iter().any(|v| !v.truthy()),
            Abs::Top => true,
        }
    }

    /// Build the boolean abstraction from possibility flags.
    pub fn bools(can_true: bool, can_false: bool, may_error: bool) -> AbsVal {
        let mut vs = Vec::new();
        if can_true {
            vs.push(Value::Bool(true));
        }
        if can_false {
            vs.push(Value::Bool(false));
        }
        AbsVal {
            abs: Abs::Set(vs),
            may_error,
        }
    }
}

/// Abstract application of a binary operator: the real [`BinOp::apply`]
/// over all operand pairs, widening past the caps.
pub fn binop(op: BinOp, a: &AbsVal, b: &AbsVal) -> AbsVal {
    let mut may_error = a.may_error || b.may_error;
    match (a.abs.members(), b.abs.members()) {
        (Some(xs), Some(ys)) if xs.len().saturating_mul(ys.len()) <= PAIR_CAP => {
            let mut seen = FxHashSet::default();
            let mut out = Vec::new();
            for x in xs {
                for y in ys {
                    match op.apply(x, y) {
                        Ok(v) => {
                            if seen.insert(v.clone()) {
                                out.push(v);
                            }
                        }
                        Err(_) => may_error = true,
                    }
                }
            }
            if out.len() > SET_CAP {
                return AbsVal::top();
            }
            AbsVal {
                abs: Abs::Set(out),
                may_error,
            }
        }
        _ => AbsVal::top(),
    }
}

/// Abstract negation (`-x`).
pub fn neg(a: &AbsVal) -> AbsVal {
    let mut may_error = a.may_error;
    match a.abs.members() {
        Some(xs) => {
            let mut out = Vec::new();
            for x in xs {
                match x.neg() {
                    Some(v) => out.push(v),
                    None => may_error = true,
                }
            }
            AbsVal {
                abs: Abs::from_values(out),
                may_error,
            }
        }
        None => AbsVal::top(),
    }
}

/// Possible truth outcomes of one comparison link, via the real
/// [`CmpOp::apply`] (which never errors).
///
/// Returns `(can_true, can_false)`.
pub fn cmp_link(op: CmpOp, a: &Abs, b: &Abs) -> (bool, bool) {
    match (a.members(), b.members()) {
        (Some(xs), Some(ys)) if xs.len().saturating_mul(ys.len()) <= PAIR_CAP => {
            let mut can_true = false;
            let mut can_false = false;
            for x in xs {
                for y in ys {
                    if op.apply(x, y) {
                        can_true = true;
                    } else {
                        can_false = true;
                    }
                    if can_true && can_false {
                        return (true, true);
                    }
                }
            }
            (can_true, can_false)
        }
        _ => (true, true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(vals: impl IntoIterator<Item = i64>) -> AbsVal {
        AbsVal::exact(Abs::from_values(vals.into_iter().map(Value::Int)))
    }

    #[test]
    fn binop_runs_the_real_semantics() {
        let a = ints([2, 3]);
        let b = ints([4]);
        let r = binop(BinOp::Mul, &a, &b);
        assert!(!r.may_error);
        let members = r.abs.members().unwrap();
        assert!(members.contains(&Value::Int(8)));
        assert!(members.contains(&Value::Int(12)));
        assert_eq!(members.len(), 2);
    }

    #[test]
    fn division_by_zero_sets_may_error() {
        let a = ints([6]);
        let b = ints([0, 2]);
        let r = binop(BinOp::Div, &a, &b);
        assert!(r.may_error, "0 divisor errors");
        // The non-erroring combination survives: 6 / 2 = 3.0 (true division).
        assert!(r.abs.members().unwrap().contains(&Value::Float(3.0)));
    }

    #[test]
    fn string_arithmetic_errors() {
        let a = AbsVal::exact(Abs::singleton(Value::str("half")));
        let b = ints([1]);
        let r = binop(BinOp::Add, &a, &b);
        assert!(r.may_error);
        assert!(r.abs.is_empty_set(), "no combination succeeds");
    }

    #[test]
    fn widening_caps_combinations() {
        let big: Vec<Value> = (0..100).map(Value::Int).collect();
        let a = AbsVal::exact(Abs::Set(big.clone()));
        let b = AbsVal::exact(Abs::Set(big));
        // 100 * 100 > PAIR_CAP: widen rather than enumerate.
        let r = binop(BinOp::Add, &a, &b);
        assert_eq!(r.abs, Abs::Top);
        assert!(r.may_error);
    }

    #[test]
    fn cmp_link_over_disjoint_types_is_always_false() {
        let nums = Abs::from_values([Value::Int(1), Value::Int(2)]);
        let strs = Abs::from_values([Value::str("a")]);
        assert_eq!(cmp_link(CmpOp::Eq, &nums, &strs), (false, true));
        assert_eq!(cmp_link(CmpOp::Lt, &nums, &strs), (false, true));
        // `!=` on incomparables is always true.
        assert_eq!(cmp_link(CmpOp::Ne, &nums, &strs), (true, false));
    }

    #[test]
    fn truthiness_over_top_is_unknown() {
        let t = AbsVal::top();
        assert!(t.can_true());
        assert!(t.can_false());
        assert!(!t.abs.can_be_zero(), "Top gives no positive evidence");
    }

    #[test]
    fn zero_detection_spans_numeric_kinds() {
        let z = Abs::from_values([Value::Float(0.0)]);
        assert!(z.can_be_zero());
        let b = Abs::from_values([Value::Bool(false)]);
        assert!(b.can_be_zero());
        let nz = Abs::from_values([Value::Int(3), Value::str("")]);
        assert!(!nz.can_be_zero());
    }
}
