//! The fuzzing loop: deterministic input generation, panic and hang
//! detection, greedy crash minimization, and the on-disk regression
//! corpus.
//!
//! A run is fully determined by `(target, seed, iters)`. Each iteration
//! derives its input from the run RNG, executes the target under
//! `catch_unwind` with a wall-clock bound, and — on the first failure —
//! shrinks the input by greedy chunk removal and writes it to
//! `tests/fuzz_corpus/<target>/crash-<fnv64>.bin`, where `cargo test`
//! replays it forever after.

use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::{atss, checkgen, daemonproto, exprgen, mutate};

/// Wall-clock bound for a single target execution. The targets do
/// strictly bounded work per byte, so anything past this is a hang (or an
/// accidental quadratic blow-up), which the oracle treats as a failure.
pub const HANG_LIMIT: Duration = Duration::from_secs(5);

/// 64-bit FNV-1a. Used to derive per-input sub-seeds (so a target's
/// internal sampling is reproducible from the input bytes alone) and to
/// name crash files.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The five fuzz targets. Each wraps a `fn(&[u8]) -> Result<(), String>`
/// whose `Err` is an oracle violation; panics and hangs are detected by
/// the harness around it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Arbitrary bytes through the strict store reader + peek differential.
    AtssReader,
    /// Mutated valid store files through the full `LoadOptions` matrix.
    AtssLoadDifferential,
    /// Arbitrary strings through lexer → parser → fold → compile → VM.
    ExprPipeline,
    /// Restriction strings through the static analyzer, with brute-force
    /// ground truth and the pre-pruning construction identity.
    CheckPipeline,
    /// Arbitrary bytes through the `ATSD` daemon frame decoder, with a
    /// buffer-vs-stream framing differential.
    DaemonProto,
}

impl Target {
    /// Every target, in a stable order.
    pub const ALL: [Target; 5] = [
        Target::AtssReader,
        Target::AtssLoadDifferential,
        Target::ExprPipeline,
        Target::CheckPipeline,
        Target::DaemonProto,
    ];

    /// The CLI / corpus-directory name of this target.
    pub fn name(self) -> &'static str {
        match self {
            Target::AtssReader => "atss_reader",
            Target::AtssLoadDifferential => "atss_load_differential",
            Target::ExprPipeline => "expr_pipeline",
            Target::CheckPipeline => "check_pipeline",
            Target::DaemonProto => "daemon_proto",
        }
    }

    /// Parse a CLI name.
    pub fn from_name(name: &str) -> Option<Target> {
        Target::ALL.iter().copied().find(|t| t.name() == name)
    }

    fn run(self, input: &[u8]) -> Result<(), String> {
        match self {
            Target::AtssReader => atss::reader_target(input),
            Target::AtssLoadDifferential => atss::load_differential_target(input),
            Target::ExprPipeline => exprgen::pipeline_target(input),
            Target::CheckPipeline => checkgen::check_target(input),
            Target::DaemonProto => daemonproto::proto_target(input),
        }
    }
}

/// Why an input failed a target.
#[derive(Debug, Clone)]
pub enum TargetFailure {
    /// The target panicked; the message includes the panic payload and,
    /// when the silencer hook is installed, the source location.
    Panic(String),
    /// The target returned an oracle violation.
    Oracle(String),
    /// The target ran longer than [`HANG_LIMIT`].
    Hang(Duration),
}

impl std::fmt::Display for TargetFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TargetFailure::Panic(msg) => write!(f, "panic: {msg}"),
            TargetFailure::Oracle(msg) => write!(f, "oracle violation: {msg}"),
            TargetFailure::Hang(d) => write!(f, "hang: iteration took {d:?}"),
        }
    }
}

static LAST_PANIC: Mutex<Option<String>> = Mutex::new(None);

/// Install a panic hook that records the location+message of caught
/// panics instead of printing a backtrace per iteration. Call once from
/// the fuzz binary; tests leave the default hook so unexpected panics
/// stay loud.
pub fn silence_panics() {
    panic::set_hook(Box::new(|info| {
        let message = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| info.payload().downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "<non-string payload>".to_string());
        let location = info
            .location()
            .map(|l| format!("{}:{}", l.file(), l.line()))
            .unwrap_or_else(|| "<unknown>".to_string());
        *LAST_PANIC.lock().unwrap() = Some(format!("{location}: {message}"));
    }));
}

/// Execute `target` on `input` once, converting panics, hangs and oracle
/// violations into a [`TargetFailure`].
pub fn run_target(target: Target, input: &[u8]) -> Result<(), TargetFailure> {
    let start = Instant::now();
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| target.run(input)));
    let elapsed = start.elapsed();
    match outcome {
        Ok(Ok(())) if elapsed <= HANG_LIMIT => Ok(()),
        Ok(Ok(())) => Err(TargetFailure::Hang(elapsed)),
        Ok(Err(message)) => Err(TargetFailure::Oracle(message)),
        Err(payload) => {
            let recorded = LAST_PANIC.lock().unwrap().take();
            let message = recorded.unwrap_or_else(|| {
                payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string payload>".to_string())
            });
            Err(TargetFailure::Panic(message))
        }
    }
}

/// Configuration for one fuzzing run.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of iterations to run.
    pub iters: u64,
    /// Master seed; the whole run is a pure function of it.
    pub seed: u64,
    /// Corpus root (`tests/fuzz_corpus`); seeds are read from and crashes
    /// written to `<corpus_dir>/<target>/`.
    pub corpus_dir: PathBuf,
    /// Write minimized crashing inputs into the corpus directory.
    pub write_crashes: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            iters: 10_000,
            seed: 0x5EED,
            corpus_dir: PathBuf::from("tests/fuzz_corpus"),
            write_crashes: true,
        }
    }
}

/// The outcome of one fuzzing run.
#[derive(Debug)]
pub struct FuzzReport {
    /// Iterations actually executed (the run stops at the first crash).
    pub iters_run: u64,
    /// The first failure found, if any: the minimized input, where it was
    /// written (when enabled), and the failure itself.
    pub crash: Option<(Vec<u8>, Option<PathBuf>, TargetFailure)>,
}

impl FuzzReport {
    /// True when the run completed with no failure.
    pub fn is_clean(&self) -> bool {
        self.crash.is_none()
    }
}

/// Generate the next input for `target`.
fn next_input(target: Target, rng: &mut ChaCha8Rng, seeds: &[Vec<u8>]) -> Vec<u8> {
    let pick = |rng: &mut ChaCha8Rng| seeds[rng.gen_range(0..seeds.len())].clone();
    match target {
        Target::AtssReader => match rng.gen_range(0u32..10) {
            // Heavily mutated seed, section-aware half the time.
            0..=4 => {
                let mut data = pick(rng);
                for _ in 0..rng.gen_range(1usize..8) {
                    if rng.gen_bool(0.5) {
                        mutate::mutate_atss(rng, &mut data);
                    } else {
                        mutate::mutate_once(rng, &mut data);
                    }
                }
                data
            }
            // Cross-seed splice.
            5..=6 => {
                let mut data = pick(rng);
                let other = pick(rng);
                mutate::splice(rng, &mut data, &other);
                let count = rng.gen_range(0usize..3);
                mutate::mutate(rng, &mut data, count);
                data
            }
            // Raw garbage, short and header-shaped.
            7..=8 => {
                let mut data: Vec<u8> = (0..rng.gen_range(0usize..512))
                    .map(|_| rng.gen_range(0u8..=255))
                    .collect();
                if rng.gen_bool(0.5) && data.len() >= 4 {
                    data[0..4].copy_from_slice(b"ATSS");
                }
                data
            }
            // Single surgical mutation.
            _ => {
                let mut data = pick(rng);
                mutate::mutate_atss(rng, &mut data);
                data
            }
        },
        // The load matrix wants *almost*-valid files: light damage only.
        Target::AtssLoadDifferential => {
            let mut data = pick(rng);
            for _ in 0..rng.gen_range(1usize..4) {
                if rng.gen_bool(0.7) {
                    mutate::mutate_atss(rng, &mut data);
                } else {
                    mutate::mutate_once(rng, &mut data);
                }
            }
            data
        }
        // Frame streams: mutated valid frames, spliced streams, and raw
        // garbage (half of it stamped with the real magic so it reaches
        // the header checks past the first four bytes).
        Target::DaemonProto => match rng.gen_range(0u32..10) {
            0..=4 => {
                let mut data = pick(rng);
                let count = rng.gen_range(1usize..6);
                mutate::mutate(rng, &mut data, count);
                data
            }
            5..=6 => {
                let mut data = pick(rng);
                let other = pick(rng);
                mutate::splice(rng, &mut data, &other);
                if rng.gen_bool(0.3) {
                    mutate::mutate_once(rng, &mut data);
                }
                data
            }
            _ => {
                let mut data: Vec<u8> = (0..rng.gen_range(0usize..256))
                    .map(|_| rng.gen_range(0u8..=255))
                    .collect();
                if rng.gen_bool(0.5) && data.len() >= 4 {
                    data[0..4].copy_from_slice(b"ATSD");
                }
                data
            }
        },
        // Both string targets draw from the same grammar-aware input space.
        Target::ExprPipeline | Target::CheckPipeline => match rng.gen_range(0u32..10) {
            0..=3 => exprgen::generate(rng).into_bytes(),
            4..=8 => {
                let base = String::from_utf8_lossy(&pick(rng)).into_owned();
                exprgen::mutate_expr(rng, &base).into_bytes()
            }
            _ => (0..rng.gen_range(0usize..128))
                .map(|_| rng.gen_range(0u8..=255))
                .collect(),
        },
    }
}

fn target_seeds(target: Target, corpus: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let mut seeds = match target {
        Target::AtssReader | Target::AtssLoadDifferential => atss::seed_files(),
        Target::ExprPipeline => {
            let mut rng = ChaCha8Rng::seed_from_u64(0xE0);
            let mut seeds: Vec<Vec<u8>> = [
                "x * y <= 32",
                "block_size_x == 2 ** tile and not (x in [1, 2])",
                "1 <= x * y <= 64 or z != 0",
                "min(x, y) > 0.5 and 'half' != 'single'",
            ]
            .iter()
            .map(|s| s.as_bytes().to_vec())
            .collect();
            seeds.extend((0..8).map(|_| exprgen::generate(&mut rng).into_bytes()));
            seeds
        }
        // Analyzer-interesting shapes: guard idioms, tautologies,
        // contradictions, prunable divisors, typos for did-you-mean.
        Target::CheckPipeline => {
            let mut rng = ChaCha8Rng::seed_from_u64(0xC4EC);
            let mut seeds: Vec<Vec<u8>> = [
                "tile % block_size_x == 0",
                "x % y == 0 or y == 0",
                "x >= 0 or x < 0",
                "x > 2 and x < 2",
                "blck_size_x * tile <= 64",
                "x / y > 0.5 and z != 'half'",
                "4 % x == 0",
                "x == y == z or tile in [1, 2, 4]",
            ]
            .iter()
            .map(|s| s.as_bytes().to_vec())
            .collect();
            seeds.extend((0..8).map(|_| exprgen::generate(&mut rng).into_bytes()));
            seeds
        }
        Target::DaemonProto => daemonproto::seed_frames(),
    };
    seeds.extend(corpus.iter().cloned());
    seeds
}

fn corpus_files(dir: &Path) -> Vec<(PathBuf, Vec<u8>)> {
    let mut files: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_file())
            .collect(),
        Err(_) => return Vec::new(),
    };
    files.sort();
    files
        .into_iter()
        .filter_map(|p| std::fs::read(&p).ok().map(|bytes| (p, bytes)))
        .collect()
}

/// Greedily shrink a failing input by chunk removal: repeatedly try to
/// delete chunks (halving the chunk size down to one byte) while the
/// input still fails, within a bounded number of executions.
pub fn minimize(target: Target, input: &[u8]) -> Vec<u8> {
    let still_fails = |bytes: &[u8]| run_target(target, bytes).is_err();
    let mut current = input.to_vec();
    let mut budget = 3000usize;
    loop {
        let before = current.len();
        let mut chunk = (current.len() / 2).max(1);
        loop {
            let mut start = 0;
            while start < current.len() && budget > 0 {
                budget -= 1;
                let end = (start + chunk).min(current.len());
                let mut candidate = Vec::with_capacity(current.len() - (end - start));
                candidate.extend_from_slice(&current[..start]);
                candidate.extend_from_slice(&current[end..]);
                if still_fails(&candidate) {
                    current = candidate;
                } else {
                    start += chunk;
                }
            }
            if chunk == 1 || budget == 0 {
                break;
            }
            chunk /= 2;
        }
        if current.len() == before || budget == 0 {
            break;
        }
    }
    current
}

/// Run one fuzzing campaign. Deterministic in `(target, config.seed,
/// config.iters)`; stops at the first failure, which it minimizes and
/// (when configured) writes to the corpus.
pub fn fuzz_target(target: Target, config: &FuzzConfig) -> FuzzReport {
    let dir = config.corpus_dir.join(target.name());
    let corpus: Vec<Vec<u8>> = corpus_files(&dir).into_iter().map(|(_, b)| b).collect();
    let seeds = target_seeds(target, &corpus);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);

    for i in 0..config.iters {
        let input = next_input(target, &mut rng, &seeds);
        if let Err(failure) = run_target(target, &input) {
            let minimized = minimize(target, &input);
            // Minimization may shrink onto a *different* failure; keep
            // whichever failure the minimized input actually produces.
            let failure = run_target(target, &minimized).err().unwrap_or(failure);
            let written = if config.write_crashes {
                std::fs::create_dir_all(&dir).ok();
                let path = dir.join(format!("crash-{:016x}.bin", fnv1a(&minimized)));
                std::fs::write(&path, &minimized).ok().map(|_| path)
            } else {
                None
            };
            return FuzzReport {
                iters_run: i + 1,
                crash: Some((minimized, written, failure)),
            };
        }
    }
    FuzzReport {
        iters_run: config.iters,
        crash: None,
    }
}

/// Replay every corpus file for every target; returns the number of
/// inputs replayed, or every (path, failure) pair that still fails.
pub fn replay_corpus(corpus_dir: &Path) -> Result<usize, Vec<(PathBuf, TargetFailure)>> {
    let mut replayed = 0usize;
    let mut failures = Vec::new();
    for target in Target::ALL {
        for (path, bytes) in corpus_files(&corpus_dir.join(target.name())) {
            replayed += 1;
            if let Err(failure) = run_target(target, &bytes) {
                failures.push((path, failure));
            }
        }
    }
    if failures.is_empty() {
        Ok(replayed)
    } else {
        Err(failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_names_round_trip() {
        for target in Target::ALL {
            assert_eq!(Target::from_name(target.name()), Some(target));
        }
        assert_eq!(Target::from_name("nope"), None);
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn short_runs_are_deterministic_and_clean() {
        let config = FuzzConfig {
            iters: 150,
            seed: 7,
            corpus_dir: std::env::temp_dir().join("at-fuzz-no-corpus"),
            write_crashes: false,
        };
        for target in Target::ALL {
            let report = fuzz_target(target, &config);
            assert!(
                report.is_clean(),
                "{} crashed in a smoke run: {:?}",
                target.name(),
                report.crash
            );
            assert_eq!(report.iters_run, 150);
        }
    }

    #[test]
    fn run_target_reports_panics_and_oracle_failures() {
        // Deliberately panicking/oracle-violating targets don't exist (that
        // is the point), so exercise the two failure paths directly.
        let caught = std::panic::catch_unwind(|| panic!("boom"));
        assert!(caught.is_err(), "catch_unwind must capture the panic");
        match run_target(Target::ExprPipeline, b"x > 0") {
            Ok(()) => {}
            Err(f) => panic!("clean input reported {f}"),
        }
    }
}
