//! Fuzz targets 1 and 2: the `ATSS` store readers.
//!
//! See the crate docs for the full oracle statements. Both targets treat
//! the input bytes as a (possibly damaged) store file; the differential
//! target additionally drives the whole `LoadOptions` matrix and
//! cross-checks every successful load against every other.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use at_csp::Value;
use at_searchspace::{ConfigId, SearchSpace, TunableParameter};
use at_store::{
    peek_info, read_space_from_bytes, write_space, IndexPolicy, LoadMode, LoadOptions, StoreError,
    StoreReader,
};

use crate::harness::fnv1a;

/// Valid store files used as mutation seeds: a spread of value kinds,
/// name lengths (arena alignment paths), row counts (including zero) and
/// index sizes.
pub fn seed_files() -> Vec<Vec<u8>> {
    let mut spaces = Vec::new();

    let params = vec![
        TunableParameter::ints("x", [1, 2, 4]),
        TunableParameter::ints("y", [1, 2]),
    ];
    let configs = vec![
        vec![Value::Int(1), Value::Int(1)],
        vec![Value::Int(1), Value::Int(2)],
        vec![Value::Int(2), Value::Int(1)],
        vec![Value::Int(4), Value::Int(2)],
    ];
    spaces.push(SearchSpace::from_configs("small", params, configs).unwrap());

    let params = vec![TunableParameter::new(
        "mixed",
        vec![
            Value::Int(-7),
            Value::Float(2.5),
            Value::Bool(true),
            Value::str("a,b\nc"),
        ],
    )];
    let configs = vec![
        vec![Value::Int(-7)],
        vec![Value::str("a,b\nc")],
        vec![Value::Float(2.5)],
    ];
    spaces.push(SearchSpace::from_configs("mixed-values", params, configs).unwrap());

    let params = vec![TunableParameter::ints("only", [1, 2])];
    spaces.push(SearchSpace::from_configs("empty", params, vec![]).unwrap());

    // A larger space so the persisted index has many slots and the arena
    // spans several pages.
    let params = vec![
        TunableParameter::ints("a", (0..16).collect::<Vec<_>>()),
        TunableParameter::ints("b", (0..12).collect::<Vec<_>>()),
    ];
    let configs: Vec<Vec<Value>> = (0..16i64)
        .flat_map(|a| (0..12i64).map(move |b| vec![Value::Int(a), Value::Int(b)]))
        .filter(|row| match (&row[0], &row[1]) {
            (Value::Int(a), Value::Int(b)) => (a * b) % 3 != 1,
            _ => true,
        })
        .collect();
    spaces.push(SearchSpace::from_configs("bigger", params, configs).unwrap());

    spaces
        .iter()
        .map(|space| {
            let mut bytes = Vec::new();
            write_space(space, &mut bytes).expect("in-memory write");
            bytes
        })
        .collect()
}

/// A per-process, per-thread scratch file path: targets that need a real
/// file (peek, mmap) rewrite the same path every iteration, and parallel
/// test threads never collide.
fn scratch_path(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("at-fuzz-scratch");
    std::fs::create_dir_all(&dir).ok();
    dir.join(format!(
        "{tag}-{}-{:?}.atss",
        std::process::id(),
        std::thread::current().id()
    ))
}

fn check_clean_error(e: &StoreError, what: &str) -> Result<(), String> {
    if e.is_content_error() {
        Ok(())
    } else {
        Err(format!(
            "{what} returned a non-content error for damaged bytes: {e}"
        ))
    }
}

/// Target 1: arbitrary bytes through the strict reader, with the
/// peek-vs-strict differential. See the crate docs for the oracle.
pub fn reader_target(input: &[u8]) -> Result<(), String> {
    let strict = read_space_from_bytes(input);
    if let Err(e) = &strict {
        check_clean_error(e, "read_space_from_bytes")?;
    }

    // Differential: the cheap metadata peek must classify the same bytes
    // the same way, modulo the checks it deliberately skips.
    let path = scratch_path("reader");
    std::fs::write(&path, input).map_err(|e| format!("scratch write failed: {e}"))?;
    match (peek_info(&path), &strict) {
        (Ok(info), Ok((_, strict_info))) => {
            if info != *strict_info {
                return Err(format!(
                    "peek_info and the strict reader disagree on accepted bytes: \
                     peek {info:?} vs strict {strict_info:?}"
                ));
            }
        }
        (Err(e), Ok(_)) => {
            return Err(format!(
                "peek_info rejected ({e}) a file the strict reader accepts"
            ));
        }
        (Err(e), Err(_)) => check_clean_error(&e, "peek_info")?,
        (Ok(_), Err(_)) => {} // peek skips content checksums; laxer is fine
    }
    Ok(())
}

/// One successful load, labelled with the options that produced it.
struct Loaded {
    label: String,
    space: SearchSpace,
}

/// Target 2: bytes (mutated valid files) through every `LoadOptions`
/// combination. See the crate docs for the oracle.
pub fn load_differential_target(input: &[u8]) -> Result<(), String> {
    let strict = read_space_from_bytes(input).ok();

    let path = scratch_path("load-diff");
    std::fs::write(&path, input).map_err(|e| format!("scratch write failed: {e}"))?;
    let reader = match StoreReader::open(&path) {
        Ok(reader) => reader,
        Err(e) => {
            check_clean_error(&e, "StoreReader::open")?;
            if strict.is_some() {
                return Err(format!(
                    "StoreReader::open rejected ({e}) bytes the strict reader accepts"
                ));
            }
            return Ok(());
        }
    };

    let mut successes: Vec<Loaded> = Vec::new();
    for mode in [LoadMode::Copy, LoadMode::Mmap] {
        for index in [
            IndexPolicy::Rebuild,
            IndexPolicy::TrustPersisted,
            IndexPolicy::VerifySampled,
        ] {
            let label = format!("{mode:?}/{index:?}");
            match reader.load(LoadOptions { mode, index }) {
                Ok(loaded) => successes.push(Loaded {
                    label,
                    space: loaded.space,
                }),
                Err(e) => {
                    check_clean_error(&e, &label)?;
                    if strict.is_some() {
                        // The strict path checks strictly more than any
                        // load combination; what it accepts, all must
                        // serve (possibly via a reported fallback).
                        return Err(format!(
                            "{label} failed ({e}) on bytes the strict reader accepts"
                        ));
                    }
                }
            }
        }
    }

    // All successful loads — and the strict read, when it succeeded — must
    // be code-for-code identical.
    let reference: Option<(&str, &SearchSpace)> = strict
        .as_ref()
        .map(|(space, _)| ("strict", space))
        .or_else(|| successes.first().map(|l| (l.label.as_str(), &l.space)));
    if let Some((ref_label, ref_space)) = reference {
        for loaded in &successes {
            let space = &loaded.space;
            if space.name() != ref_space.name()
                || space.num_params() != ref_space.num_params()
                || space.len() != ref_space.len()
                || space.arena() != ref_space.arena()
            {
                return Err(format!(
                    "{} and {} served different spaces from the same bytes",
                    loaded.label, ref_label
                ));
            }
        }
    }

    // Membership consistency: any id returned for a probe must point back
    // at exactly the probed codes — a damaged or stale index may *miss*,
    // never misattribute. Misses of present rows are only violations when
    // the index is known-good: a rebuilt index, or a trusted/sampled one
    // from a file the strict reader fully validated.
    let mut rng = ChaCha8Rng::seed_from_u64(fnv1a(input) ^ 0x4c4f_4144);
    for loaded in &successes {
        let space = &loaded.space;
        let index_known_good = strict.is_some() || loaded.label.contains("Rebuild");
        if !space.is_empty() {
            for _ in 0..8 {
                let id = ConfigId::from_index(rng.gen_range(0..space.len()));
                let codes = space
                    .codes_of(id)
                    .ok_or_else(|| format!("{}: row {id} vanished", loaded.label))?
                    .to_vec();
                match space.index_of_codes(&codes) {
                    Some(found) if space.codes_of(found) != Some(codes.as_slice()) => {
                        return Err(format!(
                            "{}: lookup of row {id} misattributed to {found}",
                            loaded.label
                        ));
                    }
                    Some(_) => {}
                    None if index_known_good => {
                        return Err(format!(
                            "{}: present row {id} not found by index_of_codes",
                            loaded.label
                        ));
                    }
                    None => {} // damaged trusted index: a miss is in-contract
                }
            }
        }
        for _ in 0..8 {
            let probe: Vec<u32> = (0..space.num_params())
                .map(|_| rng.gen_range(0u32..1024))
                .collect();
            if let Some(found) = space.index_of_codes(&probe) {
                if space.codes_of(found) != Some(probe.as_slice()) {
                    return Err(format!("{}: probe misattributed to {found}", loaded.label));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pristine_seeds_pass_both_targets() {
        for seed in seed_files() {
            reader_target(&seed).unwrap();
            load_differential_target(&seed).unwrap();
        }
    }

    #[test]
    fn garbage_passes_the_reader_target() {
        reader_target(b"").unwrap();
        reader_target(b"ATSS").unwrap();
        reader_target(&[0xff; 64]).unwrap();
    }
}
