//! Command-line fuzz runner.
//!
//! ```text
//! at_fuzz <target|all> [--iters N] [--seed S] [--corpus DIR] [--no-write]
//! ```
//!
//! Exits nonzero when any target crashes; the minimized input is written
//! into the corpus directory (unless `--no-write`) so `cargo test` will
//! replay it from then on.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use at_fuzz::{fuzz_target, silence_panics, FuzzConfig, Target};

fn usage() -> ! {
    eprintln!(
        "usage: at_fuzz <target|all> [--iters N] [--seed S] [--corpus DIR] [--no-write]\n\
         targets: {}",
        Target::ALL
            .iter()
            .map(|t| t.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(selector) = args.next() else { usage() };
    let targets: Vec<Target> = if selector == "all" {
        Target::ALL.to_vec()
    } else {
        match Target::from_name(&selector) {
            Some(t) => vec![t],
            None => {
                eprintln!("unknown target {selector:?}");
                usage();
            }
        }
    };

    let mut config = FuzzConfig::default();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--iters" => {
                config.iters = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--seed" => {
                config.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--corpus" => {
                config.corpus_dir = args.next().map(PathBuf::from).unwrap_or_else(|| usage())
            }
            "--no-write" => config.write_crashes = false,
            _ => usage(),
        }
    }

    silence_panics();

    let mut failed = false;
    for target in targets {
        let start = std::time::Instant::now();
        let report = fuzz_target(target, &config);
        let elapsed = start.elapsed();
        let rate = report.iters_run as f64 / elapsed.as_secs_f64().max(1e-9);
        match &report.crash {
            None => {
                println!(
                    "{}: {} iterations in {:.1}s ({:.0}/s), seed {:#x} — clean",
                    target.name(),
                    report.iters_run,
                    elapsed.as_secs_f64(),
                    rate,
                    config.seed,
                );
            }
            Some((input, written, failure)) => {
                failed = true;
                println!(
                    "{}: FAILED after {} iterations (seed {:#x})",
                    target.name(),
                    report.iters_run,
                    config.seed,
                );
                println!("  {failure}");
                println!("  minimized input: {} bytes", input.len());
                if let Some(path) = written {
                    println!("  written to {}", path.display());
                }
                if let Ok(text) = std::str::from_utf8(input) {
                    println!("  as text: {text:?}");
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
