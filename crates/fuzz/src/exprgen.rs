//! Grammar-aware generation and mutation of constraint expression strings.
//!
//! The generator produces strings in (a superset of) the restriction
//! grammar, biased toward the shapes the recognizer and compiler care
//! about: products and sums under comparison, chained comparisons,
//! membership tests, boolean connectives, built-in calls, and
//! error-provoking arithmetic (division by zero, string operands, `**`
//! towers). The mutator perturbs existing strings both structurally
//! (wrap in `not (...)`, append a conjunct, swap an operator) and at the
//! byte level, so malformed inputs stay covered.

use rand::Rng;
use rand_chacha::ChaCha8Rng;

const VARS: [&str; 5] = ["x", "y", "z", "block_size_x", "tile"];
const FUNCS: [&str; 3] = ["min", "max", "abs"];
const BIN_OPS: [&str; 7] = ["+", "-", "*", "/", "//", "%", "**"];
const CMP_OPS: [&str; 6] = ["<", "<=", ">", ">=", "==", "!="];

fn atom(rng: &mut ChaCha8Rng, out: &mut String) {
    match rng.gen_range(0u32..10) {
        0..=3 => out.push_str(VARS[rng.gen_range(0..VARS.len())]),
        4..=6 => out.push_str(&rng.gen_range(-3i64..100).to_string()),
        7 => {
            // Floats, including ones with an exponent.
            let v = rng.gen_range(-8i64..32) as f64 / 4.0;
            out.push_str(&format!("{v:?}"));
        }
        8 => out.push_str(if rng.gen_bool(0.5) { "True" } else { "False" }),
        _ => {
            let s = ["'half'", "'single'", "''"][rng.gen_range(0usize..3)];
            out.push_str(s);
        }
    }
}

fn expr(rng: &mut ChaCha8Rng, out: &mut String, depth: usize) {
    if depth == 0 {
        atom(rng, out);
        return;
    }
    match rng.gen_range(0u32..12) {
        0..=2 => atom(rng, out),
        // Binary arithmetic (division by zero and `**` towers included).
        3..=4 => {
            expr(rng, out, depth - 1);
            out.push(' ');
            out.push_str(BIN_OPS[rng.gen_range(0..BIN_OPS.len())]);
            out.push(' ');
            expr(rng, out, depth - 1);
        }
        // Comparison, possibly chained.
        5..=6 => {
            expr(rng, out, depth - 1);
            for _ in 0..rng.gen_range(1usize..3) {
                out.push(' ');
                out.push_str(CMP_OPS[rng.gen_range(0..CMP_OPS.len())]);
                out.push(' ');
                expr(rng, out, depth - 1);
            }
        }
        // Boolean connectives.
        7 => {
            expr(rng, out, depth - 1);
            let word = if rng.gen_bool(0.5) { " and " } else { " or " };
            out.push_str(word);
            expr(rng, out, depth - 1);
        }
        8 => {
            out.push_str("not ");
            expr(rng, out, depth - 1);
        }
        // Membership.
        9 => {
            expr(rng, out, depth - 1);
            out.push_str(if rng.gen_bool(0.3) {
                " not in ["
            } else {
                " in ["
            });
            for i in 0..rng.gen_range(0usize..4) {
                if i > 0 {
                    out.push_str(", ");
                }
                expr(rng, out, depth - 1);
            }
            out.push(']');
        }
        // Built-in call.
        10 => {
            out.push_str(FUNCS[rng.gen_range(0..FUNCS.len())]);
            out.push('(');
            for i in 0..rng.gen_range(1usize..4) {
                if i > 0 {
                    out.push_str(", ");
                }
                expr(rng, out, depth - 1);
            }
            out.push(')');
        }
        // Parenthesized / negated.
        _ => {
            if rng.gen_bool(0.3) {
                out.push('-');
            }
            out.push('(');
            expr(rng, out, depth - 1);
            out.push(')');
        }
    }
}

/// Generate one random expression string.
pub fn generate(rng: &mut ChaCha8Rng) -> String {
    let mut out = String::new();
    let depth = rng.gen_range(1usize..5);
    expr(rng, &mut out, depth);
    out
}

/// Structurally mutate an expression string; falls back to byte-level
/// damage a fraction of the time so malformed inputs stay covered.
pub fn mutate_expr(rng: &mut ChaCha8Rng, source: &str) -> String {
    let s = source.to_string();
    match rng.gen_range(0u32..8) {
        0 => format!("not ({s})"),
        1 => {
            let mut extra = String::new();
            expr(rng, &mut extra, 2);
            let word = if rng.gen_bool(0.5) { " and " } else { " or " };
            format!("{s}{word}{extra}")
        }
        2 => format!("({s})"),
        // Swap one operator-ish token.
        3 => {
            let ops = [
                "+", "-", "*", "/", "%", "<", ">", "==", "!=", "**", "//", "<=", ">=",
            ];
            let from = ops[rng.gen_range(0..ops.len())];
            let to = ops[rng.gen_range(0..ops.len())];
            s.replacen(from, to, 1)
        }
        // Duplicate a random slice (possibly splitting a UTF-8 char — the
        // result is lossily re-decoded by the target, which is the point).
        4 => {
            let bytes = s.as_bytes();
            if bytes.is_empty() {
                return generate(rng);
            }
            let start = rng.gen_range(0..bytes.len());
            let len = rng.gen_range(1..=(bytes.len() - start).min(24));
            let mut v = bytes.to_vec();
            let chunk: Vec<u8> = v[start..start + len].to_vec();
            let at = rng.gen_range(0..=v.len());
            v.splice(at..at, chunk);
            String::from_utf8_lossy(&v).into_owned()
        }
        // Byte-level damage.
        5 => {
            let mut v = s.into_bytes();
            let count = rng.gen_range(1usize..4);
            crate::mutate::mutate(rng, &mut v, count);
            String::from_utf8_lossy(&v).into_owned()
        }
        // Inject a hostile token.
        6 => {
            let hostile = [
                "1/0", "0.0", "''", "9**9**9", "1e308", "-(-x)", "min()", "(", ")", "not",
            ];
            let at = rng.gen_range(0..=s.len());
            let at = (0..=at).rev().find(|&i| s.is_char_boundary(i)).unwrap_or(0);
            let token = hostile[rng.gen_range(0..hostile.len())];
            format!("{} {} {}", &s[..at], token, &s[at..])
        }
        _ => generate(rng),
    }
}

// ---------------------------------------------------------------------------
// Target 3: the expression pipeline
// ---------------------------------------------------------------------------

/// Sample a value for one variable: mostly small ints (the interesting
/// arithmetic paths), with occasional floats, bools, zeros and strings to
/// provoke type and division errors.
fn sample_value(rng: &mut ChaCha8Rng) -> at_csp::Value {
    use at_csp::Value;
    match rng.gen_range(0u32..12) {
        0..=6 => Value::Int(rng.gen_range(-3i64..9)),
        7 => Value::Int(0),
        8 => Value::Float(rng.gen_range(-4i64..16) as f64 / 4.0),
        9 => Value::Bool(rng.gen_bool(0.5)),
        10 => Value::str("half"),
        _ => Value::Float(0.0),
    }
}

fn verdict(result: &at_expr::ExprResult<at_csp::Value>) -> bool {
    match result {
        Ok(v) => v.truthy(),
        Err(_) => false,
    }
}

/// Target 3: lexer → parser → fold → compile → VM on arbitrary strings.
/// See the crate docs for the oracle.
pub fn pipeline_target(input: &[u8]) -> Result<(), String> {
    use at_expr::{compile_auto, fold, parse, parse_restriction, parse_restriction_generic};
    use rand::SeedableRng;
    use rustc_hash::FxHashMap;

    let source = String::from_utf8_lossy(input);
    let Ok(expr) = parse(&source) else {
        // A clean parse error is a pass; panics are caught by the harness.
        return Ok(());
    };

    // Display round-trip: printing and reparsing must reproduce the AST.
    let printed = expr.to_string();
    match parse(&printed) {
        Ok(reparsed) if reparsed == expr => {}
        Ok(_) => {
            return Err(format!(
                "display round-trip changed the AST: {source:?} printed as {printed:?}"
            ));
        }
        Err(e) => {
            return Err(format!(
                "display output failed to reparse ({e}): {source:?} printed as {printed:?}"
            ));
        }
    }

    let folded = fold(expr.clone());
    let vars = expr.variables();
    let compiled = compile_auto(&folded).ok();
    let optimized = parse_restriction(&source).ok();
    let generic = parse_restriction_generic(&source).ok();

    let mut rng = ChaCha8Rng::seed_from_u64(crate::harness::fnv1a(input) ^ 0x45585052);
    for _ in 0..6 {
        let env: FxHashMap<String, at_csp::Value> = vars
            .iter()
            .map(|name| (name.clone(), sample_value(&mut rng)))
            .collect();

        let reference = expr.evaluate(&env);

        // Fold differential: same truthiness on Ok, an error exactly when
        // the original errors.
        let after_fold = folded.evaluate(&env);
        match (&reference, &after_fold) {
            (Ok(a), Ok(b)) => {
                if a.truthy() != b.truthy() {
                    return Err(format!(
                        "fold changed the verdict of {source:?} under {env:?}: \
                         {a:?} vs {b:?}"
                    ));
                }
            }
            (Err(_), Err(_)) => {}
            _ => {
                return Err(format!(
                    "fold changed the error behaviour of {source:?} under {env:?}: \
                     {reference:?} vs {after_fold:?}"
                ));
            }
        }

        // Compile differential: the VM evaluates the folded AST, so it must
        // agree with the folded AST's interpretation exactly (modulo Ok
        // truthiness).
        if let Some((program, scope)) = &compiled {
            let values: Vec<at_csp::Value> = scope.iter().map(|name| env[name].clone()).collect();
            let vm = program.eval(&values);
            match (&after_fold, &vm) {
                (Ok(a), Ok(b)) => {
                    if a.truthy() != b.truthy() {
                        return Err(format!(
                            "VM verdict diverged from the interpreter on {source:?} \
                             under {env:?}: {a:?} vs {b:?}"
                        ));
                    }
                }
                (Err(_), Err(_)) => {}
                _ => {
                    return Err(format!(
                        "VM error behaviour diverged on {source:?} under {env:?}: \
                         interpreter {after_fold:?} vs VM {vm:?}"
                    ));
                }
            }
        }

        // Restriction lowerings, under the documented error→reject
        // convention. Either lowering may cleanly refuse an expression
        // (Unsupported shapes); when it succeeds it must agree with the
        // reference interpreter.
        let expected = verdict(&reference);
        for (name, parsed) in [("parse_restriction", &optimized), ("generic", &generic)] {
            let Some(parsed) = parsed else { continue };
            let got = if parsed.always_false {
                false
            } else {
                parsed.constraints.iter().all(|c| {
                    let values: Vec<at_csp::Value> =
                        c.scope.iter().map(|n| env[n].clone()).collect();
                    c.constraint.evaluate(&values)
                })
            };
            if got != expected {
                return Err(format!(
                    "{name} verdict diverged on {source:?} under {env:?}: \
                     lowering {got} vs reference {expected}"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pipeline_target_accepts_generated_inputs() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..200 {
            let source = generate(&mut rng);
            pipeline_target(source.as_bytes()).unwrap();
        }
    }

    #[test]
    fn pipeline_target_accepts_garbage() {
        pipeline_target(b"").unwrap();
        pipeline_target(&[0xff, 0xfe, 0x00, 0x41]).unwrap();
        pipeline_target(b"1 +").unwrap();
    }

    #[test]
    fn generated_expressions_mostly_parse() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut parsed = 0;
        for _ in 0..200 {
            if at_expr::parse(&generate(&mut rng)).is_ok() {
                parsed += 1;
            }
        }
        // The generator is grammar-aware but not grammar-exact (negative
        // literals in `**` bases etc.); most output must still parse or
        // the fuzzer would only exercise the lexer's error paths.
        assert!(parsed > 120, "only {parsed}/200 generated inputs parsed");
    }

    #[test]
    fn generation_is_deterministic() {
        let a: Vec<String> = {
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            (0..10).map(|_| generate(&mut rng)).collect()
        };
        let b: Vec<String> = {
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            (0..10).map(|_| generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
