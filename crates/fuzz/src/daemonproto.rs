//! Fuzz target `daemon_proto`: arbitrary bytes through the `ATSD` frame
//! decoder, with a buffer-vs-stream framing differential.
//!
//! The daemon's frame decoder is the workspace's third untrusted-byte
//! surface: any local process can connect to the socket and send
//! anything. The oracle (see [`proto_target`]):
//!
//! * **No panic, no hang** — every input yields a decoded frame or a
//!   typed [`at_daemon::ProtoError`]; nothing else.
//! * **Canonical encoding** — when a prefix decodes, re-encoding the
//!   frame reproduces that prefix byte-for-byte, and decoding the
//!   re-encoding yields the same frame again (the protocol admits exactly
//!   one wire form per frame).
//! * **Stream differential** — walking the buffer with
//!   [`Frame::decode`] and reading it through [`read_frame`] (the
//!   blocking path the daemon actually serves with) must agree frame for
//!   frame, error for error, with `Ok(None)` exactly at a clean
//!   end-of-stream frame boundary.

use std::io::Cursor;

use at_daemon::proto::{read_frame, Frame, ServeKind, WireError};
use at_store::SpecFingerprint;

/// The fuzz oracle for the `ATSD` wire format.
pub fn proto_target(input: &[u8]) -> Result<(), String> {
    // 1. Prefix decode: canonical encoding + idempotence.
    if let Ok((frame, consumed)) = Frame::decode(input) {
        let encoded = frame.encode();
        if encoded != input[..consumed] {
            return Err(format!(
                "non-canonical encoding: decode consumed {consumed} bytes but \
                 re-encoding {frame:?} produced {} different bytes",
                encoded.len()
            ));
        }
        match Frame::decode(&encoded) {
            Ok((again, n)) if again == frame && n == encoded.len() => {}
            Ok((again, n)) => {
                return Err(format!(
                    "decode not idempotent: {frame:?} re-decoded as {again:?} ({n} bytes)"
                ))
            }
            Err(e) => return Err(format!("re-encoded frame rejected: {e}")),
        }
    }

    // 2. Stream differential: read_frame over the same bytes must mirror
    // iterated Frame::decode — same frames, same terminal error, and a
    // clean None exactly at an end-of-buffer frame boundary.
    let mut cursor = Cursor::new(input);
    let mut offset = 0usize;
    let mut frames = 0usize;
    loop {
        // Defense in depth against a decoder that stops consuming: the
        // buffer holds at most len/12 frames.
        if frames > input.len() / 12 + 1 {
            return Err("stream yielded more frames than the buffer can hold".to_string());
        }
        if offset == input.len() {
            match read_frame(&mut cursor) {
                Ok(None) => return Ok(()),
                other => {
                    return Err(format!(
                        "buffer exhausted at a frame boundary but read_frame gave {other:?}"
                    ))
                }
            }
        }
        match Frame::decode(&input[offset..]) {
            Ok((expected, consumed)) => match read_frame(&mut cursor) {
                Ok(Some(got)) if got == expected => {
                    offset += consumed;
                    frames += 1;
                }
                other => {
                    return Err(format!(
                        "at offset {offset}: decode gave {expected:?} but read_frame gave {other:?}"
                    ))
                }
            },
            Err(expected) => {
                return match read_frame(&mut cursor) {
                    Err(WireError::Proto(got)) if got == expected => Ok(()),
                    other => Err(format!(
                        "at offset {offset}: decode rejected with {expected:?} but \
                         read_frame gave {other:?}"
                    )),
                };
            }
        }
    }
}

/// Deterministic valid wire images: one frame of every type (every
/// payload shape the decoder knows) plus a multi-frame stream. These are
/// the mutation seeds and the checked-in corpus base.
pub fn seed_frames() -> Vec<Vec<u8>> {
    let fp = SpecFingerprint::from_u128(0x0123_4567_89ab_cdef_fedc_ba98_7654_3210);
    let frames = [
        Frame::Ping,
        Frame::Get { fingerprint: fp },
        Frame::Resolve {
            spec_json: "{\"name\":\"demo\",\"parameters\":[{\"name\":\"x\",\"values\":[1,2]}],\
                        \"restrictions\":[\"x > 0\"]}"
                .to_string(),
            method: "optimized".to_string(),
            prune: true,
        },
        Frame::Status,
        Frame::Shutdown,
        Frame::Ready {
            fingerprint: fp,
            path: "/tmp/atss-cache/entry.atss".to_string(),
            file_bytes: 4096,
            rows: 128,
            served: ServeKind::Warm,
            build_us: 0,
        },
        Frame::Building {
            fingerprint: fp,
            elapsed_ms: 250,
            waiters: 3,
        },
        Frame::NotFound { fingerprint: fp },
        Frame::ErrorReply {
            code: 400,
            message: "malformed frame".to_string(),
        },
        Frame::StatusReply {
            json: "{\"schema\":\"atss.daemon-status.v1\",\"pid\":1}".to_string(),
        },
        Frame::Bye,
        Frame::Pong {
            pid: 4242,
            uptime_ms: 60_000,
        },
    ];
    let mut seeds: Vec<Vec<u8>> = frames.iter().map(Frame::encode).collect();
    let stream: Vec<u8> = frames.iter().flat_map(Frame::encode).collect();
    seeds.push(stream);
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_seed_passes_the_oracle() {
        for (i, seed) in seed_frames().iter().enumerate() {
            proto_target(seed).unwrap_or_else(|e| panic!("seed {i}: {e}"));
        }
    }

    #[test]
    fn garbage_and_truncations_pass_the_oracle() {
        proto_target(b"").unwrap();
        proto_target(b"ATSD").unwrap();
        proto_target(&[0xff; 64]).unwrap();
        for seed in seed_frames() {
            for cut in 0..seed.len().min(40) {
                proto_target(&seed[..cut]).unwrap();
            }
        }
    }

    /// Regenerates the checked-in seed corpus (deterministic bytes; see
    /// [`seed_frames`]). Run manually after a protocol revision:
    /// `cargo test -p at_fuzz --lib dump_seed_corpus -- --ignored`.
    #[test]
    #[ignore = "writes the checked-in corpus; run manually after protocol changes"]
    fn dump_seed_corpus() {
        let names = [
            "ping",
            "get",
            "resolve",
            "status",
            "shutdown",
            "ready",
            "building",
            "notfound",
            "error",
            "statusreply",
            "bye",
            "pong",
            "stream",
        ];
        let seeds = seed_frames();
        assert_eq!(seeds.len(), names.len());
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../tests/fuzz_corpus/daemon_proto");
        std::fs::create_dir_all(&dir).unwrap();
        for (name, bytes) in names.iter().zip(&seeds) {
            std::fs::write(dir.join(format!("seed-{name}.bin")), bytes).unwrap();
        }
    }

    #[test]
    fn the_oracle_would_catch_a_decoder_desync() {
        // A frame followed by garbage must report the garbage's error,
        // not silently succeed — exercised through the public target.
        let mut bytes = Frame::Ping.encode();
        bytes.extend_from_slice(b"GARBAGE_____");
        proto_target(&bytes).unwrap();
    }
}
