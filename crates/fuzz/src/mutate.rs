//! The seeded mutation engine: generic byte-level mutators plus
//! section-aware `ATSS` mutations derived from the documented v2 layout.
//!
//! All mutation is driven by a caller-supplied [`ChaCha8Rng`], so a fuzzing
//! run is fully determined by `(seed, iteration count)` and any finding is
//! reproducible from the command line it was found with.

use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Upper bound on generated input length. Keeps single iterations fast and
/// minimized crashes small; real store files and restrictions of interest
/// are far below it.
pub const MAX_INPUT_LEN: usize = 1 << 16;

/// Apply one random generic byte-level mutation in place.
pub fn mutate_once(rng: &mut ChaCha8Rng, data: &mut Vec<u8>) {
    if data.is_empty() {
        data.extend((0..rng.gen_range(1usize..16)).map(|_| rng.gen_range(0u8..=255)));
        return;
    }
    match rng.gen_range(0u32..8) {
        // Bit flip.
        0 => {
            let at = rng.gen_range(0..data.len());
            data[at] ^= 1 << rng.gen_range(0u32..8);
        }
        // Byte overwrite.
        1 => {
            let at = rng.gen_range(0..data.len());
            data[at] = rng.gen_range(0u8..=255);
        }
        // Overwrite with an interesting boundary value.
        2 => {
            const INTERESTING: [u8; 8] = [0x00, 0x01, 0x7f, 0x80, 0xff, 0x20, 0x41, 0x04];
            let at = rng.gen_range(0..data.len());
            data[at] = INTERESTING[rng.gen_range(0..INTERESTING.len())];
        }
        // Truncate.
        3 => {
            let keep = rng.gen_range(0..data.len());
            data.truncate(keep);
        }
        // Delete a range.
        4 => {
            let start = rng.gen_range(0..data.len());
            let len = rng.gen_range(1..=(data.len() - start).min(64));
            data.drain(start..start + len);
        }
        // Insert random bytes.
        5 => {
            let at = rng.gen_range(0..=data.len());
            let insert: Vec<u8> = (0..rng.gen_range(1usize..16))
                .map(|_| rng.gen_range(0u8..=255))
                .collect();
            data.splice(at..at, insert);
        }
        // Duplicate (self-splice) a range to another position.
        6 => {
            let start = rng.gen_range(0..data.len());
            let len = rng.gen_range(1..=(data.len() - start).min(64));
            let chunk: Vec<u8> = data[start..start + len].to_vec();
            let at = rng.gen_range(0..=data.len());
            data.splice(at..at, chunk);
        }
        // Overwrite a little-endian integer-sized window with a boundary
        // integer — lengths, counts and offsets in binary formats.
        _ => {
            const VALUES: [u64; 8] = [
                0,
                1,
                3,
                u32::MAX as u64,
                u32::MAX as u64 + 1,
                u64::MAX,
                u64::MAX / 8,
                0x4141_4141_4141_4141,
            ];
            let width = *[1usize, 2, 4, 8]
                .get(rng.gen_range(0usize..4))
                .expect("fixed list");
            if data.len() >= width {
                let at = rng.gen_range(0..=data.len() - width);
                let value = VALUES[rng.gen_range(0..VALUES.len())];
                data[at..at + width].copy_from_slice(&value.to_le_bytes()[..width]);
            }
        }
    }
    data.truncate(MAX_INPUT_LEN);
}

/// Apply `count` generic mutations.
pub fn mutate(rng: &mut ChaCha8Rng, data: &mut Vec<u8>, count: usize) {
    for _ in 0..count {
        mutate_once(rng, data);
    }
}

/// Splice a random chunk of `other` into `data` at a random position.
pub fn splice(rng: &mut ChaCha8Rng, data: &mut Vec<u8>, other: &[u8]) {
    if other.is_empty() {
        return;
    }
    let start = rng.gen_range(0..other.len());
    let len = rng.gen_range(1..=(other.len() - start).min(256));
    let at = rng.gen_range(0..=data.len());
    if rng.gen_bool(0.5) {
        // Insert.
        data.splice(at..at, other[start..start + len].iter().copied());
    } else {
        // Overwrite.
        let end = (at + len).min(data.len());
        let n = end - at;
        data[at..end].copy_from_slice(&other[start..start + n]);
    }
    data.truncate(MAX_INPUT_LEN);
}

// ---------------------------------------------------------------------------
// ATSS section awareness
// ---------------------------------------------------------------------------

/// A named byte region of an `ATSS` file.
#[derive(Debug, Clone)]
pub struct Section {
    /// Human-readable region name (for crash labelling).
    pub name: &'static str,
    /// Byte range within the file.
    pub range: std::ops::Range<usize>,
}

/// Map the section layout of a well-formed v2 `ATSS` file, mirroring the
/// documented format: magic+version, CRC-framed `HDR\0` and `PAR\0`
/// sections, `ARN\0` tag + alignment pad, the verbatim arena, an optional
/// CRC-framed `IDX\0` section, and the 16-byte trailer. Returns `None` for
/// files this simple walker cannot account for — the fuzzer then falls
/// back to generic mutations.
pub fn map_sections(bytes: &[u8]) -> Option<Vec<Section>> {
    const TRAILER_LEN: usize = 16;
    let mut sections = Vec::new();
    if bytes.len() < 8 + TRAILER_LEN || &bytes[0..4] != b"ATSS" {
        return None;
    }
    sections.push(Section {
        name: "magic+version",
        range: 0..8,
    });
    let trailer_at = bytes.len() - TRAILER_LEN;

    // The two framed metadata sections: tag, u64 payload length, payload,
    // u32 CRC.
    let mut pos = 8usize;
    for name in ["header", "params"] {
        let len_at = pos.checked_add(4)?;
        let payload_at = len_at.checked_add(8)?;
        if payload_at > trailer_at {
            return None;
        }
        let len = u64::from_le_bytes(bytes.get(len_at..payload_at)?.try_into().ok()?) as usize;
        let end = payload_at.checked_add(len)?.checked_add(4)?;
        if end > trailer_at {
            return None;
        }
        sections.push(Section {
            name,
            range: pos..end,
        });
        pos = end;
    }

    // Arena tag + pad (v2), then the arena itself up to either the IDX tag
    // or the trailer.
    let version = u32::from_le_bytes(bytes[4..8].try_into().ok()?);
    let arena_at = if version >= 2 {
        let pad = u32::from_le_bytes(bytes.get(pos + 4..pos + 8)?.try_into().ok()?) as usize;
        if pad > 3 {
            return None;
        }
        pos.checked_add(8 + pad)?
    } else {
        pos.checked_add(4)?
    };
    if arena_at > trailer_at {
        return None;
    }
    sections.push(Section {
        name: "arena-frame",
        range: pos..arena_at,
    });

    // Arena length from the trailer row count and the header's param
    // count (name string length + name + u32 count).
    let hdr_payload_at = 8 + 12;
    let name_len = u32::from_le_bytes(
        bytes
            .get(hdr_payload_at..hdr_payload_at + 4)?
            .try_into()
            .ok()?,
    ) as usize;
    let nparams_at = hdr_payload_at.checked_add(4)?.checked_add(name_len)?;
    let num_params =
        u32::from_le_bytes(bytes.get(nparams_at..nparams_at + 4)?.try_into().ok()?) as usize;
    let num_rows = u64::from_le_bytes(
        bytes
            .get(trailer_at + 4..trailer_at + 12)?
            .try_into()
            .ok()?,
    ) as usize;
    let arena_len = num_rows.checked_mul(num_params)?.checked_mul(4)?;
    let after_arena = arena_at.checked_add(arena_len)?;
    if after_arena > trailer_at {
        return None;
    }
    sections.push(Section {
        name: "arena",
        range: arena_at..after_arena,
    });
    if after_arena < trailer_at {
        sections.push(Section {
            name: "index",
            range: after_arena..trailer_at,
        });
    }
    sections.push(Section {
        name: "trailer",
        range: trailer_at..bytes.len(),
    });
    Some(sections)
}

/// Apply one `ATSS`-aware mutation: pick a section and damage it in a way
/// that exercises that section's validation (byte flips inside the region,
/// CRC-field damage, boundary truncation, trailer row-count tweaks,
/// alignment-pad tweaks). Falls back to a generic mutation when the input
/// has no recognizable layout.
pub fn mutate_atss(rng: &mut ChaCha8Rng, data: &mut Vec<u8>) {
    let Some(sections) = map_sections(data) else {
        mutate_once(rng, data);
        return;
    };
    let section = &sections[rng.gen_range(0..sections.len())];
    let range = section.range.clone();
    if range.is_empty() {
        mutate_once(rng, data);
        return;
    }
    match rng.gen_range(0u32..6) {
        // Flip a byte inside the section.
        0 | 1 => {
            let at = rng.gen_range(range.start..range.end);
            data[at] ^= 1 << rng.gen_range(0u32..8);
        }
        // Truncate at (or just inside) the section boundary.
        2 => {
            let back = rng.gen_range(0..=range.len().min(8));
            data.truncate(range.end - back);
        }
        // Trailer row-count tweak: off-by-one and hostile extremes.
        3 => {
            let trailer = sections.last().expect("trailer present");
            if trailer.name == "trailer" && trailer.range.len() == 16 {
                let rows_at = trailer.range.start + 4;
                let rows =
                    u64::from_le_bytes(data[rows_at..rows_at + 8].try_into().expect("8 bytes"));
                let new = match rng.gen_range(0u32..5) {
                    0 => rows.wrapping_add(1),
                    1 => rows.wrapping_sub(1),
                    2 => 0,
                    3 => u64::MAX / 8,
                    _ => u64::MAX,
                };
                data[rows_at..rows_at + 8].copy_from_slice(&new.to_le_bytes());
            }
        }
        // Zero or max the last 4 bytes of the section — where the frame
        // CRCs and the arena CRC live.
        4 => {
            let end = range.end;
            if end >= 4 {
                let fill = if rng.gen_bool(0.5) { 0x00 } else { 0xff };
                for b in &mut data[end - 4..end] {
                    *b ^= fill;
                }
            }
        }
        // Duplicate the whole section in place (framing confusion).
        _ => {
            let chunk: Vec<u8> = data[range.clone()].to_vec();
            data.splice(range.end..range.end, chunk);
        }
    }
    data.truncate(MAX_INPUT_LEN);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn mutations_are_deterministic_per_seed() {
        let base = b"The quick brown fox jumps over the lazy dog".to_vec();
        let mut a = base.clone();
        let mut b = base.clone();
        mutate(&mut ChaCha8Rng::seed_from_u64(7), &mut a, 10);
        mutate(&mut ChaCha8Rng::seed_from_u64(7), &mut b, 10);
        assert_eq!(a, b);
        let mut c = base;
        mutate(&mut ChaCha8Rng::seed_from_u64(8), &mut c, 10);
        assert_ne!(a, c, "different seeds should diverge");
    }

    #[test]
    fn maps_a_real_store_file() {
        let params = vec![at_searchspace::TunableParameter::ints("x", [1, 2, 4])];
        let configs = vec![vec![at_csp::Value::Int(1)], vec![at_csp::Value::Int(4)]];
        let space = at_searchspace::SearchSpace::from_configs("map", params, configs).unwrap();
        let mut bytes = Vec::new();
        at_store::write_space(&space, &mut bytes).unwrap();
        let sections = map_sections(&bytes).expect("valid file maps");
        let names: Vec<&str> = sections.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            [
                "magic+version",
                "header",
                "params",
                "arena-frame",
                "arena",
                "index",
                "trailer"
            ]
        );
        // The map must tile the file exactly.
        let mut pos = 0;
        for s in &sections {
            assert_eq!(s.range.start, pos, "gap before {}", s.name);
            pos = s.range.end;
        }
        assert_eq!(pos, bytes.len());
    }

    #[test]
    fn garbage_has_no_section_map() {
        assert!(map_sections(b"not a store file at all").is_none());
        assert!(map_sections(b"").is_none());
    }
}
