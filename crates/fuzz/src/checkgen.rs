//! Target 4: the static analyzer (`at_check`) against brute-force ground
//! truth.
//!
//! The fuzz input is a restriction string (same input space as
//! `expr_pipeline`); the parameter domains are derived deterministically
//! from the input's FNV hash and kept small enough that the full
//! cartesian product can be enumerated with the reference interpreter.
//! That enumeration *is* the ground truth the analyzer's claims are
//! checked against — see [`check_target`] for the oracle.

use at_csp::Value;
use at_searchspace::builder::{build_search_space_with, BuildOptions, Method};
use at_searchspace::{Restriction, SearchSpaceSpec, TunableParameter};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rustc_hash::FxHashMap;

/// The analyzer's brute-forceable universe: every generator variable gets
/// a domain, so `AT0001` only fires on genuinely unknown (mutated) names.
const DOMAIN_VARS: [&str; 5] = ["x", "y", "z", "block_size_x", "tile"];

/// Derive small, mostly-integer domains from the input hash. The product
/// stays at most 3^5 = 243, far under the analyzer's own exact-enumeration
/// cap, so the analyzer sees the same exhaustive picture the oracle does.
fn derive_domains(hash: u64) -> Vec<(String, Vec<Value>)> {
    let mut rng = ChaCha8Rng::seed_from_u64(hash ^ 0x4348_4543); // "CHEC"
    DOMAIN_VARS
        .iter()
        .map(|name| {
            let size = rng.gen_range(1usize..=3);
            let mut values: Vec<Value> = Vec::with_capacity(size);
            while values.len() < size {
                let v = match rng.gen_range(0u32..12) {
                    0..=7 => Value::Int(rng.gen_range(0i64..7)),
                    8 => Value::Int(-1),
                    9 => Value::Float(rng.gen_range(0i64..8) as f64 / 2.0),
                    10 => Value::Bool(rng.gen_bool(0.5)),
                    _ => Value::str(if rng.gen_bool(0.5) { "half" } else { "single" }),
                };
                if !values.contains(&v) {
                    values.push(v);
                }
            }
            (name.to_string(), values)
        })
        .collect()
}

fn spec_for(source: &str, domains: &[(String, Vec<Value>)]) -> SearchSpaceSpec {
    let mut spec = SearchSpaceSpec::new("fuzz");
    for (name, values) in domains {
        spec.add_param(TunableParameter::new(name.clone(), values.clone()));
    }
    spec.add_restriction(Restriction::expr(source));
    spec
}

/// Enumerate the full cartesian product and evaluate `expr` under the
/// error→reject convention. Returns `(n_sat, n_total, support)` where
/// `support[i][j]` says whether domain value `j` of parameter `i` occurs
/// in at least one satisfying assignment.
fn brute_force(
    expr: &at_expr::Expr,
    domains: &[(String, Vec<Value>)],
) -> (u64, u64, Vec<Vec<bool>>) {
    let mut support: Vec<Vec<bool>> = domains.iter().map(|(_, v)| vec![false; v.len()]).collect();
    let mut indices = vec![0usize; domains.len()];
    let (mut n_sat, mut n_total) = (0u64, 0u64);
    loop {
        let env: FxHashMap<String, Value> = domains
            .iter()
            .zip(&indices)
            .map(|((name, values), &i)| (name.clone(), values[i].clone()))
            .collect();
        n_total += 1;
        let sat = match expr.evaluate(&env) {
            Ok(v) => v.truthy(),
            Err(_) => false,
        };
        if sat {
            n_sat += 1;
            for (row, &i) in support.iter_mut().zip(&indices) {
                row[i] = true;
            }
        }
        // Odometer step.
        let mut pos = domains.len();
        loop {
            if pos == 0 {
                return (n_sat, n_total, support);
            }
            pos -= 1;
            indices[pos] += 1;
            if indices[pos] < domains[pos].1.len() {
                break;
            }
            indices[pos] = 0;
        }
    }
}

/// Target 4: restriction strings through `at_check::check_spec` plus the
/// pre-pruning construction path. Oracle, for every input:
///
/// * **No panic, no hang** in the analyzer or in rendering, for any input
///   (including non-UTF-8 garbage and parse failures).
/// * **Diagnostics are well-formed** — every span lies inside its source
///   string, and a parse failure is reported as `AT0009`.
/// * **Contradiction soundness** — a `Contradiction` verdict implies the
///   brute-forced satisfying count is exactly 0.
/// * **Tautology soundness / drop identity** — a `Tautology` verdict
///   implies every assignment satisfies the restriction, and the space
///   built *with* the restriction is code-for-code identical (same arena
///   bytes) to the space built with the restriction dropped.
/// * **Prunable soundness** — every `(parameter, value)` the analyzer
///   reports as prunable occurs in no satisfying assignment.
/// * **Pruned ≡ unpruned** — constructing with analyzer-driven domain
///   pre-pruning yields byte-identical arenas to constructing without it
///   (or both fail), for a deterministic and a search-based method.
pub fn check_target(input: &[u8]) -> Result<(), String> {
    let input = &input[..input.len().min(2048)];
    let source = String::from_utf8_lossy(input).into_owned();
    let hash = crate::harness::fnv1a(input);
    let domains = derive_domains(hash);
    let spec = spec_for(&source, &domains);

    let report = at_check::check_spec(&spec);

    // Well-formedness: rendering must not panic, spans must be in bounds.
    let _ = report.render();
    for d in &report.diagnostics {
        if let (Some(src), Some(span)) = (&d.source, d.span) {
            if span.start > span.end || span.end > src.len() {
                return Err(format!(
                    "diagnostic {} has out-of-bounds span {}..{} for source {src:?}",
                    d.code, span.start, span.end
                ));
            }
        }
    }

    let Ok(expr) = at_expr::parse(&source) else {
        // Unparseable restriction: the analyzer must say so.
        if !report
            .diagnostics
            .iter()
            .any(|d| d.code == at_check::Code::ParseFailure)
        {
            return Err(format!(
                "restriction {source:?} fails to parse but check_spec reported no AT0009"
            ));
        }
        return Ok(());
    };

    let (n_sat, n_total, support) = brute_force(&expr, &domains);

    if let Some(verdict) = &report.verdicts[0] {
        match verdict {
            at_check::Verdict::Contradiction if n_sat != 0 => {
                return Err(format!(
                    "analyzer called {source:?} a contradiction but brute force \
                     finds {n_sat}/{n_total} satisfying assignments"
                ));
            }
            at_check::Verdict::Tautology if n_sat != n_total => {
                return Err(format!(
                    "analyzer called {source:?} a tautology but brute force \
                     finds only {n_sat}/{n_total} satisfying assignments"
                ));
            }
            _ => {}
        }
    }

    for p in &report.prunable {
        let idx = domains
            .iter()
            .position(|(name, _)| *name == p.param)
            .ok_or_else(|| format!("prunable report names unknown parameter {:?}", p.param))?;
        for value in &p.values {
            let vi = domains[idx]
                .1
                .iter()
                .position(|v| v == value)
                .ok_or_else(|| {
                    format!("prunable value {value:?} is not in {}'s domain", p.param)
                })?;
            if support[idx][vi] {
                return Err(format!(
                    "analyzer claims {}={value:?} is prunable for {source:?}, but a \
                     satisfying assignment uses it",
                    p.param
                ));
            }
        }
    }

    // Tautology-drop identity, under the brute-force method (declaration-
    // order enumeration, so row order cannot differ between the variants).
    if matches!(report.verdicts[0], Some(at_check::Verdict::Tautology)) {
        let mut dropped = SearchSpaceSpec::new("fuzz");
        for (name, values) in &domains {
            dropped.add_param(TunableParameter::new(name.clone(), values.clone()));
        }
        let options = BuildOptions::default();
        match (
            build_search_space_with(&spec, Method::BruteForce, options),
            build_search_space_with(&dropped, Method::BruteForce, options),
        ) {
            (Ok((kept, _)), Ok((bare, _))) => {
                if kept.arena() != bare.arena() {
                    return Err(format!(
                        "dropping tautology {source:?} changed the constructed space"
                    ));
                }
            }
            // The lowering may cleanly refuse shapes the analyzer can still
            // reason about (e.g. non-constant membership sets); that is not
            // an analyzer bug. An unconstrained spec must always build.
            (Err(_), Ok(_)) => {}
            (_, bare) => {
                return Err(format!(
                    "constructing the restriction-free spec failed: {:?}",
                    bare.err()
                ));
            }
        }
    }

    // Pre-pruning identity: byte-identical arenas with and without
    // analyzer-driven domain pruning, or the same failure.
    for method in [Method::BruteForce, Method::Optimized] {
        let plain = build_search_space_with(&spec, method, BuildOptions::default());
        let pruned = build_search_space_with(
            &spec,
            method,
            BuildOptions {
                prune: true,
                ..Default::default()
            },
        );
        match (plain, pruned) {
            (Ok((plain, _)), Ok((pruned, _))) => {
                if plain.arena() != pruned.arena() {
                    return Err(format!(
                        "domain pre-pruning changed the {method:?} space for {source:?}"
                    ));
                }
            }
            (Err(_), Err(_)) => {}
            (plain, pruned) => {
                return Err(format!(
                    "pre-pruning changed constructibility for {source:?} under \
                     {method:?}: plain={:?} pruned={:?}",
                    plain.as_ref().err(),
                    pruned.as_ref().err()
                ));
            }
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_target_accepts_generated_inputs() {
        let mut rng = ChaCha8Rng::seed_from_u64(4242);
        for _ in 0..60 {
            let source = crate::exprgen::generate(&mut rng);
            check_target(source.as_bytes()).unwrap();
        }
    }

    #[test]
    fn check_target_accepts_garbage_and_parse_failures() {
        check_target(b"").unwrap();
        check_target(&[0xff, 0xfe, 0x00, 0x41]).unwrap();
        check_target(b"1 +").unwrap();
        check_target(b"x % y == 0 or y == 0").unwrap();
    }

    #[test]
    fn derived_domains_are_deterministic_and_small() {
        let a = derive_domains(7);
        let b = derive_domains(7);
        assert_eq!(a.len(), DOMAIN_VARS.len());
        for ((name_a, vals_a), (name_b, vals_b)) in a.iter().zip(&b) {
            assert_eq!(name_a, name_b);
            assert_eq!(vals_a, vals_b);
            assert!((1..=3).contains(&vals_a.len()));
        }
    }

    #[test]
    fn brute_force_counts_and_support_are_exact() {
        let domains = vec![
            ("x".to_string(), vec![Value::Int(1), Value::Int(2)]),
            ("y".to_string(), vec![Value::Int(0), Value::Int(3)]),
        ];
        let expr = at_expr::parse("x < y").unwrap();
        let (n_sat, n_total, support) = brute_force(&expr, &domains);
        assert_eq!((n_sat, n_total), (2, 4)); // (1,3) and (2,3)
        assert_eq!(support[0], vec![true, true]);
        assert_eq!(support[1], vec![false, true]);
    }
}
