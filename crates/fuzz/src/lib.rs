//! # at-fuzz — in-tree fuzzing and differential oracles for the untrusted-byte parsers
//!
//! The workspace has exactly two surfaces that parse bytes we do not
//! control: the `ATSS` store reader (files arrive from cache directories,
//! and soon from daemons and remote stores) and the constraint expression
//! pipeline (restriction strings arrive from user specs and foreign spec
//! importers). This crate fuzzes both without any external tooling — the
//! build environment has no registry, so no cargo-fuzz/libFuzzer — using a
//! seeded ChaCha8 mutation engine, format-aware input generators, and
//! *differential* oracles that compare independent implementations of the
//! same contract against each other.
//!
//! Run it as
//!
//! ```text
//! cargo run --release -p at_fuzz -- <target> --iters N --seed S
//! ```
//!
//! where `<target>` is one of the three below (or `all`). Any failing
//! input is shrunk by greedy chunk removal and written to
//! `tests/fuzz_corpus/<target>/crash-<hash>.bin`; the whole corpus is
//! replayed by `cargo test` (see `tests/fuzz_corpus.rs`), so every crash
//! found once is a regression test forever.
//!
//! ## Target `atss_reader` — arbitrary bytes, strict reader
//!
//! Feeds mutated store files and raw garbage through
//! [`at_store::read_space_from_bytes`] (the strict, everything-checksummed
//! path). Oracle:
//!
//! * **No panic, no hang** — every outcome is a clean `Ok` or a typed
//!   [`at_store::StoreError`]; a slow iteration beyond the harness bound
//!   counts as a failure.
//! * **Peek differential** — [`at_store::peek_info`] (the cheap O(1)-seek
//!   metadata path used by `cache verify` listings) must never *reject* a
//!   file the strict reader accepts, and when both accept they must agree
//!   on every metadata field. Peek may accept damage the strict reader
//!   rejects (it skips dictionary contents and content checksums), but
//!   the same truncation or framing damage must classify the same way.
//!
//! ## Target `atss_load_differential` — mutated valid files, load matrix
//!
//! Writes a lightly mutated *valid* file to disk and loads it through
//! [`at_store::StoreReader::load`] under every
//! `LoadOptions { mode × index }` combination (copy/mmap ×
//! rebuild/trust/verify). Oracle:
//!
//! * All successful loads are **code-for-code identical** (same name,
//!   params, row count, arena bytes) to each other and — when the strict
//!   reader accepts the file — to the strict read.
//! * Every successful load answers membership queries **consistently**:
//!   any id `index_of_codes` returns points back at exactly the queried
//!   codes, and when the index is known good (policy `Rebuild`, or any
//!   policy on a file the strict reader fully validated) every present
//!   row is found. A damaged persisted index may surface as a *reported*
//!   fallback ([`at_store::LoadReport::index_fallback`]), a clean error,
//!   or a miss — never a misattribution.
//!
//! ## Target `expr_pipeline` — restriction strings, fold/compile differential
//!
//! Feeds grammar-generated, grammar-mutated and raw-garbage strings
//! through lexer → parser → fold → compile → VM. Oracle, for every input
//! that parses:
//!
//! * **No panic, no hang** at any stage, for any input.
//! * **Display round-trip** — `parse(expr.to_string())` reproduces the
//!   identical AST.
//! * **Fold differential** — under sampled assignments (including
//!   error-provoking values), the folded AST's `evaluate` agrees with the
//!   unfolded AST's: same truthiness on `Ok`, an error exactly when the
//!   original errors (the restriction convention rejects erroring
//!   configurations, so folding may not erase or invent errors).
//! * **Compile differential** — when the folded AST compiles, the VM's
//!   verdict under the error→reject convention equals the reference
//!   interpreter's; likewise for the full optimizing and generic
//!   restriction lowerings when they succeed.
//!
//! The corpus policy, smoke-vs-long run targets and reproduction recipes
//! are documented in the README's "Fuzzing & corpus policy" section.

#![warn(missing_docs)]

pub mod atss;
pub mod exprgen;
pub mod harness;
pub mod mutate;

pub use harness::{
    fnv1a, fuzz_target, minimize, replay_corpus, run_target, silence_panics, FuzzConfig,
    FuzzReport, Target, TargetFailure,
};
