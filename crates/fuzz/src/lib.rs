//! # at-fuzz — in-tree fuzzing and differential oracles for the untrusted-byte parsers
//!
//! The workspace has exactly three surfaces that parse bytes we do not
//! control: the `ATSS` store reader (files arrive from cache
//! directories), the constraint expression pipeline (restriction strings
//! arrive from user specs and foreign spec importers), and the `ATSD`
//! daemon frame decoder (any local process can connect to the space
//! server's socket). This crate fuzzes all of them without any external
//! tooling — the
//! build environment has no registry, so no cargo-fuzz/libFuzzer — using a
//! seeded ChaCha8 mutation engine, format-aware input generators, and
//! *differential* oracles that compare independent implementations of the
//! same contract against each other. A fourth target points the same
//! restriction strings at the `at_check` static analyzer and holds its
//! verdicts to brute-force ground truth.
//!
//! Run it as
//!
//! ```text
//! cargo run --release -p at_fuzz -- <target> --iters N --seed S
//! ```
//!
//! where `<target>` is one of the five below (or `all`). Any failing
//! input is shrunk by greedy chunk removal and written to
//! `tests/fuzz_corpus/<target>/crash-<hash>.bin`; the whole corpus is
//! replayed by `cargo test` (see `tests/fuzz_corpus.rs`), so every crash
//! found once is a regression test forever.
//!
//! ## Target `atss_reader` — arbitrary bytes, strict reader
//!
//! Feeds mutated store files and raw garbage through
//! [`at_store::read_space_from_bytes`] (the strict, everything-checksummed
//! path). Oracle:
//!
//! * **No panic, no hang** — every outcome is a clean `Ok` or a typed
//!   [`at_store::StoreError`]; a slow iteration beyond the harness bound
//!   counts as a failure.
//! * **Peek differential** — [`at_store::peek_info`] (the cheap O(1)-seek
//!   metadata path used by `cache verify` listings) must never *reject* a
//!   file the strict reader accepts, and when both accept they must agree
//!   on every metadata field. Peek may accept damage the strict reader
//!   rejects (it skips dictionary contents and content checksums), but
//!   the same truncation or framing damage must classify the same way.
//!
//! ## Target `atss_load_differential` — mutated valid files, load matrix
//!
//! Writes a lightly mutated *valid* file to disk and loads it through
//! [`at_store::StoreReader::load`] under every
//! `LoadOptions { mode × index }` combination (copy/mmap ×
//! rebuild/trust/verify). Oracle:
//!
//! * All successful loads are **code-for-code identical** (same name,
//!   params, row count, arena bytes) to each other and — when the strict
//!   reader accepts the file — to the strict read.
//! * Every successful load answers membership queries **consistently**:
//!   any id `index_of_codes` returns points back at exactly the queried
//!   codes, and when the index is known good (policy `Rebuild`, or any
//!   policy on a file the strict reader fully validated) every present
//!   row is found. A damaged persisted index may surface as a *reported*
//!   fallback ([`at_store::LoadReport::index_fallback`]), a clean error,
//!   or a miss — never a misattribution.
//!
//! ## Target `expr_pipeline` — restriction strings, fold/compile differential
//!
//! Feeds grammar-generated, grammar-mutated and raw-garbage strings
//! through lexer → parser → fold → compile → VM. Oracle, for every input
//! that parses:
//!
//! * **No panic, no hang** at any stage, for any input.
//! * **Display round-trip** — `parse(expr.to_string())` reproduces the
//!   identical AST.
//! * **Fold differential** — under sampled assignments (including
//!   error-provoking values), the folded AST's `evaluate` agrees with the
//!   unfolded AST's: same truthiness on `Ok`, an error exactly when the
//!   original errors (the restriction convention rejects erroring
//!   configurations, so folding may not erase or invent errors).
//! * **Compile differential** — when the folded AST compiles, the VM's
//!   verdict under the error→reject convention equals the reference
//!   interpreter's; likewise for the full optimizing and generic
//!   restriction lowerings when they succeed.
//!
//! ## Target `check_pipeline` — restriction strings, analyzer vs ground truth
//!
//! Feeds the same grammar-generated/mutated/garbage strings through
//! [`at_check::check_spec`] as the single restriction of a small spec
//! whose domains are derived from the input hash (cartesian product ≤
//! 243, so exhaustive enumeration is cheap). Oracle:
//!
//! * **No panic, no hang** in analysis or rendering; spans stay in
//!   bounds; parse failures surface as `AT0009`.
//! * **Verdict soundness** — a `Contradiction` verdict means brute force
//!   finds zero satisfying assignments; a `Tautology` verdict means every
//!   assignment satisfies, and dropping the restriction leaves the
//!   constructed space byte-identical.
//! * **Prunable soundness** — every reported prunable `(param, value)`
//!   appears in no satisfying assignment.
//! * **Pruned ≡ unpruned** — construction with analyzer-driven domain
//!   pre-pruning yields byte-identical arenas to construction without it.
//!
//! ## Target `daemon_proto` — arbitrary bytes through the `ATSD` frame decoder
//!
//! Feeds mutated valid frames, spliced frame streams and raw garbage
//! through [`at_daemon::proto::Frame::decode`] and the blocking
//! [`at_daemon::proto::read_frame`] the daemon serves with. Oracle:
//!
//! * **No panic, no hang** — every input yields a frame or a typed
//!   [`at_daemon::ProtoError`]; the decoder does bounded work per byte.
//! * **Canonical encoding** — a decoded prefix re-encodes byte-for-byte,
//!   and re-decoding yields the same frame (one wire form per frame).
//! * **Buffer-vs-stream differential** — iterated `Frame::decode` over
//!   the buffer and `read_frame` over the same bytes as a stream agree
//!   frame for frame and error for error, with a clean end-of-stream
//!   exactly at a frame boundary.
//!
//! The corpus policy, smoke-vs-long run targets and reproduction recipes
//! are documented in the README's "Fuzzing & corpus policy" section.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atss;
pub mod checkgen;
pub mod daemonproto;
pub mod exprgen;
pub mod harness;
pub mod mutate;

pub use harness::{
    fnv1a, fuzz_target, minimize, replay_corpus, run_target, silence_panics, FuzzConfig,
    FuzzReport, Target, TargetFailure,
};
