//! Synthetic search space generation (Section 5.2.1).
//!
//! Given a target Cartesian size, a number of dimensions and a number of
//! constraints, a synthetic space is generated with approximately uniform
//! values per dimension: `v = s^(1/d)` values per dimension, rounded normally
//! for all but the last dimension, which is rounded in the opposite direction
//! to land closer to the target size. Constraints involving a variety of
//! operations are generated over randomly chosen dimension combinations.

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use at_searchspace::{Restriction, SearchSpaceSpec, TunableParameter};

/// Parameters of one synthetic search space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticConfig {
    /// Number of tunable parameters (2–5 in the paper).
    pub dimensions: usize,
    /// Target Cartesian size (1e4 – 1e6 in the paper).
    pub target_cartesian_size: u64,
    /// Number of constraints (1–6 in the paper).
    pub num_constraints: usize,
    /// Seed controlling the random constraint selection.
    pub seed: u64,
}

/// The target Cartesian sizes used by the paper.
pub const TARGET_SIZES: [u64; 7] = [10_000, 20_000, 50_000, 100_000, 200_000, 500_000, 1_000_000];

/// Generate the synthetic space specification for a configuration.
pub fn generate(config: SyntheticConfig) -> SearchSpaceSpec {
    let d = config.dimensions.max(1);
    let s = config.target_cartesian_size.max(1) as f64;
    let v = s.powf(1.0 / d as f64);

    // All but the last dimension round half-to-even-ish (normal rounding);
    // the last dimension rounds in the opposite direction to compensate.
    let normal = v.round().max(1.0) as usize;
    let contrary = if v.round() > v {
        v.floor().max(1.0) as usize
    } else {
        v.ceil().max(1.0) as usize
    };

    let mut spec = SearchSpaceSpec::new(format!(
        "synthetic-d{}-s{}-c{}",
        d, config.target_cartesian_size, config.num_constraints
    ));
    let mut sizes = Vec::with_capacity(d);
    for i in 0..d {
        let count = if i + 1 == d { contrary } else { normal };
        sizes.push(count);
        // linear space 1..=count
        spec.add_param(TunableParameter::ints(
            format!("p{i}"),
            (1..=count as i64).collect::<Vec<_>>(),
        ));
    }

    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0xA5A5_1234_5678_9ABC);
    for ci in 0..config.num_constraints {
        spec.add_restriction(make_constraint(&mut rng, &sizes, ci));
    }
    spec
}

/// Generate one random constraint over a random subset of dimensions.
///
/// The constraint templates cover the operations common in auto-tuning
/// constraints: bounded products, bounded sums, orderings, divisibility and
/// conditional (disjunctive) restrictions.
fn make_constraint<R: Rng>(rng: &mut R, sizes: &[usize], index: usize) -> Restriction {
    let d = sizes.len();
    let mut dims: Vec<usize> = (0..d).collect();
    dims.shuffle(rng);
    let arity = rng.gen_range(2..=d.clamp(2, 3));
    let chosen: Vec<usize> = dims.into_iter().take(arity).collect();
    let a = chosen[0];
    let b = chosen[1 % chosen.len()];
    let max_a = sizes[a] as f64;
    let max_b = sizes[b] as f64;

    // rotate through templates so every suite exercises all of them
    match (index + rng.gen_range(0..6usize)) % 6 {
        0 => {
            // bounded product, keeps between ~30% and ~90% of the plane
            let frac = rng.gen_range(0.3..0.9);
            let limit = (max_a * max_b * frac).max(1.0).round();
            Restriction::expr(format!("p{a} * p{b} <= {limit}"))
        }
        1 => {
            let frac = rng.gen_range(0.05..0.4);
            let minimum = (max_a * max_b * frac).max(1.0).round();
            Restriction::expr(format!("p{a} * p{b} >= {minimum}"))
        }
        2 => {
            let frac = rng.gen_range(0.3..0.9);
            let limit = ((max_a + max_b) * frac).max(2.0).round();
            Restriction::expr(format!("p{a} + p{b} <= {limit}"))
        }
        3 => Restriction::expr(format!("p{a} <= p{b}")),
        4 => {
            let k = rng.gen_range(2..=4);
            Restriction::expr(format!("p{a} % {k} == 0 or p{b} <= p{a}"))
        }
        _ => {
            if chosen.len() >= 3 {
                let c = chosen[2];
                let frac = rng.gen_range(0.2..0.8);
                let limit = (max_a * max_b * sizes[c] as f64 * frac).max(1.0).round();
                Restriction::expr(format!("p{a} * p{b} * p{c} <= {limit}"))
            } else {
                let frac = rng.gen_range(0.1..0.6);
                let minimum = ((max_a + max_b) * frac).max(1.0).round();
                Restriction::expr(format!("p{a} + p{b} >= {minimum}"))
            }
        }
    }
}

/// The evaluation suite: `count` synthetic spaces (the paper uses 78) drawn
/// deterministically from the grid of dimensions (2–5), target sizes
/// ([`TARGET_SIZES`]) and constraint counts (1–6).
pub fn synthetic_suite(count: usize, seed: u64) -> Vec<SyntheticConfig> {
    let mut grid = Vec::new();
    for &size in &TARGET_SIZES {
        for dimensions in 2..=5usize {
            for num_constraints in 1..=6usize {
                grid.push(SyntheticConfig {
                    dimensions,
                    target_cartesian_size: size,
                    num_constraints,
                    seed: seed
                        ^ size
                            .wrapping_mul(31)
                            .wrapping_add(dimensions as u64 * 7 + num_constraints as u64),
                });
            }
        }
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    grid.shuffle(&mut rng);
    grid.truncate(count);
    // stable report order: by Cartesian size, then dimensions, then constraints
    grid.sort_by_key(|c| (c.target_cartesian_size, c.dimensions, c.num_constraints));
    grid
}

/// A reduced suite (one order of magnitude smaller Cartesian sizes) for the
/// blocking-clause / PySMT comparison of Figure 4.
pub fn reduced_synthetic_suite(count: usize, seed: u64) -> Vec<SyntheticConfig> {
    synthetic_suite(count, seed)
        .into_iter()
        .map(|mut c| {
            c.target_cartesian_size = (c.target_cartesian_size / 10).max(100);
            c
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_searchspace::{build_search_space, Method};

    #[test]
    fn generated_space_matches_target_size_roughly() {
        for (dims, size) in [
            (2usize, 10_000u64),
            (3, 50_000),
            (4, 100_000),
            (5, 1_000_000),
        ] {
            let spec = generate(SyntheticConfig {
                dimensions: dims,
                target_cartesian_size: size,
                num_constraints: 2,
                seed: 1,
            });
            assert_eq!(spec.num_params(), dims);
            let cartesian = spec.cartesian_size() as f64;
            let target = size as f64;
            assert!(
                cartesian > target * 0.5 && cartesian < target * 2.0,
                "dims {dims} target {target} got {cartesian}"
            );
        }
    }

    #[test]
    fn number_of_constraints_matches() {
        let spec = generate(SyntheticConfig {
            dimensions: 4,
            target_cartesian_size: 10_000,
            num_constraints: 5,
            seed: 3,
        });
        assert_eq!(spec.num_restrictions(), 5);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = SyntheticConfig {
            dimensions: 3,
            target_cartesian_size: 20_000,
            num_constraints: 4,
            seed: 9,
        };
        let a = generate(cfg);
        let b = generate(cfg);
        assert_eq!(a.num_params(), b.num_params());
        let ra: Vec<String> = a.restrictions.iter().map(|r| r.describe()).collect();
        let rb: Vec<String> = b.restrictions.iter().map(|r| r.describe()).collect();
        assert_eq!(ra, rb);
    }

    #[test]
    fn suite_has_requested_size_and_spread() {
        let suite = synthetic_suite(78, 42);
        assert_eq!(suite.len(), 78);
        let dims: std::collections::HashSet<usize> = suite.iter().map(|c| c.dimensions).collect();
        assert_eq!(dims.len(), 4);
        let sizes: std::collections::HashSet<u64> =
            suite.iter().map(|c| c.target_cartesian_size).collect();
        assert_eq!(sizes.len(), 7);
        let constraints: std::collections::HashSet<usize> =
            suite.iter().map(|c| c.num_constraints).collect();
        assert_eq!(constraints.len(), 6);
    }

    #[test]
    fn reduced_suite_is_an_order_of_magnitude_smaller() {
        let full = synthetic_suite(10, 1);
        let reduced = reduced_synthetic_suite(10, 1);
        for (f, r) in full.iter().zip(reduced.iter()) {
            assert_eq!(f.target_cartesian_size / 10, r.target_cartesian_size);
        }
    }

    #[test]
    fn small_synthetic_spaces_solve_and_are_partially_constrained() {
        let spec = generate(SyntheticConfig {
            dimensions: 3,
            target_cartesian_size: 10_000,
            num_constraints: 3,
            seed: 7,
        });
        let (space, report) = build_search_space(&spec, Method::Optimized).unwrap();
        assert!(!space.is_empty(), "space should not be empty");
        assert!(
            (space.len() as u128) < report.cartesian_size,
            "constraints should remove something"
        );
    }
}
