//! Per-workload simulated performance models.
//!
//! Each real-world workload gets a deterministic synthetic kernel whose
//! scale roughly matches the kernel class it stands in for (a fast memory
//! bound stencil vs. a heavy compute-bound GEMM), so the end-to-end tuning
//! experiment charges realistic per-measurement costs to the virtual clock.

use at_searchspace::SearchSpace;
use at_tuner::SyntheticKernel;

/// Build the simulated performance model for a named workload. Unknown names
/// fall back to a generic model.
pub fn performance_model_for(name: &str, space: &SearchSpace, seed: u64) -> SyntheticKernel {
    let param_sizes: Vec<usize> = space.params().iter().map(|p| p.len().max(1)).collect();
    let (base_ms, amplitude, noise) = match name {
        // memory-bound stencil, fast iterations, large spread between good
        // and bad thread block shapes
        "Hotspot" => (1.5, 12.0, 0.05),
        // compute-bound matrix multiply on 4096^3: slow iterations
        "GEMM" => (20.0, 60.0, 0.03),
        "Dedispersion" => (3.0, 9.0, 0.05),
        "ExpDist" => (8.0, 25.0, 0.05),
        "MicroHH" => (2.5, 10.0, 0.05),
        n if n.starts_with("ATF PRL") => (5.0, 15.0, 0.08),
        _ => (2.0, 8.0, 0.05),
    };
    SyntheticKernel::new(base_ms, amplitude, noise, seed, param_sizes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::realworld::dedispersion;
    use at_searchspace::{build_search_space, Method};
    use at_tuner::PerformanceModel;

    #[test]
    fn models_differ_per_workload_class() {
        let w = dedispersion();
        let (space, _) = build_search_space(&w.spec, Method::Optimized).unwrap();
        let hotspot = performance_model_for("Hotspot", &space, 1);
        let gemm = performance_model_for("GEMM", &space, 1);
        let cfg = space.iter().next().unwrap().to_vec();
        assert!(gemm.runtime_ms(&cfg) > hotspot.runtime_ms(&cfg));
    }

    #[test]
    fn unknown_workload_gets_generic_model() {
        let w = dedispersion();
        let (space, _) = build_search_space(&w.spec, Method::Optimized).unwrap();
        let model = performance_model_for("something-else", &space, 3);
        assert!(model.runtime_ms(&space.iter().next().unwrap().to_vec()) > 0.0);
    }
}
