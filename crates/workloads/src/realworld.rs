//! The eight real-world search spaces of Section 5.3.
//!
//! The parameter domains and constraints are reconstructed from the paper's
//! descriptions and the public kernels they reference (the BAT benchmark
//! suite's Dedispersion / ExpDist / Hotspot, CLBlast's GEMM, MicroHH's
//! `advec_u`, and ATF's Probabilistic Record Linkage kernel). The goal is not
//! bit-exact equality with the authors' parameter files — those are part of
//! the respective projects — but structural fidelity: the same number of
//! parameters and constraints, Cartesian sizes of the same magnitude, and
//! comparable sparsity, so that the relative solver behaviour of Figure 5 and
//! Table 2 is reproduced. EXPERIMENTS.md records paper-reported versus
//! measured characteristics per space.

use at_searchspace::{SearchSpaceSpec, TunableParameter};

/// Characteristics of a search space as reported in Table 2 of the paper,
/// used to cross-check the reconstructions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperCharacteristics {
    /// Cartesian size reported in Table 2.
    pub cartesian_size: u128,
    /// Number of valid configurations reported in Table 2.
    pub num_valid: u128,
    /// Number of tunable parameters.
    pub num_params: usize,
    /// Number of constraints.
    pub num_constraints: usize,
}

/// A named real-world workload: its specification plus the paper-reported
/// characteristics.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The search space specification.
    pub spec: SearchSpaceSpec,
    /// Table 2 values for comparison.
    pub paper: PaperCharacteristics,
    /// Whether the space is small enough to brute force in tests/benches on a
    /// laptop within seconds.
    pub brute_forceable: bool,
}

/// Dedispersion (BAT): 8 parameters, 3 constraints, ~50 % valid.
pub fn dedispersion() -> Workload {
    let spec = SearchSpaceSpec::new("Dedispersion")
        .with_param(TunableParameter::ints(
            "block_size_x",
            (1..=29).map(|i| i * 32).collect::<Vec<_>>(),
        ))
        .with_param(TunableParameter::ints("block_size_y", [1, 2, 4, 8]))
        .with_param(TunableParameter::ints("tile_size_x", [1, 2, 3, 4]))
        .with_param(TunableParameter::ints("tile_size_y", [1, 2, 3, 4]))
        .with_param(TunableParameter::ints("tile_stride_x", [0, 1]))
        .with_param(TunableParameter::ints("tile_stride_y", [0, 1]))
        .with_param(TunableParameter::ints("loop_unroll_factor_channel", [0]))
        .with_param(TunableParameter::ints("blocks_per_sm", [0]))
        // at least one thread block per 32 threads, at most 1024 threads
        .with_expr("32 <= block_size_x * block_size_y <= 1024")
        // striding only makes sense with more than one tile
        .with_expr("tile_size_x > 1 or tile_stride_x == 0")
        .with_expr("tile_size_y > 1 or tile_stride_y == 0");
    Workload {
        spec,
        paper: PaperCharacteristics {
            cartesian_size: 22_272,
            num_valid: 11_130,
            num_params: 8,
            num_constraints: 3,
        },
        brute_forceable: true,
    }
}

/// ExpDist (BAT): 10 parameters, 4 constraints, ~3 % valid.
pub fn expdist() -> Workload {
    let spec = SearchSpaceSpec::new("ExpDist")
        .with_param(TunableParameter::ints(
            "block_size_x",
            [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024],
        ))
        .with_param(TunableParameter::ints(
            "block_size_y",
            [1, 2, 4, 8, 16, 32, 64, 128],
        ))
        .with_param(TunableParameter::ints(
            "tile_size_x",
            (1..=8).collect::<Vec<_>>(),
        ))
        .with_param(TunableParameter::ints(
            "tile_size_y",
            [1, 2, 3, 4, 5, 6, 7, 8],
        ))
        .with_param(TunableParameter::ints(
            "num_blocks",
            (1..=8).map(|i| i * 64).collect::<Vec<_>>(),
        ))
        .with_param(TunableParameter::ints(
            "reduce_block_size",
            [32, 64, 128, 256, 512, 1024, 2048, 4096],
        ))
        .with_param(TunableParameter::ints(
            "loop_unroll_factor_x",
            (0..=8).collect::<Vec<_>>(),
        ))
        .with_param(TunableParameter::ints("use_shared_mem", [0, 1, 2]))
        .with_param(TunableParameter::ints("loop_unroll_factor_y", [0]))
        .with_param(TunableParameter::ints("use_column", [0]))
        .with_expr("32 <= block_size_x * block_size_y <= 1024")
        // shared memory for the tile: 8 bytes per element, two buffers
        .with_expr("block_size_x * tile_size_x * block_size_y * tile_size_y * 8 * 2 <= 49152")
        // the reduction needs enough threads to cover the partial results
        .with_expr("reduce_block_size >= num_blocks")
        // an unrolled loop must evenly divide the tile
        .with_expr("loop_unroll_factor_x == 0 or tile_size_x % loop_unroll_factor_x == 0");
    Workload {
        spec,
        paper: PaperCharacteristics {
            cartesian_size: 9_732_096,
            num_valid: 294_000,
            num_params: 10,
            num_constraints: 4,
        },
        brute_forceable: true,
    }
}

/// Hotspot (BAT): 11 parameters, 5 constraints, ~1.6 % valid.
pub fn hotspot() -> Workload {
    let mut block_size_x: Vec<i64> = vec![1, 2, 4, 8, 16];
    block_size_x.extend((1..=32).map(|i| 32 * i));
    let spec = SearchSpaceSpec::new("Hotspot")
        .with_param(TunableParameter::ints("block_size_x", block_size_x))
        .with_param(TunableParameter::ints("block_size_y", [1, 2, 4, 8, 16, 32]))
        .with_param(TunableParameter::ints("work_per_thread_x", [1, 2, 3, 4, 5]))
        .with_param(TunableParameter::ints("work_per_thread_y", [1, 2, 3, 4, 5]))
        .with_param(TunableParameter::ints(
            "temporal_tiling_factor",
            (1..=10).collect::<Vec<_>>(),
        ))
        .with_param(TunableParameter::ints(
            "loop_unroll_factor_t",
            (1..=10).collect::<Vec<_>>(),
        ))
        .with_param(TunableParameter::ints("sh_power", [0, 1]))
        .with_param(TunableParameter::ints("blocks_per_sm", [0, 1, 2, 3]))
        .with_param(TunableParameter::ints("max_tfactor", [10]))
        .with_param(TunableParameter::ints("loop_unroll_factor_x", [1]))
        .with_param(TunableParameter::ints("loop_unroll_factor_y", [1]))
        // thread block limits
        .with_expr("32 <= block_size_x * block_size_y <= 1024")
        // the temporal loop unroll factor must evenly divide the tiling factor
        .with_expr("temporal_tiling_factor % loop_unroll_factor_t == 0")
        // shared memory for the temperature field (and optionally power), 4 bytes
        .with_expr(
            "(block_size_x * work_per_thread_x + temporal_tiling_factor * 2) * \
             (block_size_y * work_per_thread_y + temporal_tiling_factor * 2) * \
             (2 + sh_power) * 4 <= 49152",
        )
        // enough parallelism per SM
        .with_expr("blocks_per_sm == 0 or block_size_x * block_size_y * blocks_per_sm <= 2048")
        // each thread's work must stay within the tile halo
        .with_expr("work_per_thread_x * work_per_thread_y <= 16");
    Workload {
        spec,
        paper: PaperCharacteristics {
            cartesian_size: 22_200_000,
            num_valid: 349_853,
            num_params: 11,
            num_constraints: 5,
        },
        brute_forceable: true,
    }
}

/// GEMM (CLBlast): 17 parameters, 8 constraints, ~17.6 % valid.
pub fn gemm() -> Workload {
    let spec = SearchSpaceSpec::new("GEMM")
        .with_param(TunableParameter::ints("MWG", [16, 32, 64, 128]))
        .with_param(TunableParameter::ints("NWG", [16, 32, 64, 128]))
        .with_param(TunableParameter::ints("KWG", [16, 32]))
        .with_param(TunableParameter::ints("MDIMC", [8, 16, 32]))
        .with_param(TunableParameter::ints("NDIMC", [8, 16, 32]))
        .with_param(TunableParameter::ints("MDIMA", [8, 16, 32]))
        .with_param(TunableParameter::ints("NDIMB", [8, 16, 32]))
        .with_param(TunableParameter::ints("KWI", [2, 8]))
        .with_param(TunableParameter::ints("VWM", [1, 2, 4, 8]))
        .with_param(TunableParameter::ints("VWN", [1, 2, 4, 8]))
        .with_param(TunableParameter::ints("STRM", [0, 1]))
        .with_param(TunableParameter::ints("STRN", [0, 1]))
        .with_param(TunableParameter::ints("SA", [0, 1]))
        .with_param(TunableParameter::ints("SB", [0, 1]))
        .with_param(TunableParameter::ints("PRECISION", [32]))
        .with_param(TunableParameter::ints("M", [4096]))
        .with_param(TunableParameter::ints("N", [4096]))
        .with_expr("KWG % KWI == 0")
        .with_expr("MWG % (MDIMC * VWM) == 0")
        .with_expr("NWG % (NDIMC * VWN) == 0")
        .with_expr("MWG % (MDIMA * VWM) == 0")
        .with_expr("NWG % (NDIMB * VWN) == 0")
        .with_expr("KWG % ((MDIMC * NDIMC) / MDIMA) == 0")
        .with_expr("KWG % ((MDIMC * NDIMC) / NDIMB) == 0")
        // local memory: A tile (KWG x MWG) and B tile (KWG x NWG), 4 bytes each,
        // only when cached in shared memory
        .with_expr("(SA * KWG * MWG + SB * KWG * NWG) * 4 <= 49152");
    Workload {
        spec,
        paper: PaperCharacteristics {
            cartesian_size: 663_552,
            num_valid: 116_928,
            num_params: 17,
            num_constraints: 8,
        },
        brute_forceable: true,
    }
}

/// MicroHH `advec_u`: 13 parameters, 8 constraints, ~11.9 % valid.
pub fn microhh() -> Workload {
    let spec = SearchSpaceSpec::new("MicroHH")
        .with_param(TunableParameter::ints("block_size_x", [1, 2, 4, 8, 16, 32, 64, 128, 256, 512]))
        .with_param(TunableParameter::ints("block_size_y", [1, 2, 4, 8, 16, 32, 64, 128, 256]))
        .with_param(TunableParameter::ints("block_size_z", [1, 2, 4]))
        .with_param(TunableParameter::ints("tile_size_x", [1, 2, 4, 8]))
        .with_param(TunableParameter::ints("tile_size_y", [1, 2, 4, 8]))
        .with_param(TunableParameter::ints("tile_size_z", [1, 2, 4]))
        .with_param(TunableParameter::ints("loop_unroll_factor_x", [1, 2, 4]))
        .with_param(TunableParameter::ints("loop_unroll_factor_y", [1, 2, 4]))
        .with_param(TunableParameter::ints("blocks_per_mp", [0, 1, 2, 3]))
        .with_param(TunableParameter::ints("use_smem", [0, 1]))
        .with_param(TunableParameter::ints("grid_div_x", [1]))
        .with_param(TunableParameter::ints("grid_div_y", [1]))
        .with_param(TunableParameter::ints("grid_div_z", [1]))
        .with_expr("32 <= block_size_x * block_size_y * block_size_z <= 1024")
        .with_expr("tile_size_x % loop_unroll_factor_x == 0")
        .with_expr("tile_size_y % loop_unroll_factor_y == 0")
        .with_expr("tile_size_x * tile_size_y * tile_size_z <= 64")
        .with_expr("use_smem == 0 or block_size_x * block_size_y * block_size_z >= 64")
        .with_expr(
            "use_smem == 0 or (block_size_x * tile_size_x + 4) * (block_size_y * tile_size_y + 4) * 8 <= 49152",
        )
        .with_expr("blocks_per_mp == 0 or block_size_x * block_size_y * block_size_z * blocks_per_mp <= 2048")
        .with_expr("block_size_x * tile_size_x <= 1024");
    Workload {
        spec,
        paper: PaperCharacteristics {
            cartesian_size: 1_166_400,
            num_valid: 138_600,
            num_params: 13,
            num_constraints: 8,
        },
        brute_forceable: true,
    }
}

/// ATF Probabilistic Record Linkage with a square input size `n x n`
/// (the paper uses 2x2, 4x4 and 8x8): 20 parameters, 14 constraints.
///
/// The PRL search space has two cache levels and a parallelization block per
/// input dimension (rows and columns). ATF declares the block-size parameters
/// as intervals `1..=n` and restricts them with divisibility constraints, so
/// the chunk sizes at each level must divide each other — which is what makes
/// the space so sparse (0.002 % valid at 8x8). The reconstruction mirrors the
/// paper's Table 2 factorization exactly: eight interval parameters with `n`
/// values, four binary switches, two three-level destination selectors and
/// six fixed result-block parameters give a Cartesian size of `144 * n^8`
/// (36 864 at 2x2, 9 437 184 at 4x4, 2 415 919 104 at 8x8).
pub fn atf_prl(input_size: u32) -> Workload {
    let n = input_size.max(2) as i64;
    let interval: Vec<i64> = (1..=n).collect();

    let paper = match input_size {
        2 => PaperCharacteristics {
            cartesian_size: 36_864,
            num_valid: 1_200,
            num_params: 20,
            num_constraints: 14,
        },
        4 => PaperCharacteristics {
            cartesian_size: 9_437_184,
            num_valid: 10_800,
            num_params: 20,
            num_constraints: 14,
        },
        _ => PaperCharacteristics {
            cartesian_size: 2_415_919_104,
            num_valid: 48_720,
            num_params: 20,
            num_constraints: 14,
        },
    };

    let spec = SearchSpaceSpec::new(format!("ATF PRL {input_size}x{input_size}"))
        // rows: work-group / work-item counts and the cache-block hierarchy
        .with_param(TunableParameter::ints("NUM_WG_R", [1, 2]))
        .with_param(TunableParameter::ints("NUM_WI_R", interval.clone()))
        .with_param(TunableParameter::ints("L1_CB_SIZE_R", interval.clone()))
        .with_param(TunableParameter::ints("L2_CB_SIZE_R", interval.clone()))
        .with_param(TunableParameter::ints("P_CB_SIZE_R", interval.clone()))
        .with_param(TunableParameter::ints("L1_CB_RES_R", [1]))
        .with_param(TunableParameter::ints("L2_CB_RES_R", [1]))
        .with_param(TunableParameter::ints("P_CB_RES_R", [1]))
        // columns
        .with_param(TunableParameter::ints("NUM_WG_C", [1, 2]))
        .with_param(TunableParameter::ints("NUM_WI_C", interval.clone()))
        .with_param(TunableParameter::ints("L1_CB_SIZE_C", interval.clone()))
        .with_param(TunableParameter::ints("L2_CB_SIZE_C", interval.clone()))
        .with_param(TunableParameter::ints("P_CB_SIZE_C", interval))
        .with_param(TunableParameter::ints("L1_CB_RES_C", [1]))
        .with_param(TunableParameter::ints("L2_CB_RES_C", [1]))
        .with_param(TunableParameter::ints("P_CB_RES_C", [1]))
        // memory/layout switches and result destination levels
        .with_param(TunableParameter::ints("CACHE_L_CB", [0, 1]))
        .with_param(TunableParameter::ints("CACHE_P_CB", [0, 1]))
        .with_param(TunableParameter::ints("G_CB_RES_DEST_LEVEL", [0, 1, 2]))
        .with_param(TunableParameter::ints("L_CB_RES_DEST_LEVEL", [0, 1, 2]))
        // row-side divisibility chain
        .with_expr(&format!("{n} % L2_CB_SIZE_R == 0"))
        .with_expr("L2_CB_SIZE_R % L1_CB_SIZE_R == 0")
        .with_expr("L1_CB_SIZE_R % P_CB_SIZE_R == 0")
        .with_expr("L1_CB_SIZE_R % NUM_WI_R == 0")
        // column-side divisibility chain
        .with_expr(&format!("{n} % L2_CB_SIZE_C == 0"))
        .with_expr("L2_CB_SIZE_C % L1_CB_SIZE_C == 0")
        .with_expr("L1_CB_SIZE_C % P_CB_SIZE_C == 0")
        .with_expr("L1_CB_SIZE_C % NUM_WI_C == 0")
        // parallelism limits
        .with_expr(&format!("NUM_WG_R * NUM_WI_R <= {n} * {n}"))
        .with_expr(&format!("NUM_WG_C * NUM_WI_C <= {n} * {n}"))
        .with_expr("NUM_WI_R * NUM_WI_C <= 1024")
        // result blocks may only be cached at or below their destination level
        .with_expr("G_CB_RES_DEST_LEVEL >= L_CB_RES_DEST_LEVEL")
        // caching the local / private cache blocks only pays off when they fit
        .with_expr(&format!(
            "CACHE_L_CB == 0 or L1_CB_SIZE_R * L1_CB_SIZE_C <= {n} * {n}"
        ))
        .with_expr(&format!(
            "CACHE_P_CB == 0 or P_CB_SIZE_R * P_CB_SIZE_C <= {n}"
        ));
    Workload {
        spec,
        paper,
        brute_forceable: input_size <= 4,
    }
}

/// All eight real-world workloads in the order of Table 2.
pub fn all_real_world() -> Vec<Workload> {
    vec![
        dedispersion(),
        expdist(),
        hotspot(),
        gemm(),
        microhh(),
        atf_prl(2),
        atf_prl(4),
        atf_prl(8),
    ]
}

/// The subset small enough to brute force quickly (used by validation tests).
pub fn brute_forceable_real_world() -> Vec<Workload> {
    all_real_world()
        .into_iter()
        .filter(|w| w.brute_forceable)
        .collect()
}

/// Look up a real-world workload by a case-insensitive short name
/// (`dedispersion`, `expdist`, `hotspot`, `gemm`, `microhh`, `prl-2x2`,
/// `prl-4x4`, `prl-8x8`).
pub fn real_world_by_name(name: &str) -> Option<Workload> {
    match name.to_ascii_lowercase().as_str() {
        "dedispersion" => Some(dedispersion()),
        "expdist" => Some(expdist()),
        "hotspot" => Some(hotspot()),
        "gemm" => Some(gemm()),
        "microhh" => Some(microhh()),
        "prl-2x2" | "atf-prl-2x2" | "prl2" => Some(atf_prl(2)),
        "prl-4x4" | "atf-prl-4x4" | "prl4" => Some(atf_prl(4)),
        "prl-8x8" | "atf-prl-8x8" | "prl8" => Some(atf_prl(8)),
        _ => None,
    }
}

/// The short names accepted by [`real_world_by_name`], in Table 2 order.
pub fn real_world_names() -> &'static [&'static str] {
    &[
        "dedispersion",
        "expdist",
        "hotspot",
        "gemm",
        "microhh",
        "prl-2x2",
        "prl-4x4",
        "prl-8x8",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_searchspace::{build_search_space, Method, SpaceCharacteristics};

    #[test]
    fn structural_characteristics_match_table2() {
        for w in all_real_world() {
            assert_eq!(
                w.spec.num_params(),
                w.paper.num_params,
                "{}: parameter count",
                w.spec.name
            );
            assert_eq!(
                w.spec.num_restrictions(),
                w.paper.num_constraints,
                "{}: constraint count",
                w.spec.name
            );
        }
    }

    #[test]
    fn cartesian_sizes_are_in_the_right_ballpark() {
        for w in all_real_world() {
            let ours = w.spec.cartesian_size() as f64;
            let paper = w.paper.cartesian_size as f64;
            let ratio = ours / paper;
            assert!(
                (0.2..=5.0).contains(&ratio),
                "{}: Cartesian {} vs paper {} (ratio {ratio:.2})",
                w.spec.name,
                ours,
                paper
            );
        }
    }

    #[test]
    fn dedispersion_is_roughly_half_valid() {
        let w = dedispersion();
        let (space, report) = build_search_space(&w.spec, Method::Optimized).unwrap();
        assert!(!space.is_empty());
        let fraction = space.len() as f64 / report.cartesian_size as f64;
        assert!(
            (0.25..=0.75).contains(&fraction),
            "valid fraction {fraction}"
        );
    }

    #[test]
    fn gemm_space_is_dense_but_constrained() {
        let w = gemm();
        let (space, report) = build_search_space(&w.spec, Method::Optimized).unwrap();
        let fraction = space.len() as f64 / report.cartesian_size as f64;
        assert!(space.len() > 1000);
        assert!((0.02..=0.6).contains(&fraction), "fraction {fraction}");
    }

    #[test]
    fn microhh_space_solves() {
        let w = microhh();
        let (space, report) = build_search_space(&w.spec, Method::Optimized).unwrap();
        assert!(space.len() > 1000);
        assert!((space.len() as u128) < report.cartesian_size);
    }

    #[test]
    fn prl_spaces_are_very_sparse() {
        for size in [2u32, 4] {
            let w = atf_prl(size);
            let (space, report) = build_search_space(&w.spec, Method::Optimized).unwrap();
            assert!(!space.is_empty(), "PRL {size}x{size} empty");
            let fraction = space.len() as f64 / report.cartesian_size as f64;
            assert!(
                fraction < 0.2,
                "PRL {size}x{size} should be sparse, got {fraction}"
            );
        }
    }

    #[test]
    fn characteristics_table_can_be_computed() {
        let w = dedispersion();
        let (space, _) = build_search_space(&w.spec, Method::Optimized).unwrap();
        let c = SpaceCharacteristics::compute(&w.spec, &space);
        assert_eq!(c.num_params, 8);
        assert_eq!(c.num_constraints, 3);
        assert!(c.avg_constraint_evaluations > 0.0);
    }
}
