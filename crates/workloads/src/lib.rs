//! # at-workloads — the evaluation workloads of the paper
//!
//! * [`synthetic`] — the synthetic search space generator of Section 5.2.1
//!   (dimensions 2–5, target Cartesian sizes 1e4–1e6, 1–6 constraints) and the
//!   78-space evaluation suite.
//! * [`realworld`] — reconstructions of the eight real-world spaces of
//!   Section 5.3: Dedispersion, ExpDist, Hotspot (BAT), GEMM (CLBlast),
//!   MicroHH `advec_u` and ATF PRL at input sizes 2x2, 4x4 and 8x8.
//! * [`perfmodel`] — deterministic simulated kernels standing in for the
//!   paper's GPU measurements in the end-to-end experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod perfmodel;
pub mod realworld;
pub mod synthetic;

pub use perfmodel::performance_model_for;
pub use realworld::{
    all_real_world, atf_prl, brute_forceable_real_world, dedispersion, expdist, gemm, hotspot,
    microhh, real_world_by_name, real_world_names, PaperCharacteristics, Workload,
};
pub use synthetic::{
    generate, reduced_synthetic_suite, synthetic_suite, SyntheticConfig, TARGET_SIZES,
};
